"""Figure 9: normalized throughput (scaling efficiency) of Parallax.

Paper values (throughput at k GPUs / throughput at 1 GPU):

    GPUs          resnet50  inception  lm     nmt
    6             5.4       5.6        2.8    3.5
    12            10.5      10.9       5.4    6.5
    24            20.5      21.4       8.6    11.9
    48            39.8      43.6       9.4    18.4

and the comparison: at 48 GPUs TF-PS reaches 30.4/28.6/3.4/9.1 and
Horovod 39.8/44.4/1.6/6.1.
"""

import pytest

from conftest import _mark_benchmark, PAPER_PARTITIONS, plan_for, print_table
from repro.cluster.simulator import throughput
from repro.cluster.spec import ClusterSpec

PAPER_PARALLAX = {
    "resnet50": {6: 5.4, 12: 10.5, 24: 20.5, 48: 39.8},
    "inception_v3": {6: 5.6, 12: 10.9, 24: 21.4, 48: 43.6},
    "lm": {6: 2.8, 12: 5.4, 24: 8.6, 48: 9.4},
    "nmt": {6: 3.5, 12: 6.5, 24: 11.9, 48: 18.4},
}
PAPER_48 = {
    "tf_ps": {"resnet50": 30.4, "inception_v3": 28.6, "lm": 3.4, "nmt": 9.1},
    "horovod": {"resnet50": 39.8, "inception_v3": 44.4, "lm": 1.6,
                "nmt": 6.1},
}
GPU_COUNTS = {6: (1, 6), 12: (2, 6), 24: (4, 6), 48: (8, 6)}


def normalized(profile, arch, partitions):
    base = throughput(profile, plan_for(arch, profile, partitions),
                      ClusterSpec(1, 1))
    out = {}
    for gpus, (machines, per) in GPU_COUNTS.items():
        t = throughput(profile, plan_for(arch, profile, partitions),
                       ClusterSpec(machines, per))
        out[gpus] = t / base
    return out


@pytest.fixture(scope="module")
def parallax_eff(profiles):
    return {
        name: normalized(profile, "parallax",
                         PAPER_PARTITIONS.get(name, 1))
        for name, profile in profiles.items()
    }


def test_fig9_rows(benchmark, parallax_eff):
    _mark_benchmark(benchmark)
    rows = []
    for gpus in (6, 12, 24, 48):
        row = [gpus]
        for name in parallax_eff:
            row.append(f"{parallax_eff[name][gpus]:.1f} "
                       f"({PAPER_PARALLAX[name][gpus]:.1f})")
        rows.append(row)
    print_table("Figure 9: Parallax normalized throughput (simulated "
                "(paper))", ["GPUs"] + list(parallax_eff), rows)


def test_dense_models_near_linear(benchmark, parallax_eff):
    _mark_benchmark(benchmark)
    """ResNet/Inception scale to >= 60% efficiency at 48 GPUs."""
    for name in ("resnet50", "inception_v3"):
        assert parallax_eff[name][48] > 0.6 * 48

    # And better efficiency than the NLP models, which stress comm more.
    for dense in ("resnet50", "inception_v3"):
        for sparse in ("lm", "nmt"):
            assert parallax_eff[dense][48] > parallax_eff[sparse][48]


def test_nlp_efficiency_ordering(benchmark, parallax_eff):
    _mark_benchmark(benchmark)
    """Paper: NMT (18.4x) scales better than LM (9.4x) at 48 GPUs."""
    assert parallax_eff["nmt"][48] > parallax_eff["lm"][48]


def test_efficiency_monotone_in_gpus(benchmark, parallax_eff):
    _mark_benchmark(benchmark)
    for name, values in parallax_eff.items():
        ordered = [values[g] for g in (6, 12, 24, 48)]
        assert ordered == sorted(ordered), name


def test_parallax_beats_others_at_48(benchmark, profiles):
    _mark_benchmark(benchmark)
    """Fig 9 caption: Parallax 48-GPU normalized throughput beats TF-PS
    and Horovod on the sparse models and ties Horovod on dense ones."""
    for name in ("lm", "nmt"):
        profile = profiles[name]
        partitions = PAPER_PARTITIONS[name]
        values = {
            arch: normalized(profile, arch, partitions)[48]
            for arch in ("parallax", "tf_ps", "horovod")
        }
        assert values["parallax"] > values["tf_ps"]
        assert values["parallax"] > values["horovod"]


def test_bench_normalized_throughput(benchmark, profiles):
    profile = profiles["nmt"]
    result = benchmark(normalized, profile, "parallax", 64)
    assert result[48] > 0
