"""Table 1: PS vs AR throughput and model sparsity (48 GPUs).

Paper values (words or images per second):

    model         #dense    #sparse   alpha    PS       AR
    ResNet-50     23.8M     0         1        5.8k     7.6k
    Inception-v3  25.6M     0         1        3.8k     5.9k
    LM            9.4M      813.3M    0.02     98.9k    45.5k
    NMT           94.1M     74.9M     0.65*    102k     68.3k

(* our element-weighted alpha definition gives ~0.59 for NMT; see
EXPERIMENTS.md.)
"""

import pytest

from conftest import _mark_benchmark, PAPER_PARTITIONS, fmt, plan_for, print_table
from repro.cluster.simulator import simulate_iteration, throughput

PAPER = {
    "resnet50": {"ps": 5_800, "ar": 7_600, "alpha": 1.0},
    "inception_v3": {"ps": 3_800, "ar": 5_900, "alpha": 1.0},
    "lm": {"ps": 98_900, "ar": 45_500, "alpha": 0.02},
    "nmt": {"ps": 102_000, "ar": 68_300, "alpha": 0.65},
}


def test_table1_rows(benchmark, profiles, paper_cluster):
    _mark_benchmark(benchmark)
    rows = []
    results = {}
    for name, profile in profiles.items():
        partitions = PAPER_PARTITIONS.get(name, 1)
        ps = throughput(profile, plan_for("tf_ps", profile, partitions),
                        paper_cluster)
        ar = throughput(profile, plan_for("horovod", profile), paper_cluster)
        results[name] = (ps, ar)
        rows.append([
            name,
            f"{profile.dense_elements / 1e6:.1f}M",
            f"{profile.sparse_elements / 1e6:.1f}M",
            f"{profile.alpha_model:.2f}",
            f"{fmt(ps)} (paper {fmt(PAPER[name]['ps'])})",
            f"{fmt(ar)} (paper {fmt(PAPER[name]['ar'])})",
        ])
    print_table("Table 1: variables, alpha, PS vs AR throughput @48 GPUs",
                ["model", "# dense", "# sparse", "alpha", "PS", "AR"], rows)

    # Shape assertions: AR wins on dense, PS wins on sparse.
    for name in ("resnet50", "inception_v3"):
        ps, ar = results[name]
        assert ar > ps
    for name in ("lm", "nmt"):
        ps, ar = results[name]
        assert ps > ar


def test_element_counts_match_paper(benchmark, profiles):
    _mark_benchmark(benchmark)
    assert profiles["resnet50"].dense_elements == pytest.approx(23.8e6,
                                                                rel=1e-3)
    assert profiles["inception_v3"].dense_elements == pytest.approx(
        25.6e6, rel=1e-3)
    assert profiles["lm"].sparse_elements == pytest.approx(813.3e6, rel=1e-3)
    assert profiles["nmt"].sparse_elements == pytest.approx(74.9e6, rel=1e-3)


@pytest.mark.parametrize("model", ["resnet50", "lm"])
def test_bench_simulate_iteration(benchmark, profiles, paper_cluster, model):
    """Time one full iteration simulation (flow network + cost model)."""
    profile = profiles[model]
    plan = plan_for("tf_ps", profile, PAPER_PARTITIONS.get(model, 1))
    breakdown = benchmark(simulate_iteration, profile, plan, paper_cluster)
    assert breakdown.iteration_time > 0
