"""Table 6: Parallax vs TF-PS under varying sparsity degree.

The paper constructs an LM variant whose alpha_model is controlled by the
number of words per data instance (length), and reports (words/sec):

    length  alpha   Parallax   TF-PS   speedup
    120     1.0     437k       214k    2.04x
    60      0.52    511k       219k    2.33x
    30      0.28    536k       221k    2.43x
    15      0.16    557k       193k    2.89x
    8       0.1     480k       159k    3.02x
    4       0.07    285k       94k     3.03x
    1       0.04    82k        24k     3.42x
"""

import pytest

from conftest import _mark_benchmark, fmt, plan_for, print_table
from repro.cluster.simulator import throughput
from repro.nn.profiles import TABLE6_ALPHA, constructed_lm_profile

PAPER = {
    120: (437_000, 214_000), 60: (511_000, 219_000), 30: (536_000, 221_000),
    15: (557_000, 193_000), 8: (480_000, 159_000), 4: (285_000, 94_000),
    1: (82_000, 24_000),
}
PARTITIONS = 64


def test_table6_rows(benchmark, paper_cluster):
    _mark_benchmark(benchmark)
    rows = []
    speedups = {}
    for length in sorted(TABLE6_ALPHA, reverse=True):
        profile = constructed_lm_profile(length)
        parallax = throughput(
            profile, plan_for("parallax", profile, PARTITIONS),
            paper_cluster)
        tf_ps = throughput(
            profile, plan_for("tf_ps", profile, PARTITIONS), paper_cluster)
        speedup = parallax / tf_ps
        speedups[length] = speedup
        paper_px, paper_ps = PAPER[length]
        rows.append([
            length,
            f"{TABLE6_ALPHA[length]:.2f}",
            f"{fmt(parallax)} ({fmt(paper_px)})",
            f"{fmt(tf_ps)} ({fmt(paper_ps)})",
            f"{speedup:.2f}x ({paper_px / paper_ps:.2f}x)",
        ])
        assert speedup > 1.0, f"length={length}"
    print_table("Table 6: sparsity-degree sweep (simulated (paper))",
                ["length", "alpha", "Parallax", "TF-PS", "speedup"], rows)

    # Shape: the Parallax advantage grows as alpha shrinks ("the biggest
    # speedup ... is 3.42 when alpha_model is minimum").  Length 120 is
    # excluded from the monotone chain: at alpha = 1 the hybrid rule
    # legitimately switches the embeddings to AllReduce (section 3.1's
    # near-dense refinement), which changes the mechanism.
    assert speedups[1] > speedups[60]
    ordered = [speedups[length] for length in (60, 30, 8, 1)]
    assert all(b >= a * 0.95 for a, b in zip(ordered, ordered[1:]))


def test_sparse_alpha_matches_paper_column(benchmark, paper_cluster):
    _mark_benchmark(benchmark)
    """Table 6's alpha column is the sparse-variable alpha (see
    repro.nn.profiles for why it cannot be the element-weighted one)."""
    for length, alpha in TABLE6_ALPHA.items():
        profile = constructed_lm_profile(length)
        for v in profile.sparse_variables:
            assert v.alpha == pytest.approx(alpha)


def test_absolute_throughput_rises_with_length(benchmark, paper_cluster):
    _mark_benchmark(benchmark)
    """More words per instance = more words per iteration; both systems'
    absolute words/sec peak at medium-to-long lengths, as in the paper."""
    profile_1 = constructed_lm_profile(1)
    profile_60 = constructed_lm_profile(60)
    t1 = throughput(profile_1, plan_for("parallax", profile_1, PARTITIONS),
                    paper_cluster)
    t60 = throughput(profile_60,
                     plan_for("parallax", profile_60, PARTITIONS),
                     paper_cluster)
    assert t60 > 3 * t1


def test_bench_constructed_lm(benchmark, paper_cluster):
    profile = constructed_lm_profile(30)
    plan = plan_for("parallax", profile, PARTITIONS)
    result = benchmark(throughput, profile, plan, paper_cluster)
    assert result > 0
