"""Table 3: per-machine network transfer closed forms.

The paper derives, for one variable of w bytes over N machines:

    type    arch   one variable      m variables
    dense   PS     2 w (N-1)         4 w m (N-1)/N
    dense   AR     4 w (N-1)/N       4 w m (N-1)/N
    sparse  PS     2 alpha w (N-1)   4 alpha w m (N-1)/N
    sparse  AR     2 alpha w (N-1)   2 alpha w m (N-1)

This bench regenerates the table two ways: from the *functional plane*
(executing real collectives/PS rounds and reading the byte transcript) and
checks the measured bytes against the formulas.
"""

import numpy as np
import pytest

from conftest import _mark_benchmark, print_table
from repro.comm import Transcript, ring_allgatherv, ring_allreduce
from repro.tensor.sparse import IndexedSlices

N = 4
W_ELEMENTS = 1200
ALPHA = 0.1
ROWS = 100
DIM = W_ELEMENTS // ROWS


def dense_ar_bytes_per_machine() -> float:
    arrays = [np.zeros(W_ELEMENTS, dtype=np.float32) for _ in range(N)]
    transcript = Transcript()
    ring_allreduce(arrays, machines=list(range(N)), transcript=transcript)
    loads = transcript.bytes_per_machine()
    return loads[0]["out"] + loads[0]["in"]


def sparse_ar_bytes_per_machine() -> float:
    rows = int(ALPHA * ROWS)
    contributions = [
        IndexedSlices(np.zeros((rows, DIM), np.float32),
                      list(range(rows)), (ROWS, DIM))
        for _ in range(N)
    ]
    transcript = Transcript()
    ring_allgatherv(contributions, machines=list(range(N)),
                    transcript=transcript)
    loads = transcript.bytes_per_machine("allgatherv")
    return loads[0]["out"] + loads[0]["in"]


def ps_bytes_server_machine(alpha: float) -> float:
    """PS round for one variable: N-1 remote pulls + N-1 remote pushes."""
    transcript = Transcript()
    payload = alpha * W_ELEMENTS * 4
    server = 0
    for m in range(1, N):
        transcript.record("pull", server, m, int(payload))
        transcript.record("push", m, server, int(payload))
    loads = transcript.bytes_per_machine()
    return loads[server]["out"] + loads[server]["in"]


def test_table3_one_variable(benchmark):
    _mark_benchmark(benchmark)
    w = W_ELEMENTS * 4
    measured = {
        ("dense", "PS"): ps_bytes_server_machine(1.0),
        ("dense", "AR"): dense_ar_bytes_per_machine(),
        ("sparse", "PS"): ps_bytes_server_machine(ALPHA),
        ("sparse", "AR"): sparse_ar_bytes_per_machine(),
    }
    expected = {
        ("dense", "PS"): 2 * w * (N - 1),
        ("dense", "AR"): 4 * w * (N - 1) / N,
        ("sparse", "PS"): 2 * ALPHA * w * (N - 1),
        ("sparse", "AR"): 2 * ALPHA * w * (N - 1),
    }
    rows = []
    for key in expected:
        rows.append([
            key[0], key[1],
            f"{measured[key]:,.0f}",
            f"{expected[key]:,.0f}",
        ])
        assert measured[key] == pytest.approx(expected[key], rel=0.02), key
    print_table(
        f"Table 3 (one variable, N={N}, w={w} bytes, alpha={ALPHA}): "
        "bytes per machine",
        ["type", "arch", "measured", "formula"], rows,
    )


def test_table3_sparse_ar_grows_with_n_ps_does_not(benchmark):
    _mark_benchmark(benchmark)
    """The scaling argument of section 3.1: AR sparse transfer grows
    linearly in N on *every* machine; PS concentrates it on one."""
    w = W_ELEMENTS * 4
    for n in (2, 4, 8):
        rows = int(ALPHA * ROWS)
        contributions = [
            IndexedSlices(np.zeros((rows, DIM), np.float32),
                          list(range(rows)), (ROWS, DIM))
            for _ in range(n)
        ]
        transcript = Transcript()
        ring_allgatherv(contributions, machines=list(range(n)),
                        transcript=transcript)
        per_machine = transcript.bytes_per_machine("allgatherv")[0]["out"]
        assert per_machine == pytest.approx(ALPHA * w * (n - 1), rel=0.02)


def test_table3_m_variables_ps_balanced(benchmark):
    _mark_benchmark(benchmark)
    """With m variables spread evenly, every machine carries
    4 w m (N-1)/N bytes under PS (the balanced-placement formula)."""
    m = 8
    w = W_ELEMENTS * 4
    transcript = Transcript()
    for v in range(m):
        server = v % N
        for machine in range(N):
            if machine == server:
                continue
            transcript.record("pull", server, machine, w)
            transcript.record("push", machine, server, w)
    loads = transcript.bytes_per_machine()
    expected = 4 * w * m * (N - 1) / N
    for machine in range(N):
        total = loads[machine]["out"] + loads[machine]["in"]
        assert total == pytest.approx(expected, rel=1e-6)


def test_bench_ring_allreduce(benchmark):
    arrays = [np.zeros(W_ELEMENTS, dtype=np.float32) for _ in range(N)]
    result = benchmark(ring_allreduce, arrays)
    assert len(result) == N
