"""Ablations of the design choices DESIGN.md calls out.

Not a paper table -- these sweeps probe the decisions behind the headline
results: local aggregation, smart placement, the sparse-as-dense alpha
threshold, and the partition sampling policy.
"""


import pytest

from conftest import _mark_benchmark, fmt, plan_for, print_table
from repro.cluster.simulator import simulate_iteration, throughput
from repro.cluster.spec import ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.core.partitioner import PartitionSearch, fit_cost_model
from repro.nn.profiles import ModelProfile, VariableProfile


class TestLocalAggregationAblation:
    def test_gain_grows_with_gpus_per_machine(self, benchmark, profiles, paper_cluster):
        _mark_benchmark(benchmark)
        """Local aggregation merges G per-machine gradients into one; its
        benefit should grow with G."""
        profile = profiles["lm"]
        gains = []
        for gpus in (2, 6):
            cluster = ClusterSpec(8, gpus)
            base = hybrid_plan(profile, 128, local_aggregation=False)
            opt = hybrid_plan(profile, 128, local_aggregation=True)
            t_base = throughput(profile, base, cluster)
            t_opt = throughput(profile, opt, cluster)
            gains.append(t_opt / t_base)
        print(f"\nlocal-agg gain: G=2 -> {gains[0]:.2f}x, "
              f"G=6 -> {gains[1]:.2f}x")
        assert gains[1] > gains[0] > 1.0


class TestSmartPlacementAblation:
    def test_placement_matters_more_without_local_agg(self, benchmark,
                                                      profiles,
                                                      paper_cluster):
        _mark_benchmark(benchmark)
        profile = profiles["nmt"]
        rows = []
        results = {}
        for local in (False, True):
            for smart in (False, True):
                plan = hybrid_plan(profile, 64, local_aggregation=local,
                                   smart_placement=smart)
                tp = throughput(profile, plan, paper_cluster)
                results[(local, smart)] = tp
                rows.append([local, smart, fmt(tp)])
        print_table("NMT hybrid: local_agg x smart_placement",
                    ["local_agg", "smart", "words/s"], rows)
        assert results[(True, True)] >= results[(False, False)]


class TestSparseAsDenseThreshold:
    def make_profile(self, alpha):
        variables = [
            VariableProfile("dense", 5_000_000),
            VariableProfile("emb", 20_000_000, is_sparse=True, alpha=alpha,
                            rows=100_000),
        ]
        return ModelProfile(name=f"thresh_{alpha}", variables=variables,
                            batch_per_gpu=64, units_per_sample=1,
                            unit="words", gpu_time_per_iter=0.08)

    def test_crossover_exists(self, benchmark, paper_cluster):
        _mark_benchmark(benchmark)
        """Below some alpha PS wins; near alpha = 1 AR wins -- the basis
        of the sparse_as_dense_threshold (paper section 3.1)."""
        rows = []
        wins = {}
        for alpha in (0.01, 0.1, 0.5, 0.99):
            profile = self.make_profile(alpha)
            ps_plan = hybrid_plan(profile, 32, sparse_as_dense_threshold=1.1)
            ar_plan = hybrid_plan(profile, 32, sparse_as_dense_threshold=0.0)
            ps = throughput(profile, ps_plan, paper_cluster)
            ar = throughput(profile, ar_plan, paper_cluster)
            wins[alpha] = "AR" if ar > ps else "PS"
            rows.append([alpha, fmt(ps), fmt(ar), wins[alpha]])
        print_table("sparse-as-dense crossover",
                    ["alpha", "as PS", "as AR (dense)", "winner"], rows)
        assert wins[0.01] == "PS"
        assert wins[0.99] == "AR"


class TestSamplingPolicyAblation:
    def test_bracket_beats_fixed_grid_on_sample_count(self, benchmark,
                                                      profiles,
                                                      paper_cluster):
        _mark_benchmark(benchmark)
        """The doubling/halving bracket uses fewer samples than a fixed
        power-of-two grid of the same range, with equal outcome quality."""
        profile = profiles["lm"]

        calls = []

        def measure(p):
            calls.append(p)
            plan = plan_for("parallax", profile, p)
            return simulate_iteration(profile, plan,
                                      paper_cluster).iteration_time

        search = PartitionSearch(measure, initial=8, max_partitions=1024)
        result = search.run()
        bracket_calls = len(calls)

        grid = [2 ** k for k in range(0, 11)]
        grid_samples = [(p, measure(p)) for p in grid]
        grid_best = min(grid_samples, key=lambda kv: kv[1])[0]

        print(f"\nbracket: {bracket_calls} samples -> "
              f"P={result.best_partitions}; grid: {len(grid)} samples -> "
              f"P={grid_best}")
        assert bracket_calls <= len(grid)
        assert measure(result.best_partitions) <= \
            1.05 * measure(grid_best)

    def test_fitted_model_interpolates_unsampled_points(self, benchmark,
                                                        profiles,
                                                        paper_cluster):
        _mark_benchmark(benchmark)
        profile = profiles["lm"]

        def measure(p):
            plan = plan_for("parallax", profile, p)
            return simulate_iteration(profile, plan,
                                      paper_cluster).iteration_time

        samples = [(p, measure(p)) for p in (8, 16, 32, 64, 128, 256)]
        model = fit_cost_model(samples)
        for p in (24, 96, 192):
            predicted = model.predict(p)
            actual = measure(p)
            assert predicted == pytest.approx(actual, rel=0.25)


def test_bench_ablation_grid(benchmark, profiles, paper_cluster):
    profile = profiles["nmt"]

    def grid():
        out = []
        for local in (False, True):
            plan = hybrid_plan(profile, 64, local_aggregation=local)
            out.append(throughput(profile, plan, paper_cluster))
        return out

    values = benchmark(grid)
    assert len(values) == 2


class TestFusionBufferAblation:
    """Tensor-fusion buffer cap vs iteration time (the tentpole's
    performance plane): per-collective launch latency makes many small
    buckets slow, while one giant bucket forfeits nothing at this scale
    -- the sweep the paper-era Horovod fusion knob trades over."""

    def test_iteration_time_tracks_bucket_count(self, benchmark,
                                                profiles, paper_cluster):
        _mark_benchmark(benchmark)
        from repro.baselines import horovod_plan
        from repro.cluster.costmodel import CostModel

        profile = profiles["resnet50"]
        cost = CostModel(ar_overlap=0.0)  # expose the launch term
        rows = []
        results = []
        for cap_mb in (0.0, 1.0, 4.0, 16.0, 64.0):
            plan = horovod_plan(profile).with_fusion(cap_mb)
            b = simulate_iteration(profile, plan, paper_cluster, cost)
            results.append((b.num_ar_buckets, b.iteration_time))
            rows.append([cap_mb, b.num_ar_buckets,
                         fmt(b.allreduce_time * 1e3),
                         fmt(b.iteration_time * 1e3)])
        print_table("ResNet-50 AllReduce fusion-buffer sweep",
                    ["buffer MB", "buckets", "AR ms", "iter ms"], rows)
        buckets = [r[0] for r in results]
        times = [r[1] for r in results]
        assert buckets == sorted(buckets, reverse=True)
        assert times == sorted(times, reverse=True)
        # The gap between unfused and fully fused is at least the launch
        # latency the extra collectives pay.
        assert times[0] - times[-1] >= (
            cost.c_collective_launch * (buckets[0] - buckets[-1]))
