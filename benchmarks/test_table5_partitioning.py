"""Table 5: Parallax's partition search vs Min and brute-force Optimal.

Paper values (words/sec, 48 GPUs):

    model   Parallax   Min       Optimal
    LM      274k       96.5k     260.3k
    NMT     204k       124.1k    208k

plus the search-cost claim: Parallax needs at most ~5 sampled partition
counts where brute force needs 50+ runs.
"""


from conftest import _mark_benchmark, fmt, plan_for, print_table
from repro.cluster.simulator import simulate_iteration
from repro.core.partitioner import PartitionSearch, brute_force_search

PAPER = {
    "lm": {"parallax": 274_000, "min": 96_500, "optimal": 260_300},
    "nmt": {"parallax": 204_000, "min": 124_100, "optimal": 208_000},
}
# Paper: smallest feasible partition counts without OOM.
MIN_PARTITIONS = {"lm": 4, "nmt": 2}


def make_measure(profile, cluster):
    def measure(p: int) -> float:
        plan = plan_for("parallax", profile, p)
        return simulate_iteration(profile, plan, cluster).iteration_time

    return measure


def test_table5_rows(benchmark, profiles, paper_cluster):
    _mark_benchmark(benchmark)
    rows = []
    for name in ("lm", "nmt"):
        profile = profiles[name]
        measure = make_measure(profile, paper_cluster)
        units = profile.units_per_iteration(paper_cluster.total_gpus)

        search = PartitionSearch(measure,
                                 initial=paper_cluster.num_machines,
                                 min_partitions=MIN_PARTITIONS[name],
                                 max_partitions=1024)
        result = search.run()
        parallax_tp = units / measure(result.best_partitions)

        min_tp = units / measure(MIN_PARTITIONS[name])

        brute = brute_force_search(measure, MIN_PARTITIONS[name], 4096)
        optimal_tp = units / measure(brute.best_partitions)

        rows.append([
            name,
            f"{fmt(parallax_tp)} P={result.best_partitions} "
            f"({fmt(PAPER[name]['parallax'])})",
            f"{fmt(min_tp)} ({fmt(PAPER[name]['min'])})",
            f"{fmt(optimal_tp)} P={brute.best_partitions} "
            f"({fmt(PAPER[name]['optimal'])})",
            f"{result.num_samples} vs {brute.num_samples} samples",
        ])

        # Shape claims from section 6.5:
        # Parallax's choice beats Min substantially...
        assert parallax_tp > 1.3 * min_tp, name
        # ...is within 5% of the brute-force optimum...
        assert parallax_tp >= 0.95 * optimal_tp, name
        # ...with far fewer samples.
        assert result.num_samples <= brute.num_samples

    print_table("Table 5: partitioning methods (simulated (paper))",
                ["model", "Parallax", "Min", "Optimal", "search cost"],
                rows)


def test_lm_min_to_parallax_ratio(benchmark, profiles, paper_cluster):
    _mark_benchmark(benchmark)
    """Paper: 2.84x for LM, 1.64x for NMT (Min -> Parallax).  We assert
    the ordering (LM gains more) rather than the absolute ratios."""
    gains = {}
    for name in ("lm", "nmt"):
        profile = profiles[name]
        measure = make_measure(profile, paper_cluster)
        search = PartitionSearch(measure,
                                 initial=paper_cluster.num_machines,
                                 min_partitions=MIN_PARTITIONS[name],
                                 max_partitions=1024).run()
        gains[name] = measure(MIN_PARTITIONS[name]) / \
            measure(search.best_partitions)
    assert gains["lm"] > gains["nmt"] > 1.0


def test_bench_partition_search(benchmark, profiles, paper_cluster):
    profile = profiles["lm"]
    measure = make_measure(profile, paper_cluster)

    def run_search():
        return PartitionSearch(measure, initial=8,
                               max_partitions=1024).run()

    result = benchmark(run_search)
    assert result.best_partitions >= 8
