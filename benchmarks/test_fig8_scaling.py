"""Figure 8: training throughput vs machine count (1, 2, 4, 8 machines).

Paper values (throughput in thousands; images/s for the first two models,
words/s for LM and NMT):

    resnet50:    TF-PS 0.9/1.8/3.4/5.8  Horovod 1.1/2.1/4.1/7.6
                 Parallax 1.0/2.0/3.9/7.6
    inception:   TF-PS 0.7/1.3/2.1/3.8  Horovod 0.8/1.5/2.9/5.9
                 Parallax 0.8/1.5/2.9/5.8
    lm:          TF-PS 68.6/118/133/98.9  Horovod 47.2/46.5/45.5/45.5
                 Parallax 83.3/158/253/274
    nmt:         TF-PS 33.0/60.1/103/102  Horovod 37.5/47.3/59.3/68.3
                 Parallax 39.3/72.1/132/204
"""

import pytest

from conftest import _mark_benchmark, PAPER_PARTITIONS, fmt, plan_for, print_table
from repro.cluster.simulator import throughput
from repro.cluster.spec import ClusterSpec

MACHINES = (1, 2, 4, 8)
ARCHS = ("tf_ps", "horovod", "parallax")

PAPER = {
    "resnet50": {"tf_ps": [900, 1800, 3400, 5800],
                 "horovod": [1100, 2100, 4100, 7600],
                 "parallax": [1000, 2000, 3900, 7600]},
    "inception_v3": {"tf_ps": [700, 1300, 2100, 3800],
                     "horovod": [800, 1500, 2900, 5900],
                     "parallax": [800, 1500, 2900, 5800]},
    "lm": {"tf_ps": [68600, 118000, 133000, 98900],
           "horovod": [47200, 46500, 45500, 45500],
           "parallax": [83300, 158000, 253000, 274000]},
    "nmt": {"tf_ps": [33000, 60100, 103000, 102000],
            "horovod": [37500, 47300, 59300, 68300],
            "parallax": [39300, 72100, 132000, 204000]},
}


def scaling_curve(profile, arch, partitions):
    return [
        throughput(profile, plan_for(arch, profile, partitions),
                   ClusterSpec(n, 6))
        for n in MACHINES
    ]


@pytest.fixture(scope="module")
def curves(profiles):
    out = {}
    for name, profile in profiles.items():
        partitions = PAPER_PARTITIONS.get(name, 1)
        out[name] = {
            arch: scaling_curve(profile, arch, partitions)
            for arch in ARCHS
        }
    return out


def test_fig8_rows(benchmark, curves):
    _mark_benchmark(benchmark)
    rows = []
    for name, by_arch in curves.items():
        for arch in ARCHS:
            sim = "/".join(fmt(v) for v in by_arch[arch])
            paper = "/".join(fmt(v) for v in PAPER[name][arch])
            rows.append([name, arch, sim, paper])
    print_table("Figure 8: throughput at 1/2/4/8 machines",
                ["model", "framework", "simulated", "paper"], rows)


def test_parallax_wins_or_ties_everywhere(benchmark, curves):
    _mark_benchmark(benchmark)
    """Paper: 'Parallax always outperforms or gives performance equal to
    both TF-PS and Horovod.'"""
    for name, by_arch in curves.items():
        for i, n in enumerate(MACHINES):
            best_other = max(by_arch["tf_ps"][i], by_arch["horovod"][i])
            assert by_arch["parallax"][i] >= 0.98 * best_other, (name, n)


def test_dense_models_parallax_tracks_horovod(benchmark, curves):
    _mark_benchmark(benchmark)
    for name in ("resnet50", "inception_v3"):
        for i in range(len(MACHINES)):
            ratio = curves[name]["parallax"][i] / curves[name]["horovod"][i]
            assert ratio == pytest.approx(1.0, abs=0.02)


def test_sparse_models_48gpu_speedups(benchmark, curves):
    _mark_benchmark(benchmark)
    """Headline claims at 48 GPUs: Parallax is ~2.8x over TF-PS (LM) and
    ~2x (NMT); >= 4x over Horovod on LM.  We require the right order of
    magnitude (>= 1.5x and >= 3x respectively)."""
    lm = curves["lm"]
    nmt = curves["nmt"]
    assert lm["parallax"][-1] / lm["tf_ps"][-1] > 1.5
    assert lm["parallax"][-1] / lm["horovod"][-1] > 3.0
    assert nmt["parallax"][-1] / nmt["tf_ps"][-1] > 1.5
    assert nmt["parallax"][-1] / nmt["horovod"][-1] > 2.0


def test_horovod_lm_does_not_scale(benchmark, curves):
    _mark_benchmark(benchmark)
    lm = curves["lm"]["horovod"]
    assert max(lm) < 1.5 * lm[0]


def test_parallax_scales_monotonically(benchmark, curves):
    _mark_benchmark(benchmark)
    for name, by_arch in curves.items():
        values = by_arch["parallax"]
        assert values == sorted(values), name


def test_bench_scaling_sweep(benchmark, profiles):
    profile = profiles["lm"]

    def sweep():
        return scaling_curve(profile, "parallax", 128)

    values = benchmark(sweep)
    assert len(values) == len(MACHINES)
