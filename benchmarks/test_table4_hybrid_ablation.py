"""Table 4: architecture ablation AR / NaivePS / OptPS / HYB (48 GPUs).

Paper values (words/sec):

    model   AR      NaivePS   OptPS   HYB
    LM      45.5k   98.9k     250k    274k
    NMT     68.3k   102k      116k    204k
"""


from conftest import _mark_benchmark, PAPER_PARTITIONS, fmt, plan_for, print_table
from repro.cluster.simulator import throughput

PAPER = {
    "lm": {"horovod": 45_500, "tf_ps": 98_900, "opt_ps": 250_000,
           "parallax": 274_000},
    "nmt": {"horovod": 68_300, "tf_ps": 102_000, "opt_ps": 116_000,
            "parallax": 204_000},
}
ARCHS = ("horovod", "tf_ps", "opt_ps", "parallax")
LABELS = {"horovod": "AR", "tf_ps": "NaivePS", "opt_ps": "OptPS",
          "parallax": "HYB"}


def test_table4_rows(benchmark, profiles, paper_cluster):
    _mark_benchmark(benchmark)
    rows = []
    results = {}
    for name in ("lm", "nmt"):
        profile = profiles[name]
        partitions = PAPER_PARTITIONS[name]
        values = {
            arch: throughput(profile, plan_for(arch, profile, partitions),
                             paper_cluster)
            for arch in ARCHS
        }
        results[name] = values
        rows.append([name] + [
            f"{fmt(values[a])} ({fmt(PAPER[name][a])})" for a in ARCHS
        ])
    print_table("Table 4: architecture ablation, words/sec @48 GPUs "
                "(simulated (paper))",
                ["model"] + [LABELS[a] for a in ARCHS], rows)

    for name in ("lm", "nmt"):
        v = results[name]
        # Paper ordering: AR < NaivePS < OptPS <= HYB.
        assert v["horovod"] < v["tf_ps"] < v["opt_ps"], name
        assert v["parallax"] >= 0.99 * v["opt_ps"], name

    # The hybrid's extra gain over OptPS is bigger for NMT (balanced
    # dense/sparse mix) than for LM (99% sparse) -- paper section 6.4.
    lm_gain = results["lm"]["parallax"] / results["lm"]["opt_ps"]
    nmt_gain = results["nmt"]["parallax"] / results["nmt"]["opt_ps"]
    assert nmt_gain > lm_gain


def test_optimization_attribution(benchmark, profiles, paper_cluster):
    _mark_benchmark(benchmark)
    """OptPS = local aggregation + smart placement; check both help."""
    from repro.baselines.tf_ps import tf_ps_plan
    from dataclasses import replace

    profile = profiles["lm"]
    base = tf_ps_plan(profile, 128)
    with_local = replace(base, local_aggregation=True)
    with_both = replace(base, local_aggregation=True, smart_placement=True)
    t_base = throughput(profile, base, paper_cluster)
    t_local = throughput(profile, with_local, paper_cluster)
    t_both = throughput(profile, with_both, paper_cluster)
    print(f"\nLM OptPS attribution: naive={fmt(t_base)} "
          f"+local_agg={fmt(t_local)} +smart={fmt(t_both)}")
    assert t_local > t_base
    assert t_both >= t_local


def test_bench_hybrid_iteration(benchmark, profiles, paper_cluster):
    profile = profiles["nmt"]
    plan = plan_for("parallax", profile, 64)
    result = benchmark(throughput, profile, plan, paper_cluster)
    assert result > 0
