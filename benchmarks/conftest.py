"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure from the
paper's evaluation (section 6).  Benches print the reproduced rows next to
the published numbers and assert the *shape* claims (who wins, where
crossovers fall); pytest-benchmark times the underlying simulation or
functional iteration.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from typing import Iterable, Sequence

import pytest

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.spec import PAPER_CLUSTER
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import PAPER_PROFILES

# Partition counts the paper uses for the sparse models at 48 GPUs.
PAPER_PARTITIONS = {"lm": 128, "nmt": 64}


def plan_for(kind: str, profile, partitions: int = 1):
    builders = {
        "tf_ps": lambda: tf_ps_plan(profile, partitions),
        "horovod": lambda: horovod_plan(profile),
        "opt_ps": lambda: opt_ps_plan(profile, partitions),
        "parallax": lambda: hybrid_plan(profile, partitions),
    }
    return builders[kind]()


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value: float) -> str:
    if value >= 10_000:
        return f"{value / 1000:,.1f}k"
    return f"{value:,.1f}"


@pytest.fixture(scope="session")
def profiles():
    return PAPER_PROFILES()


@pytest.fixture(scope="session")
def paper_cluster():
    return PAPER_CLUSTER


def _mark_benchmark(benchmark) -> None:
    """Register a trivial timing so table-regeneration tests also run
    under ``--benchmark-only`` (pytest-benchmark skips tests that never
    touch the fixture).  Real timings come from the ``test_bench_*``
    tests in each file."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
