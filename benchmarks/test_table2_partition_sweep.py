"""Table 2: throughput vs number of sparse-variable partitions (PS).

Paper values (words/sec, 48 GPUs, PS architecture):

    model   P=8     P=16    P=32    P=64    P=128   P=256
    LM      50.5k   78.6k   96.5k   96.1k   98.9k   93.2k
    NMT     90.7k   97.0k   96.5k   101.6k  98.5k   100.0k
"""


from conftest import _mark_benchmark, fmt, plan_for, print_table
from repro.cluster.simulator import throughput

PARTITIONS = (8, 16, 32, 64, 128, 256)

PAPER = {
    "lm": {8: 50_500, 16: 78_600, 32: 96_500, 64: 96_100, 128: 98_900,
           256: 93_200},
    "nmt": {8: 90_700, 16: 97_000, 32: 96_500, 64: 101_600, 128: 98_500,
            256: 100_000},
}


def sweep(profile, cluster):
    return {
        p: throughput(profile, plan_for("tf_ps", profile, p), cluster)
        for p in PARTITIONS
    }


def test_table2_rows(benchmark, profiles, paper_cluster):
    _mark_benchmark(benchmark)
    rows = []
    sweeps = {}
    for name in ("lm", "nmt"):
        values = sweep(profiles[name], paper_cluster)
        sweeps[name] = values
        rows.append([name] + [
            f"{fmt(values[p])} ({fmt(PAPER[name][p])})" for p in PARTITIONS
        ])
    print_table(
        "Table 2: words/sec vs partition count (simulated (paper))",
        ["model"] + [f"P={p}" for p in PARTITIONS], rows,
    )

    lm = sweeps["lm"]
    # Shape: LM improves substantially from 8 to the optimum...
    assert max(lm.values()) > 1.4 * lm[8]
    # ...the optimum sits in the paper's 32-128 band...
    best = max(lm, key=lm.get)
    assert 32 <= best <= 128
    # ...and 256 partitions are worse than the optimum (theta2 kicks in).
    assert lm[256] < lm[best]
    # NMT is much flatter than LM (the paper's 1.12x vs 1.98x spread).
    nmt = sweeps["nmt"]
    lm_spread = max(lm.values()) / min(lm.values())
    nmt_spread = max(nmt.values()) / min(nmt.values())
    assert nmt_spread < lm_spread


def test_bench_partition_sweep_point(benchmark, profiles, paper_cluster):
    profile = profiles["lm"]
    result = benchmark(
        throughput, profile, plan_for("tf_ps", profile, 128), paper_cluster
    )
    assert result > 0
