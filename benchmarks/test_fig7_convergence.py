"""Figure 7: model convergence -- time to reach a target metric.

The paper's point: all three frameworks converge to the same quality
(synchronous training computes identical updates), so time-to-target is
throughput x identical iteration count.  Parallax reaches the targets
~1.5x before Horovod on ResNet-50, 2.6x/5.9x before TF-PS/Horovod on LM,
and 1.7x/2.3x on NMT.

This bench runs the *functional plane* to convergence on scaled-down
models (verifying the identical-trajectory premise for real), then maps
iteration counts to wall-clock with the paper-scale performance plane.
"""

import numpy as np
import pytest

from conftest import _mark_benchmark, PAPER_PARTITIONS, plan_for, print_table
from repro.cluster.simulator import simulate_iteration
from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import gradients
from repro.nn.models import build_lm, build_nmt, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer

FUNCTIONAL_CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)

GRAPH_PLANS = {
    "parallax": lambda g: hybrid_graph_plan(g),
    "tf_ps": lambda g: ps_graph_plan(g),
    "horovod": lambda g: ar_graph_plan(g),
}

# Paper speedup factors at the vertical target lines of Figure 7.
PAPER_SPEEDUP = {
    "resnet": {"horovod": 1.0, "tf_ps": 1.5},
    "lm": {"tf_ps": 2.6, "horovod": 5.9},
    "nmt": {"tf_ps": 1.7, "horovod": 2.3},
}


def prepare(builder, lr, **kwargs):
    model = builder(**kwargs)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(lr).update(gvs)
    return model


def iterations_to_target(make_model, target_loss, max_iters=80):
    """Train each architecture until mean loss crosses the target."""
    iters = {}
    trajectories = {}
    for arch, plan_fn in GRAPH_PLANS.items():
        model = make_model()
        runner = DistributedRunner(model, FUNCTIONAL_CLUSTER,
                                   plan_fn(model.graph), seed=5)
        losses = []
        hit = None
        for i in range(max_iters):
            losses.append(runner.step(i).mean_loss)
            if hit is None and losses[-1] <= target_loss:
                hit = i + 1
                break
        iters[arch] = hit
        trajectories[arch] = losses
    return iters, trajectories


def paper_scale_iteration_time(profile_name, arch, profiles):
    profile = profiles[profile_name]
    partitions = PAPER_PARTITIONS.get(profile_name, 1)
    plan = plan_for(arch, profile, partitions)
    cluster = ClusterSpec(8, 6)
    return simulate_iteration(profile, plan, cluster).iteration_time


@pytest.mark.parametrize("case,make_model,target,profile_name", [
    ("resnet",
     lambda: prepare(build_resnet, 0.1, batch_size=8, num_features=16,
                     num_classes=4, width=16, num_blocks=1, seed=0),
     1.0, "resnet50"),
    ("lm",
     lambda: prepare(build_lm, 0.8, batch_size=8, vocab_size=40, seq_len=3,
                     emb_dim=10, hidden=12, num_partitions=2, seed=0),
     3.55, "lm"),
    ("nmt",
     lambda: prepare(build_nmt, 0.8, batch_size=8, src_vocab=30,
                     tgt_vocab=30, src_len=2, tgt_len=2, emb_dim=8,
                     hidden=8, num_partitions=2, seed=0),
     3.2, "nmt"),
])
def test_fig7_case(benchmark, case, make_model, target, profile_name, profiles):
    _mark_benchmark(benchmark)
    iters, trajectories = iterations_to_target(make_model, target)

    # Premise: all frameworks need the same number of iterations (they
    # compute identical synchronous updates).
    counts = set(iters.values())
    assert None not in counts, f"{case}: did not converge {iters}"
    assert len(counts) == 1, f"{case}: iteration counts differ {iters}"
    iterations = counts.pop()

    # Wall-clock at paper scale = iterations x simulated iteration time.
    times = {
        arch: iterations * paper_scale_iteration_time(profile_name, arch,
                                                      profiles)
        for arch in GRAPH_PLANS
    }
    rows = [
        [arch, iterations, f"{times[arch] / 60:.1f} min",
         f"{times[arch] / times['parallax']:.2f}x"]
        for arch in ("parallax", "tf_ps", "horovod")
    ]
    print_table(f"Figure 7 ({case}): time to target loss {target}",
                ["framework", "iterations", "time", "vs parallax"], rows)

    # Parallax converges first (or ties Horovod on the dense model).
    slack = 1.02 if case == "resnet" else 1.0
    assert times["parallax"] <= times["tf_ps"] * slack
    assert times["parallax"] <= times["horovod"] * slack


def test_identical_loss_trajectories(benchmark):
    _mark_benchmark(benchmark)
    """Stronger than Fig 7 needs: per-iteration losses match exactly."""
    make_model = lambda: prepare(  # noqa: E731
        build_lm, 0.5, batch_size=4, vocab_size=30, seq_len=2, emb_dim=6,
        hidden=8, num_partitions=2, seed=0)
    trajectories = {}
    for arch, plan_fn in GRAPH_PLANS.items():
        model = make_model()
        runner = DistributedRunner(model, FUNCTIONAL_CLUSTER,
                                   plan_fn(model.graph), seed=5)
        trajectories[arch] = [runner.step(i).mean_loss for i in range(5)]
    base = trajectories["parallax"]
    for arch, losses in trajectories.items():
        np.testing.assert_allclose(losses, base, rtol=1e-4, err_msg=arch)


def test_bench_functional_step(benchmark):
    model = prepare(build_lm, 0.5, batch_size=4, vocab_size=30, seq_len=2,
                    emb_dim=6, hidden=8, num_partitions=2, seed=0)
    runner = DistributedRunner(model, FUNCTIONAL_CLUSTER,
                               hybrid_graph_plan(model.graph), seed=5)
    counter = iter(range(10 ** 9))

    def step():
        return runner.step(next(counter))

    result = benchmark(step)
    assert result.mean_loss > 0
