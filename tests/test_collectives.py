"""Ring AllReduce / AllGatherv: correctness and transfer accounting."""

import numpy as np
import pytest

from repro.comm import Transcript, ring_allgatherv, ring_allreduce
from repro.comm.allreduce import chunk_bounds, ring_allreduce_mean
from repro.tensor.sparse import IndexedSlices


RNG = np.random.default_rng(0)


class TestChunkBounds:
    def test_even(self):
        assert chunk_bounds(12, 4) == [0, 3, 6, 9, 12]

    def test_remainder_front_loaded(self):
        assert chunk_bounds(10, 4) == [0, 3, 6, 8, 10]

    def test_more_chunks_than_elements(self):
        bounds = chunk_bounds(2, 4)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert len(bounds) == 5


class TestRingAllReduce:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
    def test_equals_sum(self, n):
        arrays = [RNG.standard_normal((5, 3)).astype(np.float32)
                  for _ in range(n)]
        results = ring_allreduce(arrays)
        expected = np.sum(arrays, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected, rtol=1e-5, atol=1e-6)

    def test_all_copies_bit_identical(self):
        arrays = [RNG.standard_normal(17).astype(np.float32)
                  for _ in range(5)]
        results = ring_allreduce(arrays)
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])

    def test_small_array_fewer_elements_than_workers(self):
        arrays = [np.array([float(i)], dtype=np.float32) for i in range(6)]
        results = ring_allreduce(arrays)
        for r in results:
            np.testing.assert_allclose(r, [15.0])

    def test_mean_variant(self):
        arrays = [np.full(4, float(i), dtype=np.float32) for i in range(4)]
        results = ring_allreduce_mean(arrays)
        np.testing.assert_allclose(results[0], np.full(4, 1.5))

    def test_inputs_not_mutated(self):
        arrays = [np.ones(4, dtype=np.float32) for _ in range(3)]
        ring_allreduce(arrays)
        for a in arrays:
            np.testing.assert_array_equal(a, np.ones(4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_machines_length_checked(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3)] * 3, machines=[0, 1])

    def test_per_worker_bytes_match_ring_formula(self):
        """Each worker sends 2(N-1) chunks of ~w/N bytes (paper sec 3.1)."""
        n = 4
        elements = 64
        arrays = [np.zeros(elements, dtype=np.float32) for _ in range(n)]
        transcript = Transcript()
        # One worker per machine so every hop is a network transfer.
        ring_allreduce(arrays, machines=list(range(n)),
                       transcript=transcript)
        w = elements * 4
        expected_per_worker = 2 * (n - 1) * w / n
        loads = transcript.bytes_per_machine()
        for m in range(n):
            assert loads[m]["out"] == pytest.approx(expected_per_worker)
            assert loads[m]["in"] == pytest.approx(expected_per_worker)

    def test_intra_machine_hops_cost_nothing(self):
        arrays = [np.zeros(16, dtype=np.float32) for _ in range(4)]
        transcript = Transcript()
        ring_allreduce(arrays, machines=[0, 0, 0, 0], transcript=transcript)
        assert transcript.total_network_bytes() == 0

    def test_stage_count(self):
        """2(N-1) ring steps produce 2(N-1) distinct stages."""
        n = 5
        arrays = [np.zeros(20, dtype=np.float32) for _ in range(n)]
        transcript = Transcript()
        ring_allreduce(arrays, machines=list(range(n)), transcript=transcript)
        stages = {t.stage for t in transcript.transfers}
        assert stages == set(range(2 * (n - 1)))


class TestRingAllGatherv:
    def make_slices(self, n, rows_each=2, dim=3, dense_rows=20):
        return [
            IndexedSlices(
                RNG.standard_normal((rows_each, dim)).astype(np.float32),
                RNG.integers(0, dense_rows, size=rows_each),
                (dense_rows, dim),
            )
            for _ in range(n)
        ]

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_concatenates_in_worker_order(self, n):
        contributions = self.make_slices(n)
        results = ring_allgatherv(contributions)
        expected_indices = np.concatenate([c.indices for c in contributions])
        for r in results:
            np.testing.assert_array_equal(r.indices, expected_indices)

    def test_all_copies_identical(self):
        results = ring_allgatherv(self.make_slices(4))
        for r in results[1:]:
            assert r == results[0]

    def test_dense_equivalent_is_sum(self):
        contributions = self.make_slices(4)
        result = ring_allgatherv(contributions)[0]
        expected = np.sum([c.to_dense() for c in contributions], axis=0)
        np.testing.assert_allclose(result.to_dense(), expected,
                                   rtol=1e-5, atol=1e-6)

    def test_variable_length_contributions(self):
        contributions = [
            IndexedSlices(np.ones((k + 1, 2), np.float32),
                          list(range(k + 1)), (10, 2))
            for k in range(3)
        ]
        result = ring_allgatherv(contributions)[0]
        assert result.num_rows == 1 + 2 + 3

    def test_duplicates_not_combined(self):
        """AllGatherv is pure concatenation (the consumer combines)."""
        contributions = [
            IndexedSlices(np.ones((1, 2), np.float32), [5], (10, 2))
            for _ in range(3)
        ]
        result = ring_allgatherv(contributions)[0]
        assert result.num_rows == 3

    def test_per_machine_bytes_match_formula(self):
        """Each machine sends/receives (N-1) * alpha*w bytes (Table 3)."""
        n = 4
        rows, dim, dense_rows = 3, 5, 100
        contributions = [
            IndexedSlices(np.zeros((rows, dim), np.float32),
                          [0, 1, 2], (dense_rows, dim))
            for _ in range(n)
        ]
        transcript = Transcript()
        ring_allgatherv(contributions, machines=list(range(n)),
                        transcript=transcript)
        alpha_w = rows * dim * 4
        loads = transcript.bytes_per_machine(tag_prefix="allgatherv")
        for m in range(n):
            assert loads[m]["out"] == (n - 1) * alpha_w
            assert loads[m]["in"] == (n - 1) * alpha_w

    def test_index_bytes_tracked_separately(self):
        contributions = self.make_slices(3)
        transcript = Transcript()
        ring_allgatherv(contributions, machines=[0, 1, 2],
                        transcript=transcript)
        idx_bytes = transcript.total_network_bytes("idx:allgatherv")
        assert idx_bytes == 2 * sum(c.index_nbytes for c in contributions)

    def test_shape_mismatch_rejected(self):
        a = IndexedSlices(np.zeros((1, 2), np.float32), [0], (10, 2))
        b = IndexedSlices(np.zeros((1, 2), np.float32), [0], (20, 2))
        with pytest.raises(ValueError):
            ring_allgatherv([a, b])


class TestTranscript:
    def test_zero_byte_transfers_dropped(self):
        t = Transcript()
        t.record("x", 0, 1, 0)
        assert len(t) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Transcript().record("x", 0, 1, -5)

    def test_intra_machine_excluded_from_network(self):
        t = Transcript()
        t.record("x", 0, 0, 100)
        t.record("x", 0, 1, 50)
        assert t.total_network_bytes() == 50
        assert len(t.filter(network_only=False)) == 2

    def test_tag_prefix_filter(self):
        t = Transcript()
        t.record("pull/a", 0, 1, 10)
        t.record("push/a", 1, 0, 20)
        assert t.total_network_bytes("pull") == 10

    def test_max_machine_bytes(self):
        t = Transcript()
        t.record("x", 0, 1, 100)
        t.record("x", 0, 2, 100)
        # machine 0 carries 200 out; the hot spot metric sees it
        assert t.max_machine_bytes() == 200

    def test_clear(self):
        t = Transcript()
        t.record("x", 0, 1, 10)
        t.clear()
        assert len(t) == 0
