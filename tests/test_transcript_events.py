"""The Transcript ``Note``/``events()`` plane.

Covers the satellite contract: notes survive rescales, fused buckets
plus elastic recovery record the expected event sequence on the shared
timeline, and per-worker transcripts merge deterministically.
"""


from repro.cluster.faults import FaultPlan, WorkerFailure
from repro.cluster.spec import ClusterSpec
from repro.comm.transcript import Note, Transcript, merge_transcripts
from repro.core.elastic import ElasticRunner
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import hybrid_graph_plan
from repro.graph.gradients import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

SEED = 5
C4 = ClusterSpec(num_machines=2, gpus_per_machine=2)
C2 = ClusterSpec(num_machines=1, gpus_per_machine=2)
C2x1 = ClusterSpec(num_machines=2, gpus_per_machine=1)


def make_model():
    model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                     hidden=10, num_partitions=3, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.4).update(gvs)
    return model


def make_elastic(cluster=C4, fused=True, **kwargs):
    model = make_model()
    plan = hybrid_graph_plan(model.graph, fusion=fused)
    return ElasticRunner(model, cluster, plan, seed=SEED, **kwargs)


class TestNotePlane:
    def test_note_round_trip_and_get_default(self):
        t = Transcript()
        t.note("custom/tag", iteration=7, worker=1, why="test")
        (event,) = t.events()
        assert event.tag == "custom/tag"
        assert event.iteration == 7
        assert event.get("worker") == 1
        assert event.get("missing", "fallback") == "fallback"

    def test_events_prefix_filter(self):
        t = Transcript()
        t.note("fault/worker_kill", iteration=1, worker=0)
        t.note("elastic/rescale", iteration=2)
        assert [e.tag for e in t.events("fault/")] == ["fault/worker_kill"]
        assert len(t.events()) == 2

    def test_notes_are_hashable_and_comparable(self):
        a = Note("x", 1, (("k", 2),))
        b = Note("x", 1, (("k", 2),))
        assert a == b and len({a, b}) == 1

    def test_clear_drops_events(self):
        t = Transcript()
        t.note("x", iteration=0)
        t.clear()
        assert t.events() == []


class TestNotesSurviveRescale:
    def test_pre_rescale_notes_survive_and_rescale_appends(self):
        runner = make_elastic()
        runner.transcript.note("custom/marker", iteration=0, payload=42)
        runner.step(0)
        runner.rescale(C2)
        tags = [e.tag for e in runner.transcript.events()]
        assert "custom/marker" in tags
        assert tags[-1] == "elastic/rescale"
        rescale = runner.transcript.events("elastic/rescale")[-1]
        assert rescale.get("old_replicas") == 4
        assert rescale.get("new_replicas") == 2
        assert rescale.get("wall_time") > 0

    def test_notes_survive_multiproc_rescale(self):
        runner = make_elastic(backend="multiproc")
        try:
            runner.transcript.note("custom/marker", iteration=0)
            runner.step(0)
            runner.rescale(C2)
            runner.step(1)
            tags = [e.tag for e in runner.transcript.events()]
            assert "custom/marker" in tags
            assert "elastic/rescale" in tags
        finally:
            runner.close()


class TestFusedRecoveryEventSequence:
    def test_kill_then_recovery_sequence_with_fused_buckets(self):
        """A fused run through a worker kill records exactly the expected
        event order -- kill first, recovery next -- on the same timeline
        as the fused collective's transfers."""
        fault_plan = FaultPlan(failures=(WorkerFailure(2, worker=1),))
        runner = make_elastic(fused=True, fault_plan=fault_plan,
                              checkpoint_every=1)
        results = runner.run_elastic(4)
        assert len(results) == 4

        events = runner.transcript.events()
        tags = [e.tag for e in events]
        assert tags == ["fault/worker_kill", "elastic/recovery"]
        kill, recovery = events
        assert kill.iteration == 2 and kill.get("worker") == 1
        assert recovery.iteration == 2
        assert recovery.get("action") == "restore"
        assert recovery.get("lost_iterations") == 0

        # Fused buckets really ran: packed collectives in the byte plane.
        fused = runner.transcript.filter("allreduce/fused/",
                                         network_only=False)
        assert fused, "expected fused bucket transfers alongside the events"

    def test_shrink_recovery_emits_rescale_between_kill_and_recovery(self):
        fault_plan = FaultPlan(failures=(WorkerFailure(1, worker=0),))
        runner = make_elastic(fused=True, fault_plan=fault_plan,
                              checkpoint_every=1)
        runner.run_elastic(3, shrink_on_failure=True)
        tags = [e.tag for e in runner.transcript.events()]
        assert tags == ["fault/worker_kill", "elastic/rescale",
                        "elastic/recovery"]
        assert runner.transcript.events("elastic/recovery")[0].get(
            "action") == "shrink"

    def test_fault_free_fused_run_has_no_events(self):
        runner = make_elastic(fused=True)
        runner.run_elastic(3)
        assert runner.transcript.events() == []


class TestPerWorkerMerge:
    def test_merge_is_pure_function_of_inputs(self):
        def part(rank):
            t = Transcript()
            t.record(f"allreduce/g{rank}", rank, (rank + 1) % 2, 64,
                     stage=rank)
            t.note("worker/mark", iteration=rank, rank=rank)
            return t

        parts = [part(0), part(1)]
        first = merge_transcripts(parts)
        second = merge_transcripts(parts)
        assert first.transfers == second.transfers
        assert first.events() == second.events()
        # Rank-major order, internal order preserved.
        assert [e.get("rank") for e in first.events()] == [0, 1]

    def test_multiproc_merge_is_reproducible_across_runs(self):
        """Two identical multiproc runs merge to identical transcripts --
        worker deltas arrive in rank order, not arrival order."""

        def one_run():
            model = make_model()
            runner = DistributedRunner(
                model, C2x1, hybrid_graph_plan(model.graph, fusion=True),
                seed=SEED, backend="multiproc")
            try:
                runner.step(0)
                return runner.transcript.transfers
            finally:
                runner.close()

        assert one_run() == one_run()

    def test_multiproc_merge_matches_inproc_aggregates(self):
        model = make_model()
        inproc = DistributedRunner(
            model, C2x1, hybrid_graph_plan(model.graph, fusion=True),
            seed=SEED)
        inproc.step(0)
        model2 = make_model()
        multiproc = DistributedRunner(
            model2, C2x1, hybrid_graph_plan(model2.graph, fusion=True),
            seed=SEED, backend="multiproc")
        try:
            multiproc.step(0)
            for prefix in (None, "allreduce", "edge/"):
                assert (multiproc.transcript.total_network_bytes(prefix)
                        == inproc.transcript.total_network_bytes(prefix))
            assert multiproc.transcript.transfers, "expected transfers"
        finally:
            multiproc.close()
