"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.allreduce import chunk_bounds, ring_allreduce
from repro.comm.allgatherv import ring_allgatherv
from repro.comm.ps import place_variables
from repro.cluster.network import Flow, maxmin_rates
from repro.core.partitioner import PartitionCostModel, fit_cost_model
from repro.graph.variables import partition_offsets
from repro.tensor.sparse import IndexedSlices, concat_slices


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def slices_strategy(dense_rows=12, dim=3, max_rows=6):
    return st.builds(
        lambda idx, seed: IndexedSlices(
            np.random.default_rng(seed)
            .standard_normal((len(idx), dim)).astype(np.float32),
            np.array(idx, dtype=np.int64),
            (dense_rows, dim),
        ),
        st.lists(st.integers(0, dense_rows - 1), min_size=0,
                 max_size=max_rows),
        st.integers(0, 2 ** 16),
    )


# ----------------------------------------------------------------------
# IndexedSlices invariants
# ----------------------------------------------------------------------
@given(slices_strategy())
def test_combine_preserves_dense_value(sl):
    np.testing.assert_allclose(sl.combine().to_dense(), sl.to_dense(),
                               rtol=1e-4, atol=1e-5)


@given(slices_strategy())
def test_combine_yields_unique_sorted_indices(sl):
    combined = sl.combine()
    idx = combined.indices
    assert len(set(idx.tolist())) == len(idx)
    assert np.all(np.diff(idx) > 0) or idx.size <= 1


@given(st.lists(slices_strategy(), min_size=1, max_size=4))
def test_concat_dense_equals_sum(parts):
    expected = np.sum([p.to_dense() for p in parts], axis=0)
    np.testing.assert_allclose(concat_slices(parts).to_dense(), expected,
                               rtol=1e-4, atol=1e-5)


@given(slices_strategy(), st.integers(1, 12))
def test_row_partitions_cover_exactly(sl, num_parts):
    offsets = partition_offsets(sl.dense_shape[0], min(num_parts,
                                                       sl.dense_shape[0]))
    total_rows = 0
    rebuilt = np.zeros(sl.dense_shape, dtype=np.float32)
    for lo, hi in zip(offsets[:-1], offsets[1:]):
        part = sl.slice_rows(lo, hi)
        total_rows += part.num_rows
        rebuilt[lo:hi] += part.to_dense()
    assert total_rows == sl.num_rows
    np.testing.assert_allclose(rebuilt, sl.to_dense(), rtol=1e-4, atol=1e-5)


# ----------------------------------------------------------------------
# Partitioning / chunking invariants
# ----------------------------------------------------------------------
@given(st.integers(1, 500), st.integers(1, 64))
def test_partition_offsets_cover_and_balance(rows, parts):
    parts = min(parts, rows)
    offsets = partition_offsets(rows, parts)
    sizes = np.diff(offsets)
    assert offsets[0] == 0 and offsets[-1] == rows
    assert len(sizes) == parts
    assert sizes.max() - sizes.min() <= 1


@given(st.integers(0, 1000), st.integers(1, 32))
def test_chunk_bounds_monotone_cover(size, chunks):
    bounds = chunk_bounds(size, chunks)
    assert bounds[0] == 0 and bounds[-1] == size
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))


# ----------------------------------------------------------------------
# Collectives
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(1, 40), st.integers(0, 2 ** 16))
def test_ring_allreduce_equals_sum(workers, elements, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(elements).astype(np.float32)
              for _ in range(workers)]
    results = ring_allreduce(arrays)
    expected = np.sum(arrays, axis=0)
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-4, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.lists(slices_strategy(), min_size=1, max_size=5))
def test_allgatherv_copies_identical_and_complete(parts):
    results = ring_allgatherv(parts)
    total_rows = sum(p.num_rows for p in parts)
    for r in results:
        assert r.num_rows == total_rows
        assert r == results[0]


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 10 ** 6)), min_size=0,
                max_size=30),
       st.integers(1, 8))
def test_place_variables_greedy_bound(size_tuples, servers):
    sizes = [(f"v{i}", s[0]) for i, s in enumerate(size_tuples)]
    placement = place_variables(sizes, servers)
    loads = [0] * servers
    for name, size in sizes:
        loads[placement[name]] += size
    total = sum(s for _, s in sizes)
    biggest = max((s for _, s in sizes), default=0)
    # Classic greedy (LPT) bound: max load <= total/servers + biggest.
    assert max(loads, default=0) <= total / servers + biggest + 1e-9


# ----------------------------------------------------------------------
# Network fairness
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                min_size=1, max_size=10))
def test_maxmin_rates_respect_capacities(pairs):
    flows = [Flow(src, dst, 100.0) for src, dst in pairs if src != dst]
    if not flows:
        return
    machines = {f.src for f in flows} | {f.dst for f in flows}
    capacity = {}
    for m in machines:
        capacity[("out", m)] = 10.0
        capacity[("in", m)] = 10.0
    rates = maxmin_rates(flows, capacity)
    assert all(r > 0 for r in rates)
    usage = {}
    for f, r in zip(flows, rates):
        for res in f.resources():
            usage[res] = usage.get(res, 0.0) + r
    for res, used in usage.items():
        assert used <= capacity[res] * (1 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=2, max_size=8))
def test_maxmin_no_flow_starves(pairs):
    """Max-min fairness: every flow gets at least the equal share of its
    most contended resource."""
    flows = [Flow(src, dst, 100.0) for src, dst in pairs if src != dst]
    if not flows:
        return
    machines = {f.src for f in flows} | {f.dst for f in flows}
    capacity = {}
    for m in machines:
        capacity[("out", m)] = 8.0
        capacity[("in", m)] = 8.0
    rates = maxmin_rates(flows, capacity)
    for f, r in zip(flows, rates):
        worst_share = min(
            capacity[res] / sum(1 for g in flows if res in g.resources())
            for res in f.resources()
        )
        assert r >= worst_share - 1e-9


# ----------------------------------------------------------------------
# Equation-1 fitting
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.floats(0.01, 5.0), st.floats(0.1, 100.0), st.floats(1e-4, 0.5))
def test_fit_recovers_exact_equation1(theta0, theta1, theta2):
    samples = [(p, theta0 + theta1 / p + theta2 * p)
               for p in (1, 2, 4, 8, 16, 32)]
    model = fit_cost_model(samples)
    for p in (3, 6, 24):
        expected = theta0 + theta1 / p + theta2 * p
        assert abs(model.predict(p) - expected) <= 1e-6 + 1e-6 * expected


@settings(max_examples=40, deadline=None)
@given(st.floats(0.1, 100.0), st.floats(1e-4, 0.5),
       st.integers(1, 64), st.integers(65, 4096))
def test_best_partitions_within_range_and_optimal(theta1, theta2, lo, hi):
    model = PartitionCostModel(1.0, theta1, theta2)
    best = model.best_partitions(lo, hi)
    assert lo <= best <= hi
    for candidate in (lo, hi, max(lo, min(hi, best - 1)),
                      max(lo, min(hi, best + 1))):
        assert model.predict(best) <= model.predict(candidate) + 1e-9


# ----------------------------------------------------------------------
# Fused AllReduce packing layout
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 40), min_size=1, max_size=8),
       st.integers(1, 8))
def test_fused_segment_layout_is_bijection(sizes, workers):
    from repro.comm.allreduce import fused_segment_layout

    perm, inv_perm, bounds = fused_segment_layout(sizes, workers)
    total = sum(sizes)
    # The permutation is a bijection over the packed buffer...
    assert perm.size == total
    assert sorted(perm.tolist()) == list(range(total))
    # ...its inverse really inverts it...
    np.testing.assert_array_equal(perm[inv_perm], np.arange(total))
    np.testing.assert_array_equal(inv_perm[perm], np.arange(total))
    # ...and the fused chunk bounds cover the buffer monotonically.
    assert bounds[0] == 0 and bounds[-1] == total
    assert all(lo <= hi for lo, hi in zip(bounds, bounds[1:]))
    assert len(bounds) == workers + 1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 30), min_size=1, max_size=6),
       st.integers(2, 6), st.integers(0, 2 ** 16))
def test_fused_layout_chunks_group_per_segment_chunks(sizes, workers, seed):
    """Bytes are conserved chunk-for-chunk: fused chunk c holds exactly
    the elements of every segment's own chunk c (the bit-identity basis)."""
    from repro.comm.allreduce import chunk_bounds, fused_segment_layout

    perm, _, bounds = fused_segment_layout(sizes, workers)
    rng = np.random.default_rng(seed)
    segments = [rng.standard_normal(s).astype(np.float32) for s in sizes]
    packed = np.concatenate(segments)[perm] if sum(sizes) else np.zeros(0)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    for c in range(workers):
        fused_chunk = packed[bounds[c]:bounds[c + 1]]
        expected = np.concatenate([
            seg[sb[c]:sb[c + 1]]
            for seg, sb in zip(segments,
                               [chunk_bounds(s, workers) for s in sizes])
        ]) if sizes else np.zeros(0)
        np.testing.assert_array_equal(fused_chunk, expected)
    # Total bytes conserved under the permutation.
    assert packed.nbytes == sum(s.nbytes for s in segments)


# ----------------------------------------------------------------------
# Sparse re-sharding (elastic rescale primitive)
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(1, 48), st.integers(1, 4), st.integers(1, 8),
       st.integers(1, 8), st.integers(0, 2 ** 16))
def test_reshard_round_trip_is_bit_exact(rows, dim, old_parts, new_parts,
                                         seed):
    from repro.comm.ps import merge_shards, split_rows

    old_parts = min(old_parts, rows)
    new_parts = min(new_parts, rows)
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((rows, dim)).astype(np.float32)
    old_offsets = partition_offsets(rows, old_parts)
    new_offsets = partition_offsets(rows, new_parts)

    old_shards = split_rows(full, old_offsets)
    # concat(shards) == original, bit for bit
    np.testing.assert_array_equal(merge_shards(old_shards), full)
    # bytes conserved across the split
    assert sum(s.nbytes for s in old_shards) == full.nbytes
    # re-shard to the new layout and back: still the original bits
    new_shards = split_rows(merge_shards(old_shards), new_offsets)
    assert [s.shape[0] for s in new_shards] == [
        hi - lo for lo, hi in zip(new_offsets, new_offsets[1:])
    ]
    np.testing.assert_array_equal(merge_shards(new_shards), full)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 40), st.integers(1, 3), st.integers(1, 6),
       st.integers(1, 6), st.integers(0, 2 ** 16))
def test_reshard_logical_state_conserves_parent(rows, dim, old_parts,
                                                new_parts, seed):
    from repro.core.elastic import reshard_logical_state

    old_parts = min(old_parts, rows)
    new_parts = min(new_parts, rows)
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((rows, dim)).astype(np.float32)
    vel = rng.standard_normal((rows, dim)).astype(np.float32)
    old_offsets = partition_offsets(rows, old_parts)
    new_offsets = partition_offsets(rows, new_parts)
    state = {}
    for p, (lo, hi) in enumerate(zip(old_offsets, old_offsets[1:])):
        state[f"emb/part_{p}"] = full[lo:hi].copy()
        state[f"emb/part_{p}/velocity"] = vel[lo:hi].copy()
        state[f"emb/part_{p}/adam_step"] = np.array([3.0], np.float32)
    state["dense"] = rng.standard_normal(4).astype(np.float32)

    out = reshard_logical_state(state, {"emb": old_offsets},
                                {"emb": new_offsets})
    merged = np.concatenate([out[f"emb/part_{p}"]
                             for p in range(new_parts)])
    merged_vel = np.concatenate([out[f"emb/part_{p}/velocity"]
                                 for p in range(new_parts)])
    np.testing.assert_array_equal(merged, full)
    np.testing.assert_array_equal(merged_vel, vel)
    for p in range(new_parts):
        np.testing.assert_array_equal(out[f"emb/part_{p}/adam_step"],
                                      [3.0])
    np.testing.assert_array_equal(out["dense"], state["dense"])
    # Bytes conserved overall (step counters replicate per shard).
    assert merged.nbytes + merged_vel.nbytes == full.nbytes + vel.nbytes
