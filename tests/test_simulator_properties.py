"""Property-style invariants of the performance simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.costmodel import CostModel
from repro.cluster.simulator import simulate_iteration, throughput
from repro.cluster.spec import ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import ModelProfile, VariableProfile


def profile_from(dense_m: float, sparse_m: float, alpha: float,
                 compute: float = 0.1) -> ModelProfile:
    variables = []
    if int(dense_m * 1e6) > 0:
        variables.append(
            VariableProfile("dense", int(dense_m * 1e6))
        )
    if int(sparse_m * 1e6) > 0:
        variables.append(
            VariableProfile("sparse", int(sparse_m * 1e6), is_sparse=True,
                            alpha=alpha, rows=max(1, int(sparse_m * 1e4)))
        )
    if not variables:
        variables.append(VariableProfile("dense", 1000))
    return ModelProfile(name="prop", variables=variables, batch_per_gpu=32,
                        units_per_sample=1, unit="words",
                        gpu_time_per_iter=compute)


@settings(max_examples=25, deadline=None)
@given(st.floats(1.0, 200.0), st.floats(0.0, 500.0),
       st.floats(0.005, 0.9))
def test_iteration_time_positive_and_at_least_compute(dense_m, sparse_m,
                                                      alpha):
    profile = profile_from(dense_m, sparse_m, alpha)
    cluster = ClusterSpec(4, 2)
    for plan_fn in (tf_ps_plan, horovod_plan,
                    lambda p: hybrid_plan(p, 8)):
        b = simulate_iteration(profile, plan_fn(profile), cluster)
        assert b.iteration_time >= profile.gpu_time_per_iter - 1e-12


@settings(max_examples=20, deadline=None)
@given(st.floats(5.0, 100.0), st.floats(0.01, 0.5))
def test_more_bandwidth_never_slower(dense_m, alpha):
    profile = profile_from(dense_m, dense_m, alpha)
    cluster = ClusterSpec(4, 4)
    slow = CostModel()
    fast = slow.with_overrides(
        nccl_bw=slow.nccl_bw * 2, mpi_bw=slow.mpi_bw * 2,
        ps_nic_bw=slow.ps_nic_bw * 2,
        worker_stream_bw=slow.worker_stream_bw * 2,
    )
    for plan_fn in (tf_ps_plan, horovod_plan):
        t_slow = simulate_iteration(profile, plan_fn(profile), cluster,
                                    slow).iteration_time
        t_fast = simulate_iteration(profile, plan_fn(profile), cluster,
                                    fast).iteration_time
        assert t_fast <= t_slow + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.floats(10.0, 300.0), st.floats(0.01, 0.3))
def test_gatherv_time_grows_with_alpha(sparse_m, alpha):
    cluster = ClusterSpec(4, 4)
    low = profile_from(1.0, sparse_m, alpha)
    high = profile_from(1.0, sparse_m, min(0.95, alpha * 2))
    t_low = simulate_iteration(low, horovod_plan(low), cluster)
    t_high = simulate_iteration(high, horovod_plan(high), cluster)
    assert t_high.gatherv_time >= t_low.gatherv_time


class TestMonotonicity:
    def test_total_throughput_grows_with_machines_hybrid(self):
        profile = profile_from(50.0, 400.0, 0.01)
        values = [
            throughput(profile, hybrid_plan(profile, 64), ClusterSpec(n, 4))
            for n in (2, 4, 8)
        ]
        assert values == sorted(values)

    def test_local_agg_never_hurts(self):
        for alpha in (0.01, 0.1, 0.4):
            profile = profile_from(20.0, 200.0, alpha)
            cluster = ClusterSpec(8, 6)
            naive = throughput(profile, tf_ps_plan(profile, 32), cluster)
            opt = throughput(profile, opt_ps_plan(profile, 32), cluster)
            assert opt >= naive

    def test_compute_dominated_regime_architecture_agnostic(self):
        """With enormous compute and tiny variables, all architectures
        converge to the compute bound."""
        profile = profile_from(0.001, 0.001, 0.5, compute=10.0)
        cluster = ClusterSpec(4, 2)
        times = [
            simulate_iteration(profile, plan_fn(profile),
                               cluster).iteration_time
            for plan_fn in (tf_ps_plan, horovod_plan,
                            lambda p: hybrid_plan(p))
        ]
        for t in times:
            assert t == pytest.approx(10.0, rel=0.05)

    def test_breakdown_components_sum_consistently(self):
        profile = profile_from(50.0, 400.0, 0.02)
        b = simulate_iteration(profile, hybrid_plan(profile, 32),
                               ClusterSpec(8, 6))
        recomposed = (b.compute_time
                      + max(b.collective_time, b.ps_time)
                      + b.server_cpu_time + b.local_agg_time
                      + b.stitch_time + b.sync_overhead_time)
        assert b.iteration_time == pytest.approx(recomposed, rel=1e-9)

    def test_hot_spot_metric_larger_for_fewer_partitions(self):
        """With one partition the owning server's flows concentrate; more
        partitions spread bytes across servers."""
        profile = profile_from(0.0, 400.0, 0.05)
        cluster = ClusterSpec(8, 6)
        few = simulate_iteration(profile, tf_ps_plan(profile, 1), cluster)
        many = simulate_iteration(profile, tf_ps_plan(profile, 64), cluster)

        def max_nic(breakdown):
            loads = {}
            for (src, dst), nbytes in breakdown.ps_flow_bytes.items():
                loads[src] = loads.get(src, 0.0) + nbytes
            return max(loads.values())

        assert max_nic(few) > max_nic(many)
