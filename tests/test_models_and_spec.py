"""Model zoo (single-GPU behaviour) and cluster spec."""

import numpy as np
import pytest

from repro.cluster.spec import PAPER_CLUSTER, ClusterSpec
from repro.core.transform.plan import classify_variables
from repro.graph import Session, gradients
from repro.graph.device import DeviceSpec
from repro.nn.models import build_inception, build_lm, build_nmt, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer


def train_single_gpu(model, lr, iters):
    with model.graph.as_default():
        gvs = gradients(model.loss)
        train = GradientDescentOptimizer(lr).update(gvs)
    sess = Session(model.graph, seed=0)
    losses = []
    for i, batch in enumerate(model.dataset.batches(model.batch_size, iters)):
        loss, _ = sess.run([model.loss, train], model.feed(batch))
        losses.append(float(loss))
    return losses


class TestClusterSpec:
    def test_paper_cluster(self):
        assert PAPER_CLUSTER.total_gpus == 48
        assert PAPER_CLUSTER.nic_bytes_per_sec == 12.5e9

    def test_devices_ordered_machine_major(self):
        spec = ClusterSpec(2, 2)
        assert spec.gpu_devices() == [
            DeviceSpec.gpu(0, 0), DeviceSpec.gpu(0, 1),
            DeviceSpec.gpu(1, 0), DeviceSpec.gpu(1, 1),
        ]

    def test_server_devices(self):
        assert ClusterSpec(3, 1).server_devices() == [
            DeviceSpec.cpu(0), DeviceSpec.cpu(1), DeviceSpec.cpu(2)
        ]

    def test_machine_of_worker(self):
        spec = ClusterSpec(2, 3)
        assert [spec.machine_of_worker(i) for i in range(6)] == \
            [0, 0, 0, 1, 1, 1]

    def test_machine_of_worker_bounds(self):
        with pytest.raises(ValueError):
            ClusterSpec(2, 3).machine_of_worker(6)

    def test_workers_on_machine(self):
        assert ClusterSpec(2, 3).workers_on_machine(1) == [3, 4, 5]

    def test_scaled(self):
        scaled = PAPER_CLUSTER.scaled(2)
        assert scaled.num_machines == 2
        assert scaled.gpus_per_machine == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0, 1)
        with pytest.raises(ValueError):
            ClusterSpec(1, 0)
        with pytest.raises(ValueError):
            ClusterSpec(1, 1, nic_gbps=0)


class TestModelZoo:
    def test_resnet_learns(self):
        model = build_resnet(batch_size=8, num_features=16, num_classes=4,
                             width=16, num_blocks=2, seed=0)
        losses = train_single_gpu(model, lr=0.1, iters=40)
        assert losses[-1] < losses[0] * 0.5

    def test_inception_learns(self):
        model = build_inception(batch_size=8, num_features=16, num_classes=4,
                                width=8, num_modules=2, seed=0)
        losses = train_single_gpu(model, lr=0.1, iters=40)
        assert losses[-1] < losses[0] * 0.5

    def test_lm_learns(self):
        model = build_lm(batch_size=16, vocab_size=30, seq_len=4,
                         emb_dim=12, hidden=16, seed=0)
        losses = train_single_gpu(model, lr=1.0, iters=60)
        assert losses[-1] < losses[0] - 0.2

    def test_nmt_learns(self):
        model = build_nmt(batch_size=16, src_vocab=25, tgt_vocab=25,
                          src_len=3, tgt_len=3, emb_dim=12, hidden=12,
                          seed=0)
        losses = train_single_gpu(model, lr=1.0, iters=60)
        assert losses[-1] < losses[0] - 0.2

    def test_image_models_are_dense(self):
        for builder in (build_resnet, build_inception):
            model = builder(batch_size=4, num_features=8, width=8, seed=0)
            with model.graph.as_default():
                gradients(model.loss)
            assert not any(classify_variables(model.graph).values())

    def test_nlp_models_are_sparse(self):
        lm = build_lm(batch_size=4, vocab_size=20, seq_len=2, emb_dim=4,
                      hidden=4, seed=0)
        with lm.graph.as_default():
            gradients(lm.loss)
        classes = classify_variables(lm.graph)
        assert classes["embedding"] is True
        assert any(not sparse for sparse in classes.values())

    def test_nmt_has_two_sparse_embeddings(self):
        model = build_nmt(batch_size=4, src_vocab=20, tgt_vocab=20,
                          src_len=2, tgt_len=2, emb_dim=6, hidden=6, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        sparse = [n for n, s in classify_variables(model.graph).items() if s]
        assert set(sparse) == {"encoder/embedding", "decoder/embedding"}

    def test_nmt_requires_matching_dims(self):
        with pytest.raises(ValueError):
            build_nmt(emb_dim=8, hidden=16)

    def test_feed_maps_placeholders(self):
        model = build_lm(batch_size=4, vocab_size=20, seq_len=2,
                         emb_dim=4, hidden=4, seed=0)
        batch = model.dataset.batch(4, 0)
        feed = model.feed(batch)
        assert set(t.name for t in feed) == {"tokens", "targets"}

    def test_feed_arity_checked(self):
        model = build_lm(batch_size=4, vocab_size=20, seq_len=2,
                         emb_dim=4, hidden=4, seed=0)
        with pytest.raises(ValueError):
            model.feed((np.zeros((4, 2)),))

    def test_logits_exposed_for_metrics(self):
        model = build_resnet(batch_size=4, num_features=8, width=8,
                             num_blocks=1, seed=0)
        sess = Session(model.graph, seed=0)
        batch = model.dataset.batch(4, 0)
        logits = sess.run(model.logits, model.feed(batch))
        assert logits.shape == (4, 10)
