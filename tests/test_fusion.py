"""Bucketed (fused) dense-gradient AllReduce, on both planes.

The load-bearing guarantee is bit-identity: packing several gradients
into one collective must perform, element for element, exactly the
additions the per-variable rings would (``fused_segment_layout``), so
fused training losses match unfused ones bitwise while the Transcript
carries fewer, larger AllReduce messages.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.comm.allreduce import (
    fused_segment_layout,
    ring_allreduce,
)
from repro.core.runner import DistributedRunner
from repro.cluster.plan import fusion_buckets
from repro.core.transform.plan import (
    GraphSyncPlan,
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import gradients
from repro.graph.executor import overlap_schedule
from repro.graph.graph import Graph, TensorSpec
from repro.graph.ops import constant
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)

# The four architectures of the acceptance matrix.  ``fusion`` only
# changes plans with AllReduce variables (ps is a pure-PS control).
PLAN_BUILDERS = {
    "hybrid": lambda g, **kw: hybrid_graph_plan(g, **kw),
    "ps": lambda g, **kw: ps_graph_plan(g),
    "opt_ps": lambda g, **kw: ps_graph_plan(g, local_aggregation=True,
                                            smart_placement=True,
                                            name="opt_ps"),
    "ar": lambda g, **kw: ar_graph_plan(g, **kw),
}


def make_model():
    model = build_lm(batch_size=4, vocab_size=30, seq_len=2, emb_dim=6,
                     hidden=8, num_partitions=2, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.2).update(gvs)
    return model


def make_runner(arch, **plan_kwargs):
    model = make_model()
    plan = PLAN_BUILDERS[arch](model.graph, **plan_kwargs)
    return DistributedRunner(model, CLUSTER, plan, seed=1)


class TestFusionBuckets:
    def test_cap_groups_consecutively(self):
        assert fusion_buckets([4, 4, 4, 4], 8) == [[0, 1], [2, 3]]

    def test_order_preserved_and_exhaustive(self):
        buckets = fusion_buckets([1, 9, 2, 3, 5], 10)
        flat = [i for b in buckets for i in b]
        assert flat == list(range(5))

    def test_oversize_entry_gets_own_bucket(self):
        assert fusion_buckets([100, 1, 1], 8) == [[0], [1, 2]]

    def test_empty(self):
        assert fusion_buckets([], 8) == []


class TestFusedSegmentLayout:
    @pytest.mark.parametrize("sizes,workers", [
        ([7], 3), ([5, 3], 2), ([1, 2, 3, 4], 4), ([6, 6, 6], 1),
        ([0, 4], 2),
    ])
    def test_perm_is_a_permutation_with_monotone_bounds(self, sizes,
                                                        workers):
        perm, inv_perm, bounds = fused_segment_layout(sizes, workers)
        total = sum(sizes)
        assert sorted(perm.tolist()) == list(range(total))
        np.testing.assert_array_equal(perm[inv_perm], np.arange(total))
        assert bounds[0] == 0 and bounds[-1] == total
        assert all(lo <= hi for lo, hi in zip(bounds, bounds[1:]))
        assert len(bounds) == workers + 1

    def test_fused_ring_bit_identical_to_per_segment_rings(self):
        """One ring over the packed buffer == a ring per segment.

        Exact float equality, not approx: the layout exists so fusion
        cannot perturb summation order.
        """
        rng = np.random.default_rng(0)
        sizes, workers = [5, 12, 3], 4
        segments = [[rng.standard_normal(s).astype(np.float32)
                     for s in sizes] for _ in range(workers)]
        unfused = [ring_allreduce([segments[w][i] for w in range(workers)])
                   for i in range(len(sizes))]
        perm, inv_perm, bounds = fused_segment_layout(sizes, workers)
        packed = [np.concatenate(segments[w])[perm]
                  for w in range(workers)]
        fused = ring_allreduce(packed, bounds=bounds)
        offsets = np.cumsum([0] + sizes)
        for w in range(workers):
            unpacked = fused[w][inv_perm]
            for i, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
                np.testing.assert_array_equal(unpacked[lo:hi],
                                              unfused[i][w])

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            fused_segment_layout([4], 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            fused_segment_layout([4, -1], 2)


class TestRingBounds:
    def test_custom_bounds_match_default(self):
        rng = np.random.default_rng(1)
        arrays = [rng.standard_normal(8).astype(np.float32)
                  for _ in range(4)]
        from repro.comm.allreduce import chunk_bounds
        explicit = ring_allreduce(arrays, bounds=chunk_bounds(8, 4))
        default = ring_allreduce(arrays)
        for a, b in zip(explicit, default):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("bounds", [
        [0, 4, 8],          # one chunk short
        [1, 2, 4, 6, 8],    # does not start at 0
        [0, 2, 4, 6, 7],    # does not cover the array
        [0, 6, 4, 7, 8],    # not monotone
    ])
    def test_bad_bounds_rejected(self, bounds):
        arrays = [np.ones(8, dtype=np.float32) for _ in range(4)]
        with pytest.raises(ValueError):
            ring_allreduce(arrays, bounds=bounds)


class TestFusedTraining:
    """Fused == unfused, bitwise, for every architecture."""

    @pytest.mark.parametrize("arch", sorted(PLAN_BUILDERS))
    def test_losses_and_state_bit_identical(self, arch):
        fused = make_runner(arch, fusion=True)
        unfused = make_runner(arch, fusion=False)
        for i in range(3):
            a = fused.step(i)
            b = unfused.step(i)
            assert a.replica_losses == b.replica_losses
        state_a = fused.logical_state()
        state_b = unfused.logical_state()
        assert set(state_a) == set(state_b)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])

    @pytest.mark.parametrize("arch", ["hybrid", "ar"])
    def test_transcript_fewer_larger_messages_same_bytes(self, arch):
        fused = make_runner(arch, fusion=True)
        unfused = make_runner(arch, fusion=False)
        fused.step(0)
        unfused.step(0)
        fused_ar = fused.transcript.filter("allreduce")
        unfused_ar = unfused.transcript.filter("allreduce")
        assert len(fused_ar) < len(unfused_ar)
        assert (sum(t.nbytes for t in fused_ar)
                == sum(t.nbytes for t in unfused_ar))
        assert (max(t.nbytes for t in fused_ar)
                > max(t.nbytes for t in unfused_ar))

    def test_tiny_buffer_forces_per_variable_buckets(self):
        """A cap below every gradient degenerates to unfused message
        counts -- and must still be bit-identical."""
        tiny = make_runner("hybrid", fusion=True, fusion_buffer_mb=1e-6)
        unfused = make_runner("hybrid", fusion=False)
        for i in range(2):
            assert (tiny.step(i).replica_losses
                    == unfused.step(i).replica_losses)
        assert (len(tiny.transcript.filter("allreduce"))
                == len(unfused.transcript.filter("allreduce")))

    def test_fused_ops_present_only_when_fusion_on(self):
        fused = make_runner("hybrid", fusion=True)
        unfused = make_runner("hybrid", fusion=False)
        def op_types(runner):
            return {op.op_type
                    for op in runner.transformed.graph.operations}
        assert "fused_allreduce" in op_types(fused)
        assert "fused_allreduce" not in op_types(unfused)

    def test_plan_rejects_nonpositive_buffer(self):
        model = make_model()
        with pytest.raises(ValueError, match="fusion_buffer_mb"):
            hybrid_graph_plan(model.graph, fusion=True,
                              fusion_buffer_mb=0.0)
        with pytest.raises(ValueError):
            GraphSyncPlan("p", {}, fusion_buffer_mb=-1.0)


class TestOverlapSchedule:
    """Collectives launch as soon as their last input is ready."""

    def build_chain(self):
        """a -> b -> c (compute chain); collective depends only on a."""
        g = Graph()
        with g.as_default():
            a = constant(np.ones(2, dtype=np.float32), name="a")
            b = g.add_op("relu", [a], TensorSpec((2,)), name="b")
            c = g.add_op("relu", [b.output], TensorSpec((2,)), name="c")
            coll = g.add_op("fused_allreduce", [a], TensorSpec((2,)),
                            name="coll")
            sink = g.add_op("concat", [c.output, coll.output],
                            TensorSpec((4,)), attrs={"axis": 0},
                            name="sink")
        return g, sink

    def test_collective_hoisted_to_readiness(self):
        g, sink = self.build_chain()
        order = g.topo_sort([sink])
        scheduled = overlap_schedule(order)
        names = [op.name for op in scheduled]
        # Depth-first topo order would leave the collective last before
        # the sink; the overlap scheduler fires it right after "a".
        assert names.index("coll") == names.index("a") + 1

    def test_schedule_is_a_valid_topological_order(self):
        g, sink = self.build_chain()
        scheduled = overlap_schedule(g.topo_sort([sink]))
        position = {op.name: i for i, op in enumerate(scheduled)}
        assert sorted(position) == sorted(
            op.name for op in g.topo_sort([sink]))
        for op in scheduled:
            for t in op.inputs:
                assert position[t.op.name] < position[op.name]

    def test_compiled_plan_hoists_fused_collectives(self):
        """End to end: in the compiled step plan of a fused hybrid
        runner, each bucket's collective runs before unrelated backward
        compute that a plain topological order would schedule first."""
        runner = make_runner("hybrid", fusion=True)
        schedule = [entry[0].op_type
                    for entry in runner.step_plans[0].schedule]
        first_collective = schedule.index("fused_allreduce")
        assert "sgd_update" in schedule[first_collective:]
        # The collective does not sink to the end of the schedule: real
        # compute still runs after it (overlap window exists).
        after = schedule[first_collective + 1:]
        assert any(t not in ("fused_allreduce", "bucket_slice",
                             "sgd_update", "group")
                   for t in after)
