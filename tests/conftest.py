"""Suite-wide defaults.

Every ``transform_graph`` call in the test suite runs the static plan
verifier (deadlock / congruence / alias / accounting) unless a test
opts out explicitly with ``verify=False`` -- the whole suite doubles as
the verifier's regression matrix.  Production keeps the pass opt-in via
``ParallaxConfig.verify_plans``.
"""

import os

os.environ.setdefault("REPRO_VERIFY_PLANS", "1")
