"""Layers and synthetic datasets."""

import numpy as np
import pytest

from repro.graph import Graph, Session, ops
from repro.nn import layers
from repro.nn.datasets import (
    SyntheticImageDataset,
    SyntheticTextDataset,
    TranslationDataset,
    zipf_token_sampler,
)
from repro.tensor import math as k


class TestDenseLayers:
    def test_dense_shapes_and_vars(self):
        g = Graph()
        with g.as_default():
            x = ops.placeholder((4, 8), name="x")
            out = layers.dense(x, 16, name="fc", activation="relu")
        assert out.shape == (4, 16)
        assert "fc/kernel" in g.variables
        assert "fc/bias" in g.variables

    def test_dense_no_bias(self):
        g = Graph()
        with g.as_default():
            x = ops.placeholder((4, 8), name="x")
            layers.dense(x, 16, name="fc", use_bias=False)
        assert "fc/bias" not in g.variables

    def test_unknown_activation_rejected(self):
        g = Graph()
        with g.as_default():
            x = ops.placeholder((4, 8), name="x")
            with pytest.raises(ValueError):
                layers.dense(x, 16, name="fc", activation="gelu")

    def test_residual_block_preserves_shape(self):
        g = Graph()
        with g.as_default():
            x = ops.placeholder((4, 8), name="x")
            out = layers.residual_block(x, 12, name="blk")
        assert out.shape == (4, 8)

    def test_residual_block_is_identity_plus_branch(self):
        """With zeroed branch output weights, the block reduces to
        relu(x)."""
        g = Graph()
        rng = np.random.default_rng(0)
        with g.as_default():
            x = ops.placeholder((2, 4), name="x")
            out = layers.residual_block(x, 4, name="blk")
        sess = Session(g)
        sess.write_variable("blk/conv2/conv_kernel",
                            np.zeros((4, 4), np.float32))
        xv = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_allclose(sess.run(out, {"x": xv}),
                                   np.maximum(xv, 0), rtol=1e-6)


class TestEmbeddingLayer:
    def test_unpartitioned(self):
        g = Graph()
        with g.as_default():
            ids = ops.placeholder((3,), dtype="int64", name="ids")
            out, var = layers.embedding(ids, 20, 5, name="emb")
        assert out.shape == (3, 5)
        assert var.shape == (20, 5)

    def test_partitioned(self):
        g = Graph()
        with g.as_default():
            ids = ops.placeholder((3,), dtype="int64", name="ids")
            out, pv = layers.embedding(ids, 20, 5, name="emb",
                                       num_partitions=4)
        assert len(pv.partitions) == 4

    def test_partitions_capped_at_vocab(self):
        g = Graph()
        with g.as_default():
            ids = ops.placeholder((3,), dtype="int64", name="ids")
            _, pv = layers.embedding(ids, 4, 5, name="emb",
                                     num_partitions=100)
        assert len(pv.partitions) == 4


class TestLSTMLayer:
    def test_matches_fused_kernel(self):
        """The primitive-op LSTM must equal the reference lstm_cell."""
        g = Graph()
        batch, in_dim, hidden, steps = 2, 3, 4, 3
        rng = np.random.default_rng(1)
        xs_values = [rng.standard_normal((batch, in_dim)).astype(np.float32)
                     for _ in range(steps)]
        with g.as_default():
            xs = [ops.placeholder((batch, in_dim), name=f"x{t}")
                  for t in range(steps)]
            hs = layers.lstm(xs, hidden, name="lstm")
        sess = Session(g)
        feed = {f"x{t}": xs_values[t] for t in range(steps)}
        got = sess.run(hs, feed)

        w = sess.read_variable("lstm/kernel")
        b = sess.read_variable("lstm/bias")
        h = np.zeros((batch, hidden), np.float32)
        c = np.zeros((batch, hidden), np.float32)
        for t in range(steps):
            h, c, _ = k.lstm_cell(xs_values[t], h, c, w, b)
            np.testing.assert_allclose(got[t], h, rtol=1e-4, atol=1e-6)

    def test_empty_steps_rejected(self):
        g = Graph()
        with g.as_default():
            with pytest.raises(ValueError):
                layers.lstm([], 4, name="lstm")


class TestImageDataset:
    def test_deterministic(self):
        a = SyntheticImageDataset(size=32, seed=5)
        b = SyntheticImageDataset(size=32, seed=5)
        np.testing.assert_array_equal(a.example(3)[0], b.example(3)[0])

    def test_shapes(self):
        ds = SyntheticImageDataset(size=16, num_features=10, num_classes=4)
        image, label = ds.example(0)
        assert image.shape == (10,)
        assert 0 <= label < 4

    def test_batch_stacks(self):
        ds = SyntheticImageDataset(size=16, num_features=10)
        images, labels = ds.batch(4, 0)
        assert images.shape == (4, 10)
        assert labels.shape == (4,)

    def test_batch_cycles_past_end(self):
        ds = SyntheticImageDataset(size=4)
        images, _ = ds.batch(4, 1)  # second batch wraps around
        np.testing.assert_array_equal(images, ds.batch(4, 0)[0])

    def test_signal_is_learnable(self):
        """Same-class examples are closer than cross-class on average."""
        ds = SyntheticImageDataset(size=256, num_classes=2, seed=0)
        images = np.stack([ds.example(i)[0] for i in range(256)])
        labels = np.array([ds.example(i)[1] for i in range(256)])
        mean0 = images[labels == 0].mean(axis=0)
        mean1 = images[labels == 1].mean(axis=0)
        assert np.linalg.norm(mean0 - mean1) > 1.0


class TestSharding:
    def test_disjoint_and_covering(self):
        ds = SyntheticImageDataset(size=10)
        shards = [ds.shard(3, i) for i in range(3)]
        assert sum(len(s) for s in shards) == 10
        seen = set()
        for shard in shards:
            for i in range(len(shard)):
                seen.add(tuple(shard.example(i)[0]))
        assert len(seen) == 10

    def test_round_robin_assignment(self):
        ds = SyntheticImageDataset(size=10)
        shard1 = ds.shard(2, 1)
        np.testing.assert_array_equal(shard1.example(0)[0], ds.example(1)[0])
        np.testing.assert_array_equal(shard1.example(2)[0], ds.example(5)[0])

    def test_bad_index_rejected(self):
        ds = SyntheticImageDataset(size=10)
        with pytest.raises(ValueError):
            ds.shard(3, 3)

    def test_out_of_range_example_rejected(self):
        shard = SyntheticImageDataset(size=10).shard(3, 0)
        with pytest.raises(IndexError):
            shard.example(len(shard))


class TestTextDataset:
    def test_next_token_targets(self):
        ds = SyntheticTextDataset(size=8, vocab_size=50, seq_len=5, seed=0)
        tokens, targets = ds.example(0)
        assert tokens.shape == (5,)
        assert targets.shape == (5,)

    def test_tokens_in_vocab(self):
        ds = SyntheticTextDataset(size=64, vocab_size=30, seq_len=4)
        for i in range(len(ds)):
            tokens, targets = ds.example(i)
            assert tokens.max() < 30 and targets.max() < 30
            assert tokens.min() >= 0

    def test_zipf_skew(self):
        """Head tokens dominate: token 0 much more frequent than median."""
        sample = zipf_token_sampler(1000, 1.2, np.random.default_rng(0))
        draws = sample(20000)
        counts = np.bincount(draws, minlength=1000)
        assert counts[0] > 20 * np.median(counts[counts > 0])

    def test_measured_alpha_decreases_with_vocab(self):
        small = SyntheticTextDataset(size=256, vocab_size=50, seq_len=8)
        large = SyntheticTextDataset(size=256, vocab_size=5000, seq_len=8)
        assert small.measured_alpha(16) > large.measured_alpha(16)

    def test_measured_alpha_increases_with_batch(self):
        ds = SyntheticTextDataset(size=512, vocab_size=500, seq_len=8)
        assert ds.measured_alpha(64) > ds.measured_alpha(4)

    def test_planted_bigram_structure(self):
        """The most frequent token has a dominant successor (the planted
        permutation makes next-token prediction learnable)."""
        ds = SyntheticTextDataset(size=512, vocab_size=40, seq_len=6, seed=1)
        successor_votes = {}
        for i in range(len(ds)):
            tokens, _ = ds.example(i)
            for a, b in zip(tokens[:-1], tokens[1:]):
                successor_votes.setdefault(int(a), []).append(int(b))
        head = max(successor_votes, key=lambda a: len(successor_votes[a]))
        succ = successor_votes[head]
        _, counts = np.unique(succ, return_counts=True)
        assert counts.max() / len(succ) > 0.5


class TestTranslationDataset:
    def test_shapes(self):
        ds = TranslationDataset(size=8, src_len=5, tgt_len=6)
        src, tgt = ds.example(0)
        assert src.shape == (5,)
        assert tgt.shape == (6,)

    def test_vocab_bounds(self):
        ds = TranslationDataset(size=32, src_vocab=40, tgt_vocab=30)
        for i in range(len(ds)):
            src, tgt = ds.example(i)
            assert src.max() < 40 and tgt.max() < 30

    def test_word_mapping_consistent(self):
        """The same source token always maps to the same target token."""
        ds = TranslationDataset(size=128, src_vocab=30, tgt_vocab=30, seed=2)
        mapping = {}
        for i in range(len(ds)):
            src, tgt = ds.example(i)
            for s, t in zip(src, tgt):
                if s in mapping:
                    assert mapping[s] == t
                else:
                    mapping[int(s)] = int(t)


class TestVectorizedTake:
    """The vectorized ``take`` fast paths must be bit-identical to the
    per-example ``example`` loop the base class falls back to (batches
    feed training, so any drift changes losses)."""

    @pytest.mark.parametrize("make", [
        lambda: SyntheticImageDataset(size=32, num_features=6, seed=3),
        lambda: SyntheticTextDataset(size=32, vocab_size=25, seq_len=4,
                                     seed=3),
        lambda: TranslationDataset(size=32, src_vocab=30, tgt_vocab=20,
                                   src_len=3, tgt_len=4, seed=3),
    ])
    def test_take_matches_example_loop(self, make):
        ds = make()
        ids = np.array([5, 0, 17, 5, 31], dtype=np.int64)
        fast = ds.take(ids)
        slow = [ds.example(int(i)) for i in ids]
        for col, arrays in enumerate(zip(*slow)):
            expected = np.stack(arrays)
            np.testing.assert_array_equal(fast[col], expected)
            assert fast[col].dtype == expected.dtype

    def test_take_returns_copies(self):
        ds = SyntheticImageDataset(size=8, num_features=4, seed=0)
        images, labels = ds.take(np.array([2]))
        images[0, 0] += 100.0
        labels[0] += 1
        again_img, again_lbl = ds.take(np.array([2]))
        assert again_img[0, 0] != images[0, 0]
        assert again_lbl[0] != labels[0]

    def test_batch_uses_take_identically(self):
        ds = TranslationDataset(size=16, src_len=3, tgt_len=4, seed=1)
        src, tgt = ds.batch(6, 2)
        ids = [(2 * 6 + i) % len(ds) for i in range(6)]
        for row, idx in enumerate(ids):
            s, t = ds.example(idx)
            np.testing.assert_array_equal(src[row], s)
            np.testing.assert_array_equal(tgt[row], t)
