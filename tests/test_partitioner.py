"""Partition search: Equation-1 fitting and the bracket search."""

import math

import numpy as np
import pytest

from repro.core.partitioner import (
    PartitionCostModel,
    PartitionSearch,
    brute_force_search,
    fit_cost_model,
)


def eq1(theta0, theta1, theta2):
    return lambda p: theta0 + theta1 / p + theta2 * p


class TestCostModel:
    def test_predict(self):
        model = PartitionCostModel(1.0, 8.0, 0.5)
        assert model.predict(4) == pytest.approx(1.0 + 2.0 + 2.0)

    def test_predict_invalid_p(self):
        with pytest.raises(ValueError):
            PartitionCostModel(1, 1, 1).predict(0)

    def test_best_partitions_interior(self):
        # minimum at sqrt(theta1/theta2) = sqrt(64) = 8
        model = PartitionCostModel(1.0, 64.0, 1.0)
        assert model.best_partitions(1, 100) == 8

    def test_best_partitions_clamped_low(self):
        model = PartitionCostModel(1.0, 64.0, 1.0)
        assert model.best_partitions(16, 100) == 16

    def test_best_partitions_clamped_high(self):
        model = PartitionCostModel(1.0, 64.0, 1.0)
        assert model.best_partitions(1, 4) == 4

    def test_no_penalty_prefers_max(self):
        model = PartitionCostModel(1.0, 64.0, 0.0)
        assert model.best_partitions(1, 32) == 32

    def test_no_gain_prefers_min(self):
        model = PartitionCostModel(1.0, 0.0, 1.0)
        assert model.best_partitions(2, 32) == 2

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            PartitionCostModel(1, 1, 1).best_partitions(5, 4)


class TestFit:
    def test_exact_recovery(self):
        truth = (0.7, 12.0, 0.03)
        f = eq1(*truth)
        samples = [(p, f(p)) for p in (1, 2, 4, 8, 16, 32)]
        model = fit_cost_model(samples)
        assert model.theta0 == pytest.approx(truth[0], rel=1e-6)
        assert model.theta1 == pytest.approx(truth[1], rel=1e-6)
        assert model.theta2 == pytest.approx(truth[2], rel=1e-6)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        f = eq1(1.0, 20.0, 0.05)
        samples = [(p, f(p) * (1 + rng.normal(0, 0.01)))
                   for p in (1, 2, 4, 8, 16, 32, 64, 128)]
        model = fit_cost_model(samples)
        best = model.best_partitions(1, 128)
        true_best = int(round(math.sqrt(20.0 / 0.05)))
        assert abs(math.log2(best) - math.log2(true_best)) < 1.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_model([(1, 1.0), (2, 0.5)])


class TestFitConditioningGuards:
    """fit_cost_model must reject ill-conditioned samples loudly instead
    of returning minimum-norm pseudo-fit garbage."""

    def test_duplicate_partition_counts_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            fit_cost_model([(4, 0.1), (4, 0.2), (8, 0.3)])

    def test_two_distinct_counts_padded_with_repeats_rejected(self):
        with pytest.raises(ValueError, match=r"\[2, 8\]"):
            fit_cost_model([(2, 0.1), (8, 0.2), (2, 0.11), (8, 0.21)])

    def test_nonpositive_partition_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            fit_cost_model([(0, 0.1), (2, 0.2), (4, 0.3)])

    def test_three_distinct_counts_still_fit(self):
        model = fit_cost_model([(1, 3.0), (2, 2.0), (4, 1.9)])
        assert math.isfinite(model.theta0)

    def test_search_falls_back_when_fit_rejects(self, monkeypatch):
        """Regression via PartitionSearch: an ill-conditioned fit must not
        crash the search -- it falls back to the best sampled point."""
        import importlib

        partitioner_mod = importlib.import_module("repro.core.partitioner")

        def bad_fit(samples):
            raise ValueError("singular")

        monkeypatch.setattr(partitioner_mod, "fit_cost_model", bad_fit)
        measure = eq1(1.0, 8.0, 0.05)
        search = PartitionSearch(measure, initial=4, max_partitions=64)
        result = search.run()
        assert result.model is None
        assert result.num_samples >= 3
        best_sampled = min(result.samples, key=lambda kv: kv[1])[0]
        assert result.best_partitions == best_sampled

    def test_search_with_good_fit_still_uses_model(self):
        measure = eq1(1.0, 8.0, 0.05)
        result = PartitionSearch(measure, initial=4,
                                 max_partitions=64).run()
        assert result.model is not None


class TestBracketSearch:
    def test_finds_convex_minimum(self):
        f = eq1(0.5, 16.0, 0.01)  # continuous optimum at 40
        search = PartitionSearch(f, initial=8, max_partitions=1024)
        result = search.run()
        assert f(result.best_partitions) <= f(8) and \
            f(result.best_partitions) <= f(128)
        assert 16 <= result.best_partitions <= 128

    def test_doubles_until_increase(self):
        f = eq1(0.1, 100.0, 1e-4)  # optimum at 1000
        search = PartitionSearch(f, initial=4, max_partitions=4096)
        result = search.run()
        sampled_ps = [p for p, _ in result.samples]
        assert max(sampled_ps) >= 1024

    def test_halves_below_initial(self):
        f = eq1(0.1, 0.5, 0.05)  # optimum near 3
        search = PartitionSearch(f, initial=64, max_partitions=1024)
        result = search.run()
        assert min(p for p, _ in result.samples) <= 4
        assert result.best_partitions <= 8

    def test_no_extrapolation_beyond_samples(self):
        f = eq1(0.5, 16.0, 0.01)
        search = PartitionSearch(f, initial=8, max_partitions=1024)
        result = search.run()
        lo = min(p for p, _ in result.samples)
        hi = max(p for p, _ in result.samples)
        assert lo <= result.best_partitions <= hi

    def test_respects_max_partitions(self):
        f = eq1(0.1, 100.0, 0.0)  # always better to grow
        search = PartitionSearch(f, initial=4, max_partitions=32)
        result = search.run()
        assert result.best_partitions <= 32

    def test_measure_called_once_per_p(self):
        calls = []

        def measure(p):
            calls.append(p)
            return eq1(0.5, 16.0, 0.01)(p)

        PartitionSearch(measure, initial=8, max_partitions=256).run()
        assert len(calls) == len(set(calls))

    def test_sample_count_small(self):
        """Paper section 6.5: 'at most 5 runs' vs brute force's 50+."""
        f = eq1(0.5, 16.0, 0.01)
        result = PartitionSearch(f, initial=8, max_partitions=1024).run()
        assert result.num_samples <= 8

    def test_never_worse_than_best_sample(self):
        rng = np.random.default_rng(3)

        def noisy(p):
            return eq1(0.5, 16.0, 0.01)(p) * (1 + rng.normal(0, 0.05))

        search = PartitionSearch(noisy, initial=8, max_partitions=1024)
        result = search.run()
        best_sampled = min(t for _, t in result.samples)
        assert search._time(result.best_partitions) <= best_sampled * 1.001

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PartitionSearch(lambda p: p, initial=4, min_partitions=8,
                            max_partitions=4)

    def test_initial_clamped_into_bounds(self):
        f = eq1(0.5, 4.0, 0.1)
        search = PartitionSearch(f, initial=1000, max_partitions=16)
        result = search.run()
        assert all(p <= 16 for p, _ in result.samples)


class TestBruteForce:
    def test_scans_until_drop(self):
        f = eq1(0.5, 16.0, 0.01)
        result = brute_force_search(f, min_partitions=2, max_partitions=4096)
        ps = [p for p, _ in result.samples]
        # Stops soon after the curve turns up by >10%.
        assert max(ps) >= 64
        assert f(result.best_partitions) == min(f(p) for p in ps)

    def test_more_samples_than_parallax(self):
        f = eq1(0.5, 16.0, 0.01)
        brute = brute_force_search(f, 2, 4096)
        smart = PartitionSearch(f, initial=8, max_partitions=4096).run()
        assert brute.num_samples >= smart.num_samples

    def test_quality_close_to_brute_force(self):
        """Table 5: Parallax within 5% of the brute-force optimum."""
        f = eq1(0.5, 16.0, 0.01)
        brute = brute_force_search(f, 2, 4096)
        smart = PartitionSearch(f, initial=8, max_partitions=4096).run()
        assert f(smart.best_partitions) <= 1.05 * f(brute.best_partitions)
