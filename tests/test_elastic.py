"""Chaos/differential suite for the elastic cluster runtime.

The contract under test: rescaling N->M replicas migrates logical state
bit-exactly (including re-sharding partitioned sparse variables), the
post-rescale trajectory is bit-identical to a fresh M-replica runner
restored from the same state, and a fault-injected run that recovers
from its last checkpoint converges to exactly the fault-free losses.
"""

import numpy as np
import pytest

from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.faults import (
    FaultPlan,
    NicDegradation,
    WorkerFailure,
    WorkerFailureError,
)
from repro.cluster.simulator import (
    simulate_goodput,
    simulate_iteration,
    simulate_recovery,
    simulate_rescale,
)
from repro.cluster.spec import ClusterSpec
from repro.core.elastic import (
    ElasticRunner,
    partition_layout,
    replicated_slot_suffixes,
    reshard_logical_state,
)
from repro.core.partition_context import installed_partitions
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph.executor import CompiledPlan
from repro.graph.gradients import gradients
from repro.nn.models import build_inception, build_lm, build_nmt, build_resnet
from repro.nn.optimizers import (
    AdamOptimizer,
    GradientDescentOptimizer,
    MomentumOptimizer,
)

SEED = 11
LR = 0.4
C4 = ClusterSpec(num_machines=2, gpus_per_machine=2)
C2 = ClusterSpec(num_machines=1, gpus_per_machine=2)

PLAN_BUILDERS = {
    "hybrid": hybrid_graph_plan,
    "ps": lambda g: ps_graph_plan(g, True, True, name="opt_ps"),
    "ar": ar_graph_plan,
}


def _finish(model, optimizer=None):
    with model.graph.as_default():
        gvs = gradients(model.loss)
        (optimizer or GradientDescentOptimizer(LR)).update(gvs)
    return model


def lm_builder(optimizer=None):
    def build():
        model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                         hidden=10,
                         num_partitions=installed_partitions() or 3, seed=0)
        return _finish(model, optimizer() if optimizer else None)

    return build


MODEL_BUILDERS = {
    "lm": lm_builder(),
    "nmt": lambda: _finish(build_nmt(batch_size=4, src_vocab=30,
                                     tgt_vocab=30, src_len=2, tgt_len=2,
                                     emb_dim=6, hidden=6, num_partitions=2,
                                     seed=1)),
    "resnet": lambda: _finish(build_resnet(batch_size=4, num_features=8,
                                           num_classes=3, width=8,
                                           num_blocks=1, seed=0)),
    "inception": lambda: _finish(build_inception(batch_size=4,
                                                 num_features=8,
                                                 num_classes=3, width=8,
                                                 num_modules=1, seed=0)),
}


def make_elastic(model_key="lm", plan_key="hybrid", cluster=C4, **kwargs):
    builder = MODEL_BUILDERS[model_key]
    model = builder()
    return ElasticRunner(model, cluster, PLAN_BUILDERS[plan_key](model.graph),
                         seed=SEED, **kwargs)


def losses(results):
    return [r.replica_losses for r in results]


# ======================================================================
# Rescale correctness
# ======================================================================
class TestRescaleStatePreservation:
    @pytest.mark.parametrize("plan_key", list(PLAN_BUILDERS))
    def test_rescale_down_preserves_logical_state_bitwise(self, plan_key):
        runner = make_elastic(plan_key=plan_key)
        for i in range(3):
            runner.step(i)
        before = {k: v.copy() for k, v in runner.logical_state().items()}
        runner.rescale(C2)
        assert runner.num_replicas == 2
        after = runner.logical_state()
        assert set(before) == set(after)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name],
                                          err_msg=name)

    @pytest.mark.parametrize("plan_key", list(PLAN_BUILDERS))
    def test_rescale_up_preserves_logical_state_bitwise(self, plan_key):
        runner = make_elastic(plan_key=plan_key, cluster=C2)
        for i in range(3):
            runner.step(i)
        before = {k: v.copy() for k, v in runner.logical_state().items()}
        runner.rescale(C4)
        assert runner.num_replicas == 4
        after = runner.logical_state()
        assert set(before) == set(after)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name],
                                          err_msg=name)

    def test_rescale_recompiles_step_plans(self):
        runner = make_elastic()
        before = CompiledPlan.compiled_total
        runner.rescale(C2)
        assert CompiledPlan.compiled_total > before
        note = runner.transcript.events("elastic/rescale")[-1]
        assert note.get("plans_compiled") >= 1
        assert note.get("old_replicas") == 4
        assert note.get("new_replicas") == 2

    def test_rescale_replaces_ps_placement_for_new_machine_count(self):
        runner = make_elastic(cluster=C4)
        assert set(runner.transformed.ps_placement.values()) <= {0, 1}
        runner.rescale(C2)
        # One machine left: every PS variable must live on it.
        assert set(runner.transformed.ps_placement.values()) == {0}

    def test_all_replicas_receive_migrated_state(self):
        runner = make_elastic(cluster=C2)
        for i in range(2):
            runner.step(i)
        runner.rescale(C4)
        for name in runner.transformed.replica_variables:
            base = runner.replica_variable(0, name)
            for r in range(1, runner.num_replicas):
                np.testing.assert_array_equal(
                    base, runner.replica_variable(r, name),
                    err_msg=f"replica {r} missed migration of {name}")


class TestRescaleDifferential:
    """Post-rescale training == a from-scratch runner at the target size
    restored with the same state and fed the same batches."""

    @pytest.mark.parametrize("plan_key", list(PLAN_BUILDERS))
    def test_post_rescale_matches_fresh_runner(self, plan_key):
        runner = make_elastic(plan_key=plan_key)
        for i in range(2):
            runner.step(i)
        state = {k: v.copy() for k, v in runner.logical_state().items()}
        runner.rescale(C2)

        model = MODEL_BUILDERS["lm"]()
        fresh = DistributedRunner(model, C2,
                                  PLAN_BUILDERS[plan_key](model.graph),
                                  seed=SEED + 123)
        fresh._load_state(state)
        for i in range(2, 5):
            got = runner.step(i)
            want = fresh.step(i)
            assert got.replica_losses == want.replica_losses, (plan_key, i)

    @pytest.mark.parametrize("model_key", list(MODEL_BUILDERS))
    @pytest.mark.parametrize("direction", ["down", "up"])
    def test_rescale_matches_uninterrupted_target_run(self, model_key,
                                                      direction):
        """Acceptance: for each model arch, rescale 4->2 and 2->4
        mid-training reaches bit-identically the final loss of an
        uninterrupted run at the target size with identical feeds."""
        start, target = (C4, C2) if direction == "down" else (C2, C4)
        model = MODEL_BUILDERS[model_key]()
        runner = ElasticRunner(model, start, hybrid_graph_plan(model.graph),
                               seed=SEED)
        for i in range(2):
            runner.step(i)
        state = {k: v.copy() for k, v in runner.logical_state().items()}
        runner.rescale(target)
        final = [runner.step(i).replica_losses for i in range(2, 5)]

        ref_model = MODEL_BUILDERS[model_key]()
        reference = DistributedRunner(ref_model, target,
                                      hybrid_graph_plan(ref_model.graph),
                                      seed=SEED + 7)
        reference._load_state(state)
        expected = [reference.step(i).replica_losses for i in range(2, 5)]
        assert final == expected

    def test_save_restore_interoperates_with_rescale(self, tmp_path):
        """A checkpoint written before a rescale restores into a runner
        built directly at the new size -- same bits either way."""
        runner = make_elastic()
        for i in range(2):
            runner.step(i)
        path = str(tmp_path / "ckpt.npz")
        runner.save(path)
        runner.rescale(C2)

        model = MODEL_BUILDERS["lm"]()
        restored = DistributedRunner(model, C2,
                                     hybrid_graph_plan(model.graph),
                                     seed=SEED + 5)
        restored.restore(path)
        for name in runner.transformed.plan.methods:
            np.testing.assert_array_equal(runner.variable_value(name),
                                          restored.variable_value(name))


class TestReshardingRescale:
    def elastic_with_builder(self, optimizer=None):
        builder = lm_builder(optimizer)
        model = builder()
        return ElasticRunner(model, C4, hybrid_graph_plan(model.graph),
                             seed=SEED, model_builder=builder,
                             plan_builder=hybrid_graph_plan)

    def test_reshard_conserves_embedding_bits(self):
        runner = self.elastic_with_builder()
        for i in range(3):
            runner.step(i)
        pre = runner.logical_state()
        merged_pre = np.concatenate(
            [pre[f"embedding/part_{p}"] for p in range(3)])
        runner.rescale(C2, num_partitions=4)
        assert runner.num_partitions == 4
        post = runner.logical_state()
        merged_post = np.concatenate(
            [post[f"embedding/part_{p}"] for p in range(4)])
        np.testing.assert_array_equal(merged_pre, merged_post)

    def test_resharded_training_matches_fresh_runner_at_new_count(self):
        runner = self.elastic_with_builder()
        for i in range(2):
            runner.step(i)
        state = {k: v.copy() for k, v in runner.logical_state().items()}
        runner.rescale(C2, num_partitions=4)

        from repro.core.partition_context import sampling_partitions
        with sampling_partitions(4):
            model = lm_builder()()
        fresh = DistributedRunner(model, C2, hybrid_graph_plan(model.graph),
                                  seed=SEED + 3)
        fresh._load_state(
            reshard_logical_state(state, {"embedding": [0, 14, 27, 40]},
                                  partition_layout(model.graph)))
        for i in range(2, 5):
            assert (runner.step(i).replica_losses
                    == fresh.step(i).replica_losses), i

    def test_momentum_slots_reshard_with_their_variable(self):
        runner = self.elastic_with_builder(
            optimizer=lambda: MomentumOptimizer(0.2, 0.9))
        for i in range(3):
            runner.step(i)
        pre = runner.logical_state()
        merged_pre = np.concatenate(
            [pre[f"embedding/part_{p}/velocity"] for p in range(3)])
        runner.rescale(C4, num_partitions=2)
        post = runner.logical_state()
        merged_post = np.concatenate(
            [post[f"embedding/part_{p}/velocity"] for p in range(2)])
        np.testing.assert_array_equal(merged_pre, merged_post)

    def test_adam_step_counter_replicates_across_new_shards(self):
        runner = self.elastic_with_builder(
            optimizer=lambda: AdamOptimizer(0.01))
        for i in range(3):
            runner.step(i)
        step_value = runner.logical_state()["embedding/part_0/adam_step"]
        runner.rescale(C4, num_partitions=4)
        post = runner.logical_state()
        for p in range(4):
            np.testing.assert_array_equal(
                post[f"embedding/part_{p}/adam_step"], step_value)
        runner.step(3)  # training still healthy after the re-shard

    def test_partition_change_without_builder_rejected(self):
        runner = make_elastic()
        with pytest.raises(ValueError, match="model_builder"):
            runner.rescale(C2, num_partitions=4)

    def test_failed_rescale_rolls_back_atomically(self):
        """A state dict that does not match the target graph must leave
        the runner exactly as it was -- same cluster, same values, still
        trainable bit-identically."""
        runner = make_elastic()
        twin = make_elastic()
        runner.step(0)
        twin.step(0)
        bogus = {"not/a/real/variable": np.zeros(2, np.float32)}
        with pytest.raises(ValueError, match="mismatched names"):
            runner.rescale(C2, state=bogus)
        assert runner.num_replicas == 4
        assert runner.cluster == C4
        for i in range(1, 3):
            assert (runner.step(i).replica_losses
                    == twin.step(i).replica_losses), i

    def test_builder_without_plan_builder_rejected(self):
        model = MODEL_BUILDERS["lm"]()
        with pytest.raises(ValueError, match="plan_builder"):
            ElasticRunner(model, C4, hybrid_graph_plan(model.graph),
                          model_builder=lm_builder())


# ======================================================================
# Fault injection and recovery
# ======================================================================
class TestFaultInjection:
    def test_scheduled_kill_raises_and_notes_transcript(self):
        runner = make_elastic(
            fault_plan=FaultPlan.kill(worker=1, at_iteration=2))
        runner.step(0)
        runner.step(1)
        with pytest.raises(WorkerFailureError) as err:
            runner.step(2)
        assert err.value.worker == 1
        assert err.value.iteration == 2
        notes = runner.transcript.events("fault/worker_kill")
        assert len(notes) == 1
        assert notes[0].get("worker") == 1

    def test_fault_fires_exactly_once(self):
        runner = make_elastic(
            fault_plan=FaultPlan.kill(worker=0, at_iteration=1))
        runner.step(0)
        with pytest.raises(WorkerFailureError):
            runner.step(1)
        runner.step(1)  # replay passes: the event is spent

    def test_out_of_range_worker_never_fires(self):
        runner = make_elastic(
            fault_plan=FaultPlan.kill(worker=99, at_iteration=0))
        runner.step(0)
        assert runner.transcript.events("fault/") == []

    def test_nic_degradation_noted_once(self):
        plan = FaultPlan(degradations=(
            NicDegradation(1, machine=0, factor=0.5, duration=2),))
        runner = make_elastic(fault_plan=plan)
        for i in range(4):
            runner.step(i)
        notes = runner.transcript.events("fault/nic_degraded")
        assert len(notes) == 1
        assert notes[0].iteration == 1
        assert notes[0].get("factor") == 0.5


class TestRecovery:
    def run_pair(self, fault_plan, checkpoint_every=2, iters=6, **kwargs):
        clean = make_elastic(checkpoint_every=checkpoint_every)
        faulted = make_elastic(checkpoint_every=checkpoint_every,
                               fault_plan=fault_plan)
        return (clean.run_elastic(iters, **kwargs),
                faulted.run_elastic(iters, **kwargs), faulted)

    def test_recovered_run_reaches_fault_free_losses(self):
        clean, faulted, runner = self.run_pair(
            FaultPlan.kill(worker=1, at_iteration=3))
        assert losses(clean) == losses(faulted)
        assert len(runner.recovery_log) == 1
        entry = runner.recovery_log[0]
        assert entry["action"] == "restore"
        assert entry["lost_iterations"] == 1
        assert runner.transcript.events("elastic/recovery")

    def test_multiple_failures_all_recovered(self):
        plan = FaultPlan(failures=(WorkerFailure(1, 0), WorkerFailure(4, 3)))
        clean, faulted, runner = self.run_pair(plan, iters=6)
        assert losses(clean) == losses(faulted)
        assert len(runner.recovery_log) == 2

    def test_fault_at_checkpoint_boundary_loses_nothing(self):
        clean, faulted, runner = self.run_pair(
            FaultPlan.kill(worker=2, at_iteration=4), checkpoint_every=2)
        assert losses(clean) == losses(faulted)
        assert runner.recovery_log[0]["lost_iterations"] == 0

    def test_recovery_is_deterministic(self):
        plan = FaultPlan.kill(worker=1, at_iteration=3)
        _, first, _ = self.run_pair(plan)
        _, second, _ = self.run_pair(plan)
        assert losses(first) == losses(second)

    def test_shrink_recovery_continues_on_smaller_cluster(self):
        plan = FaultPlan.kill(worker=1, at_iteration=3)
        runner = make_elastic(checkpoint_every=2, fault_plan=plan)
        results = runner.run_elastic(6, shrink_on_failure=True)
        assert runner.num_replicas == 2
        assert runner.cluster.num_machines == 1
        assert len(results) == 6
        assert all(np.isfinite(r.mean_loss) for r in results)
        assert runner.recovery_log[0]["action"] == "shrink"
        # Post-shrink iterations match a fresh shrunken runner restored
        # from the same checkpoint (the differential recovery contract):
        # the kill at iteration 3 rolls back to the iteration-2 snapshot.
        clean = make_elastic(checkpoint_every=2)
        clean.run_elastic(2)
        ck_model = MODEL_BUILDERS["lm"]()
        fresh = DistributedRunner(ck_model, C2,
                                  hybrid_graph_plan(ck_model.graph),
                                  seed=SEED + 17)
        fresh._load_state(clean.logical_state())
        expected = [fresh.step(i).replica_losses for i in range(2, 6)]
        assert losses(results)[2:] == expected

    def test_run_elastic_without_faults_matches_plain_run(self):
        elastic = make_elastic(checkpoint_every=2)
        plain_model = MODEL_BUILDERS["lm"]()
        plain = DistributedRunner(plain_model, C4,
                                  hybrid_graph_plan(plain_model.graph),
                                  seed=SEED)
        got = elastic.run_elastic(5)
        want = plain.run(5)
        assert losses(got) == losses(want)

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_elastic(checkpoint_every=0)


# ======================================================================
# Fault plan validation
# ======================================================================
class TestFaultPlanValidation:
    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            WorkerFailure(-1, 0)

    def test_degradation_factor_bounds(self):
        with pytest.raises(ValueError):
            NicDegradation(0, 0, factor=0.0)
        with pytest.raises(ValueError):
            NicDegradation(0, 0, factor=1.5)

    def test_nic_factor_compounds_overlapping_windows(self):
        plan = FaultPlan(degradations=(
            NicDegradation(0, machine=0, factor=0.5, duration=3),
            NicDegradation(1, machine=1, factor=0.5, duration=1),
        ))
        assert plan.nic_factor(0) == 0.5
        assert plan.nic_factor(1) == 0.25
        assert plan.nic_factor(1, machine=0) == 0.5
        assert plan.nic_factor(3) == 1.0

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan.kill(0, 0)
        assert FaultPlan().last_scheduled_iteration == -1
        assert FaultPlan.kill(0, at_iteration=5).last_scheduled_iteration == 5


# ======================================================================
# Performance-plane pricing
# ======================================================================
class TestElasticSimulation:
    def setup_method(self):
        from repro.core.hybrid import hybrid_plan
        from repro.nn.profiles import lm_profile

        self.profile = lm_profile()
        self.plan = hybrid_plan(self.profile, 64)
        self.cluster = ClusterSpec(4, 2)

    def test_recovery_downtime_positive_and_monotone_in_lost_work(self):
        short = simulate_recovery(self.profile, self.plan, self.cluster, 1)
        long = simulate_recovery(self.profile, self.plan, self.cluster, 9)
        assert short.downtime > 0
        assert long.total_time > short.total_time
        assert long.lost_iterations == 9

    def test_rescale_downtime_scales_with_target_replicas(self):
        small = simulate_rescale(self.plan, self.cluster,
                                 self.cluster.scaled(2))
        large = simulate_rescale(self.plan, self.cluster,
                                 self.cluster.scaled(8))
        assert 0 < small.downtime < large.downtime

    def test_goodput_with_failures_below_fault_free(self):
        faults = FaultPlan(failures=(WorkerFailure(50, 1),))
        report = simulate_goodput(self.profile, self.plan, self.cluster,
                                  total_iterations=100, checkpoint_every=10,
                                  faults=faults)
        assert report.num_failures == 1
        assert report.downtime > 0
        assert report.units_per_second < report.fault_free_units_per_second
        assert 0 < report.goodput_fraction < 1

    def test_goodput_without_faults_matches_fault_free_baseline(self):
        report = simulate_goodput(self.profile, self.plan, self.cluster,
                                  total_iterations=50, checkpoint_every=5)
        assert report.total_time == pytest.approx(report.fault_free_time)
        assert report.goodput_fraction == pytest.approx(1.0)

    def test_degraded_nic_slows_iterations(self):
        base = simulate_iteration(self.profile, self.plan, self.cluster)
        slow = simulate_iteration(self.profile, self.plan, self.cluster,
                                  DEFAULT_COST_MODEL.degraded(0.25))
        assert slow.iteration_time > base.iteration_time
        faults = FaultPlan(degradations=(
            NicDegradation(0, machine=0, factor=0.25, duration=20),))
        degraded = simulate_goodput(self.profile, self.plan, self.cluster,
                                    total_iterations=40, checkpoint_every=10,
                                    faults=faults)
        assert degraded.num_degraded_iterations == 20
        assert (degraded.units_per_second
                < degraded.fault_free_units_per_second)

    def test_checkpoint_cadence_tradeoff(self):
        """Frequent checkpoints cost writes but bound the replay loss."""
        faults = FaultPlan(failures=(WorkerFailure(19, 0),))
        tight = simulate_goodput(self.profile, self.plan, self.cluster,
                                 total_iterations=40, checkpoint_every=2,
                                 faults=faults)
        loose = simulate_goodput(self.profile, self.plan, self.cluster,
                                 total_iterations=40, checkpoint_every=20,
                                 faults=faults)
        assert tight.replayed_iterations < loose.replayed_iterations
        assert tight.checkpoint_time > loose.checkpoint_time

    def test_degraded_cost_model_validates_factor(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.degraded(0.0)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.degraded(2.0)


# ======================================================================
# reshard_logical_state unit behaviour
# ======================================================================
class TestReshardLogicalState:
    def test_mismatched_parents_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            reshard_logical_state({}, {"a": [0, 2]}, {"b": [0, 2]})

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            reshard_logical_state({}, {"a": [0, 4]}, {"a": [0, 2]})

    def test_missing_shard_rejected(self):
        state = {"a/part_0": np.zeros((2, 3), np.float32)}
        with pytest.raises(ValueError, match="missing"):
            reshard_logical_state(state, {"a": [0, 2, 4]}, {"a": [0, 4]})

    def test_disagreeing_non_row_slot_rejected(self):
        state = {
            "a/part_0": np.zeros((2, 3), np.float32),
            "a/part_1": np.zeros((2, 3), np.float32),
            "a/part_0/adam_step": np.array([1.0], np.float32),
            "a/part_1/adam_step": np.array([2.0], np.float32),
        }
        with pytest.raises(ValueError, match="disagree"):
            reshard_logical_state(state, {"a": [0, 2, 4]}, {"a": [0, 4]})

    def test_replicated_suffixes_derived_structurally_from_graph(self):
        builder = lm_builder(optimizer=lambda: AdamOptimizer(0.01))
        model = builder()
        layout = partition_layout(model.graph)
        suffixes = replicated_slot_suffixes(model.graph, layout)
        assert suffixes == {"embedding": {"adam_step"}}

    def test_explicit_replicated_map_overrides_shape_heuristic(self):
        # A 1-row-per-shard layout where a (1,)-shaped slot is shape-
        # ambiguous: the structural map says "replicate", so it must not
        # be split even though its leading dim matches the shard rows.
        state = {
            "a/part_0": np.array([1.0], np.float32),
            "a/part_1": np.array([2.0], np.float32),
            "a/part_0/counter": np.array([7.0], np.float32),
            "a/part_1/counter": np.array([7.0], np.float32),
        }
        out = reshard_logical_state(state, {"a": [0, 1, 2]}, {"a": [0, 2]},
                                    replicated={"a": {"counter"}})
        np.testing.assert_array_equal(out["a/part_0"], [1.0, 2.0])
        np.testing.assert_array_equal(out["a/part_0/counter"], [7.0])

    def test_scalar_slot_survives_heuristic_path(self):
        state = {
            "a/part_0": np.zeros((2, 3), np.float32),
            "a/part_1": np.zeros((2, 3), np.float32),
            "a/part_0/beta": np.float32(0.5),
            "a/part_1/beta": np.float32(0.5),
        }
        out = reshard_logical_state(state, {"a": [0, 2, 4]}, {"a": [0, 4]})
        np.testing.assert_array_equal(out["a/part_0/beta"], 0.5)

    def test_unpartitioned_names_pass_through_untouched(self):
        dense = np.arange(6, dtype=np.float32).reshape(2, 3)
        state = {
            "w": dense,
            "a/part_0": np.zeros((2, 3), np.float32),
            "a/part_1": np.ones((2, 3), np.float32),
        }
        out = reshard_logical_state(state, {"a": [0, 2, 4]},
                                    {"a": [0, 1, 2, 3, 4]})
        assert out["w"] is dense
        assert sorted(k for k in out if k.startswith("a/")) == [
            f"a/part_{p}" for p in range(4)
        ]


class TestMultiprocRescale:
    """The 4<->2 rescale bit-identity contract under the multiprocess
    execution backend: worker processes are respawned for the new
    replica count and the post-rescale trajectory matches an
    uninterrupted in-process run at the target size."""

    @pytest.mark.parametrize("plan_key", list(PLAN_BUILDERS))
    @pytest.mark.parametrize("direction", ["down", "up"])
    def test_rescale_matches_uninterrupted_inproc_run(self, plan_key,
                                                      direction):
        start, target = (C4, C2) if direction == "down" else (C2, C4)
        runner = make_elastic(plan_key=plan_key, cluster=start,
                              backend="multiproc")
        try:
            for i in range(2):
                runner.step(i)
            state = {k: v.copy() for k, v in runner.logical_state().items()}
            old_processes = list(runner.backend.processes)
            runner.rescale(target)
            # Rescale respawned the worker fleet for the new size.
            assert all(not p.is_alive() for p in old_processes)
            assert len(runner.backend.processes) == target.total_gpus
            final = [runner.step(i).replica_losses for i in range(2, 5)]
        finally:
            runner.close()

        model = MODEL_BUILDERS["lm"]()
        reference = DistributedRunner(model, target,
                                      PLAN_BUILDERS[plan_key](model.graph),
                                      seed=SEED + 7)
        reference._load_state(state)
        expected = [reference.step(i).replica_losses for i in range(2, 5)]
        assert final == expected, (plan_key, direction)

    def test_failed_rescale_keeps_multiproc_workers_alive(self):
        """Atomicity with processes: a rejected migration leaves the old
        worker fleet running and training still bit-correct."""
        runner = make_elastic(backend="multiproc")
        try:
            runner.step(0)
            want = make_elastic()  # inproc twin
            want.step(0)
            state = runner.logical_state()
            state["not/a/real/variable"] = np.zeros(1)
            with pytest.raises(ValueError, match="mismatched names"):
                runner.rescale(C2, state=state)
            assert all(p.is_alive() for p in runner.backend.processes)
            assert (runner.step(1).replica_losses
                    == want.step(1).replica_losses)
        finally:
            runner.close()

    def test_run_elastic_recovers_under_multiproc(self):
        """Fault recovery (restore-and-replay) reaches the fault-free
        losses with worker processes doing the execution."""
        fault_plan = FaultPlan(failures=(WorkerFailure(2, worker=1),))
        clean = make_elastic(checkpoint_every=1)
        want = [r.replica_losses for r in clean.run_elastic(4)]
        faulted = make_elastic(checkpoint_every=1, fault_plan=fault_plan,
                               backend="multiproc")
        try:
            got = [r.replica_losses for r in faulted.run_elastic(4)]
        finally:
            faulted.close()
        assert got == want
        assert len(faulted.recovery_log) == 1

    def test_rescale_preserves_configured_backend_instance(self):
        """A backend instance with custom configuration survives a
        rescale: the respawned fleet is built from backend.fresh(),
        not from a default-constructed registry entry."""
        from repro.core.backend import MultiprocBackend

        backend = MultiprocBackend(start_timeout=90.0, step_timeout=45.0)
        runner = make_elastic(backend=backend)
        try:
            runner.step(0)
            runner.rescale(C2)
            assert runner.backend is not backend
            assert isinstance(runner.backend, MultiprocBackend)
            assert runner.backend.start_timeout == 90.0
            assert runner.backend.step_timeout == 45.0
            runner.step(1)
        finally:
            runner.close()
