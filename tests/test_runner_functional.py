"""Functional-plane correctness: distributed training vs single-GPU.

The strongest guarantee the reproduction offers: for every architecture,
one synchronous distributed iteration equals (to float32 rounding) one
single-GPU step on the averaged gradients of the same per-replica batches,
and all architectures produce identical training trajectories.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import Session, gradients
from repro.nn.models import build_inception, build_lm, build_nmt, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer, MomentumOptimizer
from repro.tensor.sparse import IndexedSlices

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)
LR = 0.4
SEED = 11


def prepare(builder, **kwargs):
    model = builder(**kwargs)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(LR).update(gvs)
    return model, gvs


def lm_kwargs(partitions=3):
    return dict(builder=build_lm, batch_size=4, vocab_size=40, seq_len=3,
                emb_dim=8, hidden=10, num_partitions=partitions, seed=0)


def reference_sgd_step(builder_kwargs, num_replicas, iteration=0):
    """Single-GPU reference: average the per-shard gradients, apply SGD."""
    kwargs = dict(builder_kwargs)
    builder = kwargs.pop("builder")
    model, gvs = prepare(builder, **kwargs)
    sess = Session(model.graph, seed=SEED)
    shards = [model.dataset.shard(num_replicas, r)
              for r in range(num_replicas)]
    averaged = {}
    for r in range(num_replicas):
        feed = model.feed(shards[r].batch(model.batch_size, iteration))
        values = sess.run([gt for gt, _ in gvs], feed)
        for (gt, var), value in zip(gvs, values):
            if isinstance(value, IndexedSlices):
                value = value.to_dense()
            averaged[var.name] = (
                averaged.get(var.name, 0.0)
                + np.asarray(value, dtype=np.float64) / num_replicas
            )
    return {
        name: sess.read_variable(name) - LR * grad
        for name, grad in averaged.items()
    }


def distributed_state(runner):
    state = {}
    for name in runner.transformed.plan.methods:
        state[name] = runner.variable_value(name)
    return state


PLAN_BUILDERS = {
    "parallax": lambda g: hybrid_graph_plan(g),
    "tf_ps": lambda g: ps_graph_plan(g),
    "opt_ps": lambda g: ps_graph_plan(g, True, True, name="opt_ps"),
    "horovod": lambda g: ar_graph_plan(g),
}


class TestSingleStepEquivalence:
    @pytest.mark.parametrize("arch", list(PLAN_BUILDERS))
    def test_lm_step_matches_reference(self, arch):
        model, _ = prepare(**lm_kwargs())
        plan = PLAN_BUILDERS[arch](model.graph)
        runner = DistributedRunner(model, CLUSTER, plan, seed=SEED)
        runner.step(0)
        reference = reference_sgd_step(lm_kwargs(), runner.num_replicas)
        for name, expected in reference.items():
            got = runner.variable_value(name)
            np.testing.assert_allclose(got, expected, atol=1e-5,
                                       err_msg=f"{arch}:{name}")

    @pytest.mark.parametrize("arch", ["parallax", "horovod", "tf_ps"])
    def test_resnet_step_matches_reference(self, arch):
        kwargs = dict(builder=build_resnet, batch_size=4, num_features=8,
                      num_classes=3, width=8, num_blocks=1, seed=0)
        model, _ = prepare(**kwargs)
        plan = PLAN_BUILDERS[arch](model.graph)
        runner = DistributedRunner(model, CLUSTER, plan, seed=SEED)
        runner.step(0)
        reference = reference_sgd_step(kwargs, runner.num_replicas)
        for name, expected in reference.items():
            np.testing.assert_allclose(runner.variable_value(name), expected,
                                       atol=1e-5, err_msg=f"{arch}:{name}")


class TestArchitectureInvariance:
    def test_all_architectures_same_trajectory(self):
        """Synchronous training is architecture-independent: every plan
        yields the same loss sequence (paper section 6.2's correctness)."""
        trajectories = {}
        for arch, plan_fn in PLAN_BUILDERS.items():
            model, _ = prepare(**lm_kwargs())
            runner = DistributedRunner(model, CLUSTER, plan_fn(model.graph),
                                       seed=SEED)
            trajectories[arch] = [runner.step(i).mean_loss for i in range(4)]
        base = trajectories["parallax"]
        for arch, losses in trajectories.items():
            np.testing.assert_allclose(losses, base, rtol=1e-4,
                                       err_msg=arch)

    def test_replicas_stay_synchronized(self):
        model, _ = prepare(**lm_kwargs())
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph), seed=SEED)
        for i in range(3):
            runner.step(i)
        for name in runner.transformed.replica_variables:
            base = runner.replica_variable(0, name)
            for r in range(1, runner.num_replicas):
                np.testing.assert_array_equal(
                    base, runner.replica_variable(r, name),
                    err_msg=f"replica {r} diverged on {name}")

    def test_momentum_trajectories_match_across_architectures(self):
        losses_by_arch = {}
        for arch in ("parallax", "horovod"):
            model = build_nmt(batch_size=4, src_vocab=30, tgt_vocab=30,
                              src_len=2, tgt_len=2, emb_dim=6, hidden=6,
                              num_partitions=2, seed=1)
            with model.graph.as_default():
                gvs = gradients(model.loss)
                MomentumOptimizer(0.2, 0.9).update(gvs)
            plan = PLAN_BUILDERS[arch](model.graph)
            runner = DistributedRunner(model, CLUSTER, plan, seed=SEED)
            losses_by_arch[arch] = [runner.step(i).mean_loss
                                    for i in range(4)]
        np.testing.assert_allclose(losses_by_arch["parallax"],
                                   losses_by_arch["horovod"], rtol=1e-4)


class TestTraining:
    @pytest.mark.parametrize("builder,kwargs", [
        (build_resnet, dict(batch_size=8, num_features=16, num_classes=4,
                            width=16, num_blocks=1)),
        (build_inception, dict(batch_size=8, num_features=16, num_classes=4,
                               width=8, num_modules=1)),
    ])
    def test_dense_models_learn_distributed(self, builder, kwargs):
        model = builder(seed=0, **kwargs)
        with model.graph.as_default():
            gvs = gradients(model.loss)
            GradientDescentOptimizer(0.1).update(gvs)
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph), seed=SEED)
        first = runner.step(0).mean_loss
        for i in range(1, 25):
            last = runner.step(i).mean_loss
        assert last < first * 0.6

    def test_lm_perplexity_decreases(self):
        model, _ = prepare(**lm_kwargs())
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph), seed=SEED)
        first = runner.step(0).mean_loss
        for i in range(1, 30):
            last = runner.step(i).mean_loss
        assert np.exp(last) < np.exp(first)


class TestTranscriptAccounting:
    def iteration_bytes(self, plan_fn, partitions=3):
        model, _ = prepare(**lm_kwargs(partitions))
        runner = DistributedRunner(model, CLUSTER, plan_fn(model.graph),
                                   seed=SEED)
        runner.step(0)
        runner.transcript.clear()
        runner.step(1)
        return runner.transcript

    def test_local_aggregation_reduces_push_bytes(self):
        naive = self.iteration_bytes(lambda g: ps_graph_plan(g))
        opt = self.iteration_bytes(
            lambda g: ps_graph_plan(g, True, True, name="opt_ps"))
        naive_push = naive.total_network_bytes("edge/shard_lookup_grad") + \
            naive.total_network_bytes("edge/grad_add") + \
            naive.total_network_bytes("edge/vjp")
        opt_push = opt.total_network_bytes("edge/local_agg")
        assert opt_push < naive_push

    def test_hybrid_moves_fewer_bytes_than_gatherv(self):
        hybrid = self.iteration_bytes(hybrid_graph_plan)
        horovod = self.iteration_bytes(ar_graph_plan)
        # Sparse traffic: PS pulls/pushes vs full AllGatherv circulation.
        assert hybrid.total_network_bytes() < \
            horovod.total_network_bytes()

    def test_sparse_pull_bytes_bounded_by_batch_rows(self):
        """Each worker pulls at most batch*seq embedding rows per iter."""
        transcript = self.iteration_bytes(hybrid_graph_plan)
        pull = transcript.total_network_bytes("edge/shard_lookup")
        row_bytes = 8 * 4  # emb_dim * float32
        max_rows = 4 * 3   # batch * seq_len
        # 4 replicas, but only cross-machine pulls counted (<= all pulls).
        assert pull <= 4 * max_rows * row_bytes

    def test_allreduce_bytes_match_ring_formula(self):
        model, _ = prepare(**lm_kwargs())
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph), seed=SEED)
        runner.step(0)
        runner.transcript.clear()
        runner.step(1)
        w = sum(
            np.prod(model.graph.variables[name].shape) * 4
            for name in runner.transformed.replica_variables
        )
        n_workers = runner.num_replicas
        # Ring over 4 workers on 2 machines: 2 of 4 hops cross machines,
        # each hop carries chunk bytes; per-iteration cross bytes =
        # 2 hops * 2(N-1) steps * w/N.
        expected = 2 * 2 * (n_workers - 1) * w / n_workers
        measured = runner.transcript.total_network_bytes("allreduce")
        assert measured == pytest.approx(expected, rel=0.01)


class TestCheckpointing:
    def test_save_restore_roundtrip(self, tmp_path):
        model, _ = prepare(**lm_kwargs())
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph), seed=SEED)
        for i in range(3):
            runner.step(i)
        path = str(tmp_path / "ckpt.npz")
        runner.save(path)

        model2, _ = prepare(**lm_kwargs())
        runner2 = DistributedRunner(model2, CLUSTER,
                                    hybrid_graph_plan(model2.graph),
                                    seed=SEED + 99)
        runner2.restore(path)
        for name in runner.transformed.plan.methods:
            np.testing.assert_array_equal(runner.variable_value(name),
                                          runner2.variable_value(name))

    def test_training_resumes_identically(self, tmp_path):
        model, _ = prepare(**lm_kwargs())
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph), seed=SEED)
        for i in range(2):
            runner.step(i)
        path = str(tmp_path / "ckpt.npz")
        runner.save(path)
        expected = runner.step(2).mean_loss

        model2, _ = prepare(**lm_kwargs())
        runner2 = DistributedRunner(model2, CLUSTER,
                                    hybrid_graph_plan(model2.graph), seed=0)
        runner2.restore(path)
        assert runner2.step(2).mean_loss == pytest.approx(expected,
                                                          rel=1e-5)

    def test_save_requires_path(self):
        model, _ = prepare(**lm_kwargs())
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph))
        with pytest.raises(ValueError):
            runner.save()

    def test_variable_named_like_replica_prefix_roundtrips(self, tmp_path):
        """Regression: a user variable named e.g. ``report/w`` must not be
        mistaken for a ``rep<k>/`` replica copy.  It used to be dropped
        from checkpoints, and restoring alongside a variable named ``w``
        crashed on ``int("ort")``."""
        from repro.graph.graph import Graph
        from repro.graph.ops import matmul, mse_loss, placeholder
        from repro.graph.variables import get_variable
        from repro.nn.datasets import Dataset

        class _RegressionData(Dataset):
            def __init__(self):
                rng = np.random.default_rng(3)
                self.x = rng.normal(size=(32, 3)).astype(np.float32)
                self.y = rng.normal(size=(32, 1)).astype(np.float32)

            def __len__(self):
                return 32

            def example(self, index):
                return self.x[index], self.y[index]

        def build():
            from repro.nn.models.common import BuiltModel

            graph = Graph()
            with graph.as_default():
                x = placeholder((4, 3), name="x")
                target = placeholder((4, 1), name="target")
                w = get_variable("w", (3, 1))
                report_w = get_variable("report/w", (1, 1))
                pred = matmul(matmul(x, w.tensor, name="pred"),
                              report_w.tensor, name="pred/scaled")
                loss = mse_loss(pred, target)
                gvs = gradients(loss)
                GradientDescentOptimizer(0.1).update(gvs)
            return BuiltModel(graph=graph, loss=loss,
                              placeholders={"x": x, "target": target},
                              dataset=_RegressionData(), batch_size=4,
                              name="report_regression")

        model = build()
        runner = DistributedRunner(model, CLUSTER,
                                   ps_graph_plan(model.graph), seed=SEED)
        for i in range(2):
            runner.step(i)
        state = runner.logical_state()
        assert "report/w" in state and "w" in state
        path = str(tmp_path / "report.npz")
        runner.save(path)

        model2 = build()
        restored = DistributedRunner(model2, CLUSTER,
                                     ps_graph_plan(model2.graph),
                                     seed=SEED + 7)
        restored.restore(path)
        for name in ("w", "report/w"):
            np.testing.assert_array_equal(runner.variable_value(name),
                                          restored.variable_value(name))


class TestRestoreStrictness:
    """restore() must not silently load a partial checkpoint."""

    def make_runner(self):
        model, _ = prepare(**lm_kwargs())
        return DistributedRunner(model, CLUSTER,
                                 hybrid_graph_plan(model.graph), seed=SEED)

    def test_missing_names_rejected_with_listing(self, tmp_path):
        runner = self.make_runner()
        state = runner.logical_state()
        dropped = sorted(state)[0]
        del state[dropped]
        path = str(tmp_path / "partial.npz")
        np.savez(path, **state)
        runner2 = self.make_runner()
        with pytest.raises(ValueError) as err:
            runner2.restore(path)
        assert dropped in str(err.value)
        assert "missing" in str(err.value)

    def test_unexpected_names_rejected_with_listing(self, tmp_path):
        runner = self.make_runner()
        state = runner.logical_state()
        state["not/a/graph/var"] = np.zeros(3, dtype=np.float32)
        path = str(tmp_path / "extra.npz")
        np.savez(path, **state)
        runner2 = self.make_runner()
        with pytest.raises(ValueError) as err:
            runner2.restore(path)
        assert "not/a/graph/var" in str(err.value)
        assert "unexpected" in str(err.value)

    def test_non_strict_loads_the_intersection(self, tmp_path):
        runner = self.make_runner()
        for i in range(2):
            runner.step(i)
        state = runner.logical_state()
        dropped = sorted(state)[0]
        del state[dropped]
        state["stray"] = np.zeros(2, dtype=np.float32)
        path = str(tmp_path / "partial.npz")
        np.savez(path, **state)
        runner2 = self.make_runner()
        before = runner2.variable_value(dropped)
        runner2.restore(path, strict=False)
        # Matching names loaded, the missing one kept its initial value.
        kept = sorted(set(state) - {"stray"})[0]
        np.testing.assert_array_equal(runner2.variable_value(kept),
                                      runner.variable_value(kept))
        np.testing.assert_array_equal(runner2.variable_value(dropped),
                                      before)

    def test_exact_checkpoint_still_roundtrips_strict(self, tmp_path):
        runner = self.make_runner()
        runner.step(0)
        path = str(tmp_path / "full.npz")
        runner.save(path)
        runner2 = self.make_runner()
        runner2.restore(path)  # strict=True default; must not raise
        for name in runner.transformed.plan.methods:
            np.testing.assert_array_equal(runner.variable_value(name),
                                          runner2.variable_value(name))
