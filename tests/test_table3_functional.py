"""Functional-plane verification of the paper's Table 3 transfer model.

One worker per machine (the paper's setting), real execution, real byte
accounting: the per-machine network transfer recorded by the distributed
engine must match the closed forms:

    PS, dense variable:   server machine moves 2 w (N-1) bytes
    PS, sparse variable:  server machine moves 2 alpha w (N-1) bytes
    AR, dense variable:   every machine moves 4 w (N-1)/N bytes
    AR, sparse variable:  every machine moves 2 alpha w (N-1) bytes
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import ar_graph_plan, ps_graph_plan
from repro.graph import gradients, ops
from repro.graph.graph import Graph
from repro.graph.variables import Variable
from repro.nn import layers
from repro.nn.datasets import SyntheticTextDataset
from repro.nn.models.common import BuiltModel
from repro.nn.optimizers import GradientDescentOptimizer

N = 3  # machines, one GPU each
CLUSTER = ClusterSpec(num_machines=N, gpus_per_machine=1)

VOCAB = 24
EMB_DIM = 4
BATCH = 5
DENSE_SHAPE = (EMB_DIM, VOCAB)


def build_model():
    """One sparse embedding + one dense weight, nothing else."""
    ds = SyntheticTextDataset(size=64, vocab_size=VOCAB, seq_len=1, seed=3)
    g = Graph()
    with g.as_default():
        tokens = ops.placeholder((BATCH, 1), dtype="int64", name="tokens")
        targets = ops.placeholder((BATCH, 1), dtype="int64", name="targets")
        ids = ops.reshape(tokens, (BATCH,), name="ids")
        emb, _ = layers.embedding(ids, VOCAB, EMB_DIM, name="emb")
        w = Variable("w", DENSE_SHAPE)
        logits = ops.matmul(emb, w.tensor, name="logits")
        labels = ops.reshape(targets, (BATCH,), name="labels")
        labels6 = ops.identity(labels, name="labels6")
        loss = ops.softmax_xent(logits, labels6, name="loss")
        gvs = gradients(loss)
        GradientDescentOptimizer(0.1).update(gvs)
    return BuiltModel(graph=g, loss=loss,
                      placeholders={"tokens": tokens, "targets": targets},
                      dataset=ds, batch_size=BATCH, name="table3")


def exact_bytes(transcript, tag):
    """Network bytes for one exact tag (prefix filtering would also match
    'edge/shard_lookup_grad' when asking for 'edge/shard_lookup')."""
    return sum(t.nbytes for t in transcript.filter() if t.tag == tag)


def batch_row_stats(runner, iteration):
    """(requested rows, unique rows) per worker for the iteration."""
    requested, unique = [], []
    for r in range(N):
        tokens, _ = runner.shards[r].batch(BATCH, iteration)
        flat = tokens.reshape(-1)
        requested.append(flat.size)
        unique.append(np.unique(flat).size)
    return requested, unique


@pytest.fixture()
def ps_runner():
    model = build_model()
    # Smart placement so the only flows are pull/push to the owning server.
    plan = ps_graph_plan(model.graph, local_aggregation=False,
                         smart_placement=True)
    return DistributedRunner(model, CLUSTER, plan, seed=0)


def run_and_capture(runner, iteration=1):
    runner.step(0)
    runner.transcript.clear()
    runner.step(iteration)
    return runner.transcript


class TestPSDense:
    def test_server_moves_2w_times_n_minus_1(self, ps_runner):
        transcript = run_and_capture(ps_runner)
        w_bytes = int(np.prod(DENSE_SHAPE)) * 4
        server = ps_runner.transformed.ps_placement["w"]
        pull_out = sum(
            t.nbytes for t in transcript.filter("edge/read_var")
            if t.src_machine == server
        )
        push_in = sum(
            t.nbytes for t in transcript.filter()
            if t.dst_machine == server and t.tag in
            ("edge/vjp", "edge/grad_add")
        )
        assert pull_out == w_bytes * (N - 1)
        assert push_in == w_bytes * (N - 1)


class TestPSSparse:
    def test_pull_bytes_are_requested_rows(self, ps_runner):
        transcript = run_and_capture(ps_runner)
        requested, _ = batch_row_stats(ps_runner, 1)
        server = ps_runner.transformed.ps_placement["emb"]
        row_bytes = EMB_DIM * 4
        expected = sum(rows * row_bytes for r, rows in enumerate(requested)
                       if r != server)
        measured = exact_bytes(transcript, "edge/shard_lookup")
        assert measured == expected

    def test_push_bytes_are_gradient_rows(self, ps_runner):
        transcript = run_and_capture(ps_runner)
        requested, _ = batch_row_stats(ps_runner, 1)
        server = ps_runner.transformed.ps_placement["emb"]
        row_bytes = EMB_DIM * 4
        expected = sum(rows * row_bytes for r, rows in enumerate(requested)
                       if r != server)
        measured = transcript.total_network_bytes("edge/shard_lookup_grad")
        assert measured == expected

    def test_sparse_traffic_well_below_dense_variable_cost(self, ps_runner):
        """The whole point: alpha*w << w for the embedding."""
        transcript = run_and_capture(ps_runner)
        emb_bytes = VOCAB * EMB_DIM * 4
        sparse_total = (
            exact_bytes(transcript, "edge/shard_lookup")
            + exact_bytes(transcript, "edge/shard_lookup_grad")
        )
        assert sparse_total < 2 * emb_bytes * (N - 1) * 0.5


class TestARDense:
    def test_per_machine_bytes_match_4w_fraction(self):
        model = build_model()
        plan = ar_graph_plan(model.graph)
        runner = DistributedRunner(model, CLUSTER, plan, seed=0)
        transcript = run_and_capture(runner)
        w_bytes = int(np.prod(DENSE_SHAPE)) * 4
        loads = transcript.bytes_per_machine("allreduce")
        expected_per_direction = 2 * (N - 1) * w_bytes / N
        for m in range(N):
            assert loads[m]["out"] == pytest.approx(expected_per_direction,
                                                    rel=0.07)
            assert loads[m]["in"] == pytest.approx(expected_per_direction,
                                                   rel=0.07)


class TestARSparse:
    def test_per_machine_gatherv_bytes(self):
        """In the ring schedule, machine m forwards the payloads of origins
        m, m-1, ..., m-(N-2): out bytes = total - payload[(m+1) % N]."""
        model = build_model()
        plan = ar_graph_plan(model.graph)
        runner = DistributedRunner(model, CLUSTER, plan, seed=0)
        transcript = run_and_capture(runner)
        requested, _ = batch_row_stats(runner, 1)
        row_bytes = EMB_DIM * 4
        payload = [r * row_bytes for r in requested]
        total_payload = sum(payload)
        loads = transcript.bytes_per_machine("allgatherv")
        for m in range(N):
            expected_out = total_payload - payload[(m + 1) % N]
            assert loads[m]["out"] == expected_out

    def test_total_gatherv_bytes_exact(self):
        """Every origin's payload crosses N-1 machine boundaries."""
        model = build_model()
        plan = ar_graph_plan(model.graph)
        runner = DistributedRunner(model, CLUSTER, plan, seed=0)
        transcript = run_and_capture(runner)
        requested, _ = batch_row_stats(runner, 1)
        row_bytes = EMB_DIM * 4
        total_payload = sum(r * row_bytes for r in requested)
        measured = transcript.total_network_bytes("allgatherv")
        assert measured == (N - 1) * total_payload
