"""Reverse-mode autodiff: numeric checks, sparse grads, accumulation."""

import numpy as np
import pytest

from repro.graph import Graph, Session, gradients, ops
from repro.graph.gradients import grad_tensor_is_sparse
from repro.graph.variables import PartitionedVariable, Variable
from repro.tensor.sparse import IndexedSlices


def numeric_grad(sess, loss, var_name, feed, eps=1e-3):
    base = sess.read_variable(var_name).copy()
    grad = np.zeros_like(base, dtype=np.float64)
    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        for sign in (+1, -1):
            perturbed = base.copy()
            perturbed[idx] += sign * eps
            sess.write_variable(var_name, perturbed)
            val = float(sess.run(loss, feed))
            grad[idx] += sign * val / (2 * eps)
        it.iternext()
    sess.write_variable(var_name, base)
    return grad


def check_all_grads(graph, loss, feed, atol=2e-3):
    with graph.as_default():
        gvs = gradients(loss)
    sess = Session(graph, seed=0)
    for grad_tensor, var in gvs:
        analytic = sess.run(grad_tensor, feed)
        if isinstance(analytic, IndexedSlices):
            analytic = analytic.to_dense()
        numeric = numeric_grad(sess, loss, var.name, feed)
        np.testing.assert_allclose(analytic, numeric, atol=atol,
                                   err_msg=f"grad mismatch for {var.name}")
    return gvs, sess


class TestDenseGradients:
    def test_matmul_bias_relu_chain(self):
        g = Graph()
        rng = np.random.default_rng(0)
        with g.as_default():
            x = ops.placeholder((3, 4), name="x")
            w = Variable("w", (4, 5))
            b = Variable("b", (5,))
            labels = ops.placeholder((3,), dtype="int64", name="labels")
            h = ops.relu(ops.add_bias(ops.matmul(x, w.tensor), b.tensor))
            loss = ops.softmax_xent(h, labels)
        feed = {"x": rng.standard_normal((3, 4)).astype(np.float32),
                "labels": np.array([0, 1, 2])}
        check_all_grads(g, loss, feed)

    def test_mul_tanh_sigmoid_mean(self):
        g = Graph()
        rng = np.random.default_rng(1)
        with g.as_default():
            x = ops.placeholder((2, 3), name="x")
            a = Variable("a", (2, 3))
            b = Variable("b", (2, 3))
            out = ops.mul(ops.tanh(a.tensor), ops.sigmoid(ops.add(b.tensor, x)))
            loss = ops.mean(out)
        feed = {"x": rng.standard_normal((2, 3)).astype(np.float32)}
        check_all_grads(g, loss, feed)

    def test_concat_slice_reshape_scale(self):
        g = Graph()
        with g.as_default():
            a = Variable("a", (2, 3))
            b = Variable("b", (2, 2))
            cat = ops.concat([a.tensor, b.tensor], axis=1)
            piece = ops.slice_axis(cat, 1, 4, axis=1)
            flat = ops.reshape(piece, (6,))
            loss = ops.mean(ops.scale(ops.mul(flat, flat), 3.0))
        check_all_grads(g, loss, {})

    def test_fan_out_accumulates(self):
        """A tensor consumed twice must receive the sum of both paths."""
        g = Graph()
        with g.as_default():
            a = Variable("a", (4,),
                         initializer=np.array([1.0, 2.0, 3.0, 4.0],
                                              dtype=np.float32))
            double = ops.add(a.tensor, a.tensor)
            loss = ops.mean(double)
        with g.as_default():
            gvs = gradients(loss)
        grad = Session(g).run(gvs[0][0], {})
        np.testing.assert_allclose(grad, np.full(4, 0.5), rtol=1e-6)

    def test_mse_loss(self):
        g = Graph()
        rng = np.random.default_rng(2)
        with g.as_default():
            target = ops.placeholder((3, 2), name="t")
            w = Variable("w", (3, 2))
            loss = ops.mse_loss(w.tensor, target)
        feed = {"t": rng.standard_normal((3, 2)).astype(np.float32)}
        check_all_grads(g, loss, feed)


class TestSparseGradients:
    def build_embedding_model(self, partitions=1):
        g = Graph()
        with g.as_default():
            ids = ops.placeholder((5,), dtype="int64", name="ids")
            labels = ops.placeholder((5,), dtype="int64", name="labels")
            if partitions > 1:
                emb = PartitionedVariable("emb", (12, 4), partitions)
                rows = emb.lookup(ids)
            else:
                emb_var = Variable("emb", (12, 4))
                rows = ops.gather(emb_var.tensor, ids)
            w = Variable("w", (4, 3))
            loss = ops.softmax_xent(ops.matmul(rows, w.tensor), labels)
        feed = {"ids": np.array([0, 3, 3, 7, 11]),
                "labels": np.array([0, 1, 2, 0, 1])}
        return g, loss, feed

    def test_gather_grad_is_sparse_typed(self):
        g, loss, feed = self.build_embedding_model()
        with g.as_default():
            gvs = gradients(loss)
        by_name = {v.name: gt for gt, v in gvs}
        assert grad_tensor_is_sparse(by_name["emb"])
        assert not grad_tensor_is_sparse(by_name["w"])

    def test_gather_grad_value_matches_numeric(self):
        g, loss, feed = self.build_embedding_model()
        check_all_grads(g, loss, feed)

    def test_partitioned_grads_match_numeric(self):
        g, loss, feed = self.build_embedding_model(partitions=3)
        gvs, _ = check_all_grads(g, loss, feed)
        sparse_flags = [grad_tensor_is_sparse(gt) for gt, v in gvs
                        if v.name.startswith("emb/")]
        assert sparse_flags and all(sparse_flags)

    def test_sparse_grad_runtime_type(self):
        g, loss, feed = self.build_embedding_model()
        with g.as_default():
            gvs = gradients(loss)
        emb_grad = [gt for gt, v in gvs if v.name == "emb"][0]
        value = Session(g).run(emb_grad, feed)
        assert isinstance(value, IndexedSlices)
        assert sorted(set(value.indices)) == [0, 3, 7, 11]

    def test_embedding_used_twice_concatenates(self):
        """Sparse gradients from two gathers of one variable concatenate
        (TF semantics), preserving all contributions."""
        g = Graph()
        with g.as_default():
            emb = Variable("emb", (6, 2))
            ids_a = ops.constant(np.array([1, 2], dtype=np.int64))
            ids_b = ops.constant(np.array([2, 3], dtype=np.int64))
            both = ops.concat([ops.gather(emb.tensor, ids_a),
                               ops.gather(emb.tensor, ids_b)], axis=0)
            loss = ops.mean(both)
        with g.as_default():
            gvs = gradients(loss)
        value = Session(g).run(gvs[0][0], {})
        assert isinstance(value, IndexedSlices)
        assert value.num_rows == 4  # concatenated, not combined
        dense = value.to_dense()
        assert dense[2].sum() == pytest.approx(2 * dense[1].sum(), rel=1e-5)


class TestMechanics:
    def test_loss_must_be_scalar(self):
        g = Graph()
        with g.as_default():
            v = Variable("v", (2,))
            with pytest.raises(ValueError, match="scalar"):
                gradients(v.tensor)

    def test_gradient_info_recorded(self):
        g = Graph()
        with g.as_default():
            v = Variable("v", (3,))
            loss = ops.mean(v.tensor)
            gvs = gradients(loss)
        assert g.gradient_info["v"] == gvs[0][0].name

    def test_unused_variable_skipped(self):
        g = Graph()
        with g.as_default():
            used = Variable("used", (2,))
            Variable("unused", (2,))
            loss = ops.mean(used.tensor)
            gvs = gradients(loss)
        assert [v.name for _, v in gvs] == ["used"]

    def test_non_trainable_excluded_by_default(self):
        g = Graph()
        with g.as_default():
            a = Variable("a", (2,))
            b = Variable("b", (2,), trainable=False)
            loss = ops.mean(ops.add(a.tensor, b.tensor))
            gvs = gradients(loss)
        assert [v.name for _, v in gvs] == ["a"]

    def test_explicit_variable_list(self):
        g = Graph()
        with g.as_default():
            a = Variable("a", (2,))
            b = Variable("b", (2,))
            loss = ops.mean(ops.add(a.tensor, b.tensor))
            gvs = gradients(loss, [b])
        assert [v.name for _, v in gvs] == ["b"]

    def test_labels_receive_no_gradient(self):
        g = Graph()
        with g.as_default():
            w = Variable("w", (2, 3))
            labels = ops.constant(np.array([0, 1], dtype=np.int64))
            loss = ops.softmax_xent(w.tensor, labels)
            gradients(loss)
        # No grad op should have been created for the labels input.
        for op in g.operations:
            if op.op_type == "vjp":
                assert op.attrs["input_index"] != 1 or \
                    g.get_op(op.attrs["forward_op"]).op_type != "softmax_xent"

    def test_vjp_cache_shared_within_run(self):
        """matmul's two vjp nodes share one underlying VJP computation."""
        g = Graph()
        with g.as_default():
            a = Variable("a", (2, 2))
            b = Variable("b", (2, 2))
            loss = ops.mean(ops.matmul(a.tensor, b.tensor))
            gvs = gradients(loss)
        sess = Session(g)
        sess.run([gt for gt, _ in gvs], {})
        cache = sess.run_cache.get("vjp", {})
        # one cache entry per (forward op, upstream) pair, reused by both
        # input-index nodes
        assert len(cache) >= 1
