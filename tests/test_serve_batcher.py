"""Property tests on the request batcher: under random arrival
patterns, knobs, and submitter interleavings, no request is ever lost,
duplicated, starved, or answered with another requester's result, and
every executed batch respects ``max_batch``.

The run_batch functions here are pure transforms tagging each input, so
result-routing violations are observable as value mismatches rather
than flaky shape errors.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import BatcherClosed, RequestBatcher


def _tag(examples):
    return [("seen", x) for x in examples]


# ----------------------------------------------------------------------
# Routing and conservation
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(), min_size=0, max_size=40),
       max_batch=st.integers(1, 9),
       max_delay_ms=st.floats(0.0, 3.0))
def test_every_request_answered_with_its_own_result(values, max_batch,
                                                    max_delay_ms):
    batcher = RequestBatcher(_tag, max_batch=max_batch,
                             max_delay_ms=max_delay_ms)
    try:
        futures = [batcher.submit(v) for v in values]
    finally:
        batcher.close()
    assert [f.result(timeout=30) for f in futures] == \
        [("seen", v) for v in values]
    assert sum(size for size, _ in batcher.batch_log) == len(values)
    assert all(1 <= size <= max_batch for size, _ in batcher.batch_log)


@settings(max_examples=20, deadline=None)
@given(per_thread=st.lists(
    st.lists(st.integers(), min_size=1, max_size=10),
    min_size=2, max_size=4))
def test_concurrent_submitters_never_cross_results(per_thread):
    """Requests from racing threads each get their own tagged result."""
    batcher = RequestBatcher(_tag, max_batch=4, max_delay_ms=1.0)
    collected = {}

    def submitter(tid, values):
        futures = [batcher.submit((tid, v)) for v in values]
        collected[tid] = [f.result(timeout=30) for f in futures]

    threads = [threading.Thread(target=submitter, args=(tid, values))
               for tid, values in enumerate(per_thread)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        batcher.close()
    for tid, values in enumerate(per_thread):
        assert collected[tid] == [("seen", (tid, v)) for v in values]


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 12), max_batch=st.integers(1, 4))
def test_close_flushes_everything_queued(n, max_batch):
    """close() answers every accepted request, in <= max_batch chunks."""
    release = threading.Event()

    def slow_tag(examples):
        release.wait(timeout=30)
        return _tag(examples)

    batcher = RequestBatcher(slow_tag, max_batch=max_batch,
                             max_delay_ms=0.0)
    futures = [batcher.submit(i) for i in range(n)]
    release.set()
    batcher.close()
    assert [f.result(timeout=30) for f in futures] == \
        [("seen", i) for i in range(n)]
    assert all(size <= max_batch for size, _ in batcher.batch_log)


# ----------------------------------------------------------------------
# Starvation and delay bounds
# ----------------------------------------------------------------------
def test_lone_request_is_not_starved():
    """A single request launches once its delay window expires -- no
    companion traffic needed."""
    batcher = RequestBatcher(_tag, max_batch=64, max_delay_ms=5.0)
    try:
        start = time.monotonic()
        result = batcher.submit("solo").result(timeout=30)
        elapsed = time.monotonic() - start
        assert result == ("seen", "solo")
        assert elapsed < 5.0, "lone request waited far past the bound"
    finally:
        batcher.close()


def test_full_batch_launches_before_the_delay_expires():
    batcher = RequestBatcher(_tag, max_batch=2, max_delay_ms=10_000.0)
    try:
        futures = [batcher.submit(i) for i in range(2)]
        start = time.monotonic()
        assert [f.result(timeout=30) for f in futures] == \
            [("seen", 0), ("seen", 1)]
        assert time.monotonic() - start < 30.0
        assert batcher.batch_log[0][0] == 2
    finally:
        batcher.close()


# ----------------------------------------------------------------------
# Failure semantics and lifecycle
# ----------------------------------------------------------------------
def test_execution_error_fans_out_to_every_future():
    def broken(examples):
        raise RuntimeError("kaboom")

    batcher = RequestBatcher(broken, max_batch=4, max_delay_ms=1.0)
    try:
        futures = [batcher.submit(i) for i in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="kaboom"):
                future.result(timeout=30)
    finally:
        batcher.close()


def test_result_length_mismatch_is_an_error():
    def short(examples):
        return examples[:-1]

    batcher = RequestBatcher(short, max_batch=2, max_delay_ms=0.0)
    try:
        futures = [batcher.submit(i) for i in range(2)]
        for future in futures:
            with pytest.raises(RuntimeError, match="results"):
                future.result(timeout=30)
    finally:
        batcher.close()


def test_submit_after_close_raises():
    batcher = RequestBatcher(_tag)
    batcher.close()
    with pytest.raises(BatcherClosed):
        batcher.submit(1)
    batcher.close()  # idempotent


def test_rejects_bad_knobs():
    with pytest.raises(ValueError):
        RequestBatcher(_tag, max_batch=0)
    with pytest.raises(ValueError):
        RequestBatcher(_tag, max_delay_ms=-1.0)
