"""Variables, partitioned variables, and the variable store."""

import numpy as np
import pytest

from repro.graph import Graph, Session, ops
from repro.graph.session import VariableStore, variable_rng
from repro.graph.variables import (
    PartitionedVariable,
    Variable,
    get_variable,
    glorot_initializer,
    normal_initializer,
    partition_offsets,
    zeros_initializer,
)


class TestVariable:
    def test_read_through_session(self):
        g = Graph()
        with g.as_default():
            v = Variable("v", (2, 2), initializer=np.eye(2, dtype=np.float32))
        np.testing.assert_array_equal(Session(g).run(v.tensor), np.eye(2))

    def test_array_initializer_shape_checked(self):
        g = Graph()
        with g.as_default():
            with pytest.raises(ValueError):
                Variable("v", (2, 2), initializer=np.zeros(3, np.float32))

    def test_registered_in_graph(self):
        g = Graph()
        with g.as_default():
            v = get_variable("v", (3,))
        assert g.variables["v"] is v

    def test_nbytes(self):
        g = Graph()
        with g.as_default():
            v = Variable("v", (10, 10))
        assert v.nbytes == 400
        assert v.num_elements == 100

    def test_name_uniquified(self):
        g = Graph()
        with g.as_default():
            a = Variable("v", (1,))
            b = Variable("v", (1,))
        assert a.name == "v" and b.name == "v_1"
        assert set(g.variables) == {"v", "v_1"}


class TestInitializers:
    def test_zeros(self):
        assert not zeros_initializer((3, 3), np.random.default_rng(0)).any()

    def test_normal_stddev(self):
        vals = normal_initializer(0.5)((10000,), np.random.default_rng(0))
        assert abs(vals.std() - 0.5) < 0.02

    def test_glorot_bounds(self):
        vals = glorot_initializer()((100, 100), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert vals.min() >= -limit and vals.max() <= limit


class TestVariableRng:
    def test_deterministic(self):
        a = variable_rng("w", 7).standard_normal(4)
        b = variable_rng("w", 7).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_replica_prefix_invariant(self):
        a = variable_rng("rep0/w", 7).standard_normal(4)
        b = variable_rng("rep13/w", 7).standard_normal(4)
        c = variable_rng("w", 7).standard_normal(4)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)

    def test_different_names_differ(self):
        a = variable_rng("w1", 7).standard_normal(4)
        b = variable_rng("w2", 7).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = variable_rng("w", 7).standard_normal(4)
        b = variable_rng("w", 8).standard_normal(4)
        assert not np.array_equal(a, b)


class TestVariableStore:
    def make_graph(self):
        g = Graph()
        with g.as_default():
            Variable("a", (2,))
            Variable("b", (3,))
        return g

    def test_snapshot_and_load(self):
        g = self.make_graph()
        store = VariableStore(g, seed=0)
        snap = store.snapshot()
        store.write("a", np.zeros(2, dtype=np.float32))
        store.load(snap)
        np.testing.assert_array_equal(store.read("a"), snap["a"])

    def test_write_shape_checked(self):
        store = VariableStore(self.make_graph())
        with pytest.raises(ValueError):
            store.write("a", np.zeros(5))

    def test_unknown_name_rejected(self):
        store = VariableStore(self.make_graph())
        with pytest.raises(KeyError):
            store.read("nope")
        with pytest.raises(KeyError):
            store.write("nope", np.zeros(1))

    def test_names_filter(self):
        g = self.make_graph()
        store = VariableStore(g, names=["a"])
        assert store.names() == ["a"]
        with pytest.raises(KeyError):
            store.read("b")

    def test_same_seed_same_values_across_stores(self):
        g = self.make_graph()
        s1, s2 = VariableStore(g, seed=3), VariableStore(g, seed=3)
        np.testing.assert_array_equal(s1.read("a"), s2.read("a"))


class TestPartitionOffsets:
    def test_even_split(self):
        assert partition_offsets(10, 2) == [0, 5, 10]

    def test_remainder_goes_to_first(self):
        assert partition_offsets(10, 3) == [0, 4, 7, 10]

    def test_one_partition(self):
        assert partition_offsets(7, 1) == [0, 7]

    def test_partitions_equal_rows(self):
        assert partition_offsets(3, 3) == [0, 1, 2, 3]


class TestPartitionedVariable:
    def test_shards_created(self):
        g = Graph()
        with g.as_default():
            pv = PartitionedVariable("emb", (10, 4), 3)
        assert len(pv.partitions) == 3
        assert [p.shape for p in pv.partitions] == [(4, 4), (3, 4), (3, 4)]
        assert pv.num_elements == 40

    def test_shard_partition_info(self):
        g = Graph()
        with g.as_default():
            pv = PartitionedVariable("emb", (10, 4), 2)
        info = pv.partitions[1].partition_info
        assert info["parent"] == "emb"
        assert info["index"] == 1
        assert info["row_offset"] == 5

    def test_too_many_partitions_rejected(self):
        g = Graph()
        with g.as_default():
            with pytest.raises(ValueError):
                PartitionedVariable("emb", (3, 4), 5)

    def test_scalar_rejected(self):
        g = Graph()
        with g.as_default():
            with pytest.raises(ValueError):
                PartitionedVariable("emb", (), 1)

    def test_registered_in_collection(self):
        g = Graph()
        with g.as_default():
            pv = PartitionedVariable("emb", (10, 4), 2)
        assert g.get_collection("partitioned_variables") == [pv]

    def test_array_initializer_split_across_shards(self):
        g = Graph()
        full = np.arange(40, dtype=np.float32).reshape(10, 4)
        with g.as_default():
            pv = PartitionedVariable("emb", (10, 4), 2, initializer=full)
        sess = Session(g)
        np.testing.assert_array_equal(sess.read_variable("emb/part_0"),
                                      full[:5])
        np.testing.assert_array_equal(sess.read_variable("emb/part_1"),
                                      full[5:])

    def test_lookup_equals_unpartitioned_gather(self):
        full = np.arange(48, dtype=np.float32).reshape(12, 4)
        ids_value = np.array([0, 11, 5, 5, 3], dtype=np.int64)

        g1 = Graph()
        with g1.as_default():
            v = Variable("emb", (12, 4), initializer=full)
            ids = ops.constant(ids_value)
            out1 = ops.gather(v.tensor, ids)
        ref = Session(g1).run(out1)

        for partitions in (1, 2, 3, 5, 12):
            g2 = Graph()
            with g2.as_default():
                pv = PartitionedVariable("emb", (12, 4), partitions,
                                         initializer=full)
                ids2 = ops.constant(ids_value)
                out2 = pv.lookup(ids2)
            got = Session(g2).run(out2)
            np.testing.assert_array_equal(got, ref)

    def test_lookup_multidim_ids(self):
        full = np.arange(24, dtype=np.float32).reshape(6, 4)
        g = Graph()
        with g.as_default():
            pv = PartitionedVariable("emb", (6, 4), 2, initializer=full)
            ids = ops.constant(np.array([[0, 5], [2, 2]], dtype=np.int64))
            out = pv.lookup(ids)
        value = Session(g).run(out)
        assert value.shape == (2, 2, 4)
        np.testing.assert_array_equal(value[0, 1], full[5])
