"""Fluid network model: max-min fairness and flow completion times."""

import pytest

from repro.cluster.network import (
    Flow,
    flows_from_matrix,
    maxmin_rates,
    simulate_flows,
)

BW = 100.0  # bytes/sec for readable arithmetic


def caps(machines, bw=BW):
    out = {}
    for m in machines:
        out[("out", m)] = bw
        out[("in", m)] = bw
    return out


class TestMaxminRates:
    def test_single_flow_gets_full_bandwidth(self):
        flows = [Flow(0, 1, 100)]
        assert maxmin_rates(flows, caps([0, 1])) == [BW]

    def test_shared_egress_split_equally(self):
        flows = [Flow(0, 1, 100), Flow(0, 2, 100)]
        assert maxmin_rates(flows, caps([0, 1, 2])) == [BW / 2, BW / 2]

    def test_unconstrained_flow_takes_leftover(self):
        # Flows 0->1 and 0->2 share machine 0 egress; flow 3->2 then shares
        # machine 2 ingress with flow 0->2 but can use the slack.
        flows = [Flow(0, 1, 100), Flow(0, 2, 100), Flow(3, 2, 100)]
        rates = maxmin_rates(flows, caps([0, 1, 2, 3]))
        assert rates[0] == pytest.approx(BW / 2)
        assert rates[1] == pytest.approx(BW / 2)
        assert rates[2] == pytest.approx(BW / 2)

    def test_incast_shares_ingress(self):
        flows = [Flow(m, 0, 100) for m in range(1, 5)]
        rates = maxmin_rates(flows, caps(range(5)))
        assert rates == [BW / 4] * 4

    def test_missing_capacity_raises(self):
        with pytest.raises(KeyError):
            maxmin_rates([Flow(0, 9, 10)], caps([0]))

    def test_zero_capacity_yields_zero_rates(self):
        """A dead NIC (explicit zero capacity) starves its flows without
        corrupting anyone else's share."""
        capacity = caps([0, 1, 2])
        capacity[("out", 0)] = 0.0
        rates = maxmin_rates([Flow(0, 1, 100), Flow(2, 1, 100)], capacity)
        assert rates[0] == 0.0
        # The frozen zero-rate flow consumes nothing, so the healthy
        # flow keeps the full ingress capacity at machine 1.
        assert rates[1] == pytest.approx(BW)

    def test_negative_capacity_clamped(self):
        """Float drift (or a hostile capacity map) below zero must not
        produce negative shares."""
        capacity = caps([0, 1])
        capacity[("out", 0)] = -1e-9
        rates = maxmin_rates([Flow(0, 1, 100)], capacity)
        assert rates == [0.0]

    def test_no_negative_residuals_under_drift(self):
        """Repeated subtraction of irrational shares stays clamped: every
        returned rate is non-negative and no resource is oversubscribed."""
        capacity = caps(range(6), bw=1.0 / 3.0)
        flows = [Flow(s, d, 10.0) for s in range(6) for d in range(6)
                 if s != d]
        rates = maxmin_rates(flows, capacity)
        assert all(r >= 0.0 for r in rates)
        for m in range(6):
            egress = sum(r for f, r in zip(flows, rates) if f.src == m)
            assert egress <= 1.0 / 3.0 + 1e-9


class TestSimulateFlows:
    def test_single_flow_time(self):
        assert simulate_flows([Flow(0, 1, 500)], BW) == pytest.approx(5.0)

    def test_intra_machine_free(self):
        assert simulate_flows([Flow(0, 0, 10 ** 9)], BW) == 0.0

    def test_empty(self):
        assert simulate_flows([], BW) == 0.0

    def test_two_equal_flows_one_bottleneck(self):
        flows = [Flow(0, 1, 100), Flow(0, 2, 100)]
        assert simulate_flows(flows, BW) == pytest.approx(2.0)

    def test_rates_recomputed_after_completion(self):
        """A short flow finishes, freeing bandwidth for the longer one."""
        flows = [Flow(0, 1, 100), Flow(0, 2, 300)]
        # Phase 1: both at 50 B/s until the short one ends at t=2 (300-flow
        # has 200 left).  Phase 2: 200 at full 100 B/s -> +2s.  Total 4.
        assert simulate_flows(flows, BW) == pytest.approx(4.0)

    def test_ps_hot_spot_asymmetry(self):
        """The paper's section 3.1 argument: a server machine egressing
        w(N-1) bytes finishes ~(N-1)x later than symmetric peers."""
        n, w = 5, 1000
        server_flows = [Flow(0, m, w) for m in range(1, n)]
        hot = simulate_flows(server_flows, BW)
        balanced = [Flow(m, (m + 1) % n, w) for m in range(n)]
        cool = simulate_flows(balanced, BW)
        assert hot == pytest.approx((n - 1) * w / BW)
        assert cool == pytest.approx(w / BW)
        assert hot / cool == pytest.approx(n - 1)

    def test_stages_are_barriers(self):
        flows = [Flow(0, 1, 100, stage=0), Flow(0, 1, 100, stage=1)]
        assert simulate_flows(flows, BW) == pytest.approx(2.0)

    def test_per_stage_latency(self):
        flows = [Flow(0, 1, 100, stage=s) for s in range(3)]
        total = simulate_flows(flows, BW, per_stage_latency=0.5)
        assert total == pytest.approx(3 * (1.0 + 0.5))

    def test_full_duplex(self):
        """Opposite directions between two machines don't contend."""
        flows = [Flow(0, 1, 100), Flow(1, 0, 100)]
        assert simulate_flows(flows, BW) == pytest.approx(1.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            simulate_flows([Flow(0, 1, 10)], 0.0)

    def test_explicit_capacity_map(self):
        capacity = caps([0, 1], bw=50.0)
        t = simulate_flows([Flow(0, 1, 100)], BW, capacity=capacity)
        assert t == pytest.approx(2.0)


class TestStalledFlows:
    """Regression: a zero-capacity path used to surface as the bare
    ``ValueError: min() arg is an empty sequence`` from deep inside the
    event loop.  The diagnostic must name the stalled transfers."""

    def test_stalled_flow_names_transfers(self):
        capacity = caps([0, 1, 2])
        capacity[("out", 0)] = 0.0
        flows = [Flow(0, 1, 100, tag="grad"), Flow(0, 2, 50)]
        with pytest.raises(ValueError) as err:
            simulate_flows(flows, BW, capacity=capacity)
        msg = str(err.value)
        assert "stalled" in msg
        assert "0->1" in msg and "0->2" in msg
        assert "grad" in msg and "untagged" in msg
        assert "min() arg" not in msg

    def test_healthy_flows_finish_before_stall_detected(self):
        """Flows that avoid the dead NIC complete; the stall names only
        the survivors that cross it."""
        capacity = caps([0, 1, 2])
        capacity[("in", 2)] = 0.0
        flows = [Flow(0, 1, 100), Flow(0, 2, 100, tag="dead")]
        with pytest.raises(ValueError) as err:
            simulate_flows(flows, BW, capacity=capacity)
        msg = str(err.value)
        assert "0->2" in msg and "dead" in msg
        assert "0->1" not in msg

    def test_stall_in_later_stage_reports_stage(self):
        capacity = caps([0, 1])
        capacity[("in", 1)] = 0.0
        flows = [Flow(0, 0, 10, stage=0), Flow(0, 1, 10, stage=3)]
        with pytest.raises(ValueError, match="stage 3 stalled"):
            simulate_flows(flows, BW, capacity=capacity)

    def test_termination_property(self):
        """Random flow sets either finish in finite non-negative time or
        raise the stalled-flow diagnostic -- never hang, never return a
        negative or infinite completion time."""
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")
        given, settings = hypothesis.given, hypothesis.settings

        flow_st = st.builds(
            Flow,
            src=st.integers(0, 4),
            dst=st.integers(0, 4),
            nbytes=st.floats(0.0, 1e6, allow_nan=False),
            stage=st.integers(0, 2),
        )
        cap_st = st.fixed_dictionaries({
            (kind, m): st.floats(0.0, 1e3, allow_nan=False)
            for kind in ("out", "in") for m in range(5)
        })

        @settings(max_examples=60, deadline=None)
        @given(flows=st.lists(flow_st, max_size=8), capacity=cap_st)
        def check(flows, capacity):
            try:
                t = simulate_flows(flows, BW, capacity=capacity)
            except ValueError as err:
                assert "stalled" in str(err)
            else:
                assert t >= 0.0
                assert t != float("inf")

        check()


class TestFlowsFromMatrix:
    def test_builds_flows(self):
        flows = flows_from_matrix({(0, 1): 10.0, (1, 0): 20.0}, tag="x")
        assert len(flows) == 2
        assert {(f.src, f.dst, f.nbytes) for f in flows} == {
            (0, 1, 10.0), (1, 0, 20.0)
        }

    def test_zero_entries_dropped(self):
        assert flows_from_matrix({(0, 1): 0.0}) == []

    def test_deterministic_order(self):
        m = {(1, 0): 5.0, (0, 1): 5.0}
        assert [(f.src, f.dst) for f in flows_from_matrix(m)] == [
            (0, 1), (1, 0)
        ]
