"""Performance simulator: transfer-model consistency and paper orderings."""

import pytest

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.costmodel import CostModel, union_alpha
from repro.cluster.plan import SyncPlan
from repro.cluster.simulator import (
    shard_assignments,
    simulate_iteration,
    throughput,
)
from repro.cluster.spec import PAPER_CLUSTER, ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import (
    PAPER_PROFILES,
    ModelProfile,
    VariableProfile,
    lm_profile,
    resnet50_profile,
)


def single_var_profile(is_sparse: bool, elements=1_000_000, alpha=0.1):
    var = VariableProfile("v", elements, is_sparse=is_sparse,
                          alpha=alpha if is_sparse else 1.0,
                          rows=elements if is_sparse else None)
    return ModelProfile(name="single", variables=[var], batch_per_gpu=8,
                        units_per_sample=1, unit="images",
                        gpu_time_per_iter=0.05)


class TestShardAssignments:
    def test_partitions_expand_to_shards(self):
        profile = lm_profile()
        plan = tf_ps_plan(profile, num_partitions=8)
        shards = shard_assignments(plan, PAPER_CLUSTER)
        sparse_shards = [s for s in shards if s.is_sparse]
        assert len(sparse_shards) == 3 * 8

    def test_shards_spread_across_servers(self):
        profile = lm_profile()
        plan = tf_ps_plan(profile, num_partitions=16)
        shards = shard_assignments(plan, PAPER_CLUSTER)
        servers = {s.server for s in shards}
        assert servers == set(range(8))

    def test_shard_sizes_sum_to_variable(self):
        profile = lm_profile()
        plan = tf_ps_plan(profile, num_partitions=8)
        shards = shard_assignments(plan, PAPER_CLUSTER)
        emb_bytes = sum(s.nbytes for s in shards
                        if s.name.startswith("embedding/"))
        assert emb_bytes == pytest.approx(
            profile.get_variable("embedding").nbytes)


class TestArchitectureOrderings:
    """The paper's Table 1 claim: AR wins on dense, PS wins on sparse."""

    def test_ar_beats_ps_on_dense_models(self):
        for name in ("resnet50", "inception_v3"):
            profile = PAPER_PROFILES()[name]
            ar = throughput(profile, horovod_plan(profile), PAPER_CLUSTER)
            ps = throughput(profile, tf_ps_plan(profile), PAPER_CLUSTER)
            assert ar > ps, name

    def test_ps_beats_ar_on_sparse_models(self):
        for name, partitions in (("lm", 128), ("nmt", 64)):
            profile = PAPER_PROFILES()[name]
            ar = throughput(profile, horovod_plan(profile), PAPER_CLUSTER)
            ps = throughput(profile, tf_ps_plan(profile, partitions),
                            PAPER_CLUSTER)
            assert ps > ar, name

    def test_hybrid_at_least_matches_best_pure(self):
        """Table 4: HYB >= max(AR, OptPS) for the sparse models."""
        for name, partitions in (("lm", 128), ("nmt", 64)):
            profile = PAPER_PROFILES()[name]
            hyb = throughput(profile, hybrid_plan(profile, partitions),
                             PAPER_CLUSTER)
            ar = throughput(profile, horovod_plan(profile), PAPER_CLUSTER)
            opt = throughput(profile, opt_ps_plan(profile, partitions),
                             PAPER_CLUSTER)
            assert hyb >= 0.99 * max(ar, opt), name

    def test_opt_ps_beats_naive_ps_on_sparse(self):
        for name, partitions in (("lm", 128), ("nmt", 64)):
            profile = PAPER_PROFILES()[name]
            naive = throughput(profile, tf_ps_plan(profile, partitions),
                               PAPER_CLUSTER)
            opt = throughput(profile, opt_ps_plan(profile, partitions),
                             PAPER_CLUSTER)
            assert opt > naive, name

    def test_hybrid_equals_horovod_on_dense(self):
        """Parallax uses pure AR for dense models (paper section 6.2)."""
        profile = resnet50_profile()
        hyb = throughput(profile, hybrid_plan(profile), PAPER_CLUSTER)
        ar = throughput(profile, horovod_plan(profile), PAPER_CLUSTER)
        assert hyb == pytest.approx(ar, rel=1e-6)


class TestScalingShapes:
    def test_parallax_scales_with_machines(self):
        """Fig 8: Parallax throughput grows with machine count."""
        for name, partitions in (("resnet50", 1), ("lm", 128), ("nmt", 64)):
            profile = PAPER_PROFILES()[name]
            values = [
                throughput(profile, hybrid_plan(profile, partitions),
                           ClusterSpec(n, 6))
                for n in (1, 2, 4, 8)
            ]
            assert values == sorted(values), name

    def test_horovod_lm_flat(self):
        """Fig 8(c): Horovod LM barely scales (gatherv volume grows with
        worker count as fast as compute capacity does)."""
        profile = lm_profile()
        t1 = throughput(profile, horovod_plan(profile), ClusterSpec(1, 6))
        t8 = throughput(profile, horovod_plan(profile), ClusterSpec(8, 6))
        assert t8 < 1.5 * t1

    def test_parallax_speedup_over_tfps_grows_with_scale(self):
        """Fig 8(c)/(d): the Parallax advantage widens with machines."""
        profile = lm_profile()
        ratios = []
        for n in (2, 8):
            cluster = ClusterSpec(n, 6)
            hyb = throughput(profile, hybrid_plan(profile, 128), cluster)
            ps = throughput(profile, tf_ps_plan(profile, 128), cluster)
            ratios.append(hyb / ps)
        assert ratios[1] > ratios[0]

    def test_single_gpu_no_comm(self):
        profile = resnet50_profile()
        b = simulate_iteration(profile, hybrid_plan(profile),
                               ClusterSpec(1, 1))
        assert b.iteration_time == pytest.approx(profile.gpu_time_per_iter)


class TestPartitionBehaviour:
    def test_partition_curve_convex_for_lm(self):
        """Table 2: throughput rises then falls as P grows."""
        profile = lm_profile()
        values = {
            p: throughput(profile, tf_ps_plan(profile, p), PAPER_CLUSTER)
            for p in (1, 8, 64, 128, 1024)
        }
        assert values[8] > values[1]
        assert values[64] > values[8]
        assert values[1024] < values[128]

    def test_iteration_time_has_equation1_shape(self):
        """iter(P) ~ theta0 + theta1/P + theta2*P: the marginal gain of
        doubling P shrinks, and large P adds linear cost."""
        profile = lm_profile()
        times = {
            p: simulate_iteration(profile, tf_ps_plan(profile, p),
                                  PAPER_CLUSTER).iteration_time
            for p in (4, 8, 16, 512, 1024)
        }
        gain_small = times[4] - times[8]
        gain_next = times[8] - times[16]
        assert gain_small > gain_next > 0
        assert times[1024] > times[512]


class TestTransferModel:
    """Per-machine PS flow bytes vs the closed forms of paper Table 3."""

    def test_dense_ps_pull_push_bytes(self):
        cluster = ClusterSpec(4, 1)  # one worker per machine, as in Table 3
        profile = single_var_profile(is_sparse=False)
        plan = tf_ps_plan(profile)
        b = simulate_iteration(profile, plan, cluster)
        w = profile.variables[0].nbytes
        n = cluster.num_machines
        server = shard_assignments(plan, cluster)[0].server
        out_bytes = sum(v for (src, dst), v in b.ps_flow_bytes.items()
                        if src == server)
        in_bytes = sum(v for (src, dst), v in b.ps_flow_bytes.items()
                       if dst == server)
        # Table 3, PS dense, one variable: 2w(N-1) total for the server.
        assert out_bytes == pytest.approx(w * (n - 1))
        assert in_bytes == pytest.approx(w * (n - 1))

    def test_sparse_ps_bytes_scaled_by_alpha(self):
        cluster = ClusterSpec(4, 1)
        alpha = 0.2
        profile = single_var_profile(is_sparse=True, alpha=alpha)
        plan = tf_ps_plan(profile)
        b = simulate_iteration(profile, plan, cluster)
        w = profile.variables[0].nbytes
        n = cluster.num_machines
        total = sum(b.ps_flow_bytes.values())
        # Table 3, PS sparse: 2*alpha*w*(N-1).
        assert total == pytest.approx(2 * alpha * w * (n - 1))

    def test_local_aggregation_reduces_push_bytes(self):
        cluster = ClusterSpec(4, 6)
        profile = single_var_profile(is_sparse=True, alpha=0.05)
        naive = simulate_iteration(profile, tf_ps_plan(profile), cluster)
        opt = simulate_iteration(profile, opt_ps_plan(profile), cluster)
        assert sum(opt.ps_flow_bytes.values()) < \
            sum(naive.ps_flow_bytes.values())

    def test_smart_placement_removes_extra_hop(self):
        """Without smart placement, aggregated gradients of variables not
        hosted on the chief machine make an extra chief->server hop."""
        cluster = ClusterSpec(4, 2)
        variables = [
            VariableProfile(f"emb{i}", 100_000, is_sparse=True, alpha=0.1,
                            rows=1000)
            for i in range(4)  # spread over all 4 servers
        ]
        profile = ModelProfile(name="multi", variables=variables,
                               batch_per_gpu=8, units_per_sample=1,
                               unit="words", gpu_time_per_iter=0.05)
        naive = tf_ps_plan(profile)
        smart = SyncPlan(
            "smart", naive.assignments,
            local_aggregation=False, smart_placement=True,
        )
        b_naive = simulate_iteration(profile, naive, cluster)
        b_smart = simulate_iteration(profile, smart, cluster)
        assert sum(b_smart.ps_flow_bytes.values()) < \
            sum(b_naive.ps_flow_bytes.values())


class TestUnionAlpha:
    def test_identity_for_one_worker(self):
        assert union_alpha(0.3, 1, 0.5) == pytest.approx(0.3)

    def test_bounded_by_independent_union(self):
        independent = 1 - (1 - 0.1) ** 6
        assert 0.1 <= union_alpha(0.1, 6, 0.5) <= independent

    def test_full_overlap_stays_alpha(self):
        assert union_alpha(0.1, 6, 1.0) == pytest.approx(0.1)

    def test_zero_overlap_is_independent(self):
        assert union_alpha(0.1, 6, 0.0) == pytest.approx(1 - 0.9 ** 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            union_alpha(0.0, 3, 0.5)
        with pytest.raises(ValueError):
            union_alpha(0.5, 0, 0.5)


class TestCostModel:
    def test_defaults_valid(self):
        CostModel()

    def test_overrides(self):
        cm = CostModel().with_overrides(nccl_bw=1e9)
        assert cm.nccl_bw == 1e9

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            CostModel(nccl_bw=0)

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            CostModel(dense_ps_overlap=-0.1)
        with pytest.raises(ValueError):
            CostModel(zipf_overlap=1.5)


class TestCalibration:
    """Simulated 48-GPU throughput within 2x of every paper number
    (absolute match is not required; the shape tests above are)."""

    TARGETS = [
        ("resnet50", "horovod", 1, 7600), ("resnet50", "tf_ps", 1, 5800),
        ("inception_v3", "horovod", 1, 5900),
        ("inception_v3", "tf_ps", 1, 3800),
        ("lm", "horovod", 128, 45500), ("lm", "tf_ps", 128, 98900),
        ("lm", "opt_ps", 128, 250000), ("lm", "parallax", 128, 274000),
        ("nmt", "horovod", 64, 68300), ("nmt", "tf_ps", 64, 102000),
        ("nmt", "opt_ps", 64, 116000), ("nmt", "parallax", 64, 204000),
    ]

    @pytest.mark.parametrize("model,arch,partitions,paper", TARGETS)
    def test_within_factor_two(self, model, arch, partitions, paper):
        profile = PAPER_PROFILES()[model]
        builders = {
            "horovod": lambda: horovod_plan(profile),
            "tf_ps": lambda: tf_ps_plan(profile, partitions),
            "opt_ps": lambda: opt_ps_plan(profile, partitions),
            "parallax": lambda: hybrid_plan(profile, partitions),
        }
        simulated = throughput(profile, builders[arch](), PAPER_CLUSTER)
        assert 0.5 < simulated / paper < 2.0


class TestBucketedAllReducePricing:
    """Fusion-aware collective accounting: the launch-latency term makes
    iteration time bucket-count sensitive, and overlap hides collective
    time under backward compute."""

    CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)

    def breakdown(self, buffer_mb, **cost_overrides):
        profile = resnet50_profile()
        plan = horovod_plan(profile).with_fusion(buffer_mb)
        cost = CostModel().with_overrides(**cost_overrides)
        return simulate_iteration(profile, plan, self.CLUSTER, cost)

    def test_more_buckets_cost_more_launch_latency(self):
        unfused = self.breakdown(0.0, ar_overlap=0.0)
        fused = self.breakdown(64.0, ar_overlap=0.0)
        assert unfused.num_ar_buckets > fused.num_ar_buckets
        assert unfused.iteration_time > fused.iteration_time
        assert unfused.allreduce_raw_time > fused.allreduce_raw_time

    def test_launch_latency_term_scales_with_bucket_count(self):
        """Doubling the per-collective launch cost moves iteration time
        by exactly launch_delta x num_buckets (overlap off)."""
        base, bumped = 5e-5, 1e-4
        a = self.breakdown(0.0, ar_overlap=0.0, c_collective_launch=base)
        b = self.breakdown(0.0, ar_overlap=0.0, c_collective_launch=bumped)
        assert a.num_ar_buckets == b.num_ar_buckets > 1
        expected = (bumped - base) * a.num_ar_buckets
        assert b.iteration_time - a.iteration_time == pytest.approx(expected)

    def test_bucket_count_monotone_in_buffer_cap(self):
        counts = [self.breakdown(mb, ar_overlap=0.0).num_ar_buckets
                  for mb in (0.0, 1.0, 4.0, 64.0)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_overlap_hides_collectives_under_compute(self):
        exposed = self.breakdown(4.0, ar_overlap=0.0)
        hidden = self.breakdown(4.0, ar_overlap=1.0)
        assert hidden.allreduce_time < exposed.allreduce_time
        assert hidden.allreduce_raw_time == exposed.allreduce_raw_time
        assert hidden.allreduce_time >= 0.0

    def test_legacy_aggregate_pricing_unchanged(self):
        """fusion_buffer_mb=None keeps the seed's aggregate ring price:
        no launch term, no overlap, no bucket accounting."""
        legacy = self.breakdown(None, c_collective_launch=1.0,
                                ar_overlap=1.0)
        assert legacy.num_ar_buckets == 0
        assert legacy.allreduce_raw_time == 0.0
        assert legacy.allreduce_time > 0.0

    def test_single_bucket_beats_legacy_only_by_launch_cost(self):
        """One bucket prices the same ring as the legacy aggregate, plus
        exactly one launch (overlap off)."""
        legacy = self.breakdown(None)
        one = self.breakdown(10_000.0, ar_overlap=0.0)
        assert one.num_ar_buckets == 1
        assert one.allreduce_time - legacy.allreduce_time == pytest.approx(
            CostModel().c_collective_launch)

    def test_cost_model_validates_new_knobs(self):
        with pytest.raises(ValueError, match="ar_overlap"):
            CostModel(ar_overlap=1.5)
        with pytest.raises(ValueError, match="c_collective_launch"):
            CostModel(c_collective_launch=-1e-6)
