"""PS accumulators and variable placement."""

import numpy as np
import pytest

from repro.comm.ps import DenseAccumulator, SparseAccumulator, place_variables
from repro.tensor.sparse import IndexedSlices


class TestDenseAccumulator:
    def test_sums_contributions(self):
        acc = DenseAccumulator(num_required=3)
        for i in range(3):
            acc.apply_grad(np.full(4, float(i), dtype=np.float32))
        np.testing.assert_array_equal(acc.take(), np.full(4, 3.0))

    def test_average_mode(self):
        acc = DenseAccumulator(num_required=2, average=True)
        acc.apply_grad(np.zeros(3))
        acc.apply_grad(np.full(3, 4.0))
        np.testing.assert_array_equal(acc.take(), np.full(3, 2.0))

    def test_take_before_ready_rejected(self):
        acc = DenseAccumulator(num_required=2)
        acc.apply_grad(np.zeros(2))
        assert not acc.ready
        with pytest.raises(RuntimeError, match="1/2"):
            acc.take()

    def test_take_resets(self):
        acc = DenseAccumulator(num_required=1)
        acc.apply_grad(np.ones(2))
        acc.take()
        assert acc.count == 0
        acc.apply_grad(np.full(2, 7.0))
        np.testing.assert_array_equal(acc.take(), np.full(2, 7.0))

    def test_shape_mismatch_rejected(self):
        acc = DenseAccumulator(num_required=2)
        acc.apply_grad(np.zeros(3))
        with pytest.raises(ValueError):
            acc.apply_grad(np.zeros(4))

    def test_num_required_validated(self):
        with pytest.raises(ValueError):
            DenseAccumulator(0)


class TestSparseAccumulator:
    def slices(self, indices, value=1.0, shape=(10, 2)):
        vals = np.full((len(indices), shape[1]), value, dtype=np.float32)
        return IndexedSlices(vals, indices, shape)

    def test_combines_duplicate_indices_on_take(self):
        acc = SparseAccumulator(num_required=2)
        acc.apply_grad(self.slices([1, 3]))
        acc.apply_grad(self.slices([3, 5]))
        result = acc.take()
        assert list(result.indices) == [1, 3, 5]
        np.testing.assert_array_equal(result.to_dense()[3], [2.0, 2.0])

    def test_average_divides_by_contributions(self):
        acc = SparseAccumulator(num_required=2, average=True)
        acc.apply_grad(self.slices([0], value=4.0))
        acc.apply_grad(self.slices([0], value=0.0))
        np.testing.assert_array_equal(acc.take().to_dense()[0], [2.0, 2.0])

    def test_rejects_dense_input(self):
        acc = SparseAccumulator(num_required=1)
        with pytest.raises(TypeError):
            acc.apply_grad(np.zeros((2, 2)))

    def test_rejects_shape_mismatch(self):
        acc = SparseAccumulator(num_required=2)
        acc.apply_grad(self.slices([0]))
        with pytest.raises(ValueError):
            acc.apply_grad(self.slices([0], shape=(20, 2)))

    def test_contributions_copied(self):
        acc = SparseAccumulator(num_required=1)
        grad = self.slices([0])
        acc.apply_grad(grad)
        grad.values[0, 0] = 99.0
        np.testing.assert_array_equal(acc.take().values[0], [1.0, 1.0])

    def test_take_before_ready_rejected(self):
        acc = SparseAccumulator(num_required=3)
        acc.apply_grad(self.slices([0]))
        with pytest.raises(RuntimeError):
            acc.take()


class TestPlacement:
    def test_every_variable_placed(self):
        sizes = [(f"v{i}", 100) for i in range(10)]
        placement = place_variables(sizes, 4)
        assert set(placement) == {f"v{i}" for i in range(10)}
        assert all(0 <= s < 4 for s in placement.values())

    def test_balanced_for_equal_sizes(self):
        sizes = [(f"v{i}", 100) for i in range(8)]
        placement = place_variables(sizes, 4)
        loads = np.bincount(list(placement.values()), minlength=4)
        assert loads.tolist() == [2, 2, 2, 2]

    def test_greedy_balances_skewed_sizes(self):
        """One huge variable gets its own server; small ones fill others."""
        sizes = [("big", 1000)] + [(f"s{i}", 100) for i in range(9)]
        placement = place_variables(sizes, 3)
        loads = [0, 0, 0]
        for name, size in sizes:
            loads[placement[name]] += size
        # Greedy bound: max load <= ideal + largest small item.
        assert max(loads) <= 1000

    def test_deterministic(self):
        sizes = [(f"v{i}", (i * 37) % 11 + 1) for i in range(20)]
        assert place_variables(sizes, 5) == place_variables(sizes, 5)

    def test_single_server(self):
        placement = place_variables([("a", 1), ("b", 2)], 1)
        assert placement == {"a": 0, "b": 0}

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            place_variables([("a", 1)], 0)
