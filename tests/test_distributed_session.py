"""DistributedSession: store routing and transfer-edge accounting."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner, DistributedSession
from repro.core.transform.plan import hybrid_graph_plan, ps_graph_plan
from repro.graph import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)


def make_runner(plan_fn=hybrid_graph_plan, **kwargs):
    defaults = dict(batch_size=4, vocab_size=30, seq_len=2, emb_dim=6,
                    hidden=8, num_partitions=2, seed=0)
    defaults.update(kwargs)
    model = build_lm(**defaults)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.2).update(gvs)
    return DistributedRunner(model, CLUSTER, plan_fn(model.graph), seed=1)


class TestStoreRouting:
    def test_ps_variables_live_in_ps_store(self):
        runner = make_runner()
        session = runner.session
        for shard in runner.transformed.ps_placement:
            value = session.ps_store.read(shard)
            assert value is not None

    def test_replica_variables_isolated_per_store(self):
        runner = make_runner()
        session = runner.session
        name = "rep0/lstm/kernel"
        original = session.replica_stores[0].read(name).copy()
        # Mutating replica 1's copy of ITS variable must not affect rep0.
        session.replica_stores[1].write(
            "rep1/lstm/kernel",
            np.zeros_like(session.replica_stores[1].read("rep1/lstm/kernel")),
        )
        np.testing.assert_array_equal(session.replica_stores[0].read(name),
                                      original)

    def test_replica_initial_values_identical(self):
        runner = make_runner()
        a = runner.replica_variable(0, "lstm/kernel")
        b = runner.replica_variable(1, "lstm/kernel")
        np.testing.assert_array_equal(a, b)

    def test_inspection_helpers_reject_wrong_kind(self):
        runner = make_runner()
        with pytest.raises(KeyError):
            runner.replica_variable(0, "embedding/part_0")  # PS variable
        with pytest.raises(KeyError):
            runner.server_variable("lstm/kernel")  # AR variable


class TestEdgeAccounting:
    def test_transcript_resets_seen_edges_per_run(self):
        runner = make_runner()
        runner.step(0)
        first = runner.transcript.total_network_bytes("edge/shard_lookup")
        runner.step(1)
        second = runner.transcript.total_network_bytes("edge/shard_lookup")
        # Second iteration recorded fresh pulls (monotone growth).
        assert second > first

    def test_pull_deduped_per_consumer_device(self):
        """A dense PS variable read by many ops on one GPU counts once."""
        runner = make_runner(plan_fn=lambda g: ps_graph_plan(g))
        runner.step(0)
        runner.transcript.clear()
        runner.step(1)
        pulls = [t for t in runner.transcript.transfers
                 if t.tag == "edge/read_var"]
        # lstm/kernel is consumed by multiple timestep matmuls per
        # replica; each (variable, replica-device) pair appears once.
        keyed = {}
        for t in pulls:
            keyed.setdefault((t.src_machine, t.dst_machine, t.nbytes),
                             0)
            keyed[(t.src_machine, t.dst_machine, t.nbytes)] += 1
        kernel_bytes = 14 * 4 * 8 * 4  # (in+hid) x 4*hidden x float32
        kernel_pulls = [t for t in pulls if t.nbytes == kernel_bytes]
        # 2 remote GPUs pull the kernel (2 on the server's own machine
        # are local): exactly 2 transfers.
        assert len(kernel_pulls) == 2

    def test_collective_edges_not_double_counted(self):
        runner = make_runner()
        runner.step(0)
        runner.transcript.clear()
        runner.step(1)
        # allreduce input edges (grads from other replicas) must not be
        # recorded by the generic edge recorder.
        generic_from_grads = [
            t for t in runner.transcript.transfers
            if t.tag.startswith("edge/") and "allreduce" in t.tag
        ]
        assert not generic_from_grads

    def test_session_requires_transformed_graph(self):
        runner = make_runner()
        # The public API: DistributedSession wraps a TransformedGraph.
        session = DistributedSession(runner.transformed, seed=2)
        assert session.cluster is CLUSTER
