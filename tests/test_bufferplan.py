"""The step-scoped buffer arena and mega-kernel fusion pass.

Contract under test: the compile-time buffer plan only recycles storage
whose whole alias group is provably dead (so an out-parameter kernel can
never scribble over a live value, a fetched value, or one of its own
inputs), fusion chains are well-formed runs of arena-backed positions,
and -- the load-bearing guarantee -- arena + fusion execution stays
*bit-identical* to the seed interpreter on every architecture, plan,
and backend, including on randomly generated elementwise graphs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import ops
from repro.graph.bufferplan import (
    ARENA_FWD,
    BufferPlan,
    build_buffer_plan,
    fusion_chains,
)
from repro.graph.gradients import gradients
from repro.graph.graph import Graph
from repro.graph.session import Session
from repro.nn.models import build_inception, build_lm, build_nmt, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer

SEED = 7
CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)

PLAN_BUILDERS = {
    "hybrid": hybrid_graph_plan,
    "ps": lambda g: ps_graph_plan(g, local_aggregation=True,
                                  smart_placement=True, name="opt_ps"),
    "ar": ar_graph_plan,
}


def _finish(model):
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.4).update(gvs)
    return model


MODEL_BUILDERS = {
    "lm": lambda: _finish(build_lm(batch_size=4, vocab_size=40, seq_len=2,
                                   emb_dim=6, hidden=8, num_partitions=2,
                                   seed=0)),
    "nmt": lambda: _finish(build_nmt(batch_size=4, src_vocab=30,
                                     tgt_vocab=30, src_len=2, tgt_len=2,
                                     emb_dim=6, hidden=6, num_partitions=2,
                                     seed=1)),
    "resnet": lambda: _finish(build_resnet(batch_size=4, num_features=8,
                                           num_classes=3, width=8,
                                           num_blocks=1, seed=0)),
    "inception": lambda: _finish(build_inception(batch_size=4,
                                                 num_features=8,
                                                 num_classes=3, width=8,
                                                 num_modules=1, seed=0)),
}


def compiled_plan(model_key="lm", plan_key="hybrid", steps=3):
    """A generated (post-warmup) step plan plus its runner."""
    model = MODEL_BUILDERS[model_key]()
    runner = DistributedRunner(model, CLUSTER,
                               PLAN_BUILDERS[plan_key](model.graph),
                               seed=SEED, engine="compiled")
    for i in range(steps):
        runner.step(i)
    return runner.step_plans[0], runner


# ======================================================================
# Planning invariants (liveness, aliasing, allocation)
# ======================================================================
class TestBufferPlanInvariants:
    @pytest.fixture(scope="class")
    def plan_and_bplan(self):
        plan, _runner = compiled_plan()
        return plan, build_buffer_plan(plan)

    def test_plan_engages_on_a_real_model(self, plan_and_bplan):
        _, bplan = plan_and_bplan
        assert bplan.arena_slots > 0
        assert bplan.arena_bytes > 0
        assert bplan.arena_bytes <= bplan.arena_slot_bytes

    def test_fetched_slots_never_enter_the_arena(self, plan_and_bplan):
        plan, bplan = plan_and_bplan
        for t in plan.target_slots:
            assert t not in bplan.assignment
            # The whole fetched group is pinned: it can never die and
            # hand its storage to a later slot.
            assert bplan.group_last_use[bplan.group_of[t]] == math.inf

    def test_output_buffer_never_aliases_an_input_buffer(
            self, plan_and_bplan):
        plan, bplan = plan_and_bplan
        for _op, _kernel, input_slots, slot, _edges in plan.schedule:
            bid = bplan.assignment.get(slot)
            if bid is None:
                continue
            for j in input_slots:
                assert bplan.assignment.get(j, -1) != bid, (
                    f"slot {slot} writes buffer {bid} which also backs "
                    f"its live input {j}"
                )

    def test_slots_sharing_a_buffer_have_disjoint_live_ranges(
            self, plan_and_bplan):
        _, bplan = plan_and_bplan
        by_buffer = {}
        for slot, bid in bplan.assignment.items():
            death = bplan.group_last_use[bplan.group_of[slot]]
            by_buffer.setdefault(bid, []).append((slot, death))
        reused = 0
        for intervals in by_buffer.values():
            intervals.sort()
            reused += len(intervals) - 1
            for (_, prev_death), (nxt, _) in zip(intervals, intervals[1:]):
                # Strict: the previous owner's group died before the next
                # owner's position (matching the sweep's `death < pos`).
                assert prev_death < nxt
        assert reused == bplan.arena_slots - len(bplan.buffers)

    def test_buffer_shapes_match_their_slots(self, plan_and_bplan):
        plan, bplan = plan_and_bplan
        by_slot = {entry[3]: entry[0] for entry in plan.schedule}
        for slot, bid in bplan.assignment.items():
            shape, dtype = bplan.buffers[bid]
            spec = by_slot[slot].output.spec
            assert tuple(spec.shape) == shape
            assert str(spec.dtype) == dtype

    def test_expansions_are_well_formed(self, plan_and_bplan):
        plan, bplan = plan_and_bplan
        for slot, exp in bplan.expansions.items():
            if exp.kind == "alias":
                assert exp.fn is None and len(exp.args) == 1
            else:
                assert exp.kind == "call"
                assert callable(exp.fn)
                assert slot in bplan.assignment
            assert all(0 <= a < plan.num_slots for a in exp.args)

    def test_chains_are_maximal_consecutive_runs(self, plan_and_bplan):
        plan, bplan = plan_and_bplan
        chains = fusion_chains(plan, bplan)
        assert chains, "expected fusable runs in an LSTM step"
        targets = set(plan.target_slots)
        covered = set()
        for ch in chains:
            assert ch.members == tuple(range(ch.start, ch.end + 1))
            assert len(ch.members) >= 2
            assert covered.isdisjoint(ch.members)
            covered.update(ch.members)
            for slot in ch.members:
                assert slot not in targets
                assert (slot in bplan.assignment
                        or slot in bplan.expansions)


class TestReuseRateFormula:
    def test_amortizes_over_the_replay_window(self):
        bplan = BufferPlan(assignment={}, buffers=[], out_fns={},
                           expansions={}, slot_last_use={}, group_of={},
                           group_last_use={}, arena_bytes=100,
                           arena_slot_bytes=1000)
        assert bplan.arena_reuse_rate(1) == pytest.approx(0.9)
        assert bplan.arena_reuse_rate(10) == pytest.approx(0.99)
        assert bplan.arena_reuse_rate(1000) == pytest.approx(0.9999)

    def test_degenerate_plans_report_zero(self):
        empty = BufferPlan(assignment={}, buffers=[], out_fns={},
                           expansions={}, slot_last_use={}, group_of={},
                           group_last_use={})
        assert empty.arena_reuse_rate(1) == 0.0
        assert empty.arena_reuse_rate(0) == 0.0


# ======================================================================
# Property: arena execution == seed interpreter on random graphs
# ======================================================================
def _random_elementwise_graph(rng):
    """A random DAG over the arena-fusable elementwise ops."""
    g = Graph()
    shape = (3, 4)
    with g.as_default():
        x = ops.placeholder(shape, name="x")
        y = ops.placeholder(shape, name="y")
        nodes = [x, y,
                 ops.constant(rng.standard_normal(shape), name="c0")]
        unary = [ops.tanh, ops.sigmoid, ops.relu]
        for k in range(int(rng.integers(4, 12))):
            roll = rng.integers(0, 4)
            if roll == 0:
                a, b = rng.integers(0, len(nodes), size=2)
                node = ops.add(nodes[a], nodes[b], name=f"n{k}")
            elif roll == 1:
                a, b = rng.integers(0, len(nodes), size=2)
                node = ops.mul(nodes[a], nodes[b], name=f"n{k}")
            elif roll == 2:
                node = unary[int(rng.integers(0, 3))](
                    nodes[int(rng.integers(0, len(nodes)))], name=f"n{k}")
            else:
                node = ops.scale(nodes[int(rng.integers(0, len(nodes)))],
                                 float(rng.standard_normal()), name=f"n{k}")
            nodes.append(node)
    # Fetch the final node and one random interior node, so the plan has
    # both a deep arena-eligible prefix and a mid-graph pinned target.
    fetches = [nodes[-1], nodes[int(rng.integers(2, len(nodes)))]]
    feed = {x: rng.standard_normal(shape), y: rng.standard_normal(shape)}
    return g, fetches, feed


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_random_graphs_are_bit_identical_under_the_arena(seed):
    rng = np.random.default_rng(seed)
    g, fetches, feed = _random_elementwise_graph(rng)
    sess = Session(g)
    reference = sess.run_interpreted(fetches, feed)
    # Three replays: first-run checked loop, then the generated fast
    # path with arena writes and fused chains.
    for _ in range(3):
        got = sess.run(fetches, feed)
        for r, v in zip(reference, got):
            np.testing.assert_array_equal(r, v)


# ======================================================================
# Differential: every arch x plan, compiled vs interpreted, both backends
# ======================================================================
class TestFusedDifferential:
    @pytest.mark.parametrize("model_key", sorted(MODEL_BUILDERS))
    @pytest.mark.parametrize("plan_key", sorted(PLAN_BUILDERS))
    def test_compiled_matches_interpreted(self, model_key, plan_key):
        losses = {}
        for engine in ("compiled", "interpreted"):
            model = MODEL_BUILDERS[model_key]()
            runner = DistributedRunner(model, CLUSTER,
                                       PLAN_BUILDERS[plan_key](model.graph),
                                       seed=SEED, engine=engine)
            losses[engine] = [runner.step(i).replica_losses
                              for i in range(3)]
            if engine == "compiled":
                plan = runner.step_plans[0]
                arena = sum(p.arena_slots for p in runner.step_plans)
                bplan = plan._buffer_plan
        assert losses["compiled"] == losses["interpreted"]
        # The comparison must actually exercise the new machinery.
        assert bplan is not None
        if model_key in ("lm", "nmt"):
            assert arena > 0
            assert fusion_chains(plan, bplan)

    def test_compiled_inproc_matches_multiproc(self):
        losses = {}
        for backend in ("inproc", "multiproc"):
            model = MODEL_BUILDERS["lm"]()
            runner = DistributedRunner(model, CLUSTER,
                                       hybrid_graph_plan(model.graph),
                                       seed=SEED, engine="compiled",
                                       backend=backend)
            try:
                losses[backend] = [runner.step(i).replica_losses
                                   for i in range(3)]
            finally:
                runner.close()
        assert losses["inproc"] == losses["multiproc"]
