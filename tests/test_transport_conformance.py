"""Transport conformance suite.

Every transport in the registry must satisfy one behavioural contract
(module docstring of :mod:`repro.comm.transport`): per-channel FIFO,
freeze-at-send value semantics, buffering of non-matching arrivals,
deadline-correct timeouts, drain accounting, and idempotent close.

The suite is parameterized over every registered transport so a future
transport inherits the whole contract by showing up in
``transport_registry()``.
"""

import threading
import time

import numpy as np
import pytest

from repro.comm.transport import (
    CONTROLLER,
    TransportError,
    TransportTimeout,
    transport_registry,
)

KINDS = sorted(transport_registry())


@pytest.fixture(params=KINDS)
def transport(request):
    t = transport_registry()[request.param](2)
    yield t
    t.close()


class TestConformance:
    def test_registry_covers_expected_transports(self):
        assert {"inmem", "multiproc", "shm", "tcp"} <= set(KINDS)

    def test_round_trip(self, transport):
        value = {"step": 3, "grad": np.arange(6, dtype=np.float64)}
        transport.send(0, 1, ("v", "g"), value)
        got = transport.recv(1, 0, ("v", "g"), timeout=10.0)
        assert got["step"] == 3
        np.testing.assert_array_equal(got["grad"], value["grad"])

    def test_freeze_at_send(self, transport):
        """Mutating a buffer after send must not affect the receiver."""
        a = np.ones(32, dtype=np.float64)
        transport.send(0, 1, ("v", "a"), a)
        a[:] = -1.0
        got = transport.recv(1, 0, ("v", "a"), timeout=10.0)
        np.testing.assert_array_equal(got, np.ones(32))

    def test_fifo_per_channel(self, transport):
        for i in range(5):
            transport.send(0, 1, ("seq",), i)
        assert [transport.recv(1, 0, ("seq",), timeout=10.0)
                for _ in range(5)] == list(range(5))

    def test_out_of_order_keys_buffered(self, transport):
        """recv of key B must buffer (not drop) an earlier key-A arrival."""
        transport.send(0, 1, ("a",), "first")
        transport.send(0, 1, ("b",), "second")
        assert transport.recv(1, 0, ("b",), timeout=10.0) == "second"
        assert transport.recv(1, 0, ("a",), timeout=10.0) == "first"

    def test_controller_addressable(self, transport):
        transport.send(CONTROLLER, 0, ("cmd",), "work")
        assert transport.recv(0, CONTROLLER, ("cmd",),
                              timeout=10.0) == "work"
        transport.send(0, CONTROLLER, ("res",), "done")
        assert transport.recv(CONTROLLER, 0, ("res",),
                              timeout=10.0) == "done"

    def test_out_of_range_rank_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.send(0, 7, ("v",), 1)
        with pytest.raises(TransportError):
            transport.recv(7, 0, ("v",), timeout=0.1)

    def test_transcript_records_sends(self, transport):
        transport.send(0, 1, ("v", "x"), np.zeros(16))
        transport.recv(1, 0, ("v", "x"), timeout=10.0)
        stats = transport.stats
        assert stats["messages"] == 1
        assert stats["bytes"] > 0

    def test_timeout_raises(self, transport):
        t0 = time.monotonic()
        with pytest.raises(TransportTimeout):
            transport.recv(1, 0, ("never",), timeout=0.05)
        assert time.monotonic() - t0 < 5.0

    def test_timeout_deadline_survives_unrelated_traffic(self, transport):
        """Regression: the timeout clock must not restart when an
        unrelated message arrives.  Under a steady drip of noise the old
        code waited the *full* timeout again after every arrival, so a
        0.3s recv only expired once the noise stopped."""
        stop = threading.Event()

        def noisy_sender():
            i = 0
            while not stop.is_set() and i < 100:
                transport.send(0, 1, ("noise", i), i)
                i += 1
                stop.wait(0.05)

        sender = threading.Thread(target=noisy_sender, daemon=True)
        sender.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(TransportTimeout):
                transport.recv(1, 0, ("missing",), timeout=0.3)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            sender.join(timeout=10.0)
        assert 0.3 <= elapsed < 1.0, (
            f"recv(timeout=0.3) returned after {elapsed:.2f}s -- the "
            f"deadline restarted on unrelated arrivals"
        )

    def test_drain_accounting(self, transport):
        """drain(dst) reports exactly the undelivered messages."""
        for i in range(3):
            transport.send(0, 1, ("junk",), i)
        transport.send(0, 1, ("flush",), "sentinel")
        # Receiving the sentinel forces the three junk messages to be
        # buffered locally first (same src => per-channel FIFO), which
        # makes the drain count deterministic for the socket transports.
        assert transport.recv(1, 0, ("flush",), timeout=10.0) == "sentinel"
        assert transport.drain(1) == 3
        with pytest.raises(TransportTimeout):
            transport.recv(1, 0, ("junk",), timeout=0.05)

    def test_close_idempotent_and_send_after_close_raises(self, transport):
        transport.close()
        transport.close()
        with pytest.raises(TransportError):
            transport.send(0, 1, ("v",), 1)
