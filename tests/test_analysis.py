"""Static plan verifier: mutation regressions, matrix coverage, lint.

The analyses must hold two properties at once: *zero false positives*
on every plan the transform actually emits (the matrix tests), and
*guaranteed detection* of the bug classes they claim to catch (the
mutation tests, which corrupt a real schedule or buffer plan and assert
the specific diagnostic -- naming ranks and schedule positions -- comes
back).
"""

import dataclasses

import pytest

from repro.analysis import AnalysisReport, Finding, PlanVerificationError, verify_plan
from repro.analysis.accounting import analyze_accounting
from repro.analysis.alias import audit_buffer_plan
from repro.analysis.congruence import COLLECTIVE_TYPES, analyze_congruence
from repro.analysis.deadlock import analyze_deadlock, check_entries
from repro.analysis.lint import lint_paths
from repro.analysis.lint import main as lint_main
from repro.analysis.verifier import default_fetch_ops
from repro.cli import _bench_matrix_models, _bench_plan_builders
from repro.cluster.faults import WorkerFailureError
from repro.cluster.spec import ClusterSpec
from repro.comm.compression import wire_fraction
from repro.core.backend import MultiprocBackend, build_all_worker_entries
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import ar_graph_plan, hybrid_graph_plan
from repro.core.transform.transform import transform_graph
from repro.graph.executor import CompiledPlan
from repro.graph.gradients import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

C2x1 = ClusterSpec(num_machines=2, gpus_per_machine=1)
C2x2 = ClusterSpec(num_machines=2, gpus_per_machine=2)


def make_model():
    model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                     hidden=10, num_partitions=3, seed=0)
    with model.graph.as_default():
        GradientDescentOptimizer(0.4).update(gradients(model.loss))
    return model


def make_transformed(plan_builder=None, cluster=C2x2):
    model = make_model()
    plan = (plan_builder or (lambda g: hybrid_graph_plan(g, fusion=True)))(
        model.graph)
    transformed = transform_graph(model.graph, model.loss, cluster, plan,
                                  verify=False)
    return transformed, default_fetch_ops(transformed)


def collective_ops(transformed, fetch_ops):
    from repro.graph.executor import plan_order

    return [op for op in plan_order(transformed.graph, fetch_ops)
            if op.op_type in COLLECTIVE_TYPES]


# ======================================================================
# Deadlock / matching analysis: mutation regressions
# ======================================================================
class TestDeadlockMutations:
    @pytest.fixture()
    def entries(self):
        transformed, fetch_ops = make_transformed()
        return build_all_worker_entries(transformed, fetch_ops)

    def test_clean_partition_passes(self, entries):
        findings, stats = check_entries(entries)
        assert findings == []
        assert stats["ranks"] == 4
        assert stats["messages"] > 0

    def _first_recv(self, entries):
        for rank in sorted(entries):
            for idx, entry in enumerate(entries[rank]):
                if entry[0] == "recv":
                    return rank, idx, entry
        pytest.fail("partition has no recv entries")

    def test_dropped_recv_is_reported_as_unmatched_send(self, entries):
        rank, idx, (_, name, src) = self._first_recv(entries)
        entries[rank] = (entries[rank][:idx] + entries[rank][idx + 1:])
        findings, _ = check_entries(entries)
        messages = [f.message for f in findings]
        assert any(
            "unmatched send" in m and f"rank {src} sends {name!r}" in m
            and f"rank {rank}" in m for m in messages
        ), messages
        # The counterexample trace names the sender's schedule position.
        finding = next(f for f in findings
                       if "unmatched send" in f.message)
        assert any(f"rank {src} pos " in line for line in finding.trace)

    def test_dropped_send_names_the_hanging_receiver(self, entries):
        rank, idx, (_, name, src) = self._first_recv(entries)
        src_entries = []
        for entry in entries[src]:
            if entry[0] == "exec" and entry[1].name == name:
                sends = tuple(d for d in entry[2] if d != rank)
                entry = (entry[0], entry[1], sends)
            src_entries.append(entry)
        entries[src] = src_entries
        findings, _ = check_entries(entries)
        hang = [f for f in findings if "unmatched recv" in f.message]
        assert hang, [f.message for f in findings]
        assert (f"rank {rank} hangs at schedule position {idx}"
                in hang[0].message)

    def test_swapped_sends_are_detected(self, entries):
        # Swap the send sets of the first two sending execs on one rank:
        # values are misrouted, so matching and/or channel order breaks.
        for rank in sorted(entries):
            sending = [i for i, e in enumerate(entries[rank])
                       if e[0] == "exec" and e[2]]
            if len(sending) >= 2:
                i, j = sending[0], sending[1]
                a, b = entries[rank][i], entries[rank][j]
                entries[rank][i] = (a[0], a[1], b[2])
                entries[rank][j] = (b[0], b[1], a[2])
                break
        else:
            pytest.fail("no rank with two sending execs")
        findings, _ = check_entries(entries)
        assert findings
        assert any(f"rank {rank}" in f.message for f in findings)

    def test_double_recv_is_rejected(self, entries):
        rank, idx, entry = self._first_recv(entries)
        entries[rank] = (entries[rank][:idx + 1] + [entry]
                         + entries[rank][idx + 1:])
        findings, _ = check_entries(entries)
        assert any("blocks forever" in f.message
                   and f"rank {rank} receives" in f.message
                   for f in findings)

    def test_missing_producer_at_rank_is_reported(self, entries):
        rank, idx, (_, name, src) = self._first_recv(entries)
        entries[rank] = (entries[rank][:idx] + entries[rank][idx + 1:])
        findings, _ = check_entries(entries)
        avail = [f for f in findings if "before its input" in f.message]
        assert avail and f"{name!r}" in avail[0].message

    def test_cross_rank_cycle_is_a_counterexample_trace(self):
        class FakeOp:
            def __init__(self, name, inputs=()):
                self.name = name
                self.inputs = inputs

        # rank 0 waits for 'b' before sending 'a'; rank 1 waits for 'a'
        # before sending 'b' -- the classic two-party deadlock.
        entries = {
            0: [("recv", "b", 1), ("exec", FakeOp("a"), (1,))],
            1: [("recv", "a", 0), ("exec", FakeOp("b"), (0,))],
        }
        findings, _ = check_entries(entries)
        dead = [f for f in findings if f.message.startswith("deadlock")]
        assert dead, [f.message for f in findings]
        trace = " ".join(dead[0].trace)
        assert "rank 0" in trace and "rank 1" in trace
        # The cycle closes: the first node is repeated at the end.
        assert dead[0].trace[0].split("waits")[0] in dead[0].trace[-1]

    def test_async_plans_pass_vacuously(self):
        from repro.core.transform.plan import ps_graph_plan

        transformed, fetch_ops = make_transformed(
            lambda g: ps_graph_plan(g, asynchronous=True), cluster=C2x1)
        findings, stats = analyze_deadlock(transformed, fetch_ops)
        assert findings == []
        assert stats["skipped"] == "asynchronous plan"


# ======================================================================
# Collective congruence: replica-skew mutations
# ======================================================================
class TestCongruenceMutations:
    def _replica_collective(self, transformed, fetch_ops, replica=1,
                            op_type="fused_allreduce"):
        for op in collective_ops(transformed, fetch_ops):
            if (op.op_type == op_type
                    and op.attrs.get("replica") == replica):
                return op
        pytest.fail(f"no {op_type} collective for replica {replica}")

    def test_clean_plan_is_congruent(self):
        transformed, fetch_ops = make_transformed()
        findings, stats = analyze_congruence(transformed, fetch_ops)
        assert findings == []
        assert stats["collectives"] == stats["per_replica"] * 4

    def test_skewed_bucket_layout_names_replica_and_position(self):
        transformed, fetch_ops = make_transformed()
        op = self._replica_collective(transformed, fetch_ops)
        segments = [list(seg) for seg in op.attrs["segments"]]
        segments[0][1] += 1  # one replica believes the bucket is bigger
        op.attrs["segments"] = [tuple(seg) for seg in segments]
        findings, _ = analyze_congruence(transformed, fetch_ops)
        assert findings
        skew = findings[0]
        assert "replica 1 diverges from replica 0" in skew.message
        assert "segments" in skew.message
        assert "at collective position" in skew.message
        assert any("segments" in line for line in skew.trace)

    def test_skewed_average_flag_is_detected(self):
        transformed, fetch_ops = make_transformed()
        op = self._replica_collective(transformed, fetch_ops)
        op.attrs["average"] = not op.attrs.get("average", False)
        findings, _ = analyze_congruence(transformed, fetch_ops)
        assert any("mismatched average" in f.message for f in findings)

    def test_replica_missing_from_group_is_detected(self):
        transformed, fetch_ops = make_transformed()
        op = self._replica_collective(transformed, fetch_ops, replica=3)
        op.attrs["replica"] = 0  # group now has replicas [0, 0, 1, 2]
        findings, _ = analyze_congruence(transformed, fetch_ops)
        assert any("expected one per replica" in f.message
                   for f in findings)

    def test_skewed_codec_on_one_replica_is_detected(self):
        transformed, fetch_ops = make_transformed(
            lambda g: ar_graph_plan(g, compression="topk+fp16",
                                    compression_ratio=0.2))
        op = self._replica_collective(transformed, fetch_ops,
                                      op_type="compressed_allreduce")
        producer = next(t.op for t in op.inputs
                        if t.op.op_type == "grad_compress")
        producer.attrs["ratio"] = 0.5
        findings, _ = analyze_congruence(transformed, fetch_ops)
        assert any("mixes payload codecs" in f.message for f in findings)


# ======================================================================
# Alias audit: corrupted buffer plans must be rejected
# ======================================================================
class TestAliasAudit:
    @pytest.fixture()
    def plan(self):
        transformed, fetch_ops = make_transformed(cluster=C2x1)
        plan = CompiledPlan(transformed.graph, fetch_ops)
        plan._ensure_buffer_plan()
        return plan

    def test_real_buffer_plan_is_sound(self, plan):
        findings, stats = audit_buffer_plan(plan)
        assert findings == []
        assert stats["arena_slots"] > 0

    def test_forced_buffer_sharing_is_an_overlap(self, plan):
        bplan = plan._ensure_buffer_plan()
        assert len(bplan.assignment) >= 2
        # Collapse every arena slot onto buffer 0: two slots whose
        # lifetimes overlap now share storage.
        corrupted = dataclasses.replace(
            bplan, assignment={s: 0 for s in bplan.assignment})
        findings, stats = audit_buffer_plan(plan, bplan=corrupted)
        assert stats["overlap_errors"] > 0
        overlap = next(f for f in findings if "still live" in f.message)
        assert "rewritten at schedule position" in overlap.message
        assert any("overwrite happens at position" in line
                   for line in overlap.trace)

    def test_fetched_slot_in_arena_is_rejected(self, plan):
        bplan = plan._ensure_buffer_plan()
        target = sorted(plan.target_slots)[0]
        corrupted = dataclasses.replace(
            bplan, assignment={**bplan.assignment, target: 0})
        findings, stats = audit_buffer_plan(plan, bplan=corrupted)
        assert stats["pinned_errors"] > 0
        assert any("must outlive the step" in f.message for f in findings)

    def test_liveness_disagreement_is_reported(self, plan):
        bplan = plan._ensure_buffer_plan()
        slot = max(bplan.slot_last_use)
        corrupted = dataclasses.replace(
            bplan, slot_last_use={**bplan.slot_last_use, slot: 0})
        findings, _ = audit_buffer_plan(plan, bplan=corrupted)
        assert any("disagrees with the audit" in f.message
                   for f in findings)


# ======================================================================
# Accounting conservation
# ======================================================================
class TestAccounting:
    def test_static_bytes_equal_measured_transcript_dense(self):
        model = make_model()
        runner = DistributedRunner(
            model, C2x1, hybrid_graph_plan(model.graph, fusion=True),
            seed=3)
        runner.step(0)
        fetch_ops = default_fetch_ops(runner.transformed)
        findings, stats = analyze_accounting(runner.transformed, fetch_ops)
        assert findings == []
        checked = 0
        for entry in stats["per_group"]:
            if not entry.get("static"):
                continue
            transfers = runner.transcript.filter(entry["tag"])
            assert entry["total_bytes"] == sum(t.nbytes for t in transfers)
            assert entry["network_bytes"] == sum(
                t.nbytes for t in transfers if t.is_network)
            checked += 1
        assert checked > 0

    def test_static_bytes_equal_measured_transcript_compressed(self):
        model = make_model()
        runner = DistributedRunner(
            model, C2x1,
            ar_graph_plan(model.graph, compression="topk+fp16",
                          compression_ratio=0.2),
            seed=3)
        runner.step(0)
        fetch_ops = default_fetch_ops(runner.transformed)
        findings, stats = analyze_accounting(runner.transformed, fetch_ops)
        assert findings == []
        statics = [e for e in stats["per_group"] if e.get("static")]
        assert statics and all(e["op_type"] == "compressed_allreduce"
                               for e in statics)
        for entry in statics:
            transfers = runner.transcript.filter(entry["tag"])
            assert entry["total_bytes"] == sum(t.nbytes for t in transfers)
        # Worker-view wire bytes follow the simulator's pricing formula.
        assert stats["collective_wire_bytes"] == pytest.approx(
            stats["collective_raw_bytes"]
            * wire_fraction("topk+fp16", 0.2))

    def test_skewed_segments_break_conservation(self):
        transformed, fetch_ops = make_transformed()
        fused = next(op for op in collective_ops(transformed, fetch_ops)
                     if op.op_type == "fused_allreduce")
        segments = [list(seg) for seg in fused.attrs["segments"]]
        segments[0][1] += 7
        fused.attrs["segments"] = [tuple(seg) for seg in segments]
        findings, _ = analyze_accounting(transformed, fetch_ops)
        assert any("does not conserve elements" in f.message
                   for f in findings)

    def test_dropped_plan_variable_breaks_element_conservation(self):
        transformed, fetch_ops = make_transformed()
        name = next(n for n, m in transformed.plan.methods.items()
                    if m.name != "PS")
        del transformed.plan.methods[name]
        findings, _ = analyze_accounting(transformed, fetch_ops)
        assert any("element conservation violated" in f.message
                   for f in findings)

    def test_unregistered_collective_is_reported(self, monkeypatch):
        import repro.core.runner as runner_mod

        transformed, fetch_ops = make_transformed()
        monkeypatch.setattr(
            runner_mod, "_SELF_ACCOUNTING",
            frozenset(runner_mod._SELF_ACCOUNTING - {"fused_allreduce"}))
        findings, _ = analyze_accounting(transformed, fetch_ops)
        assert any("_SELF_ACCOUNTING" in f.message for f in findings)


# ======================================================================
# verify_plan: matrix coverage and runtime wiring
# ======================================================================
class TestVerifyPlanMatrix:
    @pytest.mark.parametrize("model_key", sorted(_bench_matrix_models()))
    @pytest.mark.parametrize("plan_key", sorted(_bench_plan_builders()))
    def test_matrix_is_clean(self, model_key, plan_key):
        model = _bench_matrix_models()[model_key]()
        transformed = transform_graph(
            model.graph, model.loss, C2x2,
            _bench_plan_builders()[plan_key](model.graph), verify=False)
        report = verify_plan(transformed)
        assert report.ok, report.render()
        assert set(report.timings) == {"deadlock", "congruence", "alias",
                                       "accounting"}

    @pytest.mark.parametrize("plan_builder", [
        lambda g: hybrid_graph_plan(g, fusion=False),
        lambda g: ar_graph_plan(g, fusion=True),
        lambda g: ar_graph_plan(g, compression="topk+fp16",
                                compression_ratio=0.05),
        lambda g: ar_graph_plan(g, compression="fp16"),
    ])
    def test_fusion_and_compression_variants_are_clean(self, plan_builder):
        transformed, fetch_ops = make_transformed(plan_builder)
        report = verify_plan(transformed, fetch_ops)
        assert report.ok, report.render()

    def test_supplied_plan_is_reused_and_guarded(self):
        transformed, fetch_ops = make_transformed(cluster=C2x1)
        plan = CompiledPlan(transformed.graph, fetch_ops)
        report = verify_plan(transformed, fetch_ops, plan=plan)
        assert report.ok
        other, other_fetch = make_transformed(cluster=C2x1)
        with pytest.raises(ValueError, match="different graph"):
            verify_plan(other, other_fetch, plan=plan)

    def test_transform_raises_on_findings(self, monkeypatch):
        import repro.analysis as analysis

        bad = AnalysisReport(findings=[Finding("deadlock", "injected")])
        monkeypatch.setattr(analysis, "verify_plan",
                            lambda *a, **k: bad)
        model = make_model()
        with pytest.raises(PlanVerificationError, match="injected"):
            transform_graph(model.graph, model.loss, C2x1,
                            hybrid_graph_plan(model.graph), verify=True)

    def test_env_gate_controls_default(self, monkeypatch):
        import repro.analysis as analysis

        calls = []

        def spy(*args, **kwargs):
            calls.append(args)
            return AnalysisReport()

        monkeypatch.setattr(analysis, "verify_plan", spy)
        model = make_model()
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        transform_graph(model.graph, model.loss, C2x1,
                        hybrid_graph_plan(model.graph))
        assert calls == []
        model = make_model()
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        transform_graph(model.graph, model.loss, C2x1,
                        hybrid_graph_plan(model.graph))
        assert len(calls) == 1

    def test_config_opt_in_wires_through_get_runner(self):
        from repro.core.api import ParallaxConfig, get_runner

        cfg = ParallaxConfig(search_partitions=False,
                             alpha_measure_batches=0, verify_plans=True)
        runner = get_runner(make_model, C2x1, cfg)
        assert runner.verify_plans is True


# ======================================================================
# Transport invariance (satellite: shm rings vs pickle fallback)
# ======================================================================
class TestTransportInvariance:
    def _report_key(self, report):
        scalar_stats = {
            name: {k: v for k, v in stats.items()
                   if isinstance(v, (int, float, str))}
            for name, stats in report.stats.items()
        }
        return ([f.render() for f in report.findings], scalar_stats)

    @pytest.mark.parametrize("transport", MultiprocBackend.TRANSPORTS)
    def test_verification_is_transport_agnostic(self, transport):
        model = make_model()
        runner = DistributedRunner(
            model, C2x1, hybrid_graph_plan(model.graph, fusion=True),
            seed=3, backend=MultiprocBackend(transport=transport))
        try:
            result = runner.step(0)
            assert len(result.replica_losses) == 2
            report = verify_plan(runner.transformed)
            assert report.ok, report.render()
            key = self._report_key(report)
        finally:
            runner.close()
        if not hasattr(type(self), "_first_key"):
            type(self)._first_key = key
        else:
            assert key == type(self)._first_key


# ======================================================================
# Worker failure context (satellite: rank/position/op attribution)
# ======================================================================
class TestWorkerFailureContext:
    def test_mid_step_failure_names_rank_position_and_op(self, monkeypatch):
        from repro.graph import ops as graph_ops

        def exploding_tanh(op, inputs, runtime):
            raise RuntimeError("injected kernel failure")

        # Patch before the runner forks its workers: the children inherit
        # the poisoned kernel table and die mid-execute on the first step.
        monkeypatch.setitem(graph_ops.FORWARD, "tanh", exploding_tanh)
        model = make_model()
        runner = DistributedRunner(
            model, C2x1, hybrid_graph_plan(model.graph, fusion=True),
            seed=3, backend="multiproc")
        try:
            with pytest.raises(WorkerFailureError) as excinfo:
                runner.step(0)
        finally:
            runner.close()
        err = excinfo.value
        assert err.iteration == 0
        assert err.worker in (0, 1)
        assert err.machine == err.worker  # C2x1: one worker per machine
        assert err.schedule_index is not None and err.schedule_index >= 0
        assert err.op_name
        failed_op = runner.transformed.graph.get_op(err.op_name)
        assert failed_op.op_type == "tanh"
        assert "injected kernel failure" in str(err)
        assert f"at schedule position {err.schedule_index}" in str(err)

    def test_message_formats_context(self):
        err = WorkerFailureError(3, 1, 0, schedule_index=17,
                                 op_name="rep1/tanh", detail="boom")
        assert str(err) == ("worker 1 (machine 0) failed at iteration 3 "
                            "at schedule position 17 while executing "
                            "'rep1/tanh'\nboom")
        legacy = WorkerFailureError(2, 0, 0)
        assert str(legacy) == "worker 0 (machine 0) failed at iteration 2"


# ======================================================================
# Repo lint
# ======================================================================
class TestLint:
    def test_repo_is_clean(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        findings = lint_paths([repo / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_mutating_arena_safe_kernel_is_flagged(self, tmp_path):
        bad = tmp_path / "bad_kernel.py"
        bad.write_text(
            "@register_forward(\"add\")\n"
            "def _add_fwd(op, inputs, runtime):\n"
            "    a = inputs[0]\n"
            "    a[0] = 1.0\n"
            "    return a\n"
        )
        findings = lint_paths([bad])
        assert any("mutates its inputs" in f.message for f in findings)
        assert any("subscript store" in line
                   for f in findings for line in f.trace)

    def test_mutating_unlisted_kernel_is_allowed(self, tmp_path):
        ok = tmp_path / "custom_kernel.py"
        ok.write_text(
            "@register_forward(\"my_scatter_apply\")\n"
            "def _fwd(op, inputs, runtime):\n"
            "    inputs[0][0] = 1.0\n"
            "    return inputs[0]\n"
        )
        assert lint_paths([ok]) == []

    def test_global_np_random_is_flagged(self, tmp_path):
        bad = tmp_path / "bad_random.py"
        bad.write_text(
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "rng = np.random.default_rng(0)\n"
        )
        findings = lint_paths([bad])
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message

    def test_lambda_in_add_op_is_flagged(self, tmp_path):
        bad = tmp_path / "bad_lambda.py"
        bad.write_text(
            "op = g.add_op(\"scale\", inputs, attrs={\n"
            "    \"fn\": lambda x: x * 2})\n"
        )
        findings = lint_paths([bad])
        assert any("lambda passed into" in f.message for f in findings)

    def test_unregistered_collective_literal_is_flagged(self, tmp_path):
        bad = tmp_path / "bad_collective.py"
        bad.write_text(
            "op = g.add_op(\"hierarchical_allreduce\", inputs)\n"
        )
        findings = lint_paths([bad])
        assert any("hierarchical_allreduce" in f.message for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand()\n")
        assert lint_main([str(bad)]) == 1
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out


# ======================================================================
# Report plumbing
# ======================================================================
class TestReport:
    def test_render_and_error(self):
        report = AnalysisReport(
            findings=[Finding("deadlock", "it hangs",
                              trace=("rank 0 pos 1: recv",))])
        assert not report.ok
        text = report.render()
        assert "deadlock" in text and "rank 0 pos 1" in text
        err = PlanVerificationError(report)
        assert err.report is report
        assert "it hangs" in str(err)

    def test_crashing_analysis_becomes_a_finding(self, monkeypatch):
        import repro.analysis.verifier as verifier_mod

        def boom(*args, **kwargs):
            raise ValueError("analysis bug")

        monkeypatch.setattr(verifier_mod, "analyze_congruence", boom)
        transformed, fetch_ops = make_transformed(cluster=C2x1)
        report = verify_plan(transformed, fetch_ops,
                             analyses=["congruence"])
        assert not report.ok
        assert "analysis crashed" in report.findings[0].message
