"""Zero-copy shared-memory transport: rings, fallback, hygiene.

Contract under test: bulk ndarray / IndexedSlices payloads move through
/dev/shm rings with pickle used only for the header (zero pickle bytes
for the payload), values freeze at send time, every ineligible payload
falls back to the queue path transparently, and no shm segment outlives
its transport -- including across elastic rescales and forced shutdowns.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.comm.shm import ShmRing, ShmRingError, live_segments
from repro.comm.transport import CONTROLLER, ShmTransport
from repro.core.elastic import ElasticRunner
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import hybrid_graph_plan
from repro.graph.gradients import gradients
from repro.nn.models import build_resnet
from repro.nn.optimizers import GradientDescentOptimizer
from repro.tensor.sparse import IndexedSlices

C2 = ClusterSpec(num_machines=1, gpus_per_machine=2)


def small_model():
    # width=16 keeps the dense weight gradients above the transport's
    # min_shm_bytes threshold, so steps exercise the ring path.
    model = build_resnet(batch_size=4, num_features=8, num_classes=3,
                         width=16, num_blocks=1, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.4).update(gvs)
    return model


@pytest.fixture
def ring():
    r = ShmRing(1 << 14, lock=mp.Lock())
    yield r
    r.destroy()


@pytest.fixture
def transport():
    t = ShmTransport(2)
    yield t
    t.close()


# ======================================================================
# The ring itself
# ======================================================================
class TestShmRing:
    def test_roundtrip_preserves_bits_and_dtype(self, ring):
        a = np.random.default_rng(0).standard_normal((16, 7)).astype(
            np.float32)
        b = np.arange(11, dtype=np.int64)
        pos, advance, seq, offs = ring.try_write([a, b])
        out = ring.read(pos, seq, tuple(
            (x.dtype.str, x.shape, off) for x, off in zip((a, b), offs)))
        ring.release(advance)
        np.testing.assert_array_equal(out[0], a)
        np.testing.assert_array_equal(out[1], b)
        assert out[0].dtype == a.dtype and out[1].dtype == b.dtype
        assert ring.used_bytes() == 0

    def test_read_copies_out_of_the_ring(self, ring):
        a = np.ones(32, dtype=np.float32)
        pos, advance, seq, offs = ring.try_write([a])
        out = ring.read(pos, seq, ((a.dtype.str, a.shape, offs[0]),))[0]
        ring.release(advance)
        # The reader owns its bytes: releasing (and later overwriting)
        # the slot cannot reach through into a returned array.
        assert out.flags["OWNDATA"]
        assert np.all(out == 1.0)

    def test_stale_generation_raises(self, ring):
        a = np.ones(8, dtype=np.float32)
        pos, advance, seq, offs = ring.try_write([a])
        with pytest.raises(ShmRingError):
            ring.read(pos, seq + 1, ((a.dtype.str, a.shape, offs[0]),))
        ring.release(advance)

    def test_oversized_and_full_writes_return_none(self, ring):
        too_big = np.zeros(1 << 14, dtype=np.uint8)  # > capacity // 2
        assert ring.try_write([too_big]) is None
        # 8176 B + 16 B prefix == capacity // 2: exactly two messages fit.
        chunk = np.zeros(8176, dtype=np.uint8)
        first = ring.try_write([chunk])
        second = ring.try_write([chunk])
        assert first is not None and second is not None
        assert ring.try_write([chunk]) is None  # no free space
        ring.release(first[1])
        assert ring.try_write([chunk]) is not None  # space reclaimed

    def test_wraparound_many_messages(self, ring):
        rng = np.random.default_rng(1)
        for i in range(200):
            a = rng.standard_normal(400 + (i % 5)).astype(np.float32)
            written = ring.try_write([a])
            assert written is not None, f"ring full at message {i}"
            pos, advance, seq, offs = written
            out = ring.read(pos, seq, ((a.dtype.str, a.shape, offs[0]),))
            ring.release(advance)
            np.testing.assert_array_equal(out[0], a)
        assert ring.used_bytes() == 0

    def test_destroy_unlinks_segment_and_is_idempotent(self):
        r = ShmRing(1 << 12, lock=mp.Lock())
        name = r.name
        assert name in live_segments()
        r.destroy()
        r.destroy()
        assert name not in live_segments()


# ======================================================================
# The transport: routing, fallback, counters
# ======================================================================
class TestShmTransport:
    def test_bulk_array_rides_shm_with_zero_pickle_bytes(self, transport):
        payload = np.random.default_rng(2).standard_normal(
            (64, 64)).astype(np.float32)
        transport.send(CONTROLLER, 0, ("grad", 0), payload)
        out = transport.recv(0, CONTROLLER, ("grad", 0), timeout=5)
        np.testing.assert_array_equal(out, payload)
        c = transport.counters
        assert c["shm_msgs"] == 1
        assert c["shm_bytes"] == payload.nbytes
        assert c["pickle_msgs"] == 0
        assert c["pickle_bytes"] == 0
        assert c["copy_count"] == 2  # one copy in, one copy out
        assert c["serialize_s"] >= 0.0 and c["deserialize_s"] >= 0.0

    def test_freeze_at_send(self, transport):
        payload = np.ones((32, 32), dtype=np.float32)
        transport.send(0, CONTROLLER, ("k",), payload)
        payload[:] = -7.0  # mutate after send: receiver must not see it
        out = transport.recv(CONTROLLER, 0, ("k",), timeout=5)
        assert np.all(out == 1.0)

    def test_indexed_slices_roundtrip(self, transport):
        sl = IndexedSlices(
            np.random.default_rng(3).standard_normal((40, 8)),
            np.arange(40, dtype=np.int64) % 13,
            (64, 8),
        )
        transport.send(CONTROLLER, 1, ("sp",), sl)
        out = transport.recv(1, CONTROLLER, ("sp",), timeout=5)
        assert isinstance(out, IndexedSlices)
        np.testing.assert_array_equal(out.values, sl.values)
        np.testing.assert_array_equal(out.indices, sl.indices)
        assert out.dense_shape == sl.dense_shape
        assert transport.counters["shm_msgs"] == 1
        assert transport.counters["pickle_msgs"] == 0

    def test_small_and_non_array_payloads_fall_back_to_pickle(
            self, transport):
        transport.send(CONTROLLER, 0, ("tiny",),
                       np.zeros(4, dtype=np.float32))
        transport.send(CONTROLLER, 0, ("cmd",), {"op": "step", "i": 3})
        assert np.all(
            transport.recv(0, CONTROLLER, ("tiny",), timeout=5) == 0)
        assert transport.recv(0, CONTROLLER, ("cmd",),
                              timeout=5) == {"op": "step", "i": 3}
        c = transport.counters
        assert c["shm_msgs"] == 0
        assert c["pickle_msgs"] == 2
        assert c["pickle_bytes"] > 0

    def test_ring_full_falls_back_and_preserves_values(self):
        t = ShmTransport(1, ring_bytes=1 << 13)
        try:
            msgs = [np.full(800, i, dtype=np.float32) for i in range(6)]
            for i, m in enumerate(msgs):
                t.send(CONTROLLER, 0, ("m", i), m)  # ring fills mid-way
            assert t.counters["fallbacks"] > 0
            assert t.counters["pickle_msgs"] == t.counters["fallbacks"]
            for i, m in enumerate(msgs):
                out = t.recv(0, CONTROLLER, ("m", i), timeout=5)
                np.testing.assert_array_equal(out, m)
        finally:
            t.close()

    def test_oversized_payload_falls_back(self):
        t = ShmTransport(1, ring_bytes=1 << 13)
        try:
            big = np.random.default_rng(4).standard_normal(
                1 << 12).astype(np.float64)  # 32 KiB > ring
            t.send(0, CONTROLLER, ("big",), big)
            np.testing.assert_array_equal(
                t.recv(CONTROLLER, 0, ("big",), timeout=5), big)
            assert t.counters["shm_msgs"] == 0
            assert t.counters["fallbacks"] == 1
        finally:
            t.close()

    def test_out_of_order_recv_releases_slots(self, transport):
        a = np.full(1024, 1.0, dtype=np.float32)
        b = np.full(1024, 2.0, dtype=np.float32)
        transport.send(0, CONTROLLER, ("a",), a)
        transport.send(0, CONTROLLER, ("b",), b)
        out_b = transport.recv(CONTROLLER, 0, ("b",), timeout=5)
        out_a = transport.recv(CONTROLLER, 0, ("a",), timeout=5)
        assert np.all(out_a == 1.0) and np.all(out_b == 2.0)
        assert transport._rings[(0, CONTROLLER)].used_bytes() == 0

    def test_drain_releases_ring_slots(self, transport):
        ring = transport._rings[(0, CONTROLLER)]
        for i in range(3):
            transport.send(0, CONTROLLER, ("x", i),
                           np.zeros(2048, dtype=np.float32))
        assert ring.used_bytes() > 0
        # Sends flush through the queue's feeder thread asynchronously.
        deadline = time.monotonic() + 5.0
        dropped = 0
        while dropped < 3 and time.monotonic() < deadline:
            dropped += transport.drain(CONTROLLER)
        assert dropped == 3
        assert ring.used_bytes() == 0

    def test_close_unlinks_all_segments_idempotently(self):
        t = ShmTransport(3)
        names = t.segment_names
        assert len(names) == len(set(names)) == 4 * 3  # directed pairs
        alive = set(live_segments())
        assert all(n in alive for n in names)
        t.close()
        t.close()
        alive = set(live_segments())
        assert all(n not in alive for n in names)


# ======================================================================
# Backend integration: telemetry notes and segment hygiene
# ======================================================================
class TestBackendIntegration:
    def test_transport_step_notes_report_shm_traffic(self):
        model = small_model()
        runner = DistributedRunner(model, C2, hybrid_graph_plan(model.graph),
                                   seed=5, backend="multiproc")
        try:
            for i in range(2):
                runner.step(i)
            notes = runner.backend.transport.transcript.events(
                "transport/step")
            assert len(notes) == 2
            for note in notes:
                assert note.get("shm_bytes") > 0  # bulk grads ride shm
                assert note.get("copy_count") > 0
                assert note.get("serialize_s") >= 0.0
            totals = runner.backend.serialization_totals
            assert totals["shm_bytes"] == sum(
                n.get("shm_bytes") for n in notes)
        finally:
            runner.close()

    def test_shutdown_unlinks_every_segment(self):
        model = small_model()
        runner = DistributedRunner(model, C2, hybrid_graph_plan(model.graph),
                                   seed=5, backend="multiproc")
        names = runner.backend.transport.segment_names
        assert names and all(n in live_segments() for n in names)
        runner.close()
        alive = set(live_segments())
        assert all(n not in alive for n in names)

    def test_queue_transport_stays_available_and_bit_identical(self):
        from repro.core.backend import MultiprocBackend

        losses = {}
        for kind in ("shm", "queue"):
            model = small_model()
            runner = DistributedRunner(
                model, C2, hybrid_graph_plan(model.graph), seed=5,
                backend=MultiprocBackend(transport=kind))
            try:
                losses[kind] = [runner.step(i).replica_losses
                                for i in range(3)]
            finally:
                runner.close()
        assert losses["shm"] == losses["queue"]

    def test_rescale_swaps_shm_fleets_atomically(self):
        model_builder = small_model
        model = model_builder()
        runner = ElasticRunner(model, C2, hybrid_graph_plan(model.graph),
                               seed=5, backend="multiproc")
        try:
            runner.step(0)
            old_names = runner.backend.transport.segment_names
            assert all(n in live_segments() for n in old_names)
            runner.rescale(ClusterSpec(num_machines=2, gpus_per_machine=2))
            new_names = runner.backend.transport.segment_names
            alive = set(live_segments())
            # Old fleet's segments are gone, the new fleet's are live.
            assert all(n not in alive for n in old_names)
            assert all(n in alive for n in new_names)
            runner.step(1)
        finally:
            runner.close()
        alive = set(live_segments())
        assert all(n not in alive for n in new_names)
