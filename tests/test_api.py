"""The Parallax user API: shard, partitioner, config, get_runner."""

import json

import numpy as np
import pytest

import repro as parallax
from repro.cluster.spec import ClusterSpec
from repro.core.api import (
    ParallaxConfig,
    get_runner,
    measure_alpha,
    resolve_cluster,
    shard,
)
from repro.core.partition_context import (
    active_partitions,
    partitioner,
    sampling_partitions,
)
from repro.graph import gradients
from repro.graph.graph import Graph
from repro.graph import ops
from repro.nn import layers
from repro.nn.datasets import SyntheticTextDataset
from repro.nn.models import build_lm, build_resnet
from repro.nn.models.common import BuiltModel, mean_of
from repro.nn.optimizers import GradientDescentOptimizer

SMALL = {"machines": 2, "gpus_per_machine": 2}


def lm_builder(vocab=40, use_partitioner=True):
    """Figure-3-style builder closure."""

    def build():
        ds = shard(SyntheticTextDataset(size=128, vocab_size=vocab,
                                        seq_len=2, seed=0))
        g = Graph()
        with g.as_default():
            tokens = ops.placeholder((4, 2), dtype="int64", name="tokens")
            targets = ops.placeholder((4, 2), dtype="int64", name="targets")
            if use_partitioner:
                with partitioner():
                    emb, _ = layers.embedding(tokens, vocab, 6, name="emb")
            else:
                emb, _ = layers.embedding(tokens, vocab, 6, name="emb")
            flat = ops.reshape(emb, (4, 12), name="flat")
            w = layers.get_variable("w", (12, vocab))
            losses = []
            for t in range(2):
                logits = ops.matmul(
                    ops.reshape(ops.slice_axis(emb, t, t + 1, axis=1,
                                               name=f"e{t}"),
                                (4, 6), name=f"es{t}"),
                    ops.matmul(layers.get_variable(f"p{t}", (6, 12)).tensor,
                               w.tensor, name=f"pw{t}"),
                    name=f"logits{t}")
                lbl = ops.reshape(ops.slice_axis(targets, t, t + 1, axis=1,
                                                 name=f"l{t}"), (4,),
                                  name=f"ls{t}")
                losses.append(ops.softmax_xent(logits, lbl, name=f"x{t}"))
            loss = mean_of(losses, "loss")
            gvs = gradients(loss)
            GradientDescentOptimizer(0.2).update(gvs)
        return BuiltModel(graph=g, loss=loss,
                          placeholders={"tokens": tokens,
                                        "targets": targets},
                          dataset=ds, batch_size=4, name="api_lm")

    return build


class TestPartitionContext:
    def test_inactive_outside_scope(self):
        assert active_partitions() is None

    def test_default_one_inside_scope(self):
        with partitioner():
            assert active_partitions() == 1

    def test_sampling_value_visible_in_scope(self):
        with sampling_partitions(7):
            assert active_partitions() is None  # needs partitioner() too
            with partitioner():
                assert active_partitions() == 7

    def test_nested_partitioner_rejected(self):
        with partitioner():
            with pytest.raises(RuntimeError):
                with partitioner():
                    pass

    def test_invalid_sampling_value(self):
        with pytest.raises(ValueError):
            with sampling_partitions(0):
                pass

    def test_embedding_uses_context(self):
        g = Graph()
        with g.as_default():
            ids = ops.placeholder((3,), dtype="int64", name="ids")
            with sampling_partitions(3), partitioner():
                _, pv = layers.embedding(ids, 30, 4, name="emb")
        assert len(pv.partitions) == 3


class TestShard:
    def test_marks_and_returns_dataset(self):
        ds = SyntheticTextDataset(size=16, vocab_size=10, seq_len=2)
        assert shard(ds) is ds
        assert ds._parallax_shard is True


class TestConfig:
    def test_defaults_valid(self):
        ParallaxConfig()

    def test_bad_architecture_rejected(self):
        with pytest.raises(ValueError):
            ParallaxConfig(architecture="magic")

    def test_bad_sampling_rejected(self):
        with pytest.raises(ValueError):
            ParallaxConfig(sample_iterations=0)


class TestResolveCluster:
    def test_passthrough(self):
        spec = ClusterSpec(2, 3)
        assert resolve_cluster(spec) is spec

    def test_simple_dict(self):
        spec = resolve_cluster({"machines": 3, "gpus_per_machine": 4})
        assert spec.num_machines == 3
        assert spec.gpus_per_machine == 4

    def test_machine_list_dict(self):
        spec = resolve_cluster({
            "machines": [{"hostname": "a", "gpus": [0, 1]},
                         {"hostname": "b", "gpus": [0, 1]}],
            "nic_gbps": 40,
        })
        assert spec.num_machines == 2
        assert spec.gpus_per_machine == 2
        assert spec.nic_gbps == 40

    def test_resource_file(self, tmp_path):
        path = tmp_path / "resources.json"
        path.write_text(json.dumps(
            {"machines": [{"hostname": "a", "gpus": [0, 1, 2]}]}))
        spec = resolve_cluster(str(path))
        assert spec.num_machines == 1
        assert spec.gpus_per_machine == 3

    def test_heterogeneous_rejected(self):
        with pytest.raises(ValueError):
            resolve_cluster({
                "machines": [{"hostname": "a", "gpus": [0]},
                             {"hostname": "b", "gpus": [0, 1]}],
            })

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            resolve_cluster(42)


class TestMeasureAlpha:
    def test_small_vocab_high_alpha(self):
        model = build_lm(batch_size=16, vocab_size=10, seq_len=4,
                         emb_dim=4, hidden=6, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        alphas = measure_alpha(model, num_batches=2)
        assert alphas["embedding"] > 0.5

    def test_large_vocab_low_alpha(self):
        model = build_lm(batch_size=4, vocab_size=500, seq_len=2,
                         emb_dim=4, hidden=6, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        alphas = measure_alpha(model, num_batches=2)
        assert alphas["embedding"] < 0.2

    def test_partition_shards_share_parent_alpha(self):
        model = build_lm(batch_size=8, vocab_size=20, seq_len=3,
                         emb_dim=4, hidden=6, num_partitions=3, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        alphas = measure_alpha(model, num_batches=2)
        shard_alphas = {v for k, v in alphas.items()
                        if k.startswith("embedding/")}
        assert len(shard_alphas) == 1  # merged to the parent value

    def test_dense_model_empty(self):
        model = build_resnet(batch_size=4, num_features=8, width=8,
                             num_blocks=1, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        assert measure_alpha(model, num_batches=2) == {}


class TestGetRunner:
    def test_runs_and_trains(self):
        runner = get_runner(lm_builder(), SMALL,
                            ParallaxConfig(search_partitions=False))
        losses = [runner.step(i).mean_loss for i in range(6)]
        assert losses[-1] < losses[0] + 0.05  # not diverging

    def test_partition_search_executes(self):
        cfg = ParallaxConfig(sample_iterations=1, sample_warmup=0,
                             max_partitions=8)
        runner = get_runner(lm_builder(), SMALL, cfg)
        assert runner.partition_search is not None
        assert runner.partition_search.num_samples >= 2

    def test_small_vocab_sparse_as_dense(self):
        """With a tiny vocabulary, alpha ~ 1 and the hybrid plan should
        AllReduce the embedding rather than PS it."""
        cfg = ParallaxConfig(search_partitions=False,
                             sparse_as_dense_threshold=0.5,
                             alpha_measure_batches=2)
        runner = get_runner(lm_builder(vocab=8, use_partitioner=False),
                            SMALL, cfg)
        assert "emb" in runner.transformed.replica_variables
        assert not runner.transformed.ps_placement

    def test_large_vocab_stays_ps(self):
        cfg = ParallaxConfig(search_partitions=False,
                             sparse_as_dense_threshold=0.5,
                             alpha_measure_batches=2)
        runner = get_runner(lm_builder(vocab=500), SMALL, cfg)
        assert any(name.startswith("emb")
                   for name in runner.transformed.ps_placement)

    def test_ps_architecture_override(self):
        cfg = ParallaxConfig(architecture="ps", search_partitions=False,
                             alpha_measure_batches=0)
        runner = get_runner(lm_builder(), SMALL, cfg)
        assert not runner.transformed.replica_variables

    def test_ar_architecture_override(self):
        cfg = ParallaxConfig(architecture="ar", search_partitions=False,
                             alpha_measure_batches=0)
        runner = get_runner(lm_builder(), SMALL, cfg)
        assert not runner.transformed.ps_placement

    def test_builder_without_optimizer_rejected(self):
        def bad_builder():
            g = Graph()
            with g.as_default():
                v = layers.get_variable("v", (3,))
                loss = ops.mean(v.tensor)
            return BuiltModel(graph=g, loss=loss, placeholders={},
                              dataset=SyntheticTextDataset(size=4),
                              batch_size=1)

        with pytest.raises(ValueError, match="gradients"):
            get_runner(bad_builder, SMALL)

    def test_top_level_exports(self):
        assert parallax.get_runner is get_runner
        assert parallax.shard is shard
        assert hasattr(parallax, "partitioner")
        assert hasattr(parallax, "ParallaxConfig")


class TestConfigValidation:
    """Every ParallaxConfig knob rejects out-of-range values eagerly."""

    def test_negative_sample_warmup_rejected(self):
        with pytest.raises(ValueError, match="sample_warmup"):
            ParallaxConfig(sample_warmup=-1)

    def test_nonpositive_max_partitions_rejected(self):
        with pytest.raises(ValueError, match="max_partitions"):
            ParallaxConfig(max_partitions=0)

    def test_negative_alpha_measure_batches_rejected(self):
        with pytest.raises(ValueError, match="alpha_measure_batches"):
            ParallaxConfig(alpha_measure_batches=-2)

    def test_nonpositive_fusion_buffer_rejected(self):
        with pytest.raises(ValueError, match="fusion_buffer_mb"):
            ParallaxConfig(fusion_buffer_mb=0.0)
        with pytest.raises(ValueError, match="fusion_buffer_mb"):
            ParallaxConfig(fusion_buffer_mb=-4.0)

    def test_boundary_values_accepted(self):
        ParallaxConfig(sample_warmup=0, max_partitions=1,
                       alpha_measure_batches=0, fusion_buffer_mb=0.5)


class TestResolveClusterValidation:
    """Malformed machine lists fail with clear messages, not KeyError."""

    def test_empty_machine_list_rejected(self):
        with pytest.raises(ValueError, match="no machines"):
            resolve_cluster({"machines": []})

    def test_zero_gpu_machine_rejected(self):
        with pytest.raises(ValueError, match="'gpuless'.*no GPUs"):
            resolve_cluster({
                "machines": [{"hostname": "ok", "gpus": [0, 1]},
                             {"hostname": "gpuless", "gpus": []}],
            })

    def test_machine_entry_without_gpus_key_rejected(self):
        with pytest.raises(ValueError, match="'gpus'"):
            resolve_cluster({"machines": [{"hostname": "a"}]})

    def test_non_list_gpus_rejected(self):
        with pytest.raises(ValueError, match="'gpus' list"):
            resolve_cluster({"machines": [{"hostname": "a", "gpus": 2}]})

    def test_non_dict_machine_entry_rejected(self):
        with pytest.raises(ValueError, match="entry 0"):
            resolve_cluster({"machines": ["gpu0"]})


def _mark_grad_sparse(model, var_name):
    """Tamper a dense variable's gradient op to be statically classified
    sparse while its runtime value stays a dense ndarray -- the
    mismatch measure_alpha used to crash on."""
    grad_op = model.graph.get_op(model.graph.gradient_info[var_name])
    grad_op.attrs["is_sparse"] = True
    return model


class TestMeasureAlphaDenseAtRuntime:
    """A sparse-classified gradient that materializes dense is the
    strongest sparse-as-dense signal (alpha=1), not a TypeError."""

    def test_dense_at_runtime_measures_alpha_one(self):
        model = lm_builder()()
        model = _mark_grad_sparse(model, "w")
        alphas = measure_alpha(model, num_batches=2)
        assert alphas["w"] == 1.0
        assert alphas["emb"] < 1.0  # true sparse var still measured

    def test_get_runner_survives_and_allreduces_it(self):
        def builder():
            return _mark_grad_sparse(lm_builder()(), "w")

        runner = get_runner(builder, SMALL,
                            ParallaxConfig(search_partitions=False))
        from repro.cluster.plan import SyncMethod
        method = runner.transformed.plan.methods["w"]
        assert method is SyncMethod.ALLREDUCE
        losses = [runner.step(i).mean_loss for i in range(3)]
        assert np.isfinite(losses).all()
