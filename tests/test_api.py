"""The Parallax user API: shard, partitioner, config, get_runner."""

import json

import numpy as np
import pytest

import repro as parallax
from repro.cluster.spec import ClusterSpec
from repro.core.api import (
    CommConfig,
    ElasticConfig,
    ParallaxConfig,
    get_runner,
    measure_alpha,
    resolve_cluster,
    shard,
)
from repro.core.partition_context import (
    active_partitions,
    partitioner,
    sampling_partitions,
)
from repro.graph import gradients
from repro.graph.graph import Graph
from repro.graph import ops
from repro.nn import layers
from repro.nn.datasets import SyntheticTextDataset
from repro.nn.models import build_lm, build_resnet
from repro.nn.models.common import BuiltModel, mean_of
from repro.nn.optimizers import GradientDescentOptimizer

SMALL = {"machines": 2, "gpus_per_machine": 2}


def lm_builder(vocab=40, use_partitioner=True):
    """Figure-3-style builder closure."""

    def build():
        ds = shard(SyntheticTextDataset(size=128, vocab_size=vocab,
                                        seq_len=2, seed=0))
        g = Graph()
        with g.as_default():
            tokens = ops.placeholder((4, 2), dtype="int64", name="tokens")
            targets = ops.placeholder((4, 2), dtype="int64", name="targets")
            if use_partitioner:
                with partitioner():
                    emb, _ = layers.embedding(tokens, vocab, 6, name="emb")
            else:
                emb, _ = layers.embedding(tokens, vocab, 6, name="emb")
            flat = ops.reshape(emb, (4, 12), name="flat")
            w = layers.get_variable("w", (12, vocab))
            losses = []
            for t in range(2):
                logits = ops.matmul(
                    ops.reshape(ops.slice_axis(emb, t, t + 1, axis=1,
                                               name=f"e{t}"),
                                (4, 6), name=f"es{t}"),
                    ops.matmul(layers.get_variable(f"p{t}", (6, 12)).tensor,
                               w.tensor, name=f"pw{t}"),
                    name=f"logits{t}")
                lbl = ops.reshape(ops.slice_axis(targets, t, t + 1, axis=1,
                                                 name=f"l{t}"), (4,),
                                  name=f"ls{t}")
                losses.append(ops.softmax_xent(logits, lbl, name=f"x{t}"))
            loss = mean_of(losses, "loss")
            gvs = gradients(loss)
            GradientDescentOptimizer(0.2).update(gvs)
        return BuiltModel(graph=g, loss=loss,
                          placeholders={"tokens": tokens,
                                        "targets": targets},
                          dataset=ds, batch_size=4, name="api_lm")

    return build


class TestPartitionContext:
    def test_inactive_outside_scope(self):
        assert active_partitions() is None

    def test_default_one_inside_scope(self):
        with partitioner():
            assert active_partitions() == 1

    def test_sampling_value_visible_in_scope(self):
        with sampling_partitions(7):
            assert active_partitions() is None  # needs partitioner() too
            with partitioner():
                assert active_partitions() == 7

    def test_nested_partitioner_rejected(self):
        with partitioner():
            with pytest.raises(RuntimeError):
                with partitioner():
                    pass

    def test_invalid_sampling_value(self):
        with pytest.raises(ValueError):
            with sampling_partitions(0):
                pass

    def test_embedding_uses_context(self):
        g = Graph()
        with g.as_default():
            ids = ops.placeholder((3,), dtype="int64", name="ids")
            with sampling_partitions(3), partitioner():
                _, pv = layers.embedding(ids, 30, 4, name="emb")
        assert len(pv.partitions) == 3


class TestShard:
    def test_marks_and_returns_dataset(self):
        ds = SyntheticTextDataset(size=16, vocab_size=10, seq_len=2)
        assert shard(ds) is ds
        assert ds._parallax_shard is True


class TestConfig:
    def test_defaults_valid(self):
        ParallaxConfig()

    def test_bad_architecture_rejected(self):
        with pytest.raises(ValueError):
            ParallaxConfig(architecture="magic")

    def test_bad_sampling_rejected(self):
        with pytest.raises(ValueError):
            ParallaxConfig(sample_iterations=0)


class TestResolveCluster:
    def test_passthrough(self):
        spec = ClusterSpec(2, 3)
        assert resolve_cluster(spec) is spec

    def test_simple_dict(self):
        spec = resolve_cluster({"machines": 3, "gpus_per_machine": 4})
        assert spec.num_machines == 3
        assert spec.gpus_per_machine == 4

    def test_machine_list_dict(self):
        spec = resolve_cluster({
            "machines": [{"hostname": "a", "gpus": [0, 1]},
                         {"hostname": "b", "gpus": [0, 1]}],
            "nic_gbps": 40,
        })
        assert spec.num_machines == 2
        assert spec.gpus_per_machine == 2
        assert spec.nic_gbps == 40

    def test_resource_file(self, tmp_path):
        path = tmp_path / "resources.json"
        path.write_text(json.dumps(
            {"machines": [{"hostname": "a", "gpus": [0, 1, 2]}]}))
        spec = resolve_cluster(str(path))
        assert spec.num_machines == 1
        assert spec.gpus_per_machine == 3

    def test_heterogeneous_rejected(self):
        with pytest.raises(ValueError):
            resolve_cluster({
                "machines": [{"hostname": "a", "gpus": [0]},
                             {"hostname": "b", "gpus": [0, 1]}],
            })

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            resolve_cluster(42)


class TestMeasureAlpha:
    def test_small_vocab_high_alpha(self):
        model = build_lm(batch_size=16, vocab_size=10, seq_len=4,
                         emb_dim=4, hidden=6, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        alphas = measure_alpha(model, num_batches=2)
        assert alphas["embedding"] > 0.5

    def test_large_vocab_low_alpha(self):
        model = build_lm(batch_size=4, vocab_size=500, seq_len=2,
                         emb_dim=4, hidden=6, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        alphas = measure_alpha(model, num_batches=2)
        assert alphas["embedding"] < 0.2

    def test_partition_shards_share_parent_alpha(self):
        model = build_lm(batch_size=8, vocab_size=20, seq_len=3,
                         emb_dim=4, hidden=6, num_partitions=3, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        alphas = measure_alpha(model, num_batches=2)
        shard_alphas = {v for k, v in alphas.items()
                        if k.startswith("embedding/")}
        assert len(shard_alphas) == 1  # merged to the parent value

    def test_dense_model_empty(self):
        model = build_resnet(batch_size=4, num_features=8, width=8,
                             num_blocks=1, seed=0)
        with model.graph.as_default():
            gradients(model.loss)
        assert measure_alpha(model, num_batches=2) == {}


class TestGetRunner:
    def test_runs_and_trains(self):
        runner = get_runner(lm_builder(), SMALL,
                            ParallaxConfig(search_partitions=False))
        losses = [runner.step(i).mean_loss for i in range(6)]
        assert losses[-1] < losses[0] + 0.05  # not diverging

    def test_partition_search_executes(self):
        cfg = ParallaxConfig(sample_iterations=1, sample_warmup=0,
                             max_partitions=8)
        runner = get_runner(lm_builder(), SMALL, cfg)
        assert runner.partition_search is not None
        assert runner.partition_search.num_samples >= 2

    def test_small_vocab_sparse_as_dense(self):
        """With a tiny vocabulary, alpha ~ 1 and the hybrid plan should
        AllReduce the embedding rather than PS it."""
        cfg = ParallaxConfig(search_partitions=False,
                             sparse_as_dense_threshold=0.5,
                             alpha_measure_batches=2)
        runner = get_runner(lm_builder(vocab=8, use_partitioner=False),
                            SMALL, cfg)
        assert "emb" in runner.transformed.replica_variables
        assert not runner.transformed.ps_placement

    def test_large_vocab_stays_ps(self):
        cfg = ParallaxConfig(search_partitions=False,
                             sparse_as_dense_threshold=0.5,
                             alpha_measure_batches=2)
        runner = get_runner(lm_builder(vocab=500), SMALL, cfg)
        assert any(name.startswith("emb")
                   for name in runner.transformed.ps_placement)

    def test_ps_architecture_override(self):
        cfg = ParallaxConfig(architecture="ps", search_partitions=False,
                             alpha_measure_batches=0)
        runner = get_runner(lm_builder(), SMALL, cfg)
        assert not runner.transformed.replica_variables

    def test_ar_architecture_override(self):
        cfg = ParallaxConfig(architecture="ar", search_partitions=False,
                             alpha_measure_batches=0)
        runner = get_runner(lm_builder(), SMALL, cfg)
        assert not runner.transformed.ps_placement

    def test_builder_without_optimizer_rejected(self):
        def bad_builder():
            g = Graph()
            with g.as_default():
                v = layers.get_variable("v", (3,))
                loss = ops.mean(v.tensor)
            return BuiltModel(graph=g, loss=loss, placeholders={},
                              dataset=SyntheticTextDataset(size=4),
                              batch_size=1)

        with pytest.raises(ValueError, match="gradients"):
            get_runner(bad_builder, SMALL)

    def test_top_level_exports(self):
        assert parallax.get_runner is get_runner
        assert parallax.shard is shard
        assert hasattr(parallax, "partitioner")
        assert hasattr(parallax, "ParallaxConfig")


class TestConfigValidation:
    """Every ParallaxConfig knob rejects out-of-range values eagerly."""

    def test_negative_sample_warmup_rejected(self):
        with pytest.raises(ValueError, match="sample_warmup"):
            ParallaxConfig(sample_warmup=-1)

    def test_nonpositive_max_partitions_rejected(self):
        with pytest.raises(ValueError, match="max_partitions"):
            ParallaxConfig(max_partitions=0)

    def test_negative_alpha_measure_batches_rejected(self):
        with pytest.raises(ValueError, match="alpha_measure_batches"):
            ParallaxConfig(alpha_measure_batches=-2)

    def test_nonpositive_fusion_buffer_rejected(self):
        with pytest.raises(ValueError, match="fusion_buffer_mb"):
            CommConfig(fusion_buffer_mb=0.0)
        with pytest.raises(ValueError, match="fusion_buffer_mb"):
            CommConfig(fusion_buffer_mb=-4.0)

    def test_boundary_values_accepted(self):
        ParallaxConfig(sample_warmup=0, max_partitions=1,
                       alpha_measure_batches=0,
                       comm=CommConfig(fusion_buffer_mb=0.5))

    def test_nonpositive_sample_iterations_rejected(self):
        with pytest.raises(ValueError, match="sample_iterations"):
            ParallaxConfig(sample_iterations=0)
        with pytest.raises(ValueError, match="sample_iterations"):
            ParallaxConfig(sample_iterations=-3)

    def test_unknown_architecture_message_lists_options(self):
        with pytest.raises(ValueError) as err:
            ParallaxConfig(architecture="allgather")
        message = str(err.value)
        for option in ("hybrid", "ps", "opt_ps", "ar"):
            assert option in message

    def test_nonpositive_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            ElasticConfig(checkpoint_every=0)

    def test_fault_plan_without_elastic_rejected(self):
        from repro.cluster.faults import FaultPlan

        with pytest.raises(ValueError, match="elastic"):
            ElasticConfig(fault_plan=FaultPlan.kill(0, 0))
        ParallaxConfig(elastic=ElasticConfig(enabled=True,
                                             fault_plan=FaultPlan.kill(0, 0)))


class TestResolveClusterValidation:
    """Malformed machine lists fail with clear messages, not KeyError."""

    def test_empty_machine_list_rejected(self):
        with pytest.raises(ValueError, match="no machines"):
            resolve_cluster({"machines": []})

    def test_zero_gpu_machine_rejected(self):
        with pytest.raises(ValueError, match="'gpuless'.*no GPUs"):
            resolve_cluster({
                "machines": [{"hostname": "ok", "gpus": [0, 1]},
                             {"hostname": "gpuless", "gpus": []}],
            })

    def test_machine_entry_without_gpus_key_rejected(self):
        with pytest.raises(ValueError, match="'gpus'"):
            resolve_cluster({"machines": [{"hostname": "a"}]})

    def test_non_list_gpus_rejected(self):
        with pytest.raises(ValueError, match="'gpus' list"):
            resolve_cluster({"machines": [{"hostname": "a", "gpus": 2}]})

    def test_non_dict_machine_entry_rejected(self):
        with pytest.raises(ValueError, match="entry 0"):
            resolve_cluster({"machines": ["gpu0"]})

    def test_malformed_entry_message_names_its_index(self):
        with pytest.raises(ValueError, match="entry 2"):
            resolve_cluster({"machines": [
                {"hostname": "a", "gpus": [0]},
                {"hostname": "b", "gpus": [0]},
                {"hostname": "c", "gpus": "zero"},
            ]})

    def test_zero_gpu_machine_without_hostname_labelled_by_index(self):
        with pytest.raises(ValueError, match="machine 1"):
            resolve_cluster({"machines": [{"gpus": [0]}, {"gpus": []}]})

    def test_unequal_gpu_counts_message_lists_counts(self):
        with pytest.raises(ValueError, match=r"\[1, 3\]"):
            resolve_cluster({"machines": [
                {"hostname": "a", "gpus": [0]},
                {"hostname": "b", "gpus": [0, 1, 2]},
            ]})

    def test_non_resource_object_rejected_with_type_error(self):
        with pytest.raises(TypeError, match="resources"):
            resolve_cluster(42)


class TestRestoreBestEffort:
    """restore(strict=False) keeps the old best-effort semantics through
    the full get_runner pipeline (optimizer slots included)."""

    def make_runner(self, seed=0):
        return get_runner(lm_builder(), SMALL,
                          ParallaxConfig(search_partitions=False,
                                         alpha_measure_batches=0,
                                         seed=seed))

    def test_disjoint_checkpoint_leaves_state_untouched(self, tmp_path):
        runner = self.make_runner()
        runner.step(0)
        before = {k: v.copy() for k, v in runner.logical_state().items()}
        path = str(tmp_path / "foreign.npz")
        np.savez(path, unrelated=np.zeros(3, dtype=np.float32))
        runner.restore(path, strict=False)
        after = runner.logical_state()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_partial_checkpoint_loads_only_matches(self, tmp_path):
        trained = self.make_runner()
        for i in range(2):
            trained.step(i)
        state = trained.logical_state()
        kept = sorted(state)[0]
        path = str(tmp_path / "partial.npz")
        np.savez(path, **{kept: state[kept]})
        fresh = self.make_runner(seed=9)
        untouched = sorted(set(state) - {kept})[0]
        before = fresh.logical_state()[untouched].copy()
        fresh.restore(path, strict=False)
        np.testing.assert_array_equal(fresh.logical_state()[kept],
                                      state[kept])
        np.testing.assert_array_equal(fresh.logical_state()[untouched],
                                      before)

    def test_strict_lists_both_directions_at_once(self, tmp_path):
        runner = self.make_runner()
        state = runner.logical_state()
        dropped = sorted(state)[0]
        del state[dropped]
        state["stray/extra"] = np.zeros(2, dtype=np.float32)
        path = str(tmp_path / "both.npz")
        np.savez(path, **state)
        with pytest.raises(ValueError) as err:
            self.make_runner(seed=3).restore(path)
        message = str(err.value)
        assert dropped in message and "stray/extra" in message
        assert "missing" in message and "unexpected" in message


class TestElasticConfig:
    def test_elastic_config_returns_elastic_runner(self):
        from repro.core.elastic import ElasticRunner

        runner = get_runner(lm_builder(), SMALL,
                            ParallaxConfig(
                                search_partitions=False,
                                alpha_measure_batches=0,
                                elastic=ElasticConfig(enabled=True,
                                                      checkpoint_every=2)))
        assert isinstance(runner, ElasticRunner)
        assert runner.checkpoint_every == 2
        runner.step(0)
        runner.rescale(ClusterSpec(1, 2))
        assert runner.num_replicas == 2
        runner.step(1)

    def test_elastic_runner_can_reshard_through_user_builder(self):
        runner = get_runner(lm_builder(), SMALL,
                            ParallaxConfig(
                                search_partitions=False,
                                alpha_measure_batches=0,
                                elastic=ElasticConfig(enabled=True)))
        runner.step(0)
        old = runner.num_partitions
        runner.rescale(ClusterSpec(1, 2), num_partitions=old + 1)
        assert runner.num_partitions == old + 1
        runner.step(1)

    def test_sparse_as_dense_override_follows_shards_across_reshard(self):
        """The measured alpha decision attaches to the parent variable:
        after a partition-count rescale every new shard must share the
        parent's classification, not just shards whose old names match."""
        from repro.cluster.plan import SyncMethod

        runner = get_runner(
            lm_builder(), SMALL,
            ParallaxConfig(search_partitions=False,
                           elastic=ElasticConfig(enabled=True),
                           sparse_as_dense_threshold=0.0,
                           alpha_measure_batches=1))
        emb_methods = {name: m for name, m in runner.plan.methods.items()
                       if name.startswith("emb")}
        assert emb_methods
        assert set(emb_methods.values()) == {SyncMethod.ALLREDUCE}
        runner.rescale(ClusterSpec(1, 2),
                       num_partitions=len(emb_methods) + 1)
        new_emb = {name: m for name, m in runner.plan.methods.items()
                   if name.startswith("emb")}
        assert len(new_emb) == len(emb_methods) + 1
        assert set(new_emb.values()) == {SyncMethod.ALLREDUCE}


def _mark_grad_sparse(model, var_name):
    """Tamper a dense variable's gradient op to be statically classified
    sparse while its runtime value stays a dense ndarray -- the
    mismatch measure_alpha used to crash on."""
    grad_op = model.graph.get_op(model.graph.gradient_info[var_name])
    grad_op.attrs["is_sparse"] = True
    return model


class TestMeasureAlphaDenseAtRuntime:
    """A sparse-classified gradient that materializes dense is the
    strongest sparse-as-dense signal (alpha=1), not a TypeError."""

    def test_dense_at_runtime_measures_alpha_one(self):
        model = lm_builder()()
        model = _mark_grad_sparse(model, "w")
        alphas = measure_alpha(model, num_batches=2)
        assert alphas["w"] == 1.0
        assert alphas["emb"] < 1.0  # true sparse var still measured

    def test_get_runner_survives_and_allreduces_it(self):
        def builder():
            return _mark_grad_sparse(lm_builder()(), "w")

        runner = get_runner(builder, SMALL,
                            ParallaxConfig(search_partitions=False))
        from repro.cluster.plan import SyncMethod
        method = runner.transformed.plan.methods["w"]
        assert method is SyncMethod.ALLREDUCE
        losses = [runner.step(i).mean_loss for i in range(3)]
        assert np.isfinite(losses).all()


class TestBackendConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            CommConfig(backend="cloud")

    def test_plan_cache_size_validated(self):
        with pytest.raises(ValueError, match="plan_cache_size"):
            ParallaxConfig(plan_cache_size=0)
        assert ParallaxConfig(plan_cache_size=1).plan_cache_size == 1

    def test_default_backend_is_inproc(self):
        cfg = ParallaxConfig()
        assert cfg.comm.backend == "inproc"
        assert cfg.plan_cache_size == 32

    def test_get_runner_threads_backend_through(self):
        cfg = ParallaxConfig(comm=CommConfig(backend="multiproc",
                                             fusion=False),
                             search_partitions=False,
                             alpha_measure_batches=0,
                             plan_cache_size=8)
        runner = get_runner(lm_builder(), {"machines": 2,
                                           "gpus_per_machine": 1}, cfg)
        try:
            assert runner.backend_name == "multiproc"
            assert runner.plan_cache_size == 8
            result = runner.step(0)
            assert len(result.replica_losses) == 2
        finally:
            runner.close()

    def test_get_runner_multiproc_matches_inproc(self):
        resources = {"machines": 2, "gpus_per_machine": 1}
        base = dict(search_partitions=False, alpha_measure_batches=0,
                    seed=4)
        inproc = get_runner(lm_builder(), resources,
                            ParallaxConfig(**base))
        want = [inproc.step(i).replica_losses for i in range(2)]
        multiproc = get_runner(
            lm_builder(), resources,
            ParallaxConfig(comm=CommConfig(backend="multiproc"), **base))
        try:
            got = [multiproc.step(i).replica_losses for i in range(2)]
        finally:
            multiproc.close()
        assert got == want
