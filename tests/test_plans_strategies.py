"""SyncPlan validation and strategy (baseline/hybrid) plan builders."""

import pytest

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.plan import SyncMethod, SyncPlan, VariableAssignment
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import (
    PAPER_PROFILES,
    VariableProfile,
    lm_profile,
    nmt_profile,
    resnet50_profile,
)


def dense_var(name="w", elements=1000):
    return VariableProfile(name, elements)


def sparse_var(name="emb", elements=1000, alpha=0.1, rows=100):
    return VariableProfile(name, elements, is_sparse=True, alpha=alpha,
                           rows=rows)


class TestVariableAssignment:
    def test_partitioning_requires_ps(self):
        with pytest.raises(ValueError, match="partitioning"):
            VariableAssignment(sparse_var(), SyncMethod.ALLGATHERV,
                               num_partitions=4)

    def test_partitions_bounded_by_rows(self):
        with pytest.raises(ValueError):
            VariableAssignment(sparse_var(rows=4), SyncMethod.PS,
                               num_partitions=8)

    def test_shard_nbytes(self):
        a = VariableAssignment(sparse_var(elements=1000, rows=100),
                               SyncMethod.PS, num_partitions=4)
        assert a.shard_nbytes == 1000 * 4 / 4

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            VariableAssignment(dense_var(), SyncMethod.PS, num_partitions=0)


class TestSyncPlan:
    def make_plan(self):
        return SyncPlan(
            "test",
            [
                VariableAssignment(dense_var("a"), SyncMethod.ALLREDUCE),
                VariableAssignment(sparse_var("b"), SyncMethod.PS,
                                   num_partitions=2),
                VariableAssignment(sparse_var("c"), SyncMethod.ALLGATHERV),
            ],
        )

    def test_by_method(self):
        plan = self.make_plan()
        assert len(plan.by_method(SyncMethod.PS)) == 1
        assert len(plan.gatherv_assignments) == 1
        assert plan.allreduce_bytes == 4000

    def test_with_partitions_only_touches_sparse_ps(self):
        plan = self.make_plan().with_partitions(8)
        by_name = {a.variable.name: a for a in plan.assignments}
        assert by_name["b"].num_partitions == 8
        assert by_name["a"].num_partitions == 1
        assert by_name["c"].num_partitions == 1

    def test_with_partitions_clamps_to_rows(self):
        plan = self.make_plan().with_partitions(1000)
        by_name = {a.variable.name: a for a in plan.assignments}
        assert by_name["b"].num_partitions == 100

    def test_describe_mentions_every_variable(self):
        text = self.make_plan().describe()
        for name in ("a", "b", "c"):
            assert name in text


class TestVariableProfile:
    def test_sparse_requires_rows(self):
        with pytest.raises(ValueError):
            VariableProfile("x", 10, is_sparse=True, alpha=0.5)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            VariableProfile("x", 10, alpha=0.0)
        with pytest.raises(ValueError):
            VariableProfile("x", 10, alpha=1.5)

    def test_grad_bytes_sparse_scaled_by_alpha(self):
        v = sparse_var(elements=1000, alpha=0.25, rows=100)
        assert v.grad_nbytes == 1000 * 0.25 * 4

    def test_grad_bytes_dense_full(self):
        assert dense_var(elements=10).grad_nbytes == 40


class TestBaselinePlans:
    def test_tf_ps_everything_on_ps(self):
        plan = tf_ps_plan(lm_profile(), num_partitions=16)
        assert all(a.method is SyncMethod.PS for a in plan.assignments)
        assert not plan.local_aggregation
        assert not plan.smart_placement

    def test_tf_ps_partitions_only_sparse(self):
        plan = tf_ps_plan(lm_profile(), num_partitions=16)
        for a in plan.assignments:
            if a.variable.is_sparse:
                assert a.num_partitions == 16
            else:
                assert a.num_partitions == 1

    def test_horovod_split_by_sparsity(self):
        plan = horovod_plan(lm_profile())
        for a in plan.assignments:
            expected = (SyncMethod.ALLGATHERV if a.variable.is_sparse
                        else SyncMethod.ALLREDUCE)
            assert a.method is expected

    def test_opt_ps_enables_optimizations(self):
        plan = opt_ps_plan(nmt_profile(), num_partitions=8)
        assert plan.local_aggregation and plan.smart_placement
        assert all(a.method is SyncMethod.PS for a in plan.assignments)


class TestHybridPlan:
    def test_dense_to_ar_sparse_to_ps(self):
        plan = hybrid_plan(nmt_profile(), num_partitions=4)
        for a in plan.assignments:
            expected = (SyncMethod.PS if a.variable.is_sparse
                        else SyncMethod.ALLREDUCE)
            assert a.method is expected

    def test_dense_model_is_pure_ar(self):
        plan = hybrid_plan(resnet50_profile())
        assert all(a.method is SyncMethod.ALLREDUCE
                   for a in plan.assignments)
        assert not plan.ps_assignments

    def test_near_dense_sparse_variable_allreduced(self):
        profile = nmt_profile()
        high_alpha = VariableProfile("hot", 1000, is_sparse=True,
                                     alpha=0.97, rows=100)
        profile = type(profile)(
            name="custom",
            variables=list(profile.variables) + [high_alpha],
            batch_per_gpu=8, units_per_sample=1, unit="words",
            gpu_time_per_iter=0.1,
        )
        plan = hybrid_plan(profile, sparse_as_dense_threshold=0.95)
        by_name = {a.variable.name: a for a in plan.assignments}
        assert by_name["hot"].method is SyncMethod.ALLREDUCE
        assert by_name["encoder/embedding"].method is SyncMethod.PS

    def test_optimizations_default_on(self):
        plan = hybrid_plan(lm_profile())
        assert plan.local_aggregation and plan.smart_placement


class TestPaperProfiles:
    def test_table1_element_counts(self):
        profiles = PAPER_PROFILES()
        assert profiles["resnet50"].dense_elements == pytest.approx(
            23.8e6, rel=0.001)
        assert profiles["resnet50"].sparse_elements == 0
        assert profiles["inception_v3"].dense_elements == pytest.approx(
            25.6e6, rel=0.001)
        assert profiles["lm"].dense_elements == pytest.approx(9.4e6, rel=0.01)
        assert profiles["lm"].sparse_elements == pytest.approx(813.3e6,
                                                               rel=0.001)
        assert profiles["nmt"].dense_elements == pytest.approx(94.1e6,
                                                               rel=0.001)
        assert profiles["nmt"].sparse_elements == pytest.approx(74.9e6,
                                                                rel=0.001)

    def test_lm_alpha_model_matches_table1(self):
        assert lm_profile().alpha_model == pytest.approx(0.02, abs=0.002)

    def test_resnet_fc_is_largest_dense_variable(self):
        """Paper: 'the largest variable in ... Inception-V3, weight of the
        fully connected layer, has 2.05 million elements.'"""
        profile = resnet50_profile()
        fc = profile.get_variable("fc")
        assert fc.num_elements == 2_049_000
        biggest = max(profile.variables, key=lambda v: v.num_elements)
        assert biggest.num_elements <= 4_456_448  # stage4 conv before scaling

    def test_lm_largest_sparse_variable_406m(self):
        """Paper: 'the embedding matrix has 406 million elements.'"""
        profile = lm_profile()
        emb = profile.get_variable("embedding")
        assert emb.num_elements == pytest.approx(406e6, rel=0.01)

    def test_dense_models_alpha_one(self):
        assert resnet50_profile().alpha_model == 1.0

    def test_units_per_iteration(self):
        lm = lm_profile()
        assert lm.units_per_iteration(48) == 48 * 128 * 20

    def test_get_variable_unknown_raises(self):
        with pytest.raises(KeyError):
            lm_profile().get_variable("nope")


class TestAllReduceBuckets:
    """Fusion-bucket shaping on the performance plane (SyncPlan)."""

    def make_plan(self, cap, elements=(100, 100, 100, 100)):
        assignments = [
            VariableAssignment(dense_var(f"w{i}", n), SyncMethod.ALLREDUCE)
            for i, n in enumerate(elements)
        ]
        return SyncPlan("p", assignments, fusion_buffer_mb=cap)

    def test_unfused_one_bucket_per_variable(self):
        plan = self.make_plan(0.0)
        assert plan.allreduce_buckets() == [400.0] * 4  # 100 f32 each

    def test_none_cap_matches_unfused_shape(self):
        plan = self.make_plan(None)
        assert len(plan.allreduce_buckets()) == 4

    def test_cap_groups_in_assignment_order(self):
        cap_mb = 800 / (1024 * 1024)  # two 400-byte variables per bucket
        buckets = self.make_plan(cap_mb).allreduce_buckets()
        assert buckets == [800.0, 800.0]

    def test_large_cap_single_bucket_conserves_bytes(self):
        plan = self.make_plan(64.0)
        buckets = plan.allreduce_buckets()
        assert len(buckets) == 1
        assert buckets[0] == float(plan.allreduce_bytes)

    def test_with_fusion_rewrites_only_the_cap(self):
        plan = self.make_plan(None)
        fused = plan.with_fusion(4.0)
        assert fused.fusion_buffer_mb == 4.0
        assert fused.assignments == plan.assignments
        assert plan.fusion_buffer_mb is None  # original untouched

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="fusion_buffer_mb"):
            self.make_plan(-1.0)

    def test_non_allreduce_variables_ignored(self):
        assignments = [
            VariableAssignment(dense_var("w", 100), SyncMethod.ALLREDUCE),
            VariableAssignment(sparse_var(), SyncMethod.PS),
        ]
        plan = SyncPlan("p", assignments, fusion_buffer_mb=64.0)
        assert plan.allreduce_buckets() == [400.0]
