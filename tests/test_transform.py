"""Graph transformation: structure, placement, and rule application."""

import numpy as np
import pytest

from repro.cluster.plan import SyncMethod
from repro.cluster.spec import ClusterSpec
from repro.core.transform import classify_variables, transform_graph
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import Graph, gradients, ops
from repro.graph.device import DeviceSpec
from repro.nn import layers
from repro.nn.models import build_lm, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)


def lm_model(num_partitions=2):
    model = build_lm(batch_size=4, vocab_size=30, seq_len=2, emb_dim=6,
                     hidden=8, num_partitions=num_partitions, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.1).update(gvs)
    return model


def resnet_model():
    model = build_resnet(batch_size=4, num_features=8, num_classes=3,
                         width=8, num_blocks=1, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.1).update(gvs)
    return model


class TestClassification:
    def test_lm_classification(self):
        model = lm_model()
        classes = classify_variables(model.graph)
        assert classes["embedding/part_0"] is True
        assert classes["lstm/kernel"] is False
        assert classes["softmax/kernel"] is False

    def test_dense_model_all_dense(self):
        model = resnet_model()
        assert not any(classify_variables(model.graph).values())


class TestHybridStructure:
    @pytest.fixture()
    def transformed(self):
        model = lm_model()
        plan = hybrid_graph_plan(model.graph)
        return transform_graph(model.graph, model.loss, CLUSTER, plan)

    def test_one_loss_per_replica(self, transformed):
        assert len(transformed.replica_losses) == 4

    def test_placeholders_replicated(self, transformed):
        assert set(transformed.placeholder_names) == {"tokens", "targets"}
        assert len(transformed.placeholder_names["tokens"]) == 4

    def test_sparse_variables_on_servers(self, transformed):
        g = transformed.graph
        for shard in ("embedding/part_0", "embedding/part_1"):
            read = g.variables[shard].read_op
            assert read.device is not None
            assert not read.device.is_gpu
            assert transformed.ps_placement[shard] == read.device.machine

    def test_dense_variables_replicated_per_gpu(self, transformed):
        names = transformed.replica_variables["lstm/kernel"]
        assert names == [f"rep{r}/lstm/kernel" for r in range(4)]
        g = transformed.graph
        devices = [g.variables[n].read_op.device for n in names]
        assert devices == [
            DeviceSpec.gpu(0, 0), DeviceSpec.gpu(0, 1),
            DeviceSpec.gpu(1, 0), DeviceSpec.gpu(1, 1),
        ]

    def test_shard_lookups_on_owning_server(self, transformed):
        g = transformed.graph
        lookups = [op for op in g.operations if op.op_type == "shard_lookup"]
        assert lookups, "partitioned lookup was not rewritten"
        for op in lookups:
            shard_var = op.inputs[0].op.attrs["variable"]
            assert op.device == DeviceSpec.cpu(
                transformed.ps_placement[shard_var])

    def test_stitch_on_worker(self, transformed):
        stitches = [op for op in transformed.graph.operations
                    if op.op_type == "stitch"]
        assert len(stitches) == 4  # one per replica
        assert all(op.device.is_gpu for op in stitches)

    def test_allreduce_per_dense_var_per_replica(self, transformed):
        ar_ops = [op for op in transformed.graph.operations
                  if op.op_type == "allreduce"]
        dense_vars = len(transformed.replica_variables)
        assert len(ar_ops) == dense_vars * 4
        for op in ar_ops:
            assert len(op.inputs) == 4  # every replica's gradient
            assert op.device.is_gpu

    def test_global_agg_on_variable_server(self, transformed):
        g = transformed.graph
        for op in g.operations:
            if op.op_type != "global_agg":
                continue
            var = op.name.split("global_agg/")[1]
            assert op.device == DeviceSpec.cpu(transformed.ps_placement[var])

    def test_local_agg_groups_machine_gpus(self, transformed):
        local = [op for op in transformed.graph.operations
                 if op.op_type == "local_agg"]
        assert local
        for op in local:
            assert not op.device.is_gpu
            assert len(op.inputs) == CLUSTER.gpus_per_machine

    def test_ps_update_on_server(self, transformed):
        g = transformed.graph
        for op in g.operations:
            if not op.attrs.get("is_update"):
                continue
            var = op.attrs["variable"]
            if var in transformed.ps_placement:
                assert op.device == DeviceSpec.cpu(
                    transformed.ps_placement[var])

    def test_train_op_groups_all_updates(self, transformed):
        update_count = sum(1 for op in transformed.graph.operations
                           if op.attrs.get("is_update"))
        assert len(transformed.train_op.op.inputs) == update_count
        # PS vars: one update each; AR vars: one per replica.
        expected = len(transformed.ps_placement) + \
            4 * len(transformed.replica_variables)
        assert update_count == expected


class TestRuleVariants:
    def test_ps_plan_has_no_collectives(self):
        model = lm_model()
        plan = ps_graph_plan(model.graph)
        tg = transform_graph(model.graph, model.loss, CLUSTER, plan)
        kinds = {op.op_type for op in tg.graph.operations}
        assert "allreduce" not in kinds and "allgatherv" not in kinds
        assert not tg.replica_variables

    def test_naive_ps_has_no_local_agg_and_chief_agg(self):
        model = lm_model()
        plan = ps_graph_plan(model.graph, local_aggregation=False,
                             smart_placement=False)
        tg = transform_graph(model.graph, model.loss, CLUSTER, plan)
        kinds = [op.op_type for op in tg.graph.operations]
        assert "local_agg" not in kinds
        for op in tg.graph.operations:
            if op.op_type == "global_agg":
                assert op.device == DeviceSpec.cpu(0)  # chief machine

    def test_ar_plan_uses_allgatherv_for_sparse(self):
        model = lm_model()
        plan = ar_graph_plan(model.graph)
        tg = transform_graph(model.graph, model.loss, CLUSTER, plan)
        kinds = {op.op_type for op in tg.graph.operations}
        assert "allgatherv" in kinds and "allreduce" in kinds
        assert "shard_lookup" not in kinds  # embeddings stay replicated
        assert not tg.ps_placement

    def test_dense_model_hybrid_is_pure_ar(self):
        model = resnet_model()
        plan = hybrid_graph_plan(model.graph)
        tg = transform_graph(model.graph, model.loss, CLUSTER, plan)
        assert not tg.ps_placement
        kinds = {op.op_type for op in tg.graph.operations}
        assert "allreduce" in kinds
        assert "global_agg" not in kinds

    def test_sparse_as_dense_override_densifies(self):
        model = lm_model(num_partitions=1)
        overrides = {"embedding": True}
        plan = hybrid_graph_plan(model.graph, sparse_as_dense=overrides)
        tg = transform_graph(model.graph, model.loss, CLUSTER, plan)
        kinds = {op.op_type for op in tg.graph.operations}
        assert "densify" in kinds
        assert "embedding" in tg.replica_variables
        assert not tg.ps_placement


class TestValidation:
    def test_missing_optimizer_rejected(self):
        g = Graph()
        with g.as_default():
            v = layers.get_variable("v", (3,))
            loss = ops.mean(v.tensor)
            gradients(loss)
        plan = hybrid_graph_plan(g)
        with pytest.raises(ValueError, match="optimizer"):
            transform_graph(g, loss, CLUSTER, plan)

    def test_missing_gradient_rejected(self):
        model = lm_model()
        plan = hybrid_graph_plan(model.graph)
        plan.methods["ghost_var"] = SyncMethod.PS
        with pytest.raises(ValueError, match="ghost_var"):
            transform_graph(model.graph, model.loss, CLUSTER, plan)

    def test_loss_graph_mismatch_rejected(self):
        model = lm_model()
        other = lm_model()
        plan = hybrid_graph_plan(model.graph)
        with pytest.raises(ValueError):
            transform_graph(model.graph, other.loss, CLUSTER, plan)


class TestTransformedGraphSerialization:
    """The serialization contract of the multiprocess backend: a
    TransformedGraph pickle round trip preserves structure, seeded
    initial state, and execution semantics bit for bit."""

    def _round_trip(self, transformed):
        import pickle

        return pickle.loads(pickle.dumps(transformed))

    def test_structure_survives_round_trip(self):
        model = lm_model()
        plan = hybrid_graph_plan(model.graph)
        t = transform_graph(model.graph, model.loss, CLUSTER, plan)
        t2 = self._round_trip(t)
        assert [op.name for op in t.graph.operations] \
            == [op.name for op in t2.graph.operations]
        assert [t_.name for t_ in t.replica_losses] \
            == [t_.name for t_ in t2.replica_losses]
        assert t.train_op.name == t2.train_op.name
        assert t.ps_placement == t2.ps_placement
        assert t.placeholder_names == t2.placeholder_names
        assert t.replica_variables == t2.replica_variables
        assert t.logical_variable_names == t2.logical_variable_names
        assert t2.graph.version == t.graph.version

    def test_seeded_initialization_is_bit_identical(self):
        from repro.graph.session import VariableStore

        model = lm_model()
        plan = hybrid_graph_plan(model.graph)
        t = transform_graph(model.graph, model.loss, CLUSTER, plan)
        t2 = self._round_trip(t)
        s1 = VariableStore(t.graph, seed=9)
        s2 = VariableStore(t2.graph, seed=9)
        assert s1.names() == s2.names()
        for name in s1.names():
            np.testing.assert_array_equal(s1.read(name), s2.read(name),
                                          err_msg=name)

    def test_training_on_unpickled_graph_is_bit_identical(self):
        from repro.core.runner import DistributedRunner, DistributedSession

        model = lm_model()
        plan = hybrid_graph_plan(model.graph, fusion=True)
        runner = DistributedRunner(model, CLUSTER, plan, seed=1)
        want = [runner.step(i).replica_losses for i in range(2)]

        t2 = self._round_trip(
            transform_graph(model.graph, model.loss, CLUSTER, plan))
        session = DistributedSession(t2, seed=1)
        fetches = list(t2.replica_losses) + [t2.train_op]
        got = []
        for i in range(2):
            feeds = runner.feeds_for(i)
            # Same base placeholder routing: transformed names match.
            results = session.run(fetches, feeds)
            got.append([float(v) for v in results[:-1]])
        assert got == want

    def test_partitioned_variable_collection_survives(self):
        import pickle

        model = lm_model(num_partitions=3)
        g2 = pickle.loads(pickle.dumps(model.graph))
        (pvar,) = g2.get_collection("partitioned_variables")
        assert pvar.num_partitions == 3
        assert [p.name for p in pvar.partitions] \
            == [f"{pvar.name}/part_{i}" for i in range(3)]
        assert all(p.graph is g2 for p in pvar.partitions)
        # The optimizer collection decodes to a working instance.
        (opt,) = g2.collections["optimizer"]
        assert opt.learning_rate == 0.1
