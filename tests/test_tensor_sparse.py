"""Tests for IndexedSlices: the sparse gradient representation."""

import numpy as np
import pytest

from repro.tensor.sparse import (
    IndexedSlices,
    add_slices,
    concat_slices,
    from_dense_rows,
    to_dense,
)


def make(values, indices, dense_shape=(10, 2)):
    return IndexedSlices(np.asarray(values, dtype=np.float32),
                         np.asarray(indices), dense_shape)


class TestConstruction:
    def test_basic(self):
        sl = make([[1, 2], [3, 4]], [0, 5])
        assert sl.num_rows == 2
        assert sl.dense_shape == (10, 2)

    def test_indices_rank_checked(self):
        with pytest.raises(ValueError):
            IndexedSlices(np.zeros((2, 2), np.float32),
                          np.zeros((2, 1), np.int64), (10, 2))

    def test_leading_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make([[1, 2]], [0, 1])

    def test_trailing_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IndexedSlices(np.zeros((2, 3), np.float32), [0, 1], (10, 2))

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            make([[1, 2]], [10])
        with pytest.raises(ValueError):
            make([[1, 2]], [-1])

    def test_empty_slices_allowed(self):
        sl = make(np.zeros((0, 2)), [])
        assert sl.num_rows == 0
        assert sl.alpha() == 0.0


class TestAccounting:
    def test_num_unique_rows_counts_duplicates_once(self):
        sl = make([[1, 1], [2, 2], [3, 3]], [4, 4, 7])
        assert sl.num_rows == 3
        assert sl.num_unique_rows == 2

    def test_alpha_is_unique_fraction(self):
        sl = make([[1, 1], [2, 2], [3, 3]], [4, 4, 7])
        assert sl.alpha() == pytest.approx(0.2)

    def test_value_and_index_bytes(self):
        sl = make([[1, 1], [2, 2]], [0, 1])
        assert sl.value_nbytes == 2 * 2 * 4
        assert sl.index_nbytes == 2 * 8


class TestCombine:
    def test_sums_duplicate_indices(self):
        sl = make([[1, 0], [2, 0], [4, 1]], [3, 3, 5]).combine()
        assert list(sl.indices) == [3, 5]
        np.testing.assert_array_equal(sl.values, [[3, 0], [4, 1]])

    def test_sorts_indices(self):
        sl = make([[1, 0], [2, 0]], [7, 2]).combine()
        assert list(sl.indices) == [2, 7]

    def test_idempotent_when_unique(self):
        sl = make([[1, 0], [2, 0]], [2, 7])
        combined = sl.combine()
        assert combined == sl.combine().combine()

    def test_preserves_dense_equivalent(self):
        rng = np.random.default_rng(0)
        sl = make(rng.standard_normal((20, 2)),
                  rng.integers(0, 10, size=20))
        np.testing.assert_allclose(sl.combine().to_dense(), sl.to_dense(),
                                   rtol=1e-5, atol=1e-6)

    def test_empty(self):
        sl = make(np.zeros((0, 2)), []).combine()
        assert sl.num_rows == 0


class TestToDense:
    def test_duplicates_accumulate(self):
        dense = make([[1, 0], [2, 0]], [3, 3]).to_dense()
        np.testing.assert_array_equal(dense[3], [3, 0])

    def test_untouched_rows_zero(self):
        dense = make([[1, 1]], [0]).to_dense()
        assert not dense[1:].any()

    def test_to_dense_helper_passes_arrays_through(self):
        arr = np.ones((2, 2))
        assert to_dense(arr) is not None
        np.testing.assert_array_equal(to_dense(arr), arr)


class TestSliceRows:
    def test_partition_and_rebase(self):
        sl = make([[1, 0], [2, 0], [3, 0]], [1, 5, 9])
        part = sl.slice_rows(4, 8)
        assert list(part.indices) == [1]  # 5 - 4
        assert part.dense_shape == (4, 2)
        np.testing.assert_array_equal(part.values, [[2, 0]])

    def test_partitions_cover_everything(self):
        sl = make(np.arange(12, dtype=np.float32).reshape(6, 2),
                  [0, 2, 4, 6, 8, 9])
        parts = [sl.slice_rows(0, 5), sl.slice_rows(5, 10)]
        assert sum(p.num_rows for p in parts) == sl.num_rows
        rebuilt = np.zeros((10, 2), dtype=np.float32)
        rebuilt[0:5] = parts[0].to_dense()
        rebuilt[5:10] = parts[1].to_dense()
        np.testing.assert_array_equal(rebuilt, sl.to_dense())


class TestConcatAndAdd:
    def test_concat_preserves_order(self):
        a = make([[1, 0]], [2])
        b = make([[2, 0]], [2])
        cat = concat_slices([a, b])
        assert list(cat.indices) == [2, 2]
        assert cat.num_rows == 2

    def test_concat_shape_mismatch_rejected(self):
        a = make([[1, 0]], [2], dense_shape=(10, 2))
        b = make([[1, 0]], [2], dense_shape=(20, 2))
        with pytest.raises(ValueError):
            concat_slices([a, b])

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_slices([])

    def test_add_slices_equals_dense_sum(self):
        rng = np.random.default_rng(1)
        a = make(rng.standard_normal((4, 2)), rng.integers(0, 10, 4))
        b = make(rng.standard_normal((4, 2)), rng.integers(0, 10, 4))
        np.testing.assert_allclose(
            add_slices(a, b).to_dense(), a.to_dense() + b.to_dense(),
            rtol=1e-5, atol=1e-6,
        )


class TestMisc:
    def test_scale(self):
        sl = make([[2, 4]], [1]).scale(0.5)
        np.testing.assert_array_equal(sl.values, [[1, 2]])

    def test_copy_is_deep(self):
        sl = make([[1, 1]], [0])
        cp = sl.copy()
        cp.values[0, 0] = 99
        assert sl.values[0, 0] == 1

    def test_equality(self):
        assert make([[1, 1]], [0]) == make([[1, 1]], [0])
        assert make([[1, 1]], [0]) != make([[1, 1]], [1])

    def test_from_dense_rows(self):
        dense = np.arange(20, dtype=np.float32).reshape(10, 2)
        sl = from_dense_rows(dense, [3, 3, 7])
        assert sl.num_rows == 3
        np.testing.assert_array_equal(sl.values[0], dense[3])
        np.testing.assert_array_equal(sl.values[2], dense[7])
