"""The compile-once/execute-many engine.

Two guarantees are load-bearing: compiled execution is *bit-identical*
to the seed interpreter (losses, variable state, and the byte-accounting
transcript), and the per-session plan cache invalidates whenever the
fetch set or the graph changes.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import gradients, ops
from repro.graph.executor import CompiledPlan
from repro.graph.graph import Graph
from repro.graph.session import Session, split_replica_prefix
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)

PLAN_BUILDERS = {
    "hybrid": lambda g: hybrid_graph_plan(g),
    "ps": lambda g: ps_graph_plan(g),
    "opt_ps": lambda g: ps_graph_plan(g, local_aggregation=True,
                                      smart_placement=True, name="opt_ps"),
    "ar": lambda g: ar_graph_plan(g),
    "async_ps": lambda g: ps_graph_plan(g, asynchronous=True),
}


def make_model():
    model = build_lm(batch_size=4, vocab_size=30, seq_len=2, emb_dim=6,
                     hidden=8, num_partitions=2, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.2).update(gvs)
    return model


def make_runner(arch, engine):
    model = make_model()
    return DistributedRunner(model, CLUSTER, PLAN_BUILDERS[arch](model.graph),
                             seed=1, engine=engine)


class TestBitEquivalence:
    """Compiled == interpreted, for every architecture, async included.

    Three steps per runner so the generated fast path (activated on plan
    replay) is exercised, not just the first-run loop."""

    @pytest.mark.parametrize("arch", sorted(PLAN_BUILDERS))
    def test_losses_state_and_transcript_match(self, arch):
        compiled = make_runner(arch, "compiled")
        interpreted = make_runner(arch, "interpreted")
        for i in range(3):
            a = compiled.step(i)
            b = interpreted.step(i)
            assert a.replica_losses == b.replica_losses
        state_a = compiled.logical_state()
        state_b = interpreted.logical_state()
        assert set(state_a) == set(state_b)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])
        assert (compiled.transcript.total_network_bytes()
                == interpreted.transcript.total_network_bytes())

    def test_async_plans_compile_one_plan_per_replica(self):
        runner = make_runner("async_ps", "compiled")
        assert len(runner.step_plans) == runner.num_replicas
        assert len({p.fetch_names for p in runner.step_plans}) \
            == runner.num_replicas

    def test_sync_plans_compile_single_plan(self):
        runner = make_runner("hybrid", "compiled")
        assert len(runner.step_plans) == 1
        fetches = runner.step_plans[0].fetch_names
        assert fetches[-1] == "train_op"
        assert len(fetches) == runner.num_replicas + 1

    def test_runner_rejects_unknown_engine(self):
        model = make_model()
        with pytest.raises(ValueError, match="engine"):
            DistributedRunner(model, CLUSTER, hybrid_graph_plan(model.graph),
                              engine="turbo")


def small_session():
    g = Graph()
    with g.as_default():
        x = ops.placeholder((2,), name="x")
        c = ops.constant(np.ones(2, dtype=np.float32), name="c")
        y = ops.add(x, c, name="y")
        z = ops.mul(y, c, name="z")
    return g, Session(g), x, y, z


class TestPlanCache:
    def test_same_fetches_reuse_plan(self):
        _, sess, x, _, z = small_session()
        feed = {x: np.zeros(2, dtype=np.float32)}
        sess.run(z, feed)
        plan_a = sess.compile(z)
        sess.run(z, feed)
        assert sess.compile(z) is plan_a

    def test_different_fetches_compile_different_plans(self):
        _, sess, _, y, z = small_session()
        assert sess.compile(y) is not sess.compile(z)
        assert sess.compile([y, z]) is not sess.compile(z)

    def test_adding_an_op_invalidates(self):
        g, sess, x, _, z = small_session()
        before = sess.compile(z)
        with g.as_default():
            ops.add(z, z, name="later")
        after = sess.compile(z)
        assert after is not before
        assert after.version == g.version

    def test_adding_a_control_edge_invalidates(self):
        g, sess, x, y, z = small_session()
        before = sess.compile(z)
        z.op.add_control_input(y.op)
        assert sess.compile(z) is not before

    def test_stale_plan_replays_through_run_plan(self):
        g, sess, x, _, z = small_session()
        stale = sess.compile(z)
        with g.as_default():
            ops.add(z, z, name="later")
        value = sess.run_plan(stale, {x: np.zeros(2, dtype=np.float32)})
        np.testing.assert_array_equal(value[0],
                                      np.ones(2, dtype=np.float32))


class TestFeedSemantics:
    """The compiled engine must honour the interpreter's feed contract,
    on the first (loop) execution and on generated replays alike."""

    def test_intermediate_override_all_paths(self):
        _, sess, x, y, z = small_session()
        feed = {x: np.zeros(2, dtype=np.float32)}
        override = dict(feed)
        override["y"] = np.full(2, 5.0, dtype=np.float32)
        for _ in range(3):  # loop, then generated code
            np.testing.assert_array_equal(sess.run(z, feed),
                                          np.ones(2, dtype=np.float32))
            np.testing.assert_array_equal(sess.run(z, override),
                                          np.full(2, 5.0, dtype=np.float32))

    def test_unfed_placeholder_raises_like_interpreter(self):
        _, sess, x, _, z = small_session()
        for _ in range(3):
            with pytest.raises(RuntimeError, match="was not fed"):
                sess.run(z, {})

    def test_unknown_feeds_are_ignored(self):
        _, sess, x, _, z = small_session()
        feed = {x: np.zeros(2, dtype=np.float32), "nonexistent": np.ones(3)}
        for _ in range(3):
            np.testing.assert_array_equal(sess.run(z, feed),
                                          np.ones(2, dtype=np.float32))

    def test_run_matches_run_interpreted(self):
        _, sess_a, x, _, z = small_session()
        _, sess_b, x2, _, z2 = small_session()
        feed = {"x": np.asarray([0.5, -1.5], dtype=np.float32)}
        for _ in range(3):
            np.testing.assert_array_equal(sess_a.run(z, feed),
                                          sess_b.run_interpreted(z2, feed))


class TestPlanIntrospection:
    def test_placeholder_slots_declared(self):
        _, sess, x, _, z = small_session()
        plan = sess.compile(z)
        assert plan.placeholder_names == ("x",)
        plan.validate_placeholders(["x", "other"])
        with pytest.raises(ValueError, match="never feeds"):
            plan.validate_placeholders(["other"])

    def test_plan_records_fetch_signature_and_version(self):
        g, sess, _, y, z = small_session()
        plan = sess.compile([y, z])
        assert plan.fetch_names == ("y", "z")
        assert plan.version == g.version
        assert isinstance(plan, CompiledPlan)


class TestReplicaPrefixParsing:
    def test_split_replica_prefix(self):
        assert split_replica_prefix("rep3/w") == (3, "w")
        assert split_replica_prefix("rep12/a/b") == (12, "a/b")
        assert split_replica_prefix("report/w") == (None, "report/w")
        assert split_replica_prefix("w") == (None, "w")
        assert split_replica_prefix("rep/w") == (None, "rep/w")


class TestPlanSerialization:
    """CompiledPlan pickles as (graph, fetch signature) and recompiles on
    load -- the plain-graph serialization contract of the execution
    backends."""

    def test_round_trip_executes_bit_identically(self):
        import pickle

        _, sess, x, _, z = small_session()
        feed = {"x": np.asarray([1.5, -2.0], dtype=np.float32)}
        plan = sess.compile(z)
        want = sess.run_plan(plan, feed)

        restored = pickle.loads(pickle.dumps(plan))
        assert restored.fetch_names == plan.fetch_names
        assert restored.version == plan.version
        got = sess.run_plan(restored, feed)
        np.testing.assert_array_equal(got[0], want[0])

    def test_round_trip_preserves_placeholder_contract(self):
        import pickle

        _, sess, _, y, z = small_session()
        plan = sess.compile([y, z])
        restored = pickle.loads(pickle.dumps(plan))
        assert restored.placeholder_names == plan.placeholder_names
        with pytest.raises(ValueError, match="never feeds"):
            restored.validate_placeholders([])


class TestPlanCacheLRU:
    def _fetches(self, g):
        with g.as_default():
            c = ops.constant(np.ones(1, dtype=np.float32), name="base")
            return [ops.add(c, c, name=f"fetch{i}") for i in range(6)]

    def test_cache_is_bounded_with_eviction_counter(self):
        g = Graph()
        fetches = self._fetches(g)
        sess = Session(g, plan_cache_size=2)
        for t in fetches:
            sess.run(t)
        assert len(sess._plans) == 2
        assert sess.plan_evictions == len(fetches) - 2

    def test_lru_order_keeps_recently_used_plans(self):
        g = Graph()
        fetches = self._fetches(g)
        sess = Session(g, plan_cache_size=2)
        plan_a = sess.compile(fetches[0])
        sess.compile(fetches[1])
        assert sess.compile(fetches[0]) is plan_a  # refresh a
        sess.compile(fetches[2])  # evicts fetches[1], not a
        assert sess.compile(fetches[0]) is plan_a
        assert sess.plan_evictions == 1

    def test_evicted_plan_recompiles_transparently(self):
        g = Graph()
        fetches = self._fetches(g)
        sess = Session(g, plan_cache_size=1)
        first = sess.compile(fetches[0])
        sess.compile(fetches[1])
        again = sess.compile(fetches[0])
        assert again is not first
        np.testing.assert_array_equal(sess.run(fetches[0]),
                                      np.asarray([2.0], dtype=np.float32))

    def test_cache_size_validated(self):
        g = Graph()
        with pytest.raises(ValueError, match="plan_cache_size"):
            Session(g, plan_cache_size=0)

    def test_runner_threads_cache_size_to_session(self):
        model = make_model()
        runner = DistributedRunner(model, CLUSTER,
                                   hybrid_graph_plan(model.graph),
                                   plan_cache_size=7)
        assert runner.session.plan_cache_size == 7
        assert runner.plan_cache_size == 7
