"""Distributed op kernels: shard_lookup, stitch, densify, aggregations."""

import numpy as np

from repro.core.transform import comm_ops  # noqa: F401 (registers kernels)
from repro.graph.ops import FORWARD
from repro.tensor.sparse import IndexedSlices


class FakeRuntime:
    """Minimal runtime for exercising kernels directly."""

    def __init__(self):
        self.run_cache = {}
        self.transcript = None


def kernel(op_type):
    return FORWARD[op_type]


class FakeOp:
    def __init__(self, op_type, attrs):
        self.op_type = op_type
        self.attrs = attrs
        self.name = f"fake_{op_type}"


class TestShardLookup:
    def test_selects_range_rebased(self):
        shard = np.arange(12, dtype=np.float32).reshape(4, 3)  # rows 4..7
        ids = np.array([5, 2, 7, 5])
        op = FakeOp("shard_lookup", {"lo": 4, "hi": 8, "row_shape": (3,)})
        out = kernel("shard_lookup")(op, [shard, ids], FakeRuntime())
        # ids in range: 5, 7, 5 -> local rows 1, 3, 1 in appearance order
        np.testing.assert_array_equal(out, shard[[1, 3, 1]])

    def test_empty_when_no_ids_in_range(self):
        shard = np.ones((4, 3), dtype=np.float32)
        op = FakeOp("shard_lookup", {"lo": 4, "hi": 8, "row_shape": (3,)})
        out = kernel("shard_lookup")(op, [shard, np.array([0, 1])],
                                     FakeRuntime())
        assert out.shape == (0, 3)

    def test_grad_matches_lookup_mask(self):
        ids = np.array([5, 2, 7, 5])
        upstream = np.arange(9, dtype=np.float32).reshape(3, 3)
        op = FakeOp("shard_lookup_grad",
                    {"lo": 4, "hi": 8, "row_shape": (3,)})
        grad = kernel("shard_lookup_grad")(op, [ids, upstream],
                                           FakeRuntime())
        assert isinstance(grad, IndexedSlices)
        assert list(grad.indices) == [1, 3, 1]
        assert grad.dense_shape == (4, 3)


class TestStitch:
    def test_reassembles_in_id_order(self):
        offsets = [0, 4, 8]
        ids = np.array([5, 2, 7, 0])
        rows_shard0 = np.array([[20.0], [0.0]], dtype=np.float32)  # ids 2,0
        rows_shard1 = np.array([[50.0], [70.0]], dtype=np.float32)  # ids 5,7
        op = FakeOp("stitch", {"offsets": offsets, "row_shape": (1,)})
        out = kernel("stitch")(op, [ids, rows_shard0, rows_shard1],
                               FakeRuntime())
        np.testing.assert_array_equal(out.reshape(-1), [50.0, 20.0, 70.0, 0.0])

    def test_stitch_grad_routes_per_shard(self):
        offsets = [0, 4, 8]
        ids = np.array([5, 2, 7, 0])
        upstream = np.array([[1.0], [2.0], [3.0], [4.0]], dtype=np.float32)
        op0 = FakeOp("stitch_grad", {"shard": 0, "offsets": offsets,
                                     "row_shape": (1,)})
        op1 = FakeOp("stitch_grad", {"shard": 1, "offsets": offsets,
                                     "row_shape": (1,)})
        g0 = kernel("stitch_grad")(op0, [ids, upstream], FakeRuntime())
        g1 = kernel("stitch_grad")(op1, [ids, upstream], FakeRuntime())
        np.testing.assert_array_equal(g0.reshape(-1), [2.0, 4.0])  # ids 2, 0
        np.testing.assert_array_equal(g1.reshape(-1), [1.0, 3.0])  # ids 5, 7

    def test_roundtrip_equals_gather(self):
        """shard_lookup per shard + stitch == plain gather."""
        table = np.arange(16, dtype=np.float32).reshape(8, 2)
        offsets = [0, 3, 8]
        ids = np.array([7, 0, 4, 2, 2])
        rt = FakeRuntime()
        rows = []
        for p, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
            op = FakeOp("shard_lookup", {"lo": lo, "hi": hi,
                                         "row_shape": (2,)})
            rows.append(kernel("shard_lookup")(op, [table[lo:hi], ids], rt))
        stitch_op = FakeOp("stitch", {"offsets": offsets, "row_shape": (2,)})
        out = kernel("stitch")(stitch_op, [ids] + rows, rt)
        np.testing.assert_array_equal(out, table[ids])


class TestAggregations:
    def test_densify(self):
        sl = IndexedSlices(np.ones((2, 2), np.float32), [0, 0], (3, 2))
        op = FakeOp("densify", {})
        out = kernel("densify")(op, [sl], FakeRuntime())
        np.testing.assert_array_equal(out[0], [2.0, 2.0])

    def test_local_agg_dense_sums(self):
        op = FakeOp("local_agg", {})
        out = kernel("local_agg")(op, [np.ones(3), np.full(3, 2.0)],
                                  FakeRuntime())
        np.testing.assert_array_equal(out, np.full(3, 3.0))

    def test_local_agg_sparse_dedups(self):
        a = IndexedSlices(np.ones((2, 1), np.float32), [0, 1], (4, 1))
        b = IndexedSlices(np.ones((1, 1), np.float32), [1], (4, 1))
        op = FakeOp("local_agg", {})
        out = kernel("local_agg")(op, [a, b], FakeRuntime())
        assert out.num_rows == 2  # combined
        np.testing.assert_array_equal(out.to_dense().reshape(-1),
                                      [1.0, 2.0, 0.0, 0.0])

    def test_global_agg_average(self):
        op = FakeOp("global_agg", {"average": True, "num_workers": 4})
        out = kernel("global_agg")(op, [np.full(2, 8.0), np.zeros(2)],
                                   FakeRuntime())
        np.testing.assert_array_equal(out, np.full(2, 2.0))

    def test_global_agg_sparse_average(self):
        a = IndexedSlices(np.full((1, 1), 8.0, np.float32), [0], (2, 1))
        op = FakeOp("global_agg", {"average": True, "num_workers": 4})
        out = kernel("global_agg")(op, [a], FakeRuntime())
        np.testing.assert_array_equal(out.values, [[2.0]])
