"""Analysis soundness on forward-only (serving-shaped) plans.

A serving plan fetches only forward outputs: no collectives, no sends,
no update ops in its schedule.  Every analysis must stay sound on that
shape -- in particular the accounting conservation check, which would
otherwise report the *entire* variable inventory as unaccounted bytes
(the schedule legitimately carries zero collective payloads), and the
deadlock analysis, which must accept an empty send/recv multiset.
"""

import pytest

from repro.analysis import forward_fetch_ops, verify_plan
from repro.analysis.verifier import default_fetch_ops
from repro.cluster.spec import ClusterSpec
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.core.transform.transform import transform_graph
from repro.graph.executor import CompiledPlan, plan_order
from repro.graph.gradients import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

C2x2 = ClusterSpec(num_machines=2, gpus_per_machine=2)

PLAN_BUILDERS = {
    "hybrid": lambda g: hybrid_graph_plan(g, fusion=True),
    "ps": lambda g: ps_graph_plan(g, True, True, name="opt_ps"),
    "ar": ar_graph_plan,
}


def make_transformed(plan_key="hybrid"):
    model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                     hidden=10, num_partitions=3, seed=0)
    with model.graph.as_default():
        GradientDescentOptimizer(0.4).update(gradients(model.loss))
    return transform_graph(model.graph, model.loss, C2x2,
                           PLAN_BUILDERS[plan_key](model.graph),
                           verify=False)


@pytest.mark.parametrize("plan_key", sorted(PLAN_BUILDERS))
class TestForwardOnlySoundness:
    def test_forward_fetches_induce_a_trainfree_schedule(self, plan_key):
        """The premise: a loss-only fetch set schedules no collective
        and no update op -- the shape a serving plan compiles to."""
        transformed = make_transformed(plan_key)
        order = plan_order(transformed.graph, forward_fetch_ops(transformed))
        assert not any(op.attrs.get("is_update") for op in order)
        assert not any(op.op_type in ("allreduce", "fused_allreduce",
                                      "allgatherv", "vjp")
                       for op in order)

    def test_all_analyses_clean_on_forward_only_plans(self, plan_key):
        """No analysis may report a finding on a forward-only plan (the
        accounting regression: conservation used to demand the full
        variable inventory of a schedule that syncs nothing)."""
        transformed = make_transformed(plan_key)
        fetch_ops = forward_fetch_ops(transformed)
        plan = CompiledPlan(transformed.graph, fetch_ops)
        plan._generate()
        report = verify_plan(transformed, fetch_ops, plan=plan)
        assert report.findings == []
        assert report.stats["accounting"]["forward_only"] is True

    def test_full_fetches_still_run_conservation(self, plan_key):
        """The forward-only escape hatch must not swallow the real
        check: a training fetch set still exercises conservation."""
        transformed = make_transformed(plan_key)
        fetch_ops = default_fetch_ops(transformed)
        report = verify_plan(transformed, fetch_ops)
        assert report.findings == []
        assert report.stats["accounting"]["forward_only"] is False
