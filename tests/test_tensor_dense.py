"""Tests for repro.tensor.dense: specs, conversion, byte accounting."""

import numpy as np
import pytest

from repro.tensor.dense import TensorSpec, as_array, nbytes_of, zeros_like_spec
from repro.tensor.sparse import IndexedSlices


class TestAsArray:
    def test_float_list_becomes_float32(self):
        arr = as_array([1.0, 2.0, 3.0])
        assert arr.dtype == np.float32

    def test_int_list_stays_integral(self):
        arr = as_array([1, 2, 3])
        assert np.issubdtype(arr.dtype, np.integer)

    def test_bool_stays_bool(self):
        arr = as_array([True, False])
        assert arr.dtype == np.bool_

    def test_explicit_dtype_wins(self):
        arr = as_array([1, 2], dtype=np.float64)
        assert arr.dtype == np.float64

    def test_float64_downcast_to_float32(self):
        arr = as_array(np.zeros(3, dtype=np.float64))
        assert arr.dtype == np.float32

    def test_scalar(self):
        assert as_array(2.5).shape == ()

    def test_contiguous(self):
        base = np.zeros((4, 4), dtype=np.float32)[::2]
        assert as_array(base).flags["C_CONTIGUOUS"]


class TestTensorSpec:
    def test_num_elements(self):
        assert TensorSpec((3, 4, 5)).num_elements == 60

    def test_scalar_spec(self):
        spec = TensorSpec(())
        assert spec.num_elements == 1
        assert spec.rank == 0

    def test_nbytes_float32(self):
        assert TensorSpec((10,), "float32").nbytes == 40

    def test_nbytes_int64(self):
        assert TensorSpec((10,), "int64").nbytes == 80

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((3, -1))

    def test_of_array(self):
        arr = np.zeros((2, 3), dtype=np.float32)
        spec = TensorSpec.of(arr)
        assert spec.shape == (2, 3)
        assert spec.dtype == "float32"

    def test_with_leading_dim(self):
        spec = TensorSpec((10, 4)).with_leading_dim(3)
        assert spec.shape == (3, 4)

    def test_with_leading_dim_scalar_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec(()).with_leading_dim(3)

    def test_specs_hashable_and_equal(self):
        assert TensorSpec((2, 2)) == TensorSpec((2, 2))
        assert hash(TensorSpec((2, 2))) == hash(TensorSpec((2, 2)))

    def test_dims_coerced_to_int(self):
        spec = TensorSpec((np.int64(3), np.int64(4)))
        assert spec.shape == (3, 4)
        assert all(isinstance(d, int) for d in spec.shape)


class TestNbytes:
    def test_dense_array(self):
        assert nbytes_of(np.zeros((5, 5), dtype=np.float32)) == 100

    def test_indexed_slices_counts_values_only(self):
        sl = IndexedSlices(np.zeros((3, 4), dtype=np.float32), [0, 1, 2],
                           (100, 4))
        assert nbytes_of(sl) == 3 * 4 * 4

    def test_scalar(self):
        assert nbytes_of(np.float32(1.0)) == 4


def test_zeros_like_spec():
    arr = zeros_like_spec(TensorSpec((2, 3), "float32"))
    assert arr.shape == (2, 3)
    assert arr.dtype == np.float32
    assert not arr.any()
