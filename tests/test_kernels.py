"""Numeric kernels: forward values and gradient checks vs finite diffs."""

import numpy as np
import pytest

from repro.tensor import math as k
from repro.tensor.sparse import IndexedSlices

RNG = np.random.default_rng(42)


def finite_diff(f, x, eps=1e-4):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f(x)
        flat[i] = orig - eps
        fm = f(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


class TestLinear:
    def test_matmul_forward(self):
        a = np.array([[1.0, 2.0]], dtype=np.float32)
        b = np.array([[3.0], [4.0]], dtype=np.float32)
        np.testing.assert_array_equal(k.matmul(a, b), [[11.0]])

    def test_matmul_grad_matches_finite_diff(self):
        a = RNG.standard_normal((3, 4)).astype(np.float64)
        b = RNG.standard_normal((4, 2)).astype(np.float64)
        g = RNG.standard_normal((3, 2)).astype(np.float64)
        da, db = k.matmul_grad(a, b, g)
        num_da = finite_diff(lambda x: float((k.matmul(x, b) * g).sum()), a.copy())
        num_db = finite_diff(lambda x: float((k.matmul(a, x) * g).sum()), b.copy())
        np.testing.assert_allclose(da, num_da, atol=1e-5)
        np.testing.assert_allclose(db, num_db, atol=1e-5)

    def test_add_bias_grad(self):
        g = RNG.standard_normal((5, 3)).astype(np.float32)
        dx, db = k.add_bias_grad(g)
        np.testing.assert_array_equal(dx, g)
        np.testing.assert_allclose(db, g.sum(axis=0), rtol=1e-6)


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            k.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_relu_grad_masks_negative(self):
        x = np.array([-1.0, 2.0])
        g = np.array([5.0, 5.0])
        np.testing.assert_array_equal(k.relu_grad(x, g), [0.0, 5.0])

    def test_sigmoid_range_and_stability(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        y = k.sigmoid(x)
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 0.5, 1.0], atol=1e-6)

    def test_tanh_grad_matches_finite_diff(self):
        x = RNG.standard_normal(5)
        g = RNG.standard_normal(5)
        y = k.tanh(x)
        num = finite_diff(lambda v: float((k.tanh(v) * g).sum()), x.copy())
        np.testing.assert_allclose(k.tanh_grad(y, g), num, atol=1e-5)

    def test_sigmoid_grad_matches_finite_diff(self):
        x = RNG.standard_normal(5)
        g = RNG.standard_normal(5)
        y = k.sigmoid(x)
        num = finite_diff(lambda v: float((k.sigmoid(v) * g).sum()), x.copy())
        np.testing.assert_allclose(k.sigmoid_grad(y, g), num, atol=1e-5)


class TestGather:
    def test_gather_rows(self):
        params = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = k.gather(params, np.array([2, 0]))
        np.testing.assert_array_equal(out, params[[2, 0]])

    def test_gather_grad_is_indexed_slices(self):
        g = np.ones((2, 3), dtype=np.float32)
        grad = k.gather_grad((4, 3), np.array([2, 0]), g)
        assert isinstance(grad, IndexedSlices)
        assert grad.dense_shape == (4, 3)
        assert list(grad.indices) == [2, 0]

    def test_gather_grad_duplicates_preserved(self):
        g = np.ones((3, 2), dtype=np.float32)
        grad = k.gather_grad((5, 2), np.array([1, 1, 1]), g)
        assert grad.num_rows == 3
        np.testing.assert_array_equal(grad.to_dense()[1], [3.0, 3.0])

    def test_gather_grad_multidim_ids_flattened(self):
        g = np.ones((2, 2, 3), dtype=np.float32)
        grad = k.gather_grad((5, 3), np.array([[0, 1], [2, 3]]), g)
        assert grad.num_rows == 4

    def test_scatter_add(self):
        target = np.zeros((4, 2), dtype=np.float32)
        sl = IndexedSlices(np.ones((2, 2), np.float32), [1, 1], (4, 2))
        k.scatter_add(target, sl)
        np.testing.assert_array_equal(target[1], [2.0, 2.0])

    def test_scatter_sub(self):
        target = np.ones((4, 2), dtype=np.float32)
        sl = IndexedSlices(np.ones((1, 2), np.float32), [0], (4, 2))
        k.scatter_sub(target, sl)
        np.testing.assert_array_equal(target[0], [0.0, 0.0])


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        probs = k.softmax(RNG.standard_normal((6, 9)))
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(6), rtol=1e-6)

    def test_softmax_shift_invariant(self):
        x = RNG.standard_normal((2, 4))
        np.testing.assert_allclose(k.softmax(x), k.softmax(x + 100.0),
                                   rtol=1e-5)

    def test_xent_of_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert k.softmax_xent(logits, np.array([0, 1])) < 1e-6

    def test_xent_uniform_is_log_n(self):
        logits = np.zeros((1, 8))
        assert k.softmax_xent(logits, np.array([3])) == pytest.approx(
            np.log(8), rel=1e-5
        )

    def test_xent_grad_matches_finite_diff(self):
        logits = RNG.standard_normal((4, 5))
        labels = np.array([0, 1, 2, 3])
        grad = k.softmax_xent_grad(logits, labels)
        num = finite_diff(lambda x: k.softmax_xent(x, labels), logits.copy())
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_mse_grad_matches_finite_diff(self):
        pred = RNG.standard_normal((3, 3))
        target = RNG.standard_normal((3, 3))
        num = finite_diff(lambda x: k.mse(x, target), pred.copy())
        np.testing.assert_allclose(k.mse_grad(pred, target), num, atol=1e-5)


class TestLSTM:
    def test_shapes(self):
        batch, in_dim, hidden = 3, 4, 5
        x = RNG.standard_normal((batch, in_dim))
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        w = RNG.standard_normal((in_dim + hidden, 4 * hidden))
        b = np.zeros(4 * hidden)
        h2, c2, _ = k.lstm_cell(x, h, c, w, b)
        assert h2.shape == (batch, hidden)
        assert c2.shape == (batch, hidden)

    def test_grad_matches_finite_diff(self):
        batch, in_dim, hidden = 2, 3, 2
        x = RNG.standard_normal((batch, in_dim))
        h = RNG.standard_normal((batch, hidden))
        c = RNG.standard_normal((batch, hidden))
        w = RNG.standard_normal((in_dim + hidden, 4 * hidden)) * 0.5
        b = RNG.standard_normal(4 * hidden) * 0.1
        gh = RNG.standard_normal((batch, hidden))

        def scalar(wx):
            h2, _, _ = k.lstm_cell(x, h, c, wx, b)
            return float((h2 * gh).sum())

        _, _, cache = k.lstm_cell(x, h, c, w, b)
        _, _, _, dw, _ = k.lstm_cell_grad(gh, np.zeros_like(c), cache)
        num = finite_diff(scalar, w.copy())
        np.testing.assert_allclose(dw, num, atol=1e-4)


class TestMisc:
    def test_mean_all_grad(self):
        grad = k.mean_all_grad((2, 5), 1.0)
        np.testing.assert_allclose(grad, np.full((2, 5), 0.1), rtol=1e-6)

    def test_l2_norm_mixed(self):
        sl = IndexedSlices(np.array([[3.0]], dtype=np.float32), [0], (5, 1))
        arr = np.array([4.0])
        assert k.l2_norm([sl, arr]) == pytest.approx(5.0, rel=1e-6)

    def test_conv_proxy_matches_matmul(self):
        x = RNG.standard_normal((2, 3)).astype(np.float32)
        w = RNG.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_array_equal(k.conv_proxy(x, w), x @ w)
