"""Pluggable execution backends: transport semantics, schedule
partitioning, and the multiprocess worker backend's differential
guarantees against the in-process engine.

The multiprocess smoke tests run with two workers (one per machine) so
the suite stays fast on hosted runners; the heavier 4-replica
comparisons live in ``repro.cli bench --parallel``.
"""

import time

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.comm.transcript import Transcript, merge_transcripts
from repro.comm.transport import (
    CONTROLLER,
    InMemoryTransport,
    MultiprocTransport,
    TransportError,
    TransportTimeout,
)
from repro.core.backend import (
    BACKENDS,
    InprocBackend,
    MultiprocBackend,
    build_worker_entries,
    make_backend,
    op_owner,
)
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph.executor import plan_order
from repro.graph.gradients import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import AdamOptimizer, GradientDescentOptimizer

SEED = 3
# Two machines x one GPU: two worker processes, with real cross-machine
# PS traffic and a two-party ring.
C2x1 = ClusterSpec(num_machines=2, gpus_per_machine=1)

PLAN_BUILDERS = {
    "hybrid": lambda g: hybrid_graph_plan(g, fusion=True),
    "ps": lambda g: ps_graph_plan(g, True, True, name="opt_ps"),
    "ar": ar_graph_plan,
}


def make_model(optimizer=None):
    model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                     hidden=10, num_partitions=3, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        (optimizer or GradientDescentOptimizer(0.4)).update(gvs)
    return model


def make_runner(plan_key="hybrid", backend="inproc", cluster=C2x1,
                optimizer=None, **kwargs):
    model = make_model(optimizer)
    return DistributedRunner(model, cluster,
                             PLAN_BUILDERS[plan_key](model.graph),
                             seed=SEED, backend=backend, **kwargs)


# ======================================================================
# Transport semantics
# ======================================================================
class TestInMemoryTransport:
    def test_send_recv_round_trip(self):
        t = InMemoryTransport(2)
        t.send(0, 1, ("v", "x"), np.arange(3.0))
        np.testing.assert_array_equal(t.recv(1, 0, ("v", "x")),
                                      np.arange(3.0))

    def test_messages_are_frozen_at_send_time(self):
        """Mutating a buffer after send must not corrupt the receiver --
        the value semantics in-place update kernels rely on."""
        t = InMemoryTransport(2)
        value = np.zeros(4)
        t.send(0, 1, ("v", "x"), value)
        value[:] = 99.0
        np.testing.assert_array_equal(t.recv(1, 0, ("v", "x")),
                                      np.zeros(4))

    def test_fifo_per_channel(self):
        t = InMemoryTransport(2)
        for i in range(3):
            t.send(0, 1, ("v", "x"), i)
        assert [t.recv(1, 0, ("v", "x")) for _ in range(3)] == [0, 1, 2]

    def test_channels_are_independent(self):
        t = InMemoryTransport(2)
        t.send(0, 1, ("v", "a"), "a-val")
        t.send(0, 1, ("v", "b"), "b-val")
        assert t.recv(1, 0, ("v", "b")) == "b-val"
        assert t.recv(1, 0, ("v", "a")) == "a-val"

    def test_recv_timeout(self):
        t = InMemoryTransport(2)
        with pytest.raises(TransportTimeout):
            t.recv(1, 0, ("v", "missing"), timeout=0.01)

    def test_rank_validation(self):
        t = InMemoryTransport(2)
        with pytest.raises(TransportError):
            t.send(0, 5, ("v", "x"), 1)
        with pytest.raises(TransportError):
            t.recv(-7, 0, ("v", "x"))

    def test_controller_rank_is_addressable(self):
        t = InMemoryTransport(2)
        t.send(1, CONTROLLER, ("res",), ("ok", None))
        assert t.recv(CONTROLLER, 1, ("res",)) == ("ok", None)

    def test_sends_recorded_into_transcript(self):
        t = InMemoryTransport(2)
        t.send(0, 1, ("v", "x"), np.zeros(16))
        transfers = t.transcript.filter("transport/", network_only=False)
        assert len(transfers) == 1
        assert transfers[0].nbytes > 0
        assert t.stats["messages"] == 1


class TestMultiprocTransportLocal:
    """Single-process checks of the queue transport's demultiplexing."""

    def test_out_of_order_keys_are_buffered(self):
        t = MultiprocTransport(2)
        t.send(0, 1, ("v", "a"), "first")
        t.send(0, 1, ("v", "b"), "second")
        assert t.recv(1, 0, ("v", "b"), timeout=5.0) == "second"
        assert t.recv(1, 0, ("v", "a"), timeout=5.0) == "first"
        t.close()

    def test_recv_timeout_and_drain(self):
        t = MultiprocTransport(1)
        with pytest.raises(TransportTimeout):
            t.recv(0, CONTROLLER, ("cmd",), timeout=0.01)
        t.send(CONTROLLER, 0, ("cmd",), ("step", 0))
        import time

        time.sleep(0.1)  # let the feeder thread flush
        assert t.drain(0) >= 1
        t.close()

    def test_closed_transport_rejects_sends(self):
        t = MultiprocTransport(1)
        t.close()
        with pytest.raises(TransportError):
            t.send(CONTROLLER, 0, ("cmd",), "x")


# ======================================================================
# Transcript merging
# ======================================================================
class TestTranscriptMerge:
    def _part(self, machine):
        part = Transcript()
        part.record("edge/x", machine, machine + 1, 128)
        part.note("fault/test", iteration=machine, machine=machine)
        return part

    def test_merge_preserves_rank_order(self):
        merged = merge_transcripts([self._part(0), self._part(1)])
        assert [t.src_machine for t in merged.transfers] == [0, 1]
        assert [e.get("machine") for e in merged.events()] == [0, 1]

    def test_merge_is_deterministic(self):
        parts = [self._part(0), self._part(1), self._part(2)]
        a = merge_transcripts(parts)
        b = merge_transcripts(parts)
        assert a.transfers == b.transfers
        assert a.events() == b.events()
        assert a.total_network_bytes() == 3 * 128

    def test_extend_appends_records(self):
        base = Transcript()
        part = self._part(4)
        base.extend(part.transfers, part.events())
        assert len(base) == 1
        assert base.events("fault/")[0].get("machine") == 4


# ======================================================================
# Schedule partitioning
# ======================================================================
class TestPartitioning:
    def test_op_owner_rules(self):
        runner = make_runner("hybrid")
        graph = runner.transformed.graph
        cluster = runner.cluster
        for op in graph.operations:
            own = op_owner(op, cluster)
            if op.device is None:
                assert own is None
            elif op.device.is_gpu:
                assert own == (op.device.machine * cluster.gpus_per_machine
                               + op.device.index)
            else:
                # Server-side ops run on the first worker of the machine.
                assert own == op.device.machine * cluster.gpus_per_machine

    @pytest.mark.parametrize("plan_key", list(PLAN_BUILDERS))
    def test_partition_covers_schedule_exactly_once(self, plan_key):
        """Across ranks, every schedulable op executes exactly once and
        every cross-rank value has a matching send/recv pair."""
        runner = make_runner(plan_key)
        transformed = runner.transformed
        fetch_ops = [t.op for t in runner._step_fetches[0]]
        order = plan_order(transformed.graph, fetch_ops)
        per_rank = [build_worker_entries(transformed, fetch_ops, r)
                    for r in range(transformed.num_replicas)]

        executed = {}
        sends = set()
        recvs = set()
        for rank, entries in enumerate(per_rank):
            for entry in entries:
                if entry[0] == "exec":
                    _, op, send_to = entry
                    assert op.name not in executed
                    executed[op.name] = rank
                    for dst in send_to:
                        sends.add((op.name, dst))
                else:
                    _, name, src = entry
                    recvs.add((name, rank))
        expected = {op.name for op in order if op.op_type != "group"}
        assert set(executed) == expected
        assert sends == recvs
        for name, dst in sends:
            assert executed[name] != dst  # no self-sends

    def test_entries_follow_global_order(self):
        runner = make_runner("hybrid")
        transformed = runner.transformed
        fetch_ops = [t.op for t in runner._step_fetches[0]]
        position = {op.name: i
                    for i, op in enumerate(plan_order(transformed.graph,
                                                      fetch_ops))}
        for rank in range(transformed.num_replicas):
            names = [
                (entry[1].name if entry[0] == "exec" else entry[1])
                for entry in build_worker_entries(transformed, fetch_ops,
                                                  rank)
            ]
            positions = [position[n] for n in names]
            assert positions == sorted(positions)


# ======================================================================
# The worker loop over the in-memory transport (threads, same process)
# ======================================================================
class TestWorkerLoopOverInMemoryTransport:
    """The worker main loop is transport-agnostic: driving it with
    threads over InMemoryTransport must reproduce the in-process losses
    bit for bit -- the abstraction boundary the multiprocess backend
    builds on."""

    def _spawn_threaded_workers(self, runner, transport):
        import threading

        from repro.core.backend import _run_worker

        n = runner.num_replicas
        fetch_names = [t.op.name for t in runner._step_fetches[0]]
        threads = []
        for rank in range(n):
            spec = {
                "transformed": runner.transformed,
                "seed": runner.seed,
                "fetch_names": fetch_names,
                "shard": runner.shards[rank],
                "batch_size": runner.model.batch_size,
                "feed_names": runner._feed_names[rank],
                "recv_timeout": 60.0,
            }
            thread = threading.Thread(target=_run_worker,
                                      args=(spec, transport, rank),
                                      daemon=True)
            thread.start()
            threads.append(thread)
        for rank in range(n):
            tag, *_ = transport.recv(CONTROLLER, rank, ("res",),
                                     timeout=60.0)
            assert tag == "ready"
        return threads

    def test_threaded_workers_match_inproc_losses(self):
        reference = make_runner("hybrid")
        driver = make_runner("hybrid")  # spec source; never stepped
        n = driver.num_replicas
        transport = InMemoryTransport(n)
        threads = self._spawn_threaded_workers(driver, transport)
        loss_names = [t.op.name
                      for t in driver.transformed.replica_losses]
        try:
            for iteration in range(3):
                want = reference.step(iteration).replica_losses
                for rank in range(n):
                    transport.send(CONTROLLER, rank, ("cmd",),
                                   ("step", iteration))
                losses = {}
                deltas = []
                for rank in range(n):
                    tag, payload, delta = transport.recv(
                        CONTROLLER, rank, ("res",), timeout=60.0)
                    assert tag == "ok", payload
                    losses.update(payload)
                    deltas.append(delta)
                got = [losses[name] for name in loss_names]
                assert got == want, iteration
                # Per-worker transcript deltas merge to the inproc bytes.
                merged = Transcript()
                for transfers, events, _counters in deltas:
                    merged.extend(transfers, events)
                assert (merged.total_network_bytes()
                        == reference.transcript.total_network_bytes())
                reference.transcript.clear()
        finally:
            for rank in range(n):
                transport.send(CONTROLLER, rank, ("cmd",), ("shutdown",))
            for rank in range(n):
                transport.recv(CONTROLLER, rank, ("res",), timeout=60.0)
            for thread in threads:
                thread.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)

    def test_threaded_worker_read_and_load_commands(self):
        driver = make_runner("hybrid")
        n = driver.num_replicas
        transport = InMemoryTransport(n)
        threads = self._spawn_threaded_workers(driver, transport)
        try:
            # A freshly seeded worker agrees with the driver's own store.
            base, name = next(iter(
                driver.transformed.logical_variable_names.items()))
            transport.send(CONTROLLER, 0, ("cmd",), ("read", [name]))
            tag, values, _ = transport.recv(CONTROLLER, 0, ("res",),
                                            timeout=60.0)
            assert tag == "ok"
            np.testing.assert_array_equal(
                values[name],
                driver.backend.read_variables([name])[name])
            # A broadcast load lands in every worker.
            replacement = np.full_like(values[name], 0.125)
            for rank in range(n):
                transport.send(CONTROLLER, rank, ("cmd",),
                               ("load", {base: replacement}))
            for rank in range(n):
                tag, *_ = transport.recv(CONTROLLER, rank, ("res",),
                                         timeout=60.0)
                assert tag == "ok"
            transport.send(CONTROLLER, 1 % n, ("cmd",), ("read", [name]))
            _, values, _ = transport.recv(CONTROLLER, 1 % n, ("res",),
                                          timeout=60.0)
            np.testing.assert_array_equal(values[name], replacement)
        finally:
            for rank in range(n):
                transport.send(CONTROLLER, rank, ("cmd",), ("shutdown",))
            for thread in threads:
                thread.join(timeout=10.0)


# ======================================================================
# Backend registry and lifecycle
# ======================================================================
class TestBackendRegistry:
    def test_registry_names(self):
        assert set(BACKENDS) == {"inproc", "multiproc"}
        assert isinstance(make_backend("inproc"), InprocBackend)
        assert isinstance(make_backend("multiproc"), MultiprocBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu-cluster")
        with pytest.raises(ValueError, match="unknown backend"):
            make_runner("hybrid", backend="nope")

    def test_backend_instance_passes_through(self):
        backend = InprocBackend()
        assert make_backend(backend) is backend

    def test_runner_records_backend_name(self):
        runner = make_runner("hybrid")
        assert runner.backend_name == "inproc"
        assert runner.backend.runner is runner

    def test_multiproc_rejects_async_plans(self):
        model = make_model()
        plan = ps_graph_plan(model.graph, asynchronous=True)
        with pytest.raises(ValueError, match="synchronous"):
            DistributedRunner(model, C2x1, plan, seed=SEED,
                              backend="multiproc")

    def test_inproc_close_is_idempotent(self):
        runner = make_runner("hybrid")
        runner.close()
        runner.close()


# ======================================================================
# Multiprocess differential smoke (2 workers)
# ======================================================================
class TestMultiprocSmoke:
    @pytest.mark.parametrize("plan_key", list(PLAN_BUILDERS))
    def test_losses_bit_identical_to_inproc(self, plan_key):
        inproc = make_runner(plan_key, backend="inproc")
        want = [inproc.step(i).replica_losses for i in range(3)]
        multiproc = make_runner(plan_key, backend="multiproc")
        try:
            got = [multiproc.step(i).replica_losses for i in range(3)]
        finally:
            multiproc.close()
        assert got == want

    def test_logical_state_bit_identical_after_training(self):
        inproc = make_runner("hybrid", backend="inproc")
        multiproc = make_runner("hybrid", backend="multiproc")
        try:
            for i in range(3):
                inproc.step(i)
                multiproc.step(i)
            want = inproc.logical_state()
            got = multiproc.logical_state()
        finally:
            multiproc.close()
        assert set(got) == set(want)
        for name in want:
            np.testing.assert_array_equal(got[name], want[name], err_msg=name)

    def test_transcript_byte_accounting_matches_inproc(self):
        """The logical byte plane is backend-independent: same totals,
        same per-machine loads, collectives recorded exactly once."""
        inproc = make_runner("hybrid", backend="inproc")
        multiproc = make_runner("hybrid", backend="multiproc")
        try:
            inproc.step(0)
            multiproc.step(0)
            assert (multiproc.transcript.total_network_bytes()
                    == inproc.transcript.total_network_bytes())
            assert (multiproc.transcript.bytes_per_machine()
                    == inproc.transcript.bytes_per_machine())
            assert (multiproc.transcript.total_network_bytes("allreduce")
                    == inproc.transcript.total_network_bytes("allreduce"))
        finally:
            multiproc.close()

    def test_adam_slots_and_inspection_helpers(self):
        inproc = make_runner("hybrid", optimizer=AdamOptimizer(0.01))
        multiproc = make_runner("hybrid", backend="multiproc",
                                optimizer=AdamOptimizer(0.01))
        try:
            for i in range(2):
                inproc.step(i)
                multiproc.step(i)
            for name in inproc.transformed.plan.methods:
                np.testing.assert_array_equal(
                    multiproc.variable_value(name),
                    inproc.variable_value(name), err_msg=name)
        finally:
            multiproc.close()

    def test_save_restore_round_trip(self, tmp_path):
        multiproc = make_runner("hybrid", backend="multiproc")
        try:
            for i in range(2):
                multiproc.step(i)
            path = multiproc.save(str(tmp_path / "ckpt.npz"))
            resumed = make_runner("hybrid", backend="inproc")
            resumed.restore(path)
            want = resumed.step(2).replica_losses
            got = multiproc.step(2).replica_losses
        finally:
            multiproc.close()
        assert got == want

    def test_restore_into_multiproc_broadcasts_to_workers(self, tmp_path):
        source = make_runner("hybrid", backend="inproc")
        for i in range(2):
            source.step(i)
        path = source.save(str(tmp_path / "ckpt.npz"))
        want = source.step(2).replica_losses

        multiproc = make_runner("hybrid", backend="multiproc")
        try:
            multiproc.restore(path)
            got = multiproc.step(2).replica_losses
        finally:
            multiproc.close()
        assert got == want

    def test_worker_error_surfaces_in_controller(self):
        multiproc = make_runner("hybrid", backend="multiproc")
        closed = False
        try:
            # Provoke a worker-side failure: load a real variable with a
            # wrong-shaped value.  The worker's traceback must surface in
            # the controller's exception, and the backend shuts down.
            base = next(iter(multiproc.transformed.logical_variable_names))
            with pytest.raises(RuntimeError, match="worker 0 failed"):
                multiproc.backend.load_state({base: np.zeros((1, 2, 3, 4))})
            closed = True  # backend shut itself down on the error
        finally:
            if not closed:
                multiproc.close()

    def test_close_terminates_workers(self):
        multiproc = make_runner("hybrid", backend="multiproc")
        processes = list(multiproc.backend.processes)
        assert all(p.is_alive() for p in processes)
        multiproc.close()
        assert all(not p.is_alive() for p in processes)
        multiproc.close()  # idempotent


class _SlicingStubTransport:
    """Transport whose recv always times out after a short real sleep.

    Models the pathological case for the liveness loop: the transport
    returns from each <=1s slice *early* (here after 0.1s).  The old
    budget scheme charged a full 1.0s per slice regardless, so a 2s
    step timeout expired after ~0.2s of wall clock."""

    num_workers = 1

    def recv(self, dst, src, key, timeout=None):
        time.sleep(min(timeout if timeout else 0.1, 0.1))
        raise TransportTimeout("stub: nothing ever arrives")

    def close(self):
        pass


class _AliveStubProcess:
    exitcode = None

    def is_alive(self):
        return True

    def join(self, timeout=None):
        pass

    def terminate(self):
        pass


class TestResultDeadline:
    def test_timeout_measures_wall_clock_not_slices(self):
        """Regression: ``_result`` must honour the stated timeout as
        wall-clock time.  With early-returning recv slices, the old
        fixed-1.0-per-slice budget declared a live worker dead after a
        fraction of the timeout."""
        backend = MultiprocBackend()
        backend.transport = _SlicingStubTransport()
        backend.processes = [_AliveStubProcess()]
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="did not answer within"):
            backend._result(0, 2.0)
        elapsed = time.monotonic() - t0
        assert elapsed >= 1.8, (
            f"_result(timeout=2.0) gave up after {elapsed:.2f}s -- the "
            f"liveness budget is counting slices, not elapsed time"
        )
        assert elapsed < 10.0

    def test_dead_worker_detected_before_deadline(self):
        """The per-slice liveness poll still notices a dead worker long
        before the full step timeout."""

        class _DeadProcess(_AliveStubProcess):
            exitcode = -9

            def is_alive(self):
                return False

        backend = MultiprocBackend()
        backend.transport = _SlicingStubTransport()
        backend.processes = [_DeadProcess()]
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="worker 0 died"):
            backend._result(0, 60.0)
        assert time.monotonic() - t0 < 5.0
