"""Grouped-config API: legacy flat kwargs == grouped spellings.

The deprecation contract: every pre-grouping flat kwarg of
``ParallaxConfig`` still works, warns with a message starting
``ParallaxConfig`` (the suite-wide filter escalates those everywhere but
inside these ``pytest.warns`` blocks), and constructs a config equal to
its grouped spelling.  Mixing a grouped sub-config with that group's
flat kwargs is an error, as is an unknown kwarg -- the shim must not
swallow typos.
"""

import warnings

import pytest

from repro.cluster.faults import FaultPlan, WorkerFailure
from repro.core.config import (
    AutopilotConfig,
    CommConfig,
    ElasticConfig,
    ParallaxConfig,
    ServeConfig,
)

FAULTS = FaultPlan(failures=(WorkerFailure(iteration=1, worker=0),))

# (flat kwargs, equivalent grouped config) -- one case per legacy kwarg.
LEGACY_EQUIVALENTS = [
    ({"fusion": False}, {"comm": CommConfig(fusion=False)}),
    ({"fusion_buffer_mb": 2.5}, {"comm": CommConfig(fusion_buffer_mb=2.5)}),
    ({"compression": "fp16"}, {"comm": CommConfig(compression="fp16")}),
    ({"compression": "topk", "compression_ratio": 0.5},
     {"comm": CommConfig(compression="topk", compression_ratio=0.5)}),
    ({"backend": "multiproc"}, {"comm": CommConfig(backend="multiproc")}),
    ({"backend": "multiproc", "transport": "tcp"},
     {"comm": CommConfig(backend="multiproc", transport="tcp")}),
    ({"elastic": True}, {"elastic": ElasticConfig(enabled=True)}),
    ({"elastic": True, "checkpoint_every": 3},
     {"elastic": ElasticConfig(enabled=True, checkpoint_every=3)}),
    ({"elastic": True, "fault_plan": FAULTS},
     {"elastic": ElasticConfig(enabled=True, fault_plan=FAULTS)}),
    ({"serve_max_batch": 3}, {"serve": ServeConfig(max_batch=3)}),
    ({"serve_max_delay_ms": 0.5}, {"serve": ServeConfig(max_delay_ms=0.5)}),
]


class TestLegacyKwargParity:
    @pytest.mark.parametrize("flat,grouped", LEGACY_EQUIVALENTS,
                             ids=lambda kw: "+".join(sorted(kw)))
    def test_flat_kwargs_build_the_grouped_config(self, flat, grouped):
        with pytest.warns(DeprecationWarning, match="^ParallaxConfig"):
            legacy = ParallaxConfig(**flat)
        assert legacy == ParallaxConfig(**grouped)

    def test_elastic_false_matches_default(self):
        with pytest.warns(DeprecationWarning, match="^ParallaxConfig"):
            legacy = ParallaxConfig(elastic=False)
        assert legacy == ParallaxConfig()
        assert not legacy.elastic

    def test_warning_names_the_grouped_replacement(self):
        with pytest.warns(DeprecationWarning,
                          match=r"comm=CommConfig\(fusion=...\)"):
            ParallaxConfig(fusion=False)

    def test_flat_kwargs_do_not_disturb_other_groups(self):
        with pytest.warns(DeprecationWarning):
            config = ParallaxConfig(serve_max_batch=3)
        assert config.comm == CommConfig()
        assert config.elastic == ElasticConfig()
        assert config.autopilot == AutopilotConfig()


class TestShimStrictness:
    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="fusio"):
            ParallaxConfig(fusio=False)

    def test_grouped_plus_flat_same_group_is_a_type_error(self):
        with pytest.warns(DeprecationWarning), \
                pytest.raises(TypeError, match="not both"):
            ParallaxConfig(comm=CommConfig(), fusion=False)

    def test_grouped_plus_flat_other_group_is_fine(self):
        with pytest.warns(DeprecationWarning):
            config = ParallaxConfig(comm=CommConfig(fusion=False),
                                    serve_max_batch=3)
        assert config.comm.fusion is False
        assert config.serve.max_batch == 3

    def test_wrong_grouped_type_is_a_type_error(self):
        with pytest.raises(TypeError, match="CommConfig"):
            ParallaxConfig(comm=ServeConfig())
        with pytest.raises(TypeError, match="AutopilotConfig"):
            ParallaxConfig(autopilot=True)

    def test_flat_validation_still_fires_through_the_shim(self):
        with pytest.warns(DeprecationWarning), \
                pytest.raises(ValueError, match="fusion_buffer_mb"):
            ParallaxConfig(fusion_buffer_mb=0)
        with pytest.warns(DeprecationWarning), \
                pytest.raises(ValueError, match="fault_plan requires"):
            ParallaxConfig(fault_plan=FAULTS)


class TestDeprecatedReadAliases:
    def test_read_aliases_warn_and_forward(self):
        config = ParallaxConfig(comm=CommConfig(fusion=False,
                                                fusion_buffer_mb=2.0),
                                serve=ServeConfig(max_batch=5))
        for attr, expected in [("fusion", False), ("fusion_buffer_mb", 2.0),
                               ("compression", None), ("backend", "inproc"),
                               ("serve_max_batch", 5)]:
            with pytest.warns(DeprecationWarning,
                              match=f"^ParallaxConfig.{attr}"):
                assert getattr(config, attr) == expected

    def test_grouped_reads_do_not_warn(self):
        config = ParallaxConfig(elastic=ElasticConfig(enabled=True))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.comm.fusion is True
            assert config.elastic.enabled is True
            assert config.serve.max_batch == 8
            assert config.autopilot.enabled is False

    def test_elastic_field_keeps_legacy_truthiness(self):
        assert not ParallaxConfig().elastic
        assert ParallaxConfig(
            elastic=ElasticConfig(enabled=True)).elastic
        assert bool(ElasticConfig(enabled=False)) is False


class TestCrossGroupValidation:
    def test_autopilot_requires_elastic(self):
        with pytest.raises(ValueError, match="autopilot requires"):
            ParallaxConfig(autopilot=AutopilotConfig(enabled=True))
        ParallaxConfig(elastic=ElasticConfig(enabled=True),
                       autopilot=AutopilotConfig(enabled=True))

    def test_compression_requires_a_collective_architecture(self):
        with pytest.raises(ValueError, match="collective"):
            ParallaxConfig(architecture="ps",
                           comm=CommConfig(compression="fp16"))
