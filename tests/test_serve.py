"""The serving plane: forward-only compiled plans, batched bit-identity,
sharded-lookup routing, and train-and-serve hot reload.

The load-bearing contracts: a serving engine's output must be
bit-identical to the training graph's forward pass -- per example, at
every request batch size, through the codegen'd replay path, and with
embedding partitions routed to remote shard hosts -- and a hot reload
must leave a running server bit-identical to a cold server restored
from the same state.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.comm.transport import make_transport
from repro.core.api import ParallaxConfig, ServeConfig, make_server
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import hybrid_graph_plan
from repro.graph.gradients import gradients
from repro.graph.session import Session
from repro.nn.models import build_inception, build_lm, build_nmt, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer
from repro.serve import (
    InferenceEngine,
    InferencePlanError,
    InferenceServer,
    ShardRouter,
    seeded_weights,
    shard_hosts,
    weights_from_state,
)

SEED = 3
C2x1 = ClusterSpec(num_machines=2, gpus_per_machine=1)

MODEL_BUILDERS = {
    "lm": lambda: build_lm(batch_size=4, vocab_size=40, seq_len=3,
                           emb_dim=8, hidden=10, num_partitions=3, seed=0),
    "nmt": lambda: build_nmt(batch_size=4, src_vocab=30, tgt_vocab=30,
                             src_len=3, tgt_len=3, emb_dim=10, hidden=10,
                             num_partitions=2, seed=0),
    "resnet": lambda: build_resnet(batch_size=4, num_features=12,
                                   num_classes=5, width=8, num_blocks=2,
                                   seed=0),
    "inception": lambda: build_inception(batch_size=4, num_features=12,
                                         num_classes=5, width=8,
                                         num_modules=2, seed=0),
}


def trained_model(key="lm"):
    """A model with gradients/updates built -- the graph a server prunes."""
    model = MODEL_BUILDERS[key]()
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.4).update(gvs)
    return model


# ======================================================================
# Forward-only engine: pruning, bit-identity, plan cache
# ======================================================================
class TestInferenceEngine:
    @pytest.mark.parametrize("key", sorted(MODEL_BUILDERS))
    def test_matches_training_graph_forward(self, key):
        """Engine output == Session forward of the full training graph."""
        model = trained_model(key)
        batch = model.dataset.batch(model.batch_size, 0)
        expected = Session(model.graph, seed=SEED).run(
            model.logits, model.feed(batch))
        engine = InferenceEngine(model.graph, [model.logits],
                                 seeded_weights(model.graph, SEED))
        got = engine.run(model.feed(batch))[0]
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("key", sorted(MODEL_BUILDERS))
    def test_batched_equals_per_example(self, key):
        """Every batch size serves exactly the per-example rows."""
        model = MODEL_BUILDERS[key]()
        engine = InferenceEngine(model.graph, [model.logits],
                                 seeded_weights(model.graph, SEED))
        for size in (1, 2, 4, 6):
            columns = model.dataset.batch(size, 0)
            batched = engine.run(model.feed(columns))[0]
            for i in range(size):
                single = tuple(col[i:i + 1] for col in columns)
                row = engine.run(model.feed(single))[0]
                np.testing.assert_array_equal(row[0], batched[i])

    def test_codegen_replay_is_stable(self):
        """Replay after codegen kicks in (>= 2 executions) stays exact."""
        model = MODEL_BUILDERS["lm"]()
        engine = InferenceEngine(model.graph, [model.logits],
                                 seeded_weights(model.graph, SEED))
        feed = model.feed(model.dataset.batch(4, 0))
        first = np.array(engine.run(feed)[0])
        for _ in range(5):
            np.testing.assert_array_equal(engine.run(feed)[0], first)

    def test_uses_buffer_arena(self):
        model = MODEL_BUILDERS["lm"]()
        engine = InferenceEngine(model.graph, [model.logits],
                                 seeded_weights(model.graph, SEED))
        plan = engine.plan_for(engine.native_batch)
        assert plan.arena_slots > 0
        assert plan.arena_bytes > 0

    def test_rejects_training_fetches(self):
        model = trained_model("lm")
        train_op = next(op for op in model.graph.operations
                        if op.op_type == "group")
        with pytest.raises(InferencePlanError, match="not forward-only"):
            InferenceEngine(model.graph, [train_op],
                            seeded_weights(model.graph, SEED))

    def test_rejects_missing_and_misshapen_weights(self):
        model = MODEL_BUILDERS["lm"]()
        weights = seeded_weights(model.graph, SEED)
        del weights["lstm/bias"]
        with pytest.raises(InferencePlanError, match="missing"):
            InferenceEngine(model.graph, [model.logits], weights)
        weights = seeded_weights(model.graph, SEED)
        weights["lstm/bias"] = np.zeros(3)
        with pytest.raises(InferencePlanError, match="shape"):
            InferenceEngine(model.graph, [model.logits], weights)

    def test_weights_are_frozen(self):
        model = MODEL_BUILDERS["lm"]()
        engine = InferenceEngine(model.graph, [model.logits],
                                 seeded_weights(model.graph, SEED))
        table = engine.weights.table
        assert all(not v.flags.writeable for v in table.values())
        with pytest.raises(ValueError):
            table["lstm/bias"][0] = 1.0
        with pytest.raises(RuntimeError, match="read-only"):
            engine._session.store.write("lstm/bias", np.zeros(40))

    def test_plan_cache_one_plan_per_batch_size(self):
        model = MODEL_BUILDERS["lm"]()
        engine = InferenceEngine(model.graph, [model.logits],
                                 seeded_weights(model.graph, SEED))
        assert engine.plan_for(4) is engine.plan_for(4)
        assert engine.plan_for(2) is not engine.plan_for(4)
        assert engine.native_batch == 4

    def test_weights_from_state_drops_optimizer_slots(self):
        model = trained_model("lm")
        state = seeded_weights(model.graph, SEED)
        state["embedding/part_0/adam_m"] = np.zeros(3)
        table = weights_from_state(model.graph, state)
        assert "embedding/part_0/adam_m" not in table
        assert set(table) == set(model.graph.variables)


# ======================================================================
# Sharded serving: routed lookups over real transports
# ======================================================================
EMB_PARTS = ("embedding/part_0", "embedding/part_1", "embedding/part_2")


@pytest.mark.parametrize("kind", ("inmem", "tcp"))
class TestShardedServing:
    def _routed_setup(self, kind, weights):
        transport = make_transport(kind, 2)
        owners = {EMB_PARTS[0]: 0, EMB_PARTS[1]: 0, EMB_PARTS[2]: 1}
        hosts = shard_hosts(transport, owners,
                            {name: weights[name] for name in EMB_PARTS})
        router = ShardRouter(transport, owners, timeout=30.0)
        return transport, hosts, router

    def test_routed_gather_bit_identical(self, kind):
        model = MODEL_BUILDERS["lm"]()
        weights = seeded_weights(model.graph, SEED)
        transport, hosts, router = self._routed_setup(kind, weights)
        try:
            local = InferenceEngine(model.graph, [model.logits], weights)
            routed = InferenceEngine(model.graph, [model.logits], weights,
                                     router=router)
            assert set(routed._routed_names) == set(EMB_PARTS)
            for size in (1, 4):
                feed = model.feed(model.dataset.batch(size, 0))
                np.testing.assert_array_equal(routed.run(feed)[0],
                                              local.run(feed)[0])
            assert sum(h.lookups for h in hosts) > 0
        finally:
            router.stop()
            if hasattr(transport, "close"):
                transport.close()

    def test_reload_pushes_remote_shards(self, kind):
        model = MODEL_BUILDERS["lm"]()
        weights = seeded_weights(model.graph, SEED)
        transport, hosts, router = self._routed_setup(kind, weights)
        try:
            routed = InferenceEngine(model.graph, [model.logits], weights,
                                     router=router)
            new_weights = seeded_weights(model.graph, SEED + 1)
            version = routed.reload(new_weights)
            assert version == 1
            assert sum(h.loads for h in hosts) > 0
            fresh = InferenceEngine(model.graph, [model.logits], new_weights)
            feed = model.feed(model.dataset.batch(4, 0))
            np.testing.assert_array_equal(routed.run(feed)[0],
                                          fresh.run(feed)[0])
        finally:
            router.stop()
            if hasattr(transport, "close"):
                transport.close()


# ======================================================================
# The server front end and hot reload
# ======================================================================
class TestInferenceServer:
    def test_results_routed_to_each_request(self):
        model = MODEL_BUILDERS["lm"]()
        server = InferenceServer(model, seeded_weights(model.graph, SEED),
                                 max_batch=4, max_delay_ms=5.0)
        try:
            columns = model.dataset.batch(6, 0)
            expected = np.array(server.run_batch(columns))
            futures = [server.submit(model.dataset.example(i))
                       for i in range(6)]
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(future.result(timeout=30),
                                              expected[i])
            assert server.requests_served == 6
            assert all(size <= 4 for size, _ in server.batcher.batch_log)
        finally:
            server.close()

    def test_submit_rejects_wrong_arity(self):
        model = MODEL_BUILDERS["lm"]()
        server = InferenceServer(model, seeded_weights(model.graph, SEED))
        try:
            with pytest.raises(ValueError, match="placeholders"):
                server.submit((np.zeros(3, dtype=np.int64),))
        finally:
            server.close()

    @pytest.mark.parametrize("backend", ("inproc", "multiproc"))
    def test_hot_reload_equals_cold_restore(self, backend):
        """Reloading a live server from a further-trained runner leaves
        it bit-identical to a cold server restored from the same state,
        whichever backend produced that state."""
        model = trained_model("lm")
        runner = DistributedRunner(model, C2x1,
                                   hybrid_graph_plan(model.graph),
                                   seed=SEED, backend=backend)
        server = None
        cold = None
        try:
            for i in range(3):
                runner.step(i)
            server = InferenceServer.from_runner(model, runner)
            columns = model.dataset.batch(4, 0)
            before = np.array(server.run_batch(columns))
            for i in range(3, 6):
                runner.step(i)
            server.reload_from(runner)
            cold = InferenceServer.from_runner(model, runner)
            hot_rows = np.array(server.run_batch(columns))
            cold_rows = np.array(cold.run_batch(columns))
            np.testing.assert_array_equal(hot_rows, cold_rows)
            assert not np.array_equal(hot_rows, before), \
                "reload served the stale generation"
        finally:
            for s in (server, cold):
                if s is not None:
                    s.close()
            runner.close()

    def test_reload_is_atomic_between_batches(self):
        """A swap never mixes generations inside one batch: every served
        row matches either the old or the new weights in full."""
        model = MODEL_BUILDERS["lm"]()
        old = seeded_weights(model.graph, SEED)
        new = seeded_weights(model.graph, SEED + 1)
        server = InferenceServer(model, old, max_batch=4, max_delay_ms=1.0)
        try:
            columns = model.dataset.batch(4, 0)
            old_rows = np.array(server.run_batch(columns))
            server.reload(new)
            new_rows = np.array(server.run_batch(columns))
            reference = InferenceServer(model, new)
            try:
                np.testing.assert_array_equal(
                    new_rows, np.array(reference.run_batch(columns)))
            finally:
                reference.close()
            assert not np.array_equal(new_rows, old_rows)
        finally:
            server.close()


# ======================================================================
# Config plumbing: ParallaxConfig knobs and make_server
# ======================================================================
class TestMakeServer:
    def test_make_server_applies_config_knobs(self):
        model = MODEL_BUILDERS["lm"]()
        config = ParallaxConfig(serve=ServeConfig(max_batch=3,
                                                  max_delay_ms=1.5))
        server = make_server(model, config)
        try:
            assert server.batcher.max_batch == 3
            assert server.batcher.max_delay_ms == 1.5
            result = server.infer(model.dataset.example(0))
            assert result.shape[-1] == 40
        finally:
            server.close()

    def test_make_server_seeds_weights_from_config(self):
        model = MODEL_BUILDERS["lm"]()
        config = ParallaxConfig(seed=SEED)
        server = make_server(model, config)
        try:
            expected = seeded_weights(model.graph, SEED)
            for name, value in server.engine.weights.table.items():
                np.testing.assert_array_equal(value, expected[name])
        finally:
            server.close()

    def test_config_rejects_bad_serving_knobs(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(max_delay_ms=-1.0)


# ======================================================================
# Elastic integration: the train-and-serve loop
# ======================================================================
class TestElasticServing:
    def _elastic_runner(self, model, checkpoint_every=2):
        from repro.core.elastic import ElasticRunner

        return ElasticRunner(model, C2x1, hybrid_graph_plan(model.graph),
                             checkpoint_every=checkpoint_every, seed=SEED)

    def test_attached_server_follows_checkpoints(self):
        model = trained_model("lm")
        runner = self._elastic_runner(model, checkpoint_every=2)
        server = InferenceServer.from_runner(model, runner)
        try:
            runner.attach_server(server)
            runner.run_elastic(4)
            # checkpoint_every=2 over 4 iterations: the initial recovery
            # point plus two cadence checkpoints, each pushed live.
            assert server.reloads == 3
            runner.detach_server(server)
            runner.run_elastic(2, start_iteration=4)
            assert server.reloads == 3
        finally:
            server.close()
            runner.close()

    def test_publish_to_matches_cold_restore(self):
        model = trained_model("lm")
        runner = self._elastic_runner(model)
        server = InferenceServer.from_runner(model, runner)
        cold = None
        try:
            for i in range(3):
                runner.step(i)
            runner.publish_to(server)
            cold = InferenceServer.from_runner(model, runner)
            columns = model.dataset.batch(4, 0)
            np.testing.assert_array_equal(
                np.array(server.run_batch(columns)),
                np.array(cold.run_batch(columns)))
        finally:
            for s in (server, cold):
                if s is not None:
                    s.close()
            runner.close()


# ======================================================================
# The priced serving curve
# ======================================================================
class TestSimulateServing:
    def test_qps_rises_and_latency_orders(self):
        from repro.cluster.simulator import simulate_serving
        from repro.nn.profiles import lm_profile

        profile = lm_profile()
        cluster = ClusterSpec(4, 2)
        curve = [simulate_serving(profile, cluster, b)
                 for b in (1, 2, 4, 8, 16)]
        qps = [b.qps for b in curve]
        assert qps == sorted(qps), "QPS must rise with batch size"
        for b in curve:
            assert b.p99_latency >= b.p50_latency
        assert curve[0].queue_delay == 0.0
        assert curve[1].queue_delay > 0.0

    def test_sharded_lookup_priced_only_across_machines(self):
        from repro.cluster.simulator import simulate_serving
        from repro.nn.profiles import lm_profile

        profile = lm_profile()
        multi = simulate_serving(profile, ClusterSpec(4, 2), 8, sharded=True)
        local = simulate_serving(profile, ClusterSpec(4, 2), 8, sharded=False)
        single = simulate_serving(profile, ClusterSpec(1, 2), 8, sharded=True)
        assert multi.lookup_time > 0.0
        assert local.lookup_time == 0.0
        assert single.lookup_time == 0.0
        assert multi.service_time > local.service_time

    def test_rejects_bad_arguments(self):
        from repro.cluster.simulator import simulate_serving
        from repro.nn.profiles import lm_profile

        with pytest.raises(ValueError):
            simulate_serving(lm_profile(), ClusterSpec(1, 1), 0)
        with pytest.raises(ValueError):
            simulate_serving(lm_profile(), ClusterSpec(1, 1), 4,
                             max_delay_ms=-1.0)
