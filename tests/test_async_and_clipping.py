"""Asynchronous PS training and gradient clipping (paper extensions).

The paper (section 2.1): "Parallax supports both synchronous and
asynchronous training", and section 5 describes workers needing
aggregated gradients "to compute a global norm of gradients for
clipping".
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    GraphSyncPlan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import Graph, Session, gradients, ops
from repro.graph.variables import Variable
from repro.nn.models import build_lm
from repro.nn.optimizers import (
    AdamOptimizer,
    GradientDescentOptimizer,
    MomentumOptimizer,
)

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)


def lm_model(lr=0.4, optimizer=None, **kwargs):
    defaults = dict(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                    hidden=10, num_partitions=2, seed=0)
    defaults.update(kwargs)
    model = build_lm(**defaults)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        opt = optimizer if optimizer is not None else \
            GradientDescentOptimizer(lr)
        opt.update(gvs)
    return model


class TestAsyncPlanValidation:
    def test_async_requires_all_ps(self):
        model = lm_model()
        plan = hybrid_graph_plan(model.graph)
        with pytest.raises(ValueError, match="asynchronous"):
            GraphSyncPlan("bad", plan.methods, asynchronous=True)

    def test_async_ps_plan_builds(self):
        model = lm_model()
        plan = ps_graph_plan(model.graph, asynchronous=True)
        assert plan.asynchronous


class TestAsyncTraining:
    def make_runner(self, **kwargs):
        model = lm_model(**kwargs)
        plan = ps_graph_plan(model.graph, asynchronous=True)
        return DistributedRunner(model, CLUSTER, plan, seed=7)

    def test_per_replica_train_ops_exist(self):
        runner = self.make_runner()
        assert runner.transformed.replica_train_ops is not None
        assert len(runner.transformed.replica_train_ops) == 4

    def test_one_update_per_variable_per_replica(self):
        runner = self.make_runner()
        updates = [op for op in runner.transformed.graph.operations
                   if op.attrs.get("is_update")]
        num_vars = len(runner.transformed.plan.methods)
        assert len(updates) == num_vars * runner.num_replicas

    def test_no_aggregation_ops(self):
        runner = self.make_runner()
        kinds = {op.op_type for op in runner.transformed.graph.operations}
        assert "global_agg" not in kinds
        assert "local_agg" not in kinds
        assert "allreduce" not in kinds

    def test_async_converges(self):
        runner = self.make_runner()
        first = runner.step(0).mean_loss
        for i in range(1, 30):
            last = runner.step(i).mean_loss
        assert last < first

    def test_async_trajectory_differs_from_sync(self):
        """Later workers see earlier workers' updates within an iteration,
        so async and sync trajectories must diverge."""
        async_runner = self.make_runner()
        sync_model = lm_model()
        sync_runner = DistributedRunner(
            sync_model, CLUSTER, ps_graph_plan(sync_model.graph), seed=7)
        async_losses = [async_runner.step(i).mean_loss for i in range(4)]
        sync_losses = [sync_runner.step(i).mean_loss for i in range(4)]
        # Iteration 0 replica 0 is identical; later ones are not.
        assert not np.allclose(async_losses[1:], sync_losses[1:], rtol=1e-6)

    def test_staleness_visible_within_iteration(self):
        """Within one async iteration, replica r+1's loss reflects
        replica r's update: replica losses are computed against different
        variable versions, unlike the sync case."""
        runner = self.make_runner(lr=2.0)
        runner.step(0)
        result = runner.step(1)
        # In sync training all replicas read the same snapshot, so their
        # losses depend only on their shard.  Reconstruct what replica 1
        # would have seen pre-update by rerunning its loss without the
        # train op: it must differ from the recorded (post-replica-0) one
        # ... we check the cheaper observable: replica losses are not all
        # equal to a fresh evaluation against the final state.
        feeds = runner.feeds_for(1)
        final_losses = [
            float(runner.session.run(
                runner.transformed.replica_losses[r], feeds))
            for r in range(runner.num_replicas)
        ]
        # Recorded losses were taken against evolving state; at least the
        # earliest replica's recorded loss differs from its value against
        # the final state.
        assert not np.allclose(result.replica_losses, final_losses,
                               rtol=1e-6)


class TestGradientClipping:
    def quadratic(self, clip_norm, lr=1.0, optimizer_cls=None):
        g = Graph()
        target = np.full((4,), 100.0, dtype=np.float32)
        with g.as_default():
            w = Variable("w", (4,), initializer=np.zeros(4, np.float32))
            loss = ops.mse_loss(w.tensor, ops.constant(target))
            gvs = gradients(loss)
            cls = optimizer_cls or GradientDescentOptimizer
            train = cls(lr, clip_norm=clip_norm).update(gvs)
        return g, loss, gvs, train

    def test_dense_step_bounded_by_clip(self):
        g, loss, gvs, train = self.quadratic(clip_norm=1.0)
        sess = Session(g)
        before = sess.read_variable("w").copy()
        sess.run(train)
        step = sess.read_variable("w") - before
        assert np.linalg.norm(step) <= 1.0 + 1e-5

    def test_no_clip_when_under_threshold(self):
        g, loss, gvs, train = self.quadratic(clip_norm=1e9)
        sess = Session(g)
        grad = sess.run(gvs[0][0])
        before = sess.read_variable("w").copy()
        sess.run(train)
        np.testing.assert_allclose(sess.read_variable("w"),
                                   before - grad, rtol=1e-6)

    def test_clip_direction_preserved(self):
        g, loss, gvs, train = self.quadratic(clip_norm=0.5)
        sess = Session(g)
        grad = sess.run(gvs[0][0])
        before = sess.read_variable("w").copy()
        sess.run(train)
        step = before - sess.read_variable("w")
        cos = step @ grad / (np.linalg.norm(step) * np.linalg.norm(grad))
        assert cos == pytest.approx(1.0, abs=1e-5)

    def test_sparse_clipping(self):
        g = Graph()
        with g.as_default():
            emb = Variable("emb", (6, 2),
                           initializer=np.zeros((6, 2), np.float32))
            ids = ops.constant(np.array([1, 4], dtype=np.int64))
            rows = ops.gather(emb.tensor, ids)
            loss = ops.mse_loss(
                rows, ops.constant(np.full((2, 2), 50.0, dtype=np.float32)))
            gvs = gradients(loss)
            train = GradientDescentOptimizer(1.0, clip_norm=0.1).update(gvs)
        sess = Session(g)
        sess.run(train)
        moved = sess.read_variable("emb")
        assert np.linalg.norm(moved) <= 0.1 + 1e-6

    def test_clipping_survives_transformation(self):
        """The transform rebuilds update ops; clip_norm must ride along."""
        model = lm_model(optimizer=GradientDescentOptimizer(0.5,
                                                            clip_norm=0.01))
        plan = hybrid_graph_plan(model.graph)
        runner = DistributedRunner(model, CLUSTER, plan, seed=7)
        updates = [op for op in runner.transformed.graph.operations
                   if op.attrs.get("is_update")]
        assert updates
        assert all(op.attrs.get("clip_norm") == 0.01 for op in updates)

        before = {name: runner.variable_value(name).copy()
                  for name in plan.methods}
        runner.step(0)
        for name in plan.methods:
            delta = runner.variable_value(name) - before[name]
            assert np.linalg.norm(delta) <= 0.5 * 0.01 + 1e-6, name

    def test_momentum_and_adam_accept_clip(self):
        for cls in (MomentumOptimizer, AdamOptimizer):
            g, loss, gvs, train = self.quadratic(clip_norm=1.0,
                                                 optimizer_cls=cls)
            sess = Session(g)
            sess.run(train)  # smoke: kernels handle the attr
