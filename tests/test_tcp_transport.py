"""TCP transport specifics: wire accounting, simulated latency,
rendezvous bootstrap, the ``launch`` entry point, and the network
microbench.

The behavioural contract shared with the other transports lives in
``test_transport_conformance.py``; this file covers what is unique to
the socket plane.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.comm.tcp import (
    RendezvousServer,
    TcpTransport,
    bind_listener,
    parse_rendezvous,
    rendezvous_join,
)
from repro.comm.transport import (
    CONTROLLER,
    InMemoryTransport,
    SimulatedLatencyTransport,
    TransportError,
    make_transport,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def tcp():
    t = TcpTransport(2)
    yield t
    t.close()


class TestWireAccounting:
    def test_ndarray_counts_wire_not_pickle(self, tcp):
        a = np.arange(1024, dtype=np.float64)
        tcp.send(0, 1, ("v", "a"), a)
        got = tcp.recv(1, 0, ("v", "a"), timeout=10.0)
        np.testing.assert_array_equal(got, a)
        c = tcp.counters
        assert c["wire_msgs"] == 1
        assert c["wire_bytes"] >= a.nbytes
        assert c["pickle_msgs"] == 0
        assert c["copy_count"] == 1

    def test_pickle_frames_count_both_planes(self, tcp):
        """Pickle-path frames land in wire_bytes AND pickle_bytes, so
        bulk wire traffic is ``wire_bytes - pickle_bytes`` (what
        ``fit_transport_constants`` subtracts)."""
        tcp.send(0, 1, ("v", "d"), {"step": 1})
        tcp.recv(1, 0, ("v", "d"), timeout=10.0)
        c = tcp.counters
        assert c["pickle_msgs"] == 1
        assert c["wire_msgs"] == 1
        assert c["wire_bytes"] >= c["pickle_bytes"] > 0

    def test_received_array_is_writable(self, tcp):
        """Decoded arrays own their buffer -- training code writes into
        received gradients in place."""
        tcp.send(0, 1, ("v", "a"), np.zeros(8))
        got = tcp.recv(1, 0, ("v", "a"), timeout=10.0)
        got += 1.0
        np.testing.assert_array_equal(got, np.ones(8))


class TestSimulatedLatency:
    def test_delay_for_is_pure(self):
        inner = InMemoryTransport(2)
        a = SimulatedLatencyTransport(inner, delay_s=1e-3,
                                      jitter_s=2e-3, seed=42)
        b = SimulatedLatencyTransport(InMemoryTransport(2), delay_s=1e-3,
                                      jitter_s=2e-3, seed=42)
        delays = [a.delay_for(0, 1, i) for i in range(20)]
        assert delays == [b.delay_for(0, 1, i) for i in range(20)]
        assert all(1e-3 <= d <= 3e-3 for d in delays)
        # Different channels and seeds draw different jitter.
        assert delays != [a.delay_for(1, 0, i) for i in range(20)]
        c = SimulatedLatencyTransport(inner, delay_s=1e-3,
                                      jitter_s=2e-3, seed=43)
        assert delays != [c.delay_for(0, 1, i) for i in range(20)]

    def test_values_bit_identical_through_delay(self):
        t = SimulatedLatencyTransport(InMemoryTransport(2),
                                      delay_s=1e-4, jitter_s=1e-4)
        a = np.arange(64, dtype=np.float64) * np.pi
        t.send(0, 1, ("v",), a)
        got = t.recv(1, 0, ("v",), timeout=10.0)
        assert got.tobytes() == a.tobytes()

    def test_proxies_inner_attributes(self):
        inner = InMemoryTransport(3)
        t = SimulatedLatencyTransport(inner)
        assert t.num_workers == 3
        assert t.transcript is inner.transcript
        t.close()
        with pytest.raises(TransportError):
            t.send(0, 1, ("v",), 1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SimulatedLatencyTransport(InMemoryTransport(2), delay_s=-1.0)


class TestRendezvous:
    def test_parse_url(self):
        assert parse_rendezvous("tcp://10.0.0.7:29500") == ("10.0.0.7",
                                                            29500)
        for bad in ("http://x:1", "tcp://nohost", "tcp://h:port", "x"):
            with pytest.raises(ValueError):
                parse_rendezvous(bad)

    def test_join_map_barrier(self):
        server = RendezvousServer(2, ("127.0.0.1", 5555)).start()
        maps = {}

        def join(rank):
            listener = bind_listener()
            try:
                maps[rank] = rendezvous_join(
                    server.url, rank, listener.getsockname(), timeout=10.0
                )
            finally:
                listener.close()

        threads = [threading.Thread(target=join, args=(r,))
                   for r in range(2)]
        for th in threads:
            th.start()
        addr_map = server.wait(timeout=10.0)
        for th in threads:
            th.join(timeout=10.0)
        assert sorted(addr_map) == [CONTROLLER, 0, 1]
        assert addr_map[CONTROLLER] == ("127.0.0.1", 5555)
        assert maps[0] == addr_map and maps[1] == addr_map

    def test_duplicate_rank_rejected(self):
        server = RendezvousServer(2, ("127.0.0.1", 5555)).start()

        def join(rank):
            try:
                rendezvous_join(server.url, rank, ("127.0.0.1", 1),
                                timeout=5.0)
            except (TransportError, EOFError, OSError):
                pass  # server tears the barrier down on the error

        t0 = threading.Thread(target=join, args=(0,))
        t0.start()
        time.sleep(0.2)  # let rank 0 register first
        t1 = threading.Thread(target=join, args=(0,))
        t1.start()
        with pytest.raises(TransportError, match="twice"):
            server.wait(timeout=10.0)
        t0.join(timeout=10.0)
        t1.join(timeout=10.0)

    def test_for_rank_round_trip(self):
        """Two rendezvous-mode endpoints in one process exchange a value
        through real sockets."""
        listeners = {r: bind_listener() for r in (CONTROLLER, 0)}
        addrs = {r: s.getsockname() for r, s in listeners.items()}
        ctrl = TcpTransport.for_rank(1, CONTROLLER, addrs,
                                     listeners[CONTROLLER])
        worker = TcpTransport.for_rank(1, 0, addrs, listeners[0])
        try:
            ctrl.send(CONTROLLER, 0, ("cmd",), "step")
            assert worker.recv(0, CONTROLLER, ("cmd",),
                               timeout=10.0) == "step"
            worker.send(0, CONTROLLER, ("res",), 7.5)
            assert ctrl.recv(CONTROLLER, 0, ("res",), timeout=10.0) == 7.5
        finally:
            ctrl.close()
            worker.close()


class TestRegistry:
    def test_make_transport_tcp(self):
        t = make_transport("tcp", 1)
        assert isinstance(t, TcpTransport)
        t.close()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("carrier-pigeon", 1)

    def test_config_rejects_transport_without_multiproc(self):
        from repro.core.api import CommConfig, ParallaxConfig

        with pytest.raises(ValueError, match="multiproc"):
            CommConfig(backend="inproc", transport="tcp")
        with pytest.raises(ValueError, match="unknown transport"):
            CommConfig(backend="multiproc", transport="smoke-signal")
        # Valid combination constructs.
        ParallaxConfig(comm=CommConfig(backend="multiproc",
                                       transport="tcp"))


class TestBenchNetwork:
    def test_report_keys_and_calibration(self, tmp_path):
        from repro.cli import bench_network

        out = tmp_path / "BENCH_network.json"
        assert bench_network(iters=10, payload_mb=0.25, transfers=2,
                             output=str(out)) == 0
        report = json.loads(out.read_text())
        for key in ("measured_latency_s", "measured_bandwidth_bytes_per_s",
                    "fitted_tcp_latency", "fitted_tcp_bw",
                    "wire_bytes", "wire_msgs"):
            assert key in report, key
        assert report["measured_latency_s"] > 0
        assert report["measured_bandwidth_bytes_per_s"] > 0
        assert report["fitted_tcp_bw"] == pytest.approx(
            report["measured_bandwidth_bytes_per_s"])


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestLaunchEndToEnd:
    def test_launcher_bit_identity(self, tmp_path):
        """Full three-process launch through ``repro.cli launch``: two
        worker processes plus the controller, which also runs the
        in-process reference and asserts bit identity."""
        url = f"tcp://127.0.0.1:{_free_port()}"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        common = [sys.executable, "-m", "repro.cli", "launch",
                  "--rendezvous", url, "--world-size", "2"]
        workers = [
            subprocess.Popen(
                common + ["--rank", str(r)],
                env=env, cwd=str(tmp_path),
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            for r in range(2)
        ]
        try:
            controller = subprocess.run(
                common + ["--rank", "-1", "--iters", "2",
                          "--check-identity"],
                env=env, cwd=str(tmp_path), capture_output=True,
                text=True, timeout=180,
            )
            assert controller.returncode == 0, controller.stdout[-2000:]
            report = json.loads(controller.stdout)
            assert report["losses_bit_identical"] is True
            assert report["iterations"] == 2
            assert report["wire_msgs"] > 0
            for w in workers:
                assert w.wait(timeout=60) == 0
        finally:
            for w in workers:
                if w.poll() is None:
                    w.kill()
                w.stdout.close()
