"""The gradient-compression plane: codecs, invariants, and differentials.

Four layers of coverage:

1. codec units -- top-k selection, fp16 round trips, wire-size math;
2. hypothesis properties -- the error-feedback conservation law
   (``sent + residual == original``), top-k magnitude dominance, fp16
   exactness on representable values, mass-preserving residual
   re-sharding;
3. end-to-end training -- bytes-on-wire reduction, the convergence
   contract, and the inproc/multiproc differential (identical losses bit
   for bit under every codec);
4. the pricing stack -- compressed wire bytes, compression compute
   terms, and the bandwidth-budget plan picker.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.spec import ClusterSpec
from repro.comm.compression import (
    EF_RESIDUAL_SUFFIX,
    FP16Compressor,
    TopKCompressor,
    decompress,
    is_residual_name,
    make_compressor,
    parse_spec,
    spec_uses_error_feedback,
    wire_bytes,
    wire_fraction,
)
from repro.core.api import CommConfig, ParallaxConfig
from repro.core.elastic import ElasticRunner, reshard_logical_state
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    GraphSyncPlan,
    ar_graph_plan,
    hybrid_graph_plan,
)
from repro.graph.gradients import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
def small_lm(num_partitions=3, seed=0, lr=0.1):
    model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                     hidden=10, num_partitions=num_partitions, seed=seed)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(lr).update(gvs)
    return model


def compressed_runner(compression, ratio=0.2, cluster=None, backend="inproc",
                      num_partitions=3, fusion=True):
    cluster = cluster or ClusterSpec(2, 2)
    model = small_lm(num_partitions=num_partitions)
    plan = ar_graph_plan(model.graph, fusion=fusion, compression=compression,
                         compression_ratio=ratio)
    return DistributedRunner(model, cluster, plan, seed=0, backend=backend)


# ----------------------------------------------------------------------
# Codec units
# ----------------------------------------------------------------------
class TestCodecs:
    def test_parse_spec_normalizes_and_rejects(self):
        assert parse_spec("topk") == ("topk",)
        assert parse_spec("fp16+topk") == ("topk", "fp16")
        for bad in ("gzip", "topk+topk", "", "topk+"):
            with pytest.raises(ValueError):
                parse_spec(bad)

    def test_error_feedback_only_for_topk(self):
        assert spec_uses_error_feedback("topk")
        assert spec_uses_error_feedback("topk+fp16")
        assert not spec_uses_error_feedback("fp16")
        assert not spec_uses_error_feedback(None)

    def test_topk_keeps_requested_fraction(self):
        comp = TopKCompressor(0.25)
        payload = comp.encode_flat(np.arange(100, dtype=np.float32))
        assert payload.kind == "flat"
        assert payload.values.size == 25
        assert payload.indices.dtype == np.int32

    def test_topk_flat_roundtrip_places_kept_values(self):
        arr = np.array([[0.1, -5.0], [3.0, 0.01]], dtype=np.float32)
        payload = TopKCompressor(0.5).encode_flat(arr)
        dense = decompress(payload)
        assert dense.shape == arr.shape
        np.testing.assert_array_equal(
            dense, np.array([[0.0, -5.0], [3.0, 0.0]], dtype=np.float32))

    def test_topk_deterministic_on_ties(self):
        arr = np.array([1.0, 1.0, 1.0, 1.0], dtype=np.float32)
        a = TopKCompressor(0.5).encode_flat(arr)
        b = TopKCompressor(0.5).encode_flat(arr.copy())
        np.testing.assert_array_equal(a.indices, b.indices)
        # Stable tie-break: lowest indices win.
        np.testing.assert_array_equal(a.indices, [0, 1])

    def test_topk_rows_selects_largest_rows(self):
        dense = np.zeros((10, 2), dtype=np.float32)
        dense[3] = 5.0
        dense[7] = 1.0
        dense[9] = 3.0
        payload = TopKCompressor(0.5).encode_rows(dense)
        slices = decompress(payload)
        assert sorted(slices.indices.tolist()) == [3, 9]

    def test_fp16_dense_payload_halves_bytes(self):
        arr = np.ones((8, 4), dtype=np.float32)
        payload = FP16Compressor().encode_flat(arr)
        assert payload.kind == "dense"
        assert payload.nbytes == arr.nbytes // 2
        assert payload.raw_nbytes == arr.nbytes

    def test_make_compressor_dispatch(self):
        assert isinstance(make_compressor("fp16"), FP16Compressor)
        topk = make_compressor("topk+fp16", 0.3)
        assert isinstance(topk, TopKCompressor)
        assert topk.fp16 and topk.ratio == 0.3

    def test_wire_fraction_math(self):
        # topk: ratio * (4-byte value + 4-byte index) / 4-byte raw.
        assert wire_fraction("topk", 0.1) == pytest.approx(0.2)
        # topk+fp16: ratio * (2 + 4) / 4.
        assert wire_fraction("topk+fp16", 0.1) == pytest.approx(0.15)
        assert wire_fraction("fp16", 0.1) == pytest.approx(0.5)
        assert wire_bytes(None, 0.1, 1000) == 1000
        assert wire_bytes("fp16", 0.1, 1000) == 500

    def test_rows_payload_has_no_raw_size(self):
        payload = TopKCompressor(0.5).encode_rows(
            np.ones((4, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            payload.raw_nbytes

    def test_residual_name_predicate(self):
        assert is_residual_name("softmax/kernel" + EF_RESIDUAL_SUFFIX)
        assert is_residual_name("rep2/w" + EF_RESIDUAL_SUFFIX)
        assert not is_residual_name("softmax/kernel")


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
def arrays_strategy(max_size=64):
    return st.builds(
        lambda n, seed: np.random.default_rng(seed)
        .standard_normal(n).astype(np.float32),
        st.integers(1, max_size),
        st.integers(0, 2 ** 16),
    )


class TestProperties:
    @given(arrays_strategy(), st.floats(0.05, 1.0))
    def test_topk_keeps_k_largest_magnitudes(self, arr, ratio):
        payload = TopKCompressor(ratio).encode_flat(arr)
        kept = np.zeros(arr.size, dtype=bool)
        kept[payload.indices] = True
        if (~kept).any() and kept.any():
            assert np.abs(arr[kept]).min() >= np.abs(arr[~kept]).max()

    @given(arrays_strategy(), st.floats(0.05, 1.0))
    def test_error_feedback_conserves_mass_exactly(self, arr, ratio):
        """residual + sent == original, bit for bit in pure fp32 top-k.

        This is the invariant the grad_compress kernel maintains: what
        is not on the wire is in the residual, nothing is lost.
        """
        payload = TopKCompressor(ratio).encode_flat(arr)
        sent = decompress(payload).reshape(-1)
        residual = arr.copy()
        residual[payload.indices] -= payload.values.astype(np.float32)
        np.testing.assert_array_equal(sent + residual, arr)

    @given(arrays_strategy(), st.floats(0.05, 1.0))
    def test_error_feedback_mass_close_under_fp16(self, arr, ratio):
        """With fp16-quantized values the conservation law holds to fp16
        rounding (the quantization error lands in the residual)."""
        payload = TopKCompressor(ratio, fp16=True).encode_flat(arr)
        sent = decompress(payload).reshape(-1)
        residual = arr.copy()
        residual[payload.indices] -= payload.values.astype(np.float32)
        np.testing.assert_allclose(sent + residual, arr,
                                   rtol=1e-3, atol=1e-6)

    @given(st.integers(1, 64), st.integers(0, 2 ** 16))
    def test_fp16_roundtrip_exact_on_representable(self, n, seed):
        rng = np.random.default_rng(seed)
        representable = rng.standard_normal(n).astype(np.float16).astype(
            np.float32)
        out = decompress(FP16Compressor().encode_flat(representable))
        np.testing.assert_array_equal(out, representable)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2 ** 16))
    def test_residual_reshard_preserves_rows(self, old_p, new_p, seed):
        """Row-sharded residuals re-shard like optimizer slots: the
        concatenation over shards is invariant, so no residual mass
        moves or disappears across a partition-count change."""
        from repro.graph.variables import partition_offsets

        rows, dim = 12, 3
        rng = np.random.default_rng(seed)
        old_p = min(old_p, rows)
        new_p = min(new_p, rows)
        old_offsets = partition_offsets(rows, old_p)
        new_offsets = partition_offsets(rows, new_p)
        full = rng.standard_normal((rows, dim)).astype(np.float32)
        state = {}
        for p in range(old_p):
            lo, hi = old_offsets[p], old_offsets[p + 1]
            state[f"emb/part_{p}"] = full[lo:hi].copy()
            state[f"emb/part_{p}{EF_RESIDUAL_SUFFIX}"] = \
                (full[lo:hi] * 2).copy()
        out = reshard_logical_state(
            state, {"emb": list(old_offsets)}, {"emb": list(new_offsets)})
        rebuilt = np.concatenate(
            [out[f"emb/part_{p}{EF_RESIDUAL_SUFFIX}"]
             for p in range(new_p)])
        np.testing.assert_array_equal(rebuilt, full * 2)


# ----------------------------------------------------------------------
# Plan / config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_graph_plan_rejects_unknown_codec(self):
        model = small_lm()
        with pytest.raises(ValueError, match="compression"):
            ar_graph_plan(model.graph, compression="gzip")

    def test_graph_plan_rejects_bad_ratio(self):
        model = small_lm()
        for ratio in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="compression_ratio"):
                ar_graph_plan(model.graph, compression="topk",
                              compression_ratio=ratio)

    def test_async_plans_reject_compression(self):
        from repro.cluster.plan import SyncMethod

        with pytest.raises(ValueError, match="asynchronous"):
            GraphSyncPlan("x", {"w": SyncMethod.PS}, asynchronous=True,
                          compression="fp16")

    def test_parallax_config_validates_compression(self):
        ParallaxConfig(comm=CommConfig(compression="topk+fp16",
                                       compression_ratio=0.5))
        with pytest.raises(ValueError, match="compression"):
            CommConfig(compression="gzip")
        with pytest.raises(ValueError, match="compression_ratio"):
            CommConfig(compression="topk", compression_ratio=0.0)
        with pytest.raises(ValueError, match="collective"):
            ParallaxConfig(architecture="ps",
                           comm=CommConfig(compression="fp16"))

    def test_get_runner_threads_compression_through(self):
        from repro.core.api import get_runner

        runner = get_runner(
            small_lm, ClusterSpec(2, 1),
            ParallaxConfig(architecture="ar",
                           comm=CommConfig(compression="topk",
                                           compression_ratio=0.25),
                           search_partitions=False,
                           alpha_measure_batches=0))
        assert runner.plan.compression == "topk"
        assert runner.plan.compression_ratio == 0.25
        assert runner.transformed.residual_variables
        assert np.isfinite(runner.step(0).mean_loss)


# ----------------------------------------------------------------------
# Transform structure
# ----------------------------------------------------------------------
class TestTransformStructure:
    def test_compressed_ops_replace_exact_collectives(self):
        runner = compressed_runner("topk")
        ops = [op.op_type for op in runner.transformed.graph.operations]
        assert "compressed_allreduce" in ops
        assert "compressed_allgatherv" in ops
        assert "allreduce" not in ops
        assert "fused_allreduce" not in ops
        assert "allgatherv" not in ops

    def test_residual_variables_per_replica_topk_only(self):
        runner = compressed_runner("topk")
        residuals = runner.transformed.residual_variables
        assert residuals, "top-k must create error-feedback residuals"
        for base, names in residuals.items():
            assert base.endswith(EF_RESIDUAL_SUFFIX)
            assert len(names) == runner.num_replicas
            assert names == sorted(
                names, key=lambda n: int(n.split("/")[0][3:]))
        assert not compressed_runner("fp16").transformed.residual_variables

    def test_fusion_buckets_sized_by_wire_bytes(self):
        """A cap that holds one raw segment holds ~2x fp16 segments: the
        compressed transform must produce fewer buckets than an
        uncompressed one under the same cap."""
        def bucket_count(compression):
            model = small_lm()
            plan = ar_graph_plan(model.graph, fusion=True,
                                 fusion_buffer_mb=0.004,
                                 compression=compression)
            runner = DistributedRunner(model, ClusterSpec(1, 2), plan,
                                       seed=0)
            kinds = ("fused_allreduce", "compressed_allreduce")
            groups = {op.attrs["group"]
                      for op in runner.transformed.graph.operations
                      if op.op_type in kinds}
            return len(groups)

        assert bucket_count("fp16") < bucket_count(None)

    def test_logical_state_roundtrip_with_residuals(self, tmp_path):
        runner = compressed_runner("topk")
        for i in range(3):
            runner.step(i)
        state = runner.logical_state()
        res_keys = [k for k in state if is_residual_name(k)]
        assert res_keys
        # The logical residual is the sum over replicas.
        base = res_keys[0]
        names = runner.transformed.residual_variables[base]
        total = sum(runner.backend.read_variables([n])[n] for n in names)
        np.testing.assert_array_equal(state[base], total)
        # Save/restore round trip covers residuals (strict mode).
        path = runner.save(str(tmp_path / "ckpt"))
        runner.restore(path)
        # After a load, replica 0 holds the mass and the rest are zero.
        values = runner.backend.read_variables(names)
        np.testing.assert_array_equal(values[names[0]], total)
        for name in names[1:]:
            assert not values[name].any()


# ----------------------------------------------------------------------
# End-to-end training behaviour
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_topk_cuts_bytes_at_least_2x(self):
        totals = {}
        for mode in (None, "topk"):
            runner = compressed_runner(mode, ratio=0.1)
            runner.step(0)
            runner.transcript.clear()
            runner.step(1)
            totals[mode] = sum(
                t.nbytes
                for t in runner.transcript.filter(None, network_only=False))
        assert totals["topk"] * 2 <= totals[None]

    def test_fp16_losses_track_exact_run(self):
        exact = compressed_runner(None)
        quantized = compressed_runner("fp16")
        for i in range(5):
            a = exact.step(i).mean_loss
            b = quantized.step(i).mean_loss
            assert abs(a - b) <= 1e-3 * max(abs(a), 1e-12)

    def test_topk_error_feedback_improves_loss(self):
        runner = compressed_runner("topk", ratio=0.1)
        losses = [runner.step(i).mean_loss for i in range(15)]
        assert losses[-1] < losses[0]

    def test_compression_composes_with_hybrid_plan(self):
        """Hybrid plans compress their AR variables only; the PS path
        still moves sparse gradients exactly."""
        model = small_lm()
        plan = hybrid_graph_plan(model.graph, fusion=True,
                                 compression="topk", compression_ratio=0.2)
        runner = DistributedRunner(model, ClusterSpec(2, 2), plan, seed=0)
        ops = {op.op_type for op in runner.transformed.graph.operations}
        assert "compressed_allreduce" in ops
        assert "global_agg" in ops  # PS aggregation untouched
        assert np.isfinite(runner.step(0).mean_loss)

    @pytest.mark.parametrize("mode", ["topk", "fp16", "topk+fp16"])
    def test_interpreted_matches_compiled(self, mode):
        losses = {}
        for engine in ("compiled", "interpreted"):
            model = small_lm()
            plan = ar_graph_plan(model.graph, fusion=True, compression=mode,
                                 compression_ratio=0.2)
            runner = DistributedRunner(model, ClusterSpec(2, 2), plan,
                                       seed=0, engine=engine)
            losses[engine] = [runner.step(i).replica_losses
                              for i in range(3)]
        assert losses["compiled"] == losses["interpreted"]


# ----------------------------------------------------------------------
# Backend differential + elastic migration (the acceptance criteria)
# ----------------------------------------------------------------------
class TestBackendDifferential:
    @pytest.mark.parametrize("mode", ["topk", "fp16", "topk+fp16"])
    def test_inproc_multiproc_bit_identical(self, mode):
        losses = {}
        for backend in ("inproc", "multiproc"):
            runner = compressed_runner(mode, cluster=ClusterSpec(2, 2),
                                       backend=backend)
            try:
                losses[backend] = [runner.step(i).replica_losses
                                   for i in range(4)]
            finally:
                runner.close()
        assert losses["inproc"] == losses["multiproc"]

    def test_residual_state_survives_multiproc_rescale(self):
        """Rescale 4 -> 2 -> 4 under multiproc: total error-feedback
        mass is conserved across both migrations, and training resumes
        bit-identically to a fresh runner restored from the same
        snapshot."""
        model = small_lm()
        plan = ar_graph_plan(model.graph, fusion=True, compression="topk",
                             compression_ratio=0.2)
        runner = ElasticRunner(model, ClusterSpec(2, 2), plan, seed=0,
                               backend="multiproc")
        try:
            for i in range(3):
                runner.step(i)
            before = {k: v.copy()
                      for k, v in runner.logical_state().items()}
            res_keys = [k for k in before if is_residual_name(k)]
            assert res_keys

            runner.rescale(ClusterSpec(1, 2))
            mid = runner.logical_state()
            for key in res_keys:
                np.testing.assert_array_equal(before[key], mid[key])

            # Differential: the rescaled runner's next step matches a
            # fresh 2-replica runner loaded from the same snapshot.
            fresh_model = small_lm()
            fresh_plan = ar_graph_plan(fresh_model.graph, fusion=True,
                                       compression="topk",
                                       compression_ratio=0.2)
            fresh = DistributedRunner(fresh_model, ClusterSpec(1, 2),
                                      fresh_plan, seed=0)
            fresh._load_state(before)
            assert (runner.step(3).replica_losses
                    == fresh.step(3).replica_losses)

            runner.rescale(ClusterSpec(2, 2))
            after = runner.logical_state()
            for key in res_keys:
                assert after[key].shape == before[key].shape
            assert np.isfinite(runner.step(4).mean_loss)
        finally:
            runner.close()

    def test_partition_change_rescale_resharding(self):
        """A rescale that changes the partition count re-shards
        per-shard residuals row-exactly (they ride the same path as
        optimizer slots) and resets only layout-changed bucket
        residuals."""
        from repro.core.partition_context import installed_partitions

        def builder():
            return small_lm(
                num_partitions=installed_partitions() or 3)

        model = builder()
        plan_builder = lambda g: ar_graph_plan(  # noqa: E731
            g, fusion=True, compression="topk", compression_ratio=0.2)
        runner = ElasticRunner(model, ClusterSpec(2, 2),
                               plan_builder(model.graph),
                               model_builder=builder,
                               plan_builder=plan_builder, seed=0)
        for i in range(3):
            runner.step(i)
        before = runner.logical_state()
        shard_res = np.concatenate([
            before[f"embedding/part_{p}{EF_RESIDUAL_SUFFIX}"]
            for p in range(3)
        ])
        runner.rescale(ClusterSpec(1, 2), num_partitions=2)
        after = runner.logical_state()
        rebuilt = np.concatenate([
            after[f"embedding/part_{p}{EF_RESIDUAL_SUFFIX}"]
            for p in range(2)
        ])
        np.testing.assert_array_equal(rebuilt, shard_res)
        assert np.isfinite(runner.step(3).mean_loss)


# ----------------------------------------------------------------------
# Pricing stack
# ----------------------------------------------------------------------
class TestPricing:
    def _setup(self):
        from repro.baselines import horovod_plan
        from repro.nn.profiles import lm_profile

        profile = lm_profile()
        return profile, horovod_plan(profile).with_fusion(4.0)

    def test_simulator_reports_raw_vs_wire(self):
        from repro.cluster.simulator import simulate_iteration

        profile, plan = self._setup()
        cluster = ClusterSpec(4, 4)
        exact = simulate_iteration(profile, plan, cluster)
        topk = simulate_iteration(
            profile, plan.with_compression("topk", 0.1), cluster)
        fp16 = simulate_iteration(
            profile, plan.with_compression("fp16"), cluster)
        assert exact.collective_wire_bytes == exact.collective_raw_bytes
        assert exact.compress_time == 0.0
        assert topk.collective_raw_bytes == exact.collective_raw_bytes
        assert topk.collective_wire_bytes == pytest.approx(
            0.2 * topk.collective_raw_bytes)
        assert fp16.collective_wire_bytes == pytest.approx(
            0.5 * fp16.collective_raw_bytes)
        assert topk.compress_time > 0 and fp16.compress_time > 0

    def test_fp16_speeds_up_bandwidth_bound_plans(self):
        from repro.cluster.costmodel import DEFAULT_COST_MODEL
        from repro.cluster.simulator import simulate_iteration

        profile, plan = self._setup()
        cluster = ClusterSpec(8, 4)
        slow_net = DEFAULT_COST_MODEL.with_overrides(nccl_bw=2e8,
                                                     mpi_bw=2e8)
        exact = simulate_iteration(profile, plan, cluster, slow_net)
        fp16 = simulate_iteration(profile, plan.with_compression("fp16"),
                                  cluster, slow_net)
        assert fp16.iteration_time < exact.iteration_time

    def test_budget_picker_prefers_fitting_plans(self):
        from repro.cluster.simulator import (
            pick_plan_under_budget,
            plan_wire_bytes,
            simulate_iteration,
        )

        profile, plan = self._setup()
        cluster = ClusterSpec(4, 4)
        candidates = [plan, plan.with_compression("fp16"),
                      plan.with_compression("topk", 0.1)]
        exact_bytes = plan_wire_bytes(
            simulate_iteration(profile, plan, cluster))
        roomy = pick_plan_under_budget(profile, candidates, cluster,
                                       exact_bytes * 10)
        assert roomy is not None
        tight = pick_plan_under_budget(profile, candidates, cluster,
                                       exact_bytes * 0.3)
        assert tight is not None and tight.compression is not None
        assert pick_plan_under_budget(profile, candidates, cluster,
                                      1.0) is None
        with pytest.raises(ValueError):
            pick_plan_under_budget(profile, candidates, cluster, 0.0)

    def test_sync_plan_compression_validation(self):
        from repro.cluster.plan import SyncPlan

        with pytest.raises(ValueError):
            SyncPlan("x", [], compression="gzip")
        with pytest.raises(ValueError):
            SyncPlan("x", [], compression="topk", compression_ratio=0.0)
        plan = SyncPlan("x", [], compression="topk+fp16",
                        compression_ratio=0.1)
        assert plan.compressed_fraction == pytest.approx(0.15)

    def test_compressed_buckets_shrink_with_fraction(self):
        profile, plan = self._setup()
        raw = plan.allreduce_buckets()
        wire = plan.with_compression("topk", 0.1).allreduce_buckets()
        assert sum(wire) == pytest.approx(0.2 * sum(raw))
        # Smaller wire segments pack into fewer (or equal) buckets.
        assert len(wire) <= len(raw)

    def test_cost_model_validates_compression_terms(self):
        from repro.cluster.costmodel import CostModel

        with pytest.raises(ValueError):
            CostModel(compress_throughput=0.0)
        with pytest.raises(ValueError):
            CostModel(c_compress_launch=-1.0)
