"""Op builders: shape inference, forward execution, validation errors."""

import numpy as np
import pytest

from repro.graph import Graph, Session, ops
from repro.graph.variables import Variable
from repro.tensor.dense import TensorSpec


@pytest.fixture()
def graph():
    g = Graph()
    with g.as_default():
        yield g


def run(graph, tensor, feed=None):
    return Session(graph, seed=0).run(tensor, feed or {})


class TestLeaves:
    def test_placeholder_must_be_fed(self, graph):
        x = ops.placeholder((2,))
        with pytest.raises(RuntimeError, match="not fed"):
            run(graph, x)

    def test_placeholder_feed_by_tensor_or_name(self, graph):
        x = ops.placeholder((2,), name="x")
        val = np.array([1.0, 2.0], dtype=np.float32)
        sess = Session(graph)
        np.testing.assert_array_equal(sess.run(x, {x: val}), val)
        np.testing.assert_array_equal(sess.run(x, {"x": val}), val)

    def test_constant_value(self, graph):
        c = ops.constant([[1.0, 2.0]])
        np.testing.assert_array_equal(run(graph, c), [[1.0, 2.0]])
        assert c.shape == (1, 2)

    def test_identity_passthrough(self, graph):
        c = ops.constant([3.0])
        np.testing.assert_array_equal(run(graph, ops.identity(c)), [3.0])


class TestShapeInference:
    def test_matmul_shape(self, graph):
        a = ops.placeholder((3, 4))
        b = ops.placeholder((4, 5))
        assert ops.matmul(a, b).shape == (3, 5)

    def test_matmul_mismatch_rejected(self, graph):
        a = ops.placeholder((3, 4))
        b = ops.placeholder((5, 6))
        with pytest.raises(ValueError, match="matmul"):
            ops.matmul(a, b)

    def test_add_requires_same_shape(self, graph):
        a = ops.placeholder((2, 2))
        b = ops.placeholder((2, 3))
        with pytest.raises(ValueError):
            ops.add(a, b)

    def test_bias_shape_checked(self, graph):
        x = ops.placeholder((2, 4))
        b = ops.placeholder((3,))
        with pytest.raises(ValueError):
            ops.add_bias(x, b)

    def test_concat_shape(self, graph):
        a = ops.placeholder((2, 3))
        b = ops.placeholder((2, 5))
        assert ops.concat([a, b], axis=1).shape == (2, 8)
        assert ops.concat([a, b], axis=-1).shape == (2, 8)

    def test_concat_rank_mismatch_rejected(self, graph):
        a = ops.placeholder((2, 3))
        b = ops.placeholder((2, 3, 1))
        with pytest.raises(ValueError):
            ops.concat([a, b], axis=0)

    def test_concat_off_axis_mismatch_rejected(self, graph):
        a = ops.placeholder((2, 3))
        b = ops.placeholder((4, 5))
        with pytest.raises(ValueError):
            ops.concat([a, b], axis=1)

    def test_reshape_with_minus_one(self, graph):
        x = ops.placeholder((2, 6))
        assert ops.reshape(x, (3, -1)).shape == (3, 4)

    def test_reshape_bad_size_rejected(self, graph):
        x = ops.placeholder((2, 6))
        with pytest.raises(ValueError):
            ops.reshape(x, (5, 5))

    def test_reshape_two_minus_ones_rejected(self, graph):
        x = ops.placeholder((2, 6))
        with pytest.raises(ValueError):
            ops.reshape(x, (-1, -1))

    def test_slice_axis_shape(self, graph):
        x = ops.placeholder((2, 10))
        assert ops.slice_axis(x, 2, 7, axis=1).shape == (2, 5)

    def test_slice_axis_bounds_checked(self, graph):
        x = ops.placeholder((2, 10))
        with pytest.raises(ValueError):
            ops.slice_axis(x, 5, 12, axis=1)

    def test_gather_shape(self, graph):
        params = ops.placeholder((100, 8))
        ids = ops.placeholder((4, 6), dtype="int64")
        assert ops.gather(params, ids).shape == (4, 6, 8)

    def test_softmax_xent_requires_rank2(self, graph):
        logits = ops.placeholder((2, 3, 4))
        labels = ops.placeholder((2,), dtype="int64")
        with pytest.raises(ValueError):
            ops.softmax_xent(logits, labels)

    def test_mean_is_scalar(self, graph):
        x = ops.placeholder((3, 3))
        assert ops.mean(x).shape == ()


class TestForwardValues:
    def test_elementwise(self, graph):
        a = ops.constant([1.0, -2.0])
        b = ops.constant([3.0, 4.0])
        np.testing.assert_array_equal(run(graph, ops.add(a, b)), [4.0, 2.0])
        np.testing.assert_array_equal(run(graph, ops.mul(a, b)), [3.0, -8.0])
        np.testing.assert_array_equal(run(graph, ops.scale(a, 2.0)),
                                      [2.0, -4.0])
        np.testing.assert_array_equal(run(graph, ops.relu(a)), [1.0, 0.0])

    def test_concat_and_slice_roundtrip(self, graph):
        a = ops.constant(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = ops.constant(np.arange(4, dtype=np.float32).reshape(2, 2))
        cat = ops.concat([a, b], axis=1)
        back = ops.slice_axis(cat, 0, 3, axis=1)
        np.testing.assert_array_equal(run(graph, back),
                                      np.arange(6).reshape(2, 3))

    def test_gather_forward(self, graph):
        params = ops.constant(np.arange(8, dtype=np.float32).reshape(4, 2))
        ids = ops.constant(np.array([3, 0], dtype=np.int64))
        out = run(graph, ops.gather(params, ids))
        np.testing.assert_array_equal(out, [[6, 7], [0, 1]])

    def test_mean(self, graph):
        x = ops.constant([[1.0, 2.0], [3.0, 4.0]])
        assert run(graph, ops.mean(x)) == pytest.approx(2.5)

    def test_group_runs_effects(self, graph):
        v = Variable("v", (2,), initializer=np.array([1.0, 1.0],
                                                     dtype=np.float32))
        dec = graph.add_op("assign_sub", [ops.constant([1.0, 0.0])],
                           v.spec, attrs={"variable": "v"})
        train = ops.group([dec])
        sess = Session(graph)
        sess.run(train)
        np.testing.assert_array_equal(sess.read_variable("v"), [0.0, 1.0])

    def test_scatter_sub_requires_slices(self, graph):
        v = Variable("v", (3, 2))
        bad = graph.add_op("scatter_sub", [ops.constant([[1.0, 1.0]])],
                           v.spec, attrs={"variable": "v"})
        with pytest.raises(TypeError):
            Session(graph).run(bad)


class TestRegistry:
    def test_duplicate_forward_rejected(self):
        from repro.graph.ops import register_forward

        with pytest.raises(ValueError):
            register_forward("matmul")(lambda op, i, r: None)

    def test_unknown_kernel_reported(self, graph):
        op = graph.add_op("no_such_kernel", [], TensorSpec(()))
        with pytest.raises(NotImplementedError, match="no_such_kernel"):
            Session(graph).run(op)
