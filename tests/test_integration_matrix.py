"""Integration matrix: every model x every architecture, end to end.

For each of the four evaluation models and each synchronization plan,
train for several iterations on a 2x2 cluster and check: losses improve
or hold, replicas stay synchronized, the transcript contains the expected
traffic classes, and the final state matches the single-GPU reference.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    classify_variables,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import Session, gradients
from repro.nn.models import build_inception, build_lm, build_nmt, build_resnet
from repro.nn.optimizers import GradientDescentOptimizer
from repro.tensor.sparse import IndexedSlices

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)
SEED = 21
LR = 0.3
ITERS = 6

MODEL_BUILDERS = {
    "lm": lambda: build_lm(batch_size=4, vocab_size=40, seq_len=2,
                           emb_dim=6, hidden=8, num_partitions=2, seed=0),
    "nmt": lambda: build_nmt(batch_size=4, src_vocab=30, tgt_vocab=30,
                             src_len=2, tgt_len=2, emb_dim=6, hidden=6,
                             num_partitions=2, seed=0),
    "resnet": lambda: build_resnet(batch_size=4, num_features=12,
                                   num_classes=3, width=12, num_blocks=1,
                                   seed=0),
    "inception": lambda: build_inception(batch_size=4, num_features=12,
                                         num_classes=3, width=6,
                                         num_modules=1, seed=0),
}

PLANS = {
    "parallax": lambda g: hybrid_graph_plan(g),
    "tf_ps": lambda g: ps_graph_plan(g),
    "opt_ps": lambda g: ps_graph_plan(g, True, True, name="opt_ps"),
    "horovod": lambda g: ar_graph_plan(g),
}


def build(model_name):
    model = MODEL_BUILDERS[model_name]()
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(LR).update(gvs)
    return model


def single_gpu_reference(model_name, iterations):
    """Sequential single-GPU emulation of synchronous data parallelism."""
    model = build(model_name)
    sess = Session(model.graph, seed=SEED)
    num_replicas = CLUSTER.total_gpus
    shards = [model.dataset.shard(num_replicas, r)
              for r in range(num_replicas)]
    grad_tensors = [
        (model.graph.get_op(grad_name).output, var_name)
        for var_name, grad_name in model.graph.gradient_info.items()
    ]
    for i in range(iterations):
        averaged = {}
        for r in range(num_replicas):
            feed = model.feed(shards[r].batch(model.batch_size, i))
            values = sess.run([gt for gt, _ in grad_tensors], feed)
            for (gt, var_name), value in zip(grad_tensors, values):
                if isinstance(value, IndexedSlices):
                    value = value.to_dense()
                averaged[var_name] = (
                    averaged.get(var_name, 0.0)
                    + np.asarray(value, np.float64) / num_replicas
                )
        for var_name, grad in averaged.items():
            sess.write_variable(
                var_name,
                (sess.read_variable(var_name) - LR * grad).astype(np.float32),
            )
    return {name: sess.read_variable(name)
            for name in model.graph.gradient_info}


@pytest.mark.parametrize("model_name", list(MODEL_BUILDERS))
@pytest.mark.parametrize("plan_name", list(PLANS))
def test_matrix_matches_single_gpu(model_name, plan_name):
    model = build(model_name)
    plan = PLANS[plan_name](model.graph)
    runner = DistributedRunner(model, CLUSTER, plan, seed=SEED)
    for i in range(ITERS):
        runner.step(i)
    reference = single_gpu_reference(model_name, ITERS)
    for name, expected in reference.items():
        got = runner.variable_value(name)
        np.testing.assert_allclose(
            got, expected, atol=5e-4,
            err_msg=f"{model_name}/{plan_name}:{name}")


@pytest.mark.parametrize("model_name", list(MODEL_BUILDERS))
def test_matrix_plan_composition(model_name):
    """Hybrid sends exactly the sparse variables to PS."""
    model = build(model_name)
    plan = hybrid_graph_plan(model.graph)
    runner = DistributedRunner(model, CLUSTER, plan, seed=SEED)
    classes = classify_variables(model.graph)
    sparse = {n for n, s in classes.items() if s}
    assert set(runner.transformed.ps_placement) == sparse
    assert set(runner.transformed.replica_variables) == \
        set(classes) - sparse


@pytest.mark.parametrize("model_name", ["lm", "nmt"])
def test_matrix_transcript_traffic_classes(model_name):
    """Hybrid traffic = collective (dense) + PS pulls/pushes (sparse)."""
    model = build(model_name)
    runner = DistributedRunner(model, CLUSTER,
                               hybrid_graph_plan(model.graph), seed=SEED)
    runner.step(0)
    tags = {t.tag.split("/")[0] for t in runner.transcript.transfers}
    assert "allreduce" in tags
    assert "edge" in tags  # PS pulls/pushes
    assert not any(t.tag.startswith("allgatherv")
                   for t in runner.transcript.transfers)
