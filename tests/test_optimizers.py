"""Optimizers: dense updates, sparse (row-wise) updates, equivalence."""

import numpy as np
import pytest

from repro.graph import Graph, Session, gradients, ops
from repro.graph.variables import Variable
from repro.nn.optimizers import (
    AdamOptimizer,
    GradientDescentOptimizer,
    MomentumOptimizer,
)


def build_dense_problem(seed=0):
    """Quadratic-ish problem: minimize mean((w - target)^2)."""
    g = Graph()
    rng = np.random.default_rng(seed)
    target = rng.standard_normal((4, 3)).astype(np.float32)
    with g.as_default():
        w = Variable("w", (4, 3), initializer=np.zeros((4, 3), np.float32))
        loss = ops.mse_loss(w.tensor, ops.constant(target))
        gvs = gradients(loss)
    return g, loss, gvs, target


def build_sparse_problem(seed=0):
    """Embedding rows pulled toward targets; only touched rows move."""
    g = Graph()
    rng = np.random.default_rng(seed)
    target = rng.standard_normal((5, 2)).astype(np.float32)
    with g.as_default():
        emb = Variable("emb", (8, 2), initializer=np.zeros((8, 2), np.float32))
        ids = ops.constant(np.array([0, 2, 2, 5, 7], dtype=np.int64))
        rows = ops.gather(emb.tensor, ids)
        loss = ops.mse_loss(rows, ops.constant(target))
        gvs = gradients(loss)
    return g, loss, gvs


class TestSGD:
    def test_dense_step_matches_formula(self):
        g, loss, gvs, target = build_dense_problem()
        with g.as_default():
            train = GradientDescentOptimizer(0.5).update(gvs)
        sess = Session(g)
        grad_value = sess.run(gvs[0][0])
        before = sess.read_variable("w").copy()
        sess.run(train)
        np.testing.assert_allclose(sess.read_variable("w"),
                                   before - 0.5 * grad_value, rtol=1e-6)

    def test_dense_converges(self):
        g, loss, gvs, target = build_dense_problem()
        with g.as_default():
            train = GradientDescentOptimizer(1.0).update(gvs)
        sess = Session(g)
        for _ in range(200):
            sess.run(train)
        np.testing.assert_allclose(sess.read_variable("w"), target, atol=1e-3)

    def test_sparse_only_touched_rows_move(self):
        g, loss, gvs = build_sparse_problem()
        with g.as_default():
            train = GradientDescentOptimizer(0.5).update(gvs)
        sess = Session(g)
        sess.run(train)
        emb = sess.read_variable("emb")
        for untouched in (1, 3, 4, 6):
            assert not emb[untouched].any()
        for touched in (0, 2, 5, 7):
            assert emb[touched].any()

    def test_sparse_duplicate_rows_accumulate(self):
        """Row 2 appears twice in the batch: both contributions apply."""
        g, loss, gvs = build_sparse_problem()
        with g.as_default():
            train = GradientDescentOptimizer(1.0).update(gvs)
        sess = Session(g)
        grad = sess.run(gvs[0][0]).combine().to_dense()
        before = sess.read_variable("emb").copy()
        sess.run(train)
        np.testing.assert_allclose(sess.read_variable("emb"),
                                   before - grad, rtol=1e-5, atol=1e-7)

    def test_update_op_attrs(self):
        g, loss, gvs, _ = build_dense_problem()
        with g.as_default():
            opt = GradientDescentOptimizer(0.1)
            opt.update(gvs)
        updates = [op for op in g.operations
                   if op.attrs.get("is_update")]
        assert len(updates) == 1
        assert updates[0].attrs["variable"] == "w"
        assert updates[0].attrs["sparse_grad"] is False
        assert g.collections["optimizer"] == [opt]


class TestMomentum:
    def test_dense_matches_reference(self):
        g, loss, gvs, target = build_dense_problem()
        with g.as_default():
            train = MomentumOptimizer(0.1, 0.9).update(gvs)
        sess = Session(g)
        w_ref = sess.read_variable("w").copy().astype(np.float64)
        vel = np.zeros_like(w_ref)
        for _ in range(5):
            grad = sess.run(gvs[0][0])
            sess.run(train)
            vel = 0.9 * vel + grad
            w_ref = w_ref - 0.1 * vel
        np.testing.assert_allclose(sess.read_variable("w"), w_ref,
                                   rtol=1e-4, atol=1e-6)

    def test_slot_created_non_trainable(self):
        g, loss, gvs, _ = build_dense_problem()
        with g.as_default():
            MomentumOptimizer(0.1).update(gvs)
        slot = g.variables["w/velocity"]
        assert not slot.trainable
        assert slot.shape == (4, 3)

    def test_sparse_momentum_untouched_rows_static(self):
        g, loss, gvs = build_sparse_problem()
        with g.as_default():
            train = MomentumOptimizer(0.5, 0.9).update(gvs)
        sess = Session(g)
        for _ in range(3):
            sess.run(train)
        emb = sess.read_variable("emb")
        for untouched in (1, 3, 4, 6):
            assert not emb[untouched].any()

    def test_momentum_accelerates_over_sgd(self):
        results = {}
        for name, opt in (("sgd", GradientDescentOptimizer(0.1)),
                          ("mom", MomentumOptimizer(0.1, 0.9))):
            g, loss, gvs, target = build_dense_problem()
            with g.as_default():
                train = opt.update(gvs)
            sess = Session(g)
            for _ in range(30):
                sess.run(train)
            results[name] = float(sess.run(loss))
        assert results["mom"] < results["sgd"]


class TestAdam:
    def test_dense_matches_reference(self):
        g, loss, gvs, target = build_dense_problem()
        lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-8
        with g.as_default():
            train = AdamOptimizer(lr, b1, b2, eps).update(gvs)
        sess = Session(g)
        w = sess.read_variable("w").astype(np.float64).copy()
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        for t in range(1, 6):
            grad = sess.run(gvs[0][0]).astype(np.float64)
            sess.run(train)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad * grad
            m_hat = m / (1 - b1 ** t)
            v_hat = v / (1 - b2 ** t)
            w = w - lr * m_hat / (np.sqrt(v_hat) + eps)
        np.testing.assert_allclose(sess.read_variable("w"), w, atol=1e-5)

    def test_adam_converges_sparse(self):
        g, loss, gvs = build_sparse_problem()
        with g.as_default():
            train = AdamOptimizer(0.05).update(gvs)
        sess = Session(g)
        first = float(sess.run(loss))
        for _ in range(150):
            sess.run(train)
        # Row 2 appears twice with conflicting targets, so loss has a
        # floor; a 4x drop shows the sparse slots are updating correctly.
        assert float(sess.run(loss)) < first * 0.25

    def test_lazy_adam_skips_untouched_rows(self):
        g, loss, gvs = build_sparse_problem()
        with g.as_default():
            train = AdamOptimizer(0.1).update(gvs)
        sess = Session(g)
        for _ in range(3):
            sess.run(train)
        m = sess.read_variable("emb/adam_m")
        assert not m[1].any() and not m[3].any()
        assert m[0].any()


class TestValidation:
    def test_empty_grads_rejected(self):
        with pytest.raises(ValueError):
            GradientDescentOptimizer(0.1).update([])

    def test_train_op_registered(self):
        g, loss, gvs, _ = build_dense_problem()
        with g.as_default():
            GradientDescentOptimizer(0.1).update(gvs)
        assert len(g.get_collection("train_ops")) == 1
