"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("experiment", ["table1", "table4", "table6"])
def test_cli_runs_each_table(experiment, capsys):
    assert main([experiment, "--machines", "2", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert experiment.replace("table", "Table ") in out


def test_cli_fig9_small_cluster(capsys):
    assert main(["fig9", "--machines", "2", "--gpus", "2"]) == 0
    assert "normalized" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_table2_custom_cluster(capsys):
    assert main(["table2", "--machines", "4", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert "P=128" in out


def test_cli_bench_fusion_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_fusion.json"
    assert main(["bench", "--fusion", "--machines", "2", "--gpus", "2",
                 "--iters", "4", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Fusion bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    records = report["allreduce_records"]
    assert records["fused"]["messages"] < records["unfused"]["messages"]
    assert records["fused"]["bytes"] == records["unfused"]["bytes"]
    sweep = report["simulated_ablation"]["sweep"]
    buckets = [row["num_buckets"] for row in sweep]
    assert buckets == sorted(buckets, reverse=True)


def test_cli_bench_fusion_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--fusion", "--iters", "0"])
