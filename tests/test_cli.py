"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("experiment", ["table1", "table4", "table6"])
def test_cli_runs_each_table(experiment, capsys):
    assert main([experiment, "--machines", "2", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert experiment.replace("table", "Table ") in out


def test_cli_fig9_small_cluster(capsys):
    assert main(["fig9", "--machines", "2", "--gpus", "2"]) == 0
    assert "normalized" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_table2_custom_cluster(capsys):
    assert main(["table2", "--machines", "4", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert "P=128" in out


def test_cli_bench_fusion_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_fusion.json"
    assert main(["bench", "--fusion", "--machines", "2", "--gpus", "2",
                 "--iters", "4", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Fusion bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    records = report["allreduce_records"]
    assert records["fused"]["messages"] < records["unfused"]["messages"]
    assert records["fused"]["bytes"] == records["unfused"]["bytes"]
    sweep = report["simulated_ablation"]["sweep"]
    buckets = [row["num_buckets"] for row in sweep]
    assert buckets == sorted(buckets, reverse=True)


def test_cli_bench_fusion_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--fusion", "--iters", "0"])


def test_cli_bench_elastic_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_elastic.json"
    assert main(["bench", "--elastic", "--machines", "2", "--gpus", "2",
                 "--iters", "8", "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Elastic bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    assert len(report["recoveries"]) == 1
    assert report["recoveries"][0]["action"] == "restore"
    assert report["rescale"]["old_replicas"] == 4
    assert report["rescale"]["new_replicas"] == 2
    assert report["rescale"]["plans_compiled"] >= 1
    sim = report["simulated"]
    assert 0 < sim["goodput_fraction"] < 1
    assert sim["downtime_sec"] > 0
    assert sim["rescale_downtime_sec"] > 0
    assert report["goodput_iters_per_sec"]["fault_free"] > 0
    assert report["goodput_iters_per_sec"]["faulted"] > 0


def test_cli_bench_elastic_and_fusion_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["bench", "--elastic", "--fusion"])


def test_cli_bench_elastic_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--elastic", "--iters", "0"])


def test_cli_bench_family_flags_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["bench", "--fusion", "--parallel"])
    with pytest.raises(SystemExit):
        main(["bench", "--all", "--elastic"])
    with pytest.raises(SystemExit):
        main(["bench", "--parallel", "--iters", "0"])


def test_bench_report_history_merging(tmp_path):
    """_write_report keeps the latest run at top level and folds earlier
    runs into a history list -- the per-family bench trajectory."""
    import json

    from repro.cli import _write_report

    out = tmp_path / "BENCH_x.json"
    _write_report(str(out), {"speedup": 1.0, "run": "first"})
    _write_report(str(out), {"speedup": 2.0, "run": "second"})
    _write_report(str(out), {"speedup": 3.0, "run": "third"})

    report = json.loads(out.read_text())
    assert report["run"] == "third"
    assert [r["run"] for r in report["history"]] == ["first", "second"]
    assert "history" not in report["history"][0]


def test_bench_report_history_survives_corrupt_file(tmp_path):
    import json

    from repro.cli import _write_report

    out = tmp_path / "BENCH_x.json"
    out.write_text("not json{")
    _write_report(str(out), {"run": "fresh"})
    report = json.loads(out.read_text())
    assert report["run"] == "fresh"
    assert report["history"] == []


def test_cli_bench_parallel_writes_report(tmp_path, capsys, monkeypatch):
    """Smoke the parallel bench at matrix-free scale: patch the matrix
    and timing workload down to the 2-worker quickstart so the CLI path
    (report schema, bit-identity gating, history) stays covered without
    the full 12-combination sweep."""
    import json

    import repro.cli as cli

    lm_model_builder = cli._bench_matrix_models()["lm"]
    hybrid_plan_builder = cli._bench_plan_builders()["hybrid"]
    monkeypatch.setattr(cli, "_bench_matrix_models",
                        lambda: {"lm": lm_model_builder})
    monkeypatch.setattr(cli, "_bench_plan_builders",
                        lambda: {"hybrid": hybrid_plan_builder})

    def small_timing(cluster, seed, backend):
        from repro.core.runner import DistributedRunner
        from repro.core.transform.plan import hybrid_graph_plan

        model = cli._quickstart_model()
        plan = hybrid_graph_plan(model.graph, fusion=True)
        return DistributedRunner(model, cluster, plan, seed=seed,
                                 backend=backend)

    monkeypatch.setattr(cli, "_parallel_timing_runner", small_timing)

    out = tmp_path / "BENCH_parallel.json"
    assert main(["bench", "--parallel", "--machines", "2", "--gpus", "1",
                 "--iters", "4", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Parallel bench" in printed
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    assert report["matrix"] == [{"model": "lm", "plan": "hybrid",
                                 "losses_bit_identical": True}]
    assert report["inproc_steps_per_sec"] > 0
    assert report["multiproc_steps_per_sec"] > 0
    assert report["controller_transport"]["messages"] > 0
    assert isinstance(report["speedup_enforced"], bool)
