"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("experiment", ["table1", "table4", "table6"])
def test_cli_runs_each_table(experiment, capsys):
    assert main([experiment, "--machines", "2", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert experiment.replace("table", "Table ") in out


def test_cli_fig9_small_cluster(capsys):
    assert main(["fig9", "--machines", "2", "--gpus", "2"]) == 0
    assert "normalized" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_table2_custom_cluster(capsys):
    assert main(["table2", "--machines", "4", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert "P=128" in out
