"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("experiment", ["table1", "table4", "table6"])
def test_cli_runs_each_table(experiment, capsys):
    assert main([experiment, "--machines", "2", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert experiment.replace("table", "Table ") in out


def test_cli_fig9_small_cluster(capsys):
    assert main(["fig9", "--machines", "2", "--gpus", "2"]) == 0
    assert "normalized" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_table2_custom_cluster(capsys):
    assert main(["table2", "--machines", "4", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert "P=128" in out


def test_cli_bench_fusion_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_fusion.json"
    assert main(["bench", "--fusion", "--machines", "2", "--gpus", "2",
                 "--iters", "4", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Fusion bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    records = report["allreduce_records"]
    assert records["fused"]["messages"] < records["unfused"]["messages"]
    assert records["fused"]["bytes"] == records["unfused"]["bytes"]
    sweep = report["simulated_ablation"]["sweep"]
    buckets = [row["num_buckets"] for row in sweep]
    assert buckets == sorted(buckets, reverse=True)


def test_cli_bench_fusion_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--fusion", "--iters", "0"])


def test_cli_bench_elastic_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_elastic.json"
    assert main(["bench", "--elastic", "--machines", "2", "--gpus", "2",
                 "--iters", "8", "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Elastic bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    assert len(report["recoveries"]) == 1
    assert report["recoveries"][0]["action"] == "restore"
    assert report["rescale"]["old_replicas"] == 4
    assert report["rescale"]["new_replicas"] == 2
    assert report["rescale"]["plans_compiled"] >= 1
    sim = report["simulated"]
    assert 0 < sim["goodput_fraction"] < 1
    assert sim["downtime_sec"] > 0
    assert sim["rescale_downtime_sec"] > 0
    assert report["goodput_iters_per_sec"]["fault_free"] > 0
    assert report["goodput_iters_per_sec"]["faulted"] > 0


def test_cli_bench_elastic_and_fusion_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["bench", "--elastic", "--fusion"])


def test_cli_bench_elastic_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--elastic", "--iters", "0"])


def test_cli_bench_family_flags_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["bench", "--fusion", "--parallel"])
    with pytest.raises(SystemExit):
        main(["bench", "--all", "--elastic"])
    with pytest.raises(SystemExit):
        main(["bench", "--parallel", "--iters", "0"])
    with pytest.raises(SystemExit):
        main(["bench", "--serve", "--fusion"])


def test_cli_bench_serve_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_serve.json"
    assert main(["bench", "--serve", "--machines", "2", "--gpus", "1",
                 "--iters", "3", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Serving bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["batched_bit_identical"] is True
    assert report["hot_reload_bit_identical"] is True
    assert report["hot_reload_changed_output"] is True
    assert set(report["qps_by_batch"]) == {"1", "2", "4", "8"}
    assert report["p99_latency_ms"] >= report["p50_latency_ms"]
    assert report["batched_speedup"] > 0
    assert report["requests_served"] > 0
    sim = report["simulated"]["by_batch"]
    qps = [sim[k]["qps"] for k in sorted(sim, key=int)]
    assert qps == sorted(qps)


def test_cli_bench_serve_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--serve", "--iters", "0"])


def test_bench_report_history_merging(tmp_path, monkeypatch):
    """_write_report keeps the latest run at top level and folds earlier
    runs into a history list -- the per-family bench trajectory.  Each
    write here happens at a distinct (fake) commit, so all of them make
    the trajectory."""
    import json

    import repro.cli as cli

    shas = iter(["sha1", "sha2", "sha3"])
    monkeypatch.setattr(cli, "_git_sha", lambda: next(shas))

    out = tmp_path / "BENCH_x.json"
    cli._write_report(str(out), {"speedup": 1.0, "run": "first"})
    cli._write_report(str(out), {"speedup": 2.0, "run": "second"})
    cli._write_report(str(out), {"speedup": 3.0, "run": "third"})

    report = json.loads(out.read_text())
    assert report["run"] == "third"
    assert report["git_sha"] == "sha3"
    assert [r["run"] for r in report["history"]] == ["first", "second"]
    assert "history" not in report["history"][0]


def test_bench_report_history_dedups_by_sha(tmp_path, monkeypatch):
    """A re-run at the same commit (a retried CI job) replaces that
    commit's data point instead of double-counting it."""
    import json

    import repro.cli as cli

    shas = iter(["sha1", "sha2", "sha2", "sha3"])
    monkeypatch.setattr(cli, "_git_sha", lambda: next(shas))

    out = tmp_path / "BENCH_x.json"
    cli._write_report(str(out), {"run": "first"})
    cli._write_report(str(out), {"run": "second"})
    cli._write_report(str(out), {"run": "second-retry"})  # same sha2
    cli._write_report(str(out), {"run": "third"})

    report = json.loads(out.read_text())
    assert report["run"] == "third"
    history = report["history"]
    # sha2 appears once, as the retry; the original run is gone.
    assert [r["run"] for r in history] == ["first", "second-retry"]
    assert [r["git_sha"] for r in history] == ["sha1", "sha2"]


def test_bench_report_no_sha_always_appends(tmp_path, monkeypatch):
    """Outside a git checkout (no SHA) the dedup is inert."""
    import json

    import repro.cli as cli

    monkeypatch.setattr(cli, "_git_sha", lambda: None)
    out = tmp_path / "BENCH_x.json"
    cli._write_report(str(out), {"run": "first"})
    cli._write_report(str(out), {"run": "second"})
    report = json.loads(out.read_text())
    assert [r["run"] for r in report["history"]] == ["first"]


def test_bench_report_history_survives_corrupt_file(tmp_path):
    import json

    from repro.cli import _write_report

    out = tmp_path / "BENCH_x.json"
    out.write_text("not json{")
    _write_report(str(out), {"run": "fresh"})
    report = json.loads(out.read_text())
    assert report["run"] == "fresh"
    assert report["history"] == []


def test_cli_bench_parallel_writes_report(tmp_path, capsys, monkeypatch):
    """Smoke the parallel bench at matrix-free scale: patch the matrix
    and timing workload down to the 2-worker quickstart so the CLI path
    (report schema, bit-identity gating, history) stays covered without
    the full 12-combination sweep."""
    import json

    import repro.cli as cli

    lm_model_builder = cli._bench_matrix_models()["lm"]
    hybrid_plan_builder = cli._bench_plan_builders()["hybrid"]
    monkeypatch.setattr(cli, "_bench_matrix_models",
                        lambda: {"lm": lm_model_builder})
    monkeypatch.setattr(cli, "_bench_plan_builders",
                        lambda: {"hybrid": hybrid_plan_builder})

    def small_timing(cluster, seed, backend):
        from repro.core.runner import DistributedRunner
        from repro.core.transform.plan import hybrid_graph_plan

        model = cli._quickstart_model()
        plan = hybrid_graph_plan(model.graph, fusion=True)
        return DistributedRunner(model, cluster, plan, seed=seed,
                                 backend=backend)

    monkeypatch.setattr(cli, "_parallel_timing_runner", small_timing)

    out = tmp_path / "BENCH_parallel.json"
    assert main(["bench", "--parallel", "--machines", "2", "--gpus", "1",
                 "--iters", "4", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Parallel bench" in printed
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    assert report["matrix"] == [{"model": "lm", "plan": "hybrid",
                                 "losses_bit_identical": True}]
    assert report["inproc_steps_per_sec"] > 0
    assert report["multiproc_steps_per_sec"] > 0
    assert report["controller_transport"]["messages"] > 0
    assert isinstance(report["speedup_enforced"], bool)


def test_cli_bench_compression_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_compression.json"
    assert main(["bench", "--compression", "--machines", "2", "--gpus", "2",
                 "--iters", "8", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Compression bench" in printed

    import json
    report = json.loads(out.read_text())
    assert report["topk_bytes_reduction"] >= 2.0
    assert report["topk_monotone_improving"] is True
    assert report["topk_within_tolerance"] is True
    assert report["fp16_within_tolerance"] is True
    assert report["fp16_roundtrip_bit_exact"] is True
    assert report["bytes_per_iteration"]["topk"] < \
        report["bytes_per_iteration"]["uncompressed"]
    simulated = report["simulated"]
    codecs = simulated["codecs"]
    assert codecs["topk"]["wire_bytes"] < codecs["topk"]["raw_bytes"]
    assert codecs["uncompressed"]["wire_bytes"] == \
        codecs["uncompressed"]["raw_bytes"]
    assert simulated["picked_under_budget"] in ("topk", "fp16", "topk+fp16")


def test_cli_bench_compression_flag_exclusive():
    with pytest.raises(SystemExit):
        main(["bench", "--compression", "--fusion"])
    with pytest.raises(SystemExit):
        main(["bench", "--check", "--compression"])


def test_cli_bench_check_no_reports(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--check"]) == 1
    assert "no reports" in capsys.readouterr().out


def test_cli_bench_check_passes_without_history(tmp_path, monkeypatch,
                                                capsys):
    import json

    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_engine.json").write_text(json.dumps({
        "compiled_steps_per_sec": 100.0, "losses_bit_identical": True,
        "history": [],
    }))
    assert main(["bench", "--check"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_bench_check_flags_regression(tmp_path, monkeypatch, capsys):
    """>25% below the history median fails; a smaller dip passes."""
    import json

    from repro.cli import _host_fingerprint

    monkeypatch.chdir(tmp_path)
    host = _host_fingerprint()
    history = [{"compiled_steps_per_sec": v, "host": host} for v in
               (90.0, 100.0, 110.0)]  # median 100
    (tmp_path / "BENCH_engine.json").write_text(json.dumps({
        "compiled_steps_per_sec": 70.0, "host": host, "history": history,
    }))
    assert main(["bench", "--check"]) == 1
    assert "below the history median" in capsys.readouterr().out

    (tmp_path / "BENCH_engine.json").write_text(json.dumps({
        "compiled_steps_per_sec": 80.0, "host": host, "history": history,
    }))
    assert main(["bench", "--check"]) == 0


def test_cli_bench_check_ignores_other_hosts(tmp_path, monkeypatch, capsys):
    """History measured on a different kind of machine is not a
    performance reference: a dev workstation's steps/sec must not fail a
    hosted CI runner."""
    import json

    from repro.cli import _host_fingerprint

    monkeypatch.chdir(tmp_path)
    history = [{"compiled_steps_per_sec": 1000.0,
                "host": "workstation-64c"}]
    (tmp_path / "BENCH_engine.json").write_text(json.dumps({
        "compiled_steps_per_sec": 10.0, "host": _host_fingerprint(),
        "history": history,
    }))
    assert main(["bench", "--check"]) == 0
    assert "0 throughput keys compared" in capsys.readouterr().out


def test_cli_bench_check_flags_contract_violations(tmp_path, monkeypatch,
                                                   capsys):
    import json

    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_engine.json").write_text(json.dumps({
        "losses_bit_identical": False, "history": [],
    }))
    assert main(["bench", "--check"]) == 1
    assert "losses_bit_identical" in capsys.readouterr().out

    # Bytes conservation: fused vs unfused AllReduce totals must agree.
    (tmp_path / "BENCH_engine.json").write_text(json.dumps({
        "losses_bit_identical": True,
        "allreduce_records": {"fused": {"bytes": 10, "messages": 1},
                              "unfused": {"bytes": 12, "messages": 3}},
        "history": [],
    }))
    assert main(["bench", "--check"]) == 1
    assert "not conserved" in capsys.readouterr().out
