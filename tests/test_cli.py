"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("experiment", ["table1", "table4", "table6"])
def test_cli_runs_each_table(experiment, capsys):
    assert main([experiment, "--machines", "2", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert experiment.replace("table", "Table ") in out


def test_cli_fig9_small_cluster(capsys):
    assert main(["fig9", "--machines", "2", "--gpus", "2"]) == 0
    assert "normalized" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_cli_table2_custom_cluster(capsys):
    assert main(["table2", "--machines", "4", "--gpus", "2"]) == 0
    out = capsys.readouterr().out
    assert "P=128" in out


def test_cli_bench_fusion_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_fusion.json"
    assert main(["bench", "--fusion", "--machines", "2", "--gpus", "2",
                 "--iters", "4", "--warmup", "1",
                 "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Fusion bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    records = report["allreduce_records"]
    assert records["fused"]["messages"] < records["unfused"]["messages"]
    assert records["fused"]["bytes"] == records["unfused"]["bytes"]
    sweep = report["simulated_ablation"]["sweep"]
    buckets = [row["num_buckets"] for row in sweep]
    assert buckets == sorted(buckets, reverse=True)


def test_cli_bench_fusion_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--fusion", "--iters", "0"])


def test_cli_bench_elastic_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_elastic.json"
    assert main(["bench", "--elastic", "--machines", "2", "--gpus", "2",
                 "--iters", "8", "--bench-output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Elastic bench" in printed
    assert out.exists()

    import json
    report = json.loads(out.read_text())
    assert report["losses_bit_identical"] is True
    assert len(report["recoveries"]) == 1
    assert report["recoveries"][0]["action"] == "restore"
    assert report["rescale"]["old_replicas"] == 4
    assert report["rescale"]["new_replicas"] == 2
    assert report["rescale"]["plans_compiled"] >= 1
    sim = report["simulated"]
    assert 0 < sim["goodput_fraction"] < 1
    assert sim["downtime_sec"] > 0
    assert sim["rescale_downtime_sec"] > 0
    assert report["goodput_iters_per_sec"]["fault_free"] > 0
    assert report["goodput_iters_per_sec"]["faulted"] > 0


def test_cli_bench_elastic_and_fusion_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["bench", "--elastic", "--fusion"])


def test_cli_bench_elastic_rejects_bad_iters():
    with pytest.raises(SystemExit):
        main(["bench", "--elastic", "--iters", "0"])
