"""Graph IR: naming, device scoping, traversal, collections."""

import numpy as np
import pytest

from repro.graph import Graph, get_default_graph, ops
from repro.graph.device import DeviceSpec, canonicalize
from repro.tensor.dense import TensorSpec


class TestDeviceSpec:
    def test_parse_gpu(self):
        d = DeviceSpec.parse("/machine:3/gpu:1")
        assert d == DeviceSpec.gpu(3, 1)
        assert d.is_gpu

    def test_parse_cpu(self):
        d = DeviceSpec.parse("/machine:0/cpu:0")
        assert d == DeviceSpec.cpu(0)
        assert not d.is_gpu

    def test_roundtrip_str(self):
        d = DeviceSpec.gpu(2, 5)
        assert DeviceSpec.parse(str(d)) == d

    def test_malformed_rejected(self):
        for bad in ("/gpu:0", "machine:0/gpu:0", "/machine:0/tpu:0", ""):
            with pytest.raises(ValueError):
                DeviceSpec.parse(bad)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(machine=-1, device_type="gpu", index=0)

    def test_canonicalize_accepts_all_forms(self):
        assert canonicalize(None) is None
        assert canonicalize("/machine:0/gpu:0") == DeviceSpec.gpu(0, 0)
        d = DeviceSpec.cpu(1)
        assert canonicalize(d) is d

    def test_canonicalize_rejects_garbage(self):
        with pytest.raises(TypeError):
            canonicalize(42)


class TestNaming:
    def test_unique_names_generated(self):
        g = Graph()
        with g.as_default():
            a = ops.constant(1.0, name="c")
            b = ops.constant(2.0, name="c")
        assert a.name == "c"
        assert b.name == "c_1"

    def test_get_op_unknown_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.get_op("nope")

    def test_has_op(self):
        g = Graph()
        with g.as_default():
            ops.constant(1.0, name="c")
        assert g.has_op("c")
        assert not g.has_op("d")


class TestDefaultGraph:
    def test_as_default_scoping(self):
        g1, g2 = Graph(), Graph()
        with g1.as_default():
            assert get_default_graph() is g1
            with g2.as_default():
                assert get_default_graph() is g2
            assert get_default_graph() is g1

    def test_fallback_graph_exists(self):
        assert get_default_graph() is not None

    def test_cross_graph_input_rejected(self):
        g1, g2 = Graph(), Graph()
        with g1.as_default():
            a = ops.constant(1.0)
        with g2.as_default():
            with pytest.raises(ValueError):
                ops.identity(a)


class TestDeviceScoping:
    def test_ops_pick_up_ambient_device(self):
        g = Graph()
        with g.as_default(), g.device("/machine:1/gpu:0"):
            t = ops.constant(1.0)
        assert t.op.device == DeviceSpec.gpu(1, 0)

    def test_innermost_device_wins(self):
        g = Graph()
        with g.as_default(), g.device("/machine:0/gpu:0"):
            with g.device("/machine:1/cpu:0"):
                t = ops.constant(1.0)
        assert t.op.device == DeviceSpec.cpu(1)

    def test_explicit_device_overrides_scope(self):
        g = Graph()
        with g.as_default(), g.device("/machine:0/gpu:0"):
            op = g.add_op("constant", [], TensorSpec(()),
                          attrs={"value": np.float32(0)},
                          device="/machine:2/cpu:0")
        assert op.device == DeviceSpec.cpu(2)

    def test_no_device_by_default(self):
        g = Graph()
        with g.as_default():
            t = ops.constant(1.0)
        assert t.op.device is None


class TestTraversal:
    def build_chain(self):
        g = Graph()
        with g.as_default():
            a = ops.constant(np.ones((2, 2)), name="a")
            b = ops.relu(a, name="b")
            c = ops.relu(b, name="c")
        return g, a, b, c

    def test_topo_sort_order(self):
        g, a, b, c = self.build_chain()
        order = [op.name for op in g.topo_sort([c.op])]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topo_sort_only_reachable(self):
        g, a, b, c = self.build_chain()
        with g.as_default():
            ops.constant(0.0, name="orphan")
        names = {op.name for op in g.topo_sort([c.op])}
        assert "orphan" not in names

    def test_ancestors(self):
        g, a, b, c = self.build_chain()
        anc = {op.name for op in g.ancestors([c.op])}
        assert anc == {"a", "b", "c"}

    def test_consumers(self):
        g, a, b, c = self.build_chain()
        assert [op.name for op in g.consumers(b.op)] == ["c"]

    def test_control_inputs_in_topo(self):
        g, a, b, c = self.build_chain()
        with g.as_default():
            d = ops.constant(0.0, name="d")
        c.op.add_control_input(d.op)
        names = [op.name for op in g.topo_sort([c.op])]
        assert names.index("d") < names.index("c")

    def test_control_input_cross_graph_rejected(self):
        g, a, b, c = self.build_chain()
        other = Graph()
        with other.as_default():
            x = ops.constant(0.0)
        with pytest.raises(ValueError):
            c.op.add_control_input(x.op)

    def test_cycle_detected(self):
        g, a, b, c = self.build_chain()
        # Force a cycle through control edges.
        a.op.add_control_input(c.op)
        with pytest.raises(ValueError, match="cycle"):
            g.topo_sort([c.op])


class TestCollections:
    def test_add_and_get(self):
        g = Graph()
        g.add_to_collection("stuff", 1)
        g.add_to_collection("stuff", 2)
        assert g.get_collection("stuff") == [1, 2]

    def test_get_missing_is_empty(self):
        assert Graph().get_collection("none") == []

    def test_get_returns_copy(self):
        g = Graph()
        g.add_to_collection("stuff", 1)
        g.get_collection("stuff").append(99)
        assert g.get_collection("stuff") == [1]


def test_len_counts_ops():
    g = Graph()
    with g.as_default():
        ops.constant(1.0)
        ops.constant(2.0)
    assert len(g) == 2
