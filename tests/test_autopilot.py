"""Autopilot suite: telemetry, refit hygiene, planning, and adaptation.

The contracts under test:

* Telemetry windows classify transfer planes correctly and are tainted
  by any overlapping fault-plane activity, and **tainted windows never
  reach calibration** (the NicDegradation-poisoning regression).
* ``calibrate_gpu_time`` recovers the compute term that produced a
  measured step time (simulator round trip).
* The planner holds when nothing beats the incumbent, escapes a
  degraded machine or compresses under a measured NIC degradation, and
  never proposes a banned candidate.
* The hysteresis governor admits no flapping schedule at all -- a
  hypothesis property over random proposal/outcome streams.
* A failed migration rolls back bit-exactly: the runner's logical state
  and subsequent trajectory are identical to a twin that never tried.
* Differential: under a scripted, *paid-for* NIC degradation the
  autopilot's goodput is at least the static runner's -- on the inproc
  and the multiproc backends.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autopilot import (
    AutopilotController,
    AutopilotConfig,
    HysteresisGovernor,
    PlanCandidate,
    Planner,
    Proposal,
    TelemetryMonitor,
    TelemetryWindow,
    derive_profile,
    plane_of,
)
from repro.autopilot.telemetry import ActiveDegradation
from repro.cluster.costmodel import (
    DEFAULT_COST_MODEL,
    fit_from_telemetry,
    fit_transport_constants,
)
from repro.cluster.faults import FaultPlan, NicDegradation
from repro.cluster.simulator import calibrate_gpu_time, simulate_iteration
from repro.cluster.spec import ClusterSpec
from repro.comm.transcript import Note, Transfer
from repro.core.api import auto_parallelize
from repro.core.config import CommConfig, ElasticConfig, ParallaxConfig
from repro.core.elastic import ElasticRunner
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import hybrid_graph_plan
from repro.graph.gradients import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

SEED = 7
C2x1 = ClusterSpec(num_machines=2, gpus_per_machine=1)
C2x2 = ClusterSpec(num_machines=2, gpus_per_machine=2)


def small_model():
    model = build_lm(batch_size=4, vocab_size=40, seq_len=3, emb_dim=8,
                     hidden=10, num_partitions=2, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.4).update(gvs)
    return model


def make_elastic(cluster=C2x2, **kwargs):
    model = small_model()
    return ElasticRunner(model, cluster, hybrid_graph_plan(model.graph),
                         seed=SEED, **kwargs)


def note(tag, iteration, **info):
    return Note(tag, iteration, tuple(sorted(info.items())))


def xfer(tag, nbytes, src=0, dst=1):
    return Transfer(tag, src, dst, nbytes)


# ======================================================================
# Plane classification + windowing
# ======================================================================
class TestPlaneClassification:
    @pytest.mark.parametrize("tag,plane", [
        ("allreduce/bucket0", "collective"),
        ("allgatherv/emb_0", "collective"),
        ("idx:emb_0", "collective"),
        ("edge/push/w", "ps"),
        ("transport/step", "transport"),
        ("checkpoint/state", "other"),
    ])
    def test_plane_of(self, tag, plane):
        assert plane_of(tag) == plane

    def test_window_accounts_cross_machine_bytes_by_plane(self):
        monitor = TelemetryMonitor(window_steps=1)
        window = monitor.observe_step(0, 0.1, [
            xfer("allreduce/b0", 100),
            xfer("edge/pull/emb", 40),
            xfer("allreduce/b0", 7, src=1, dst=1),  # local: free
        ], [])
        assert window.wire_bytes == {"collective": 100, "ps": 40}
        assert window.network_bytes == 140


class TestTelemetryWindowing:
    def test_windows_close_every_window_steps(self):
        monitor = TelemetryMonitor(window_steps=3)
        closed = [monitor.observe_step(i, 0.5, [], []) for i in range(7)]
        assert [w is not None for w in closed] == [
            False, False, True, False, False, True, False]
        first = closed[2]
        assert (first.index, first.start_iteration, first.end_iteration) \
            == (0, 0, 3)
        assert first.steps == 3
        assert first.mean_step_time == pytest.approx(0.5)
        assert first.steps_per_sec == pytest.approx(3 / 1.5)

    def test_counters_accumulate_across_steps(self):
        monitor = TelemetryMonitor(window_steps=2)
        monitor.observe_step(0, 0.1, [], [], counters={"pickle_bytes": 10})
        window = monitor.observe_step(1, 0.1, [], [],
                                      counters={"pickle_bytes": 5,
                                                "serialize_s": 0.2})
        assert window.counters == {"pickle_bytes": 15, "serialize_s": 0.2}

    def test_nic_degraded_note_taints_and_is_learned(self):
        monitor = TelemetryMonitor(window_steps=2)
        events = [note("fault/nic_degraded", 0, machine=1, factor=0.25,
                       duration=3)]
        monitor.observe_step(0, 0.1, [], events, num_machines=2)
        w0 = monitor.observe_step(1, 0.1, [], [], num_machines=2)
        assert w0.tainted
        assert "fault/nic_degraded" in w0.fault_tags
        assert w0.nic_factor == pytest.approx(0.25)
        # iterations 0..2 degraded, 3 onwards clean
        monitor.observe_step(2, 0.1, [], [], num_machines=2)
        w1 = monitor.observe_step(3, 0.1, [], [], num_machines=2)
        assert w1.tainted  # step 2 overlapped the window
        w2 = monitor.observe_step(5, 0.1, [], [],
                                  num_machines=2) or \
            monitor.observe_step(6, 0.1, [], [], num_machines=2)
        assert not w2.tainted
        assert monitor.clean_windows() == [w2]
        assert monitor.last_clean_window() is w2

    def test_degradation_outside_fleet_does_not_degrade(self):
        monitor = TelemetryMonitor(window_steps=1)
        events = [note("fault/nic_degraded", 0, machine=3, factor=0.5,
                       duration=10)]
        # The note itself tags the window (fault/ prefix), but a
        # 2-machine fleet never pays machine 3's degradation.
        monitor.observe_step(0, 0.1, [], events, num_machines=2)
        assert monitor.nic_factor(1, num_machines=2) == 1.0
        assert monitor.active_degradations(1, num_machines=2) == []
        assert monitor.nic_factor(1, num_machines=4) == 0.5
        assert monitor.remaining_degraded_steps(1, num_machines=4) == 9

    def test_mark_fault_taints_current_window(self):
        monitor = TelemetryMonitor(window_steps=2)
        monitor.mark_fault("fault/worker_kill")
        window = monitor.observe_step(0, 0.1, [], []) or \
            monitor.observe_step(1, 0.1, [], [])
        assert window.tainted
        assert "fault/worker_kill" in window.fault_tags

    def test_window_history_is_bounded(self):
        monitor = TelemetryMonitor(window_steps=1, max_windows=4)
        for i in range(10):
            monitor.observe_step(i, 0.1, [], [])
        assert len(monitor.windows) == 4
        assert [w.start_iteration for w in monitor.windows] == [6, 7, 8, 9]


# ======================================================================
# Refit hygiene: tainted windows never reach calibration (the
# NicDegradation-poisoning regression)
# ======================================================================
class TestTaintedWindowsExcludedFromRefit:
    CLEAN = {"pickle_bytes": 1_000_000.0, "serialize_s": 0.01}
    # A degraded window's wall time measures the fault, not the
    # transport: folding it in would inflate c_serialize 1000x.
    POISON = {"pickle_bytes": 1_000_000.0, "serialize_s": 10.0}

    def window(self, index, counters, tainted):
        return TelemetryWindow(
            index=index, start_iteration=index * 4,
            end_iteration=index * 4 + 4, wall_time=1.0,
            counters=dict(counters),
            fault_tags=("fault/nic_degraded",) if tainted else (),
            nic_factor=0.25 if tainted else 1.0,
        )

    def test_fit_ignores_tainted_windows(self):
        clean = self.window(0, self.CLEAN, tainted=False)
        poisoned = self.window(1, self.POISON, tainted=True)
        fitted = fit_from_telemetry([clean, poisoned])
        assert fitted.c_serialize == pytest.approx(0.01 / 1_000_000.0)
        assert fitted == fit_from_telemetry([clean])

    def test_the_poison_is_real(self):
        # Regression guard for the guard: feeding the tainted counters
        # straight into the fitter DOES corrupt the constant, so the
        # exclusion above is load-bearing, not vacuous.
        poisoned = fit_transport_constants([self.CLEAN, self.POISON])
        assert poisoned.c_serialize > 100 * (0.01 / 1_000_000.0)

    def test_all_tainted_history_returns_base_unchanged(self):
        windows = [self.window(i, self.POISON, tainted=True)
                   for i in range(3)]
        assert fit_from_telemetry(windows) == DEFAULT_COST_MODEL

    def test_counterless_inproc_windows_are_skipped(self):
        windows = [self.window(i, {}, tainted=False) for i in range(3)]
        assert fit_from_telemetry(windows) == DEFAULT_COST_MODEL

    def test_scripted_degradation_taints_live_windows(self):
        """End to end: a scheduled NicDegradation's windows are tainted
        and the controller calibrates from the clean ones only."""
        plan = FaultPlan(degradations=(
            NicDegradation(iteration=4, machine=1, factor=0.5,
                           duration=4),))
        runner = make_elastic(cluster=C2x1, fault_plan=plan,
                              checkpoint_every=4)
        runner.emulate_nic_bw = 1e9
        config = AutopilotConfig(
            enabled=True, window_steps=2, hysteresis=1e9,  # never migrate
            consider_rescale=False, plan_families=("hybrid",),
            fusion_buffers_mb=(4.0,), codecs=(None,))
        controller = AutopilotController(runner, config)
        for i in range(12):
            controller.step(i)
        windows = controller.monitor.windows
        assert len(windows) == 6
        # degradation active over iterations [4, 8)
        tainted = [w.tainted for w in windows]
        assert tainted == [False, False, True, True, False, False]
        assert controller.monitor.clean_windows() == [
            windows[0], windows[1], windows[4], windows[5]]
        # the learned degradation matches the schedule
        (d,) = controller.monitor._degradations
        assert (d.machine, d.factor) == (1, 0.5)
        assert (d.start_iteration, d.end_iteration) == (4, 8)
        # refit notes fired each window, calibrated from clean windows
        refits = runner.transcript.events("autopilot/refit")
        assert len(refits) == 6
        assert refits[2].get("clean_window") == 1  # not the tainted 2
        assert controller._calibrated


# ======================================================================
# calibrate_gpu_time: the simulator round trip
# ======================================================================
class TestCalibrateGpuTime:
    def setup_method(self):
        self.profile = derive_profile(small_model(), gpu_time_per_iter=1e-3)
        planner = Planner(AutopilotConfig(), C2x2)
        self.plan = planner.sync_plan(
            PlanCandidate("hybrid", num_machines=2), self.profile, 2)

    def test_round_trip_recovers_compute_term(self):
        from dataclasses import replace

        truth = replace(self.profile, gpu_time_per_iter=0.007)
        measured = simulate_iteration(
            truth, self.plan, C2x2).iteration_time
        calibrated = calibrate_gpu_time(
            self.profile, self.plan, C2x2, measured)
        assert calibrated.gpu_time_per_iter == pytest.approx(0.007,
                                                             rel=1e-3)
        assert simulate_iteration(
            calibrated, self.plan, C2x2).iteration_time \
            == pytest.approx(measured, rel=1e-3)

    def test_measurement_below_comm_floor_returns_floor_profile(self):
        calibrated = calibrate_gpu_time(
            self.profile, self.plan, C2x2, 1e-12)
        assert calibrated.gpu_time_per_iter <= 1e-6

    def test_rejects_nonpositive_measurement(self):
        with pytest.raises(ValueError, match="measured_iteration_time"):
            calibrate_gpu_time(self.profile, self.plan, C2x2, 0.0)


# ======================================================================
# Planner: hold / escape / compress / ban
# ======================================================================
class TestPlanner:
    def setup_method(self):
        self.profile = derive_profile(small_model(), gpu_time_per_iter=5e-4)

    def test_candidates_include_incumbent_and_respect_min_machines(self):
        config = AutopilotConfig(min_machines=2)
        planner = Planner(config, ClusterSpec(3, 1))
        incumbent = PlanCandidate("hybrid", num_machines=3)
        candidates = planner.candidates(incumbent)
        labels = {c.label for c in candidates}
        assert incumbent.label in labels
        assert all(c.num_machines >= 2 for c in candidates)

    def test_holds_when_space_is_just_the_incumbent(self):
        config = AutopilotConfig(plan_families=("hybrid",),
                                 fusion_buffers_mb=(4.0,), codecs=(None,),
                                 consider_rescale=False)
        planner = Planner(config, C2x1)
        incumbent = PlanCandidate("hybrid", fusion_buffer_mb=4.0,
                                  num_machines=2)
        assert planner.propose(self.profile, incumbent,
                               num_partitions=2) is None

    def test_infinite_hysteresis_always_holds(self):
        planner = Planner(AutopilotConfig(hysteresis=1e9), C2x1)
        incumbent = PlanCandidate("hybrid", num_machines=2)
        assert planner.propose(
            self.profile, incumbent, num_partitions=2,
            measured_network_bytes=1e6,
            degradations=[ActiveDegradation(1, 0.25, 0, 1000)],
            emulate_nic_bw=1e5, remaining_degraded_steps=1000) is None

    def degraded_proposal(self, banned=()):
        planner = Planner(AutopilotConfig(), C2x1)
        incumbent = PlanCandidate("hybrid", fusion_buffer_mb=4.0,
                                  num_machines=2)
        return planner.propose(
            self.profile, incumbent, num_partitions=2,
            measured_network_bytes=2e6,
            degradations=[ActiveDegradation(1, 0.25, 0, 1000)],
            emulate_nic_bw=1e5, remaining_degraded_steps=1000,
            banned=banned)

    def test_escapes_or_compresses_under_degradation(self):
        proposal = self.degraded_proposal()
        assert proposal is not None
        candidate = proposal.candidate
        # The win must come from dodging the degraded NIC: drop the
        # degraded machine or shrink the bytes that cross it.
        assert (candidate.num_machines == 1
                or candidate.compression is not None)
        assert proposal.gain > AutopilotConfig().hysteresis
        assert proposal.predicted_units_per_sec \
            > proposal.incumbent_units_per_sec
        assert proposal.migration_cost > 0

    def test_banned_candidate_is_never_proposed(self):
        first = self.degraded_proposal()
        second = self.degraded_proposal(banned={first.candidate.label})
        assert second is None or \
            second.candidate.label != first.candidate.label


# ======================================================================
# Hysteresis governor: the no-flapping property
# ======================================================================
class TestHysteresisGovernor:
    def config(self, **kw):
        kw.setdefault("cooldown_windows", 2)
        kw.setdefault("max_backoff_windows", 16)
        return AutopilotConfig(**kw)

    def test_backoff_grows_and_is_capped(self):
        governor = HysteresisGovernor(self.config(backoff_factor=2.0))
        assert governor.current_cooldown == 2
        for expected in (4, 8, 16, 16):
            governor.failed(0, "plan-x")
            assert governor.current_cooldown == expected

    def test_successful_migration_resets_backoff(self):
        governor = HysteresisGovernor(self.config(backoff_factor=2.0))
        governor.failed(0, "plan-x")
        assert governor.current_cooldown == 4
        governor.migrated(10, "plan-y")
        assert governor.current_cooldown == 2

    def test_replaced_plan_banned_for_two_cooldowns(self):
        governor = HysteresisGovernor(self.config())
        governor.migrated(5, "plan-a")
        assert "plan-a" in governor.banned(6)
        assert "plan-a" in governor.banned(9)   # 5 + 1 + 2*2 = 10
        assert "plan-a" not in governor.banned(10)

    @given(
        events=st.lists(
            st.tuples(st.integers(min_value=0, max_value=3), st.booleans()),
            min_size=1, max_size=50),
        cooldown=st.integers(min_value=1, max_value=4),
        backoff=st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_schedule_flaps(self, events, cooldown, backoff):
        """Whatever the proposal/outcome stream, the admitted migration
        schedule satisfies the no-flapping contract: consecutive
        migrations more than ``cooldown`` windows apart, and no return
        to a replaced plan within two cooldowns of replacing it."""
        governor = HysteresisGovernor(self.config(
            cooldown_windows=cooldown, backoff_factor=backoff,
            max_backoff_windows=16))
        incumbent = "plan-inc"
        migrations = []
        for window, (pick, succeeded) in enumerate(events):
            label = f"plan-{pick}"
            if governor.in_cooldown(window):
                continue
            if label == incumbent or label in governor.banned(window):
                continue
            if succeeded:
                governor.migrated(window, incumbent)
                migrations.append((window, label, incumbent))
                incumbent = label
            else:
                governor.failed(window, label)
            assert governor.current_cooldown \
                <= governor.config.max_backoff_windows
        for (w1, _, _), (w2, label2, _) in zip(migrations, migrations[1:]):
            assert w2 - w1 > cooldown
        for i, (w1, _, replaced) in enumerate(migrations):
            for w2, label2, _ in migrations[i + 1:]:
                if label2 == replaced:
                    assert w2 - w1 > 2 * cooldown


# ======================================================================
# Rollback: a failed migration leaves no trace
# ======================================================================
class TestRollbackBitIdentity:
    def twins(self):
        return make_elastic(cluster=C2x2), make_elastic(cluster=C2x2)

    def test_failing_plan_builder_leaves_runner_untouched(self):
        runner, twin = self.twins()
        for i in range(3):
            runner.step(i)
            twin.step(i)

        def bad_builder(graph):
            raise RuntimeError("synthetic plan-build failure")

        old_builder = runner.plan_builder
        with pytest.raises(RuntimeError, match="synthetic"):
            runner.rescale(ClusterSpec(1, 2), plan_builder=bad_builder)
        assert runner.plan_builder is old_builder
        assert runner.num_replicas == 4
        self.assert_trajectories_match(runner, twin)

    def test_midflight_failure_rolls_back_bit_exactly(self):
        runner, twin = self.twins()
        for i in range(3):
            runner.step(i)
            twin.step(i)
        backend_before = runner.backend
        state_before = {k: v.copy()
                        for k, v in runner.logical_state().items()}

        def boom(state):
            raise RuntimeError("synthetic load failure")

        # Fail *after* the new session/backend exist, so the except
        # path has real work to undo.
        runner._load_state = boom
        try:
            with pytest.raises(RuntimeError, match="synthetic"):
                runner.rescale(ClusterSpec(1, 2))
        finally:
            del runner.__dict__["_load_state"]
        assert runner.backend is backend_before
        assert runner.num_replicas == 4
        after = runner.logical_state()
        assert set(after) == set(state_before)
        for name in after:
            np.testing.assert_array_equal(after[name], state_before[name],
                                          err_msg=name)
        self.assert_trajectories_match(runner, twin)

    def assert_trajectories_match(self, runner, twin):
        for i in range(3, 6):
            a = runner.step(i)
            b = twin.step(i)
            np.testing.assert_array_equal(
                np.asarray(a.replica_losses), np.asarray(b.replica_losses),
                err_msg=f"trajectories diverged at step {i}")

    def test_controller_records_rollback_and_bans_candidate(self):
        runner = make_elastic(cluster=C2x1)
        config = AutopilotConfig(enabled=True, window_steps=2)
        controller = AutopilotController(runner, config)

        def failing_rescale(new_cluster, **kwargs):
            raise RuntimeError("synthetic migration failure")

        runner.rescale = failing_rescale
        incumbent_before = controller.incumbent
        candidate = PlanCandidate("hybrid", compression="fp16",
                                  num_machines=1)
        proposal = Proposal(
            candidate=candidate, incumbent=incumbent_before,
            predicted_step_time=0.5, incumbent_step_time=1.0,
            predicted_units_per_sec=8.0, incumbent_units_per_sec=4.0,
            gain=1.0, migration_cost=0.01, horizon_steps=40)
        window = TelemetryWindow(index=3, start_iteration=6,
                                 end_iteration=8, wall_time=1.0)
        controller._execute(proposal, window, iteration=7)
        assert controller.incumbent is incumbent_before
        (decision,) = controller.decision_log
        assert decision.action == "rollback"
        assert decision.candidate == candidate.label
        assert candidate.label in controller.governor.banned(4)
        assert controller.governor.in_cooldown(4)
        (event,) = runner.transcript.events("autopilot/rollback")
        assert event.get("candidate") == candidate.label
        # the interrupted window is tainted: its timing measured a
        # failed migration, not the plan
        assert "autopilot/rollback" in controller.monitor._fault_tags

    def test_controller_requires_an_elastic_runner(self):
        model = small_model()
        plain = DistributedRunner(model, C2x1,
                                  hybrid_graph_plan(model.graph), seed=SEED)
        with pytest.raises(TypeError, match="ElasticRunner"):
            AutopilotController(plain)


# ======================================================================
# Differential: autopilot vs static under a paid-for degradation
# ======================================================================
def _differential(backend, iters, extra_floor):
    """Measured goodput of (static, autopilot) runs of the same schedule.

    The degradation is *paid for* (``emulate_nic_bw``), calibrated from
    a probe run so every degraded step costs ~10 clean step times (at
    least *extra_floor* seconds): large enough that escaping it
    dominates both measurement noise and migration downtime.
    """
    warmup, factor = 4, 0.25
    degraded = iters - warmup

    def build(autopilot, fault_plan=None, nic_bw=None):
        return auto_parallelize(small_model, C2x1, ParallaxConfig(
            search_partitions=False, alpha_measure_batches=0, seed=SEED,
            comm=CommConfig(backend=backend),
            elastic=ElasticConfig(enabled=True, checkpoint_every=4,
                                  fault_plan=fault_plan,
                                  emulate_nic_bw=nic_bw),
            autopilot=AutopilotConfig(enabled=autopilot, window_steps=3),
        ))

    probe = build(autopilot=False)
    cursor = probe.transcript.cursor()
    start = time.perf_counter()
    for i in range(4):
        probe.step(i)
    clean_step = (time.perf_counter() - start) / 4
    transfers, _ = probe.transcript.since(cursor)
    bytes_per_step = sum(t.nbytes for t in transfers if t.is_network) / 4
    probe.close()
    target_extra = max(extra_floor, 10.0 * clean_step)
    nic_bw = bytes_per_step * (1 / factor - 1) / target_extra or 1.0

    plan = FaultPlan(degradations=(
        NicDegradation(iteration=warmup, machine=1, factor=factor,
                       duration=iters),))

    def timed(runner):
        for i in range(warmup):
            runner.step(i)
        start = time.perf_counter()
        runner.fit(degraded, start_iteration=warmup)
        elapsed = time.perf_counter() - start
        return degraded / elapsed

    static = build(autopilot=False, fault_plan=plan, nic_bw=nic_bw)
    static_sps = timed(static)
    static.close()
    adaptive = build(autopilot=True, fault_plan=plan, nic_bw=nic_bw)
    adaptive_sps = timed(adaptive)
    return static_sps, adaptive_sps, adaptive


class TestAutopilotBeatsStatic:
    def test_inproc(self):
        static_sps, adaptive_sps, runner = _differential(
            "inproc", iters=22, extra_floor=0.05)
        controller = runner.autopilot()
        try:
            assert controller.migrations, \
                "autopilot never migrated off the degraded plan"
            assert controller.no_flapping
            assert adaptive_sps >= static_sps, (
                f"autopilot {adaptive_sps:.2f} steps/s lost to static "
                f"{static_sps:.2f}")
        finally:
            runner.close()

    def test_multiproc(self):
        static_sps, adaptive_sps, runner = _differential(
            "multiproc", iters=22, extra_floor=0.30)
        controller = runner.autopilot()
        try:
            assert controller.migrations, \
                "autopilot never migrated off the degraded plan"
            assert controller.no_flapping
            assert adaptive_sps >= static_sps, (
                f"autopilot {adaptive_sps:.2f} steps/s lost to static "
                f"{static_sps:.2f}")
        finally:
            runner.close()


class TestRunnerFacadeRouting:
    def test_step_routes_through_controller_when_enabled(self):
        runner = auto_parallelize(small_model, C2x1, ParallaxConfig(
            search_partitions=False, alpha_measure_batches=0, seed=SEED,
            elastic=ElasticConfig(enabled=True),
            autopilot=AutopilotConfig(enabled=True, window_steps=2)))
        try:
            for i in range(4):
                runner.step(i)
            controller = runner.autopilot()
            assert controller is runner.autopilot()  # one instance
            assert len(controller.monitor.windows) == 2
            assert controller.decision_log  # windows produced decisions
        finally:
            runner.close()

    def test_autopilot_requires_elastic_runner(self):
        runner = auto_parallelize(small_model, C2x1, ParallaxConfig(
            search_partitions=False, alpha_measure_batches=0, seed=SEED))
        try:
            with pytest.raises(TypeError, match="ElasticRunner"):
                runner.autopilot()
        finally:
            runner.close()
