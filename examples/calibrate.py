"""Calibration report: simulated vs paper throughput for key experiments.

Runs the performance simulator for every (model, architecture) pair the
paper reports at 48 GPUs and prints simulated next to published numbers.
Used to tune the CostModel constants; the frozen defaults in
``repro.cluster.costmodel`` were chosen with this script.

Usage::

    python examples/calibrate.py
"""

from __future__ import annotations

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import simulate_iteration, throughput
from repro.cluster.spec import PAPER_CLUSTER
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import PAPER_PROFILES

# (model, plan builder, paper throughput at 48 GPUs, units)
TARGETS = [
    ("resnet50", "tf_ps", 5_800, "images/s"),
    ("resnet50", "horovod", 7_600, "images/s"),
    ("resnet50", "parallax", 7_600, "images/s"),
    ("inception_v3", "tf_ps", 3_800, "images/s"),
    ("inception_v3", "horovod", 5_900, "images/s"),
    ("inception_v3", "parallax", 5_900, "images/s"),
    ("lm", "horovod", 45_500, "words/s"),
    ("lm", "tf_ps", 98_900, "words/s"),
    ("lm", "opt_ps", 250_000, "words/s"),
    ("lm", "parallax", 274_000, "words/s"),
    ("nmt", "horovod", 68_300, "words/s"),
    ("nmt", "tf_ps", 102_000, "words/s"),
    ("nmt", "opt_ps", 116_000, "words/s"),
    ("nmt", "parallax", 204_000, "words/s"),
]

# Partition counts the paper uses at 48 GPUs (Table 2 optima).
PARTITIONS = {"lm": 128, "nmt": 64}


def build_plan(kind: str, profile, partitions: int):
    if kind == "tf_ps":
        return tf_ps_plan(profile, num_partitions=partitions)
    if kind == "horovod":
        return horovod_plan(profile)
    if kind == "opt_ps":
        return opt_ps_plan(profile, num_partitions=partitions)
    if kind == "parallax":
        return hybrid_plan(profile, num_partitions=partitions)
    raise ValueError(kind)


def main(cost=DEFAULT_COST_MODEL, verbose: bool = True) -> float:
    profiles = PAPER_PROFILES()
    total_log_err = 0.0
    rows = []
    for model, kind, paper_value, units in TARGETS:
        profile = profiles[model]
        partitions = PARTITIONS.get(model, 1)
        plan = build_plan(kind, profile, partitions)
        simulated = throughput(profile, plan, PAPER_CLUSTER, cost)
        ratio = simulated / paper_value
        import math

        total_log_err += abs(math.log(ratio))
        rows.append((model, kind, paper_value, simulated, ratio))
    if verbose:
        print(f"{'model':<14}{'arch':<10}{'paper':>12}{'simulated':>12}"
              f"{'ratio':>8}")
        for model, kind, paper_value, simulated, ratio in rows:
            print(f"{model:<14}{kind:<10}{paper_value:>12,.0f}"
                  f"{simulated:>12,.0f}{ratio:>8.2f}")
        print(f"\nsum |log ratio| = {total_log_err:.3f}")
    return total_log_err


def show_breakdown(model: str, kind: str, partitions=None):
    profile = PAPER_PROFILES()[model]
    p = partitions if partitions is not None else PARTITIONS.get(model, 1)
    plan = build_plan(kind, profile, p)
    b = simulate_iteration(profile, plan, PAPER_CLUSTER)
    print(f"--- {model} / {kind} (P={p}) iter={b.iteration_time:.4f}s")
    for field in ("compute_time", "allreduce_time", "gatherv_time",
                  "gatherv_apply_time", "ps_network_time", "ps_rpc_time",
                  "server_cpu_time", "local_agg_time", "stitch_time",
                  "sync_overhead_time"):
        print(f"  {field:<22}{getattr(b, field):.4f}")


if __name__ == "__main__":
    main()
    for model in ("lm", "nmt"):
        for kind in ("horovod", "tf_ps", "opt_ps", "parallax"):
            show_breakdown(model, kind)
