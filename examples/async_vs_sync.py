"""Asynchronous vs synchronous PS training (paper section 2.1).

The paper assumes synchronous training for its experiments but notes that
"Parallax supports both synchronous and asynchronous training."  This
example trains the LM both ways on the functional engine and shows the
async trajectory diverging (staleness: each worker applies its gradients
without waiting), while both modes converge.

Usage::

    python examples/async_vs_sync.py
"""


from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import ps_graph_plan
from repro.graph import gradients
from repro.nn.models import build_lm
from repro.nn.optimizers import GradientDescentOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)
ITERATIONS = 40


def build():
    model = build_lm(batch_size=8, vocab_size=60, seq_len=3, emb_dim=10,
                     hidden=12, num_partitions=2, seed=0)
    with model.graph.as_default():
        grads_and_vars = gradients(model.loss)
        GradientDescentOptimizer(0.8).update(grads_and_vars)
    return model


def main():
    trajectories = {}
    for mode, asynchronous in (("sync", False), ("async", True)):
        model = build()
        plan = ps_graph_plan(model.graph, local_aggregation=not asynchronous,
                             smart_placement=True,
                             asynchronous=asynchronous,
                             name=mode)
        runner = DistributedRunner(model, CLUSTER, plan, seed=9)
        losses = [runner.step(i).mean_loss for i in range(ITERATIONS)]
        trajectories[mode] = losses
        print(f"{mode:6s} loss {losses[0]:.4f} -> {losses[-1]:.4f}")

    sync, async_ = trajectories["sync"], trajectories["async"]
    assert sync[-1] < sync[0] and async_[-1] < async_[0], "both converge"
    divergence = max(abs(a - s) for a, s in zip(async_[1:], sync[1:]))
    assert divergence > 1e-6, "async must take a different trajectory"
    print(f"\nboth modes converge; max per-iteration divergence "
          f"{divergence:.5f} (staleness effect)")

    # Async replica losses within one iteration reflect evolving state.
    model = build()
    runner = DistributedRunner(
        model, CLUSTER,
        ps_graph_plan(model.graph, asynchronous=True, name="probe"), seed=9)
    result = runner.step(0)
    print(f"async replica losses (computed against evolving variables): "
          f"{['%.4f' % loss for loss in result.replica_losses]}")


if __name__ == "__main__":
    main()
