"""Quickstart: distribute a single-GPU model with three lines of Parallax.

Mirrors the paper's Figure 3: build an ordinary single-GPU graph, mark
the input data with ``parallax.shard``, wrap the embedding in
``parallax.partitioner()``, and hand everything to
``parallax.auto_parallelize``.  Parallax classifies variable sparsity
from gradient types, picks the hybrid architecture, searches the
partition count, transforms the graph, and returns a runner handle.

Usage::

    python examples/quickstart.py
"""

import numpy as np

import repro as parallax
from repro.graph import gradients, ops
from repro.graph.graph import Graph
from repro.nn import layers
from repro.nn.datasets import SyntheticTextDataset
from repro.nn.models.common import BuiltModel, mean_of, split_steps
from repro.nn.optimizers import GradientDescentOptimizer

BATCH = 8
SEQ_LEN = 4
VOCAB = 200
EMB_DIM = 16
HIDDEN = 24


def build_model() -> BuiltModel:
    """An ordinary single-GPU LSTM language model (paper Figure 3)."""
    dataset = parallax.shard(                                  # line 6
        SyntheticTextDataset(size=2048, vocab_size=VOCAB, seq_len=SEQ_LEN,
                             seed=0)
    )
    graph = Graph()
    with graph.as_default():
        tokens = ops.placeholder((BATCH, SEQ_LEN), dtype="int64",
                                 name="tokens")
        targets = ops.placeholder((BATCH, SEQ_LEN), dtype="int64",
                                  name="targets")

        with parallax.partitioner():                           # line 9
            embedded, _ = layers.embedding(tokens, VOCAB, EMB_DIM,
                                           name="embedding")

        steps = split_steps(embedded, SEQ_LEN, "steps")
        hidden_states = layers.lstm(steps, HIDDEN, name="lstm")
        softmax_w = layers.get_variable(
            "softmax/kernel", (HIDDEN, VOCAB),
            initializer=layers.glorot_initializer(),
        )
        step_losses = []
        for t, h in enumerate(hidden_states):
            logits = ops.matmul(h, softmax_w.tensor, name=f"logits/{t}")
            step_targets = ops.reshape(
                ops.slice_axis(targets, t, t + 1, axis=1, name=f"tgt/{t}"),
                (BATCH,), name=f"tgt/{t}/flat")
            step_losses.append(
                ops.softmax_xent(logits, step_targets, name=f"xent/{t}"))
        loss = mean_of(step_losses, "loss")

        grads_and_vars = gradients(loss)
        optimizer = GradientDescentOptimizer(0.5)
        optimizer.update(grads_and_vars)

    return BuiltModel(
        graph=graph, loss=loss,
        placeholders={"tokens": tokens, "targets": targets},
        dataset=dataset, batch_size=BATCH, name="quickstart_lm",
    )


def main():
    resource_info = {"machines": 2, "gpus_per_machine": 2}
    runner = parallax.auto_parallelize(                        # line 19
        build_model, resource_info,
        parallax.ParallaxConfig(sample_iterations=2, max_partitions=16),
    )

    print(f"replicas: {runner.num_replicas}")
    print(f"plan: {runner.transformed.plan.name}")
    print(f"PS variables: {sorted(runner.transformed.ps_placement)}")
    print(f"AR variables: {sorted(runner.transformed.replica_variables)}")
    if runner.partition_search is not None:
        search = runner.partition_search
        print(f"partition search: sampled {search.samples} "
              f"-> P={search.best_partitions}")

    for i in range(40):                                        # line 24-25
        result = runner.step(i)
        if i % 10 == 0 or i == 39:
            print(f"iter {i:3d}  loss {result.mean_loss:.4f}  "
                  f"perplexity {np.exp(result.mean_loss):8.2f}")

    bytes_moved = runner.transcript.total_network_bytes()
    print(f"\ncross-machine bytes over the run: {bytes_moved:,}")


if __name__ == "__main__":
    main()
