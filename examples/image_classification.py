"""Dense-model training: ResNet under Parallax vs the baselines.

The control experiment: with no sparse variables, Parallax's hybrid rule
reduces to pure AllReduce, so it must match Horovod exactly -- in losses,
in replica synchronization, and in per-iteration transfer bytes -- while
TF-PS moves a different byte profile through the parameter servers.

Usage::

    python examples/image_classification.py
"""

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import gradients
from repro.nn.models import build_resnet
from repro.nn.optimizers import MomentumOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)
ITERATIONS = 50


def build():
    model = build_resnet(batch_size=8, num_features=24, num_classes=5,
                         width=24, num_blocks=2, seed=0)
    with model.graph.as_default():
        grads_and_vars = gradients(model.loss)
        MomentumOptimizer(0.05, 0.9).update(grads_and_vars)
    return model


def top1_error(runner, model, iteration):
    feeds = runner.feeds_for(iteration)
    logits = runner.session.run(f"rep0/{model.logits.name}", feeds)
    _, labels = runner.shards[0].batch(model.batch_size, iteration)
    return float((np.argmax(logits, axis=-1) != labels).mean())


def main():
    results = {}
    for arch, plan_fn in (("parallax", hybrid_graph_plan),
                          ("horovod", ar_graph_plan),
                          ("tf_ps", lambda g: ps_graph_plan(g))):
        model = build()
        runner = DistributedRunner(model, CLUSTER, plan_fn(model.graph),
                                   seed=3)
        losses = []
        for i in range(ITERATIONS):
            if i == ITERATIONS - 1:
                runner.transcript.clear()
            losses.append(runner.step(i).mean_loss)
        error = top1_error(runner, model, ITERATIONS)
        results[arch] = {
            "losses": losses,
            "bytes": runner.transcript.total_network_bytes(),
            "error": error,
            "ps_vars": len(runner.transformed.ps_placement),
        }
        print(f"{arch:10s} loss {losses[0]:.3f} -> {losses[-1]:.3f}  "
              f"top-1 error {error:.2f}  bytes/iter {results[arch]['bytes']:,}"
              f"  PS vars: {results[arch]['ps_vars']}")

    # Parallax on a dense model IS pure AllReduce.
    assert results["parallax"]["ps_vars"] == 0
    assert results["parallax"]["bytes"] == results["horovod"]["bytes"]
    assert np.allclose(results["parallax"]["losses"],
                       results["horovod"]["losses"], rtol=1e-5)
    print("\nparallax == horovod on the dense model (plan, bytes, losses)")

    assert results["parallax"]["losses"][-1] < \
        results["parallax"]["losses"][0] * 0.5
    print("model learned: loss halved")


if __name__ == "__main__":
    main()
