"""Sparsity-degree sweep on the performance plane (paper section 6.6).

Sweeps the constructed LM's instance length (which controls alpha) and
prints Parallax vs TF-PS throughput at paper scale (48 GPUs), plus a
per-component breakdown of where each architecture spends an iteration.

Usage::

    python examples/sparsity_sweep.py
"""

from repro.baselines import tf_ps_plan
from repro.cluster.simulator import simulate_iteration
from repro.cluster.spec import PAPER_CLUSTER
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import TABLE6_ALPHA, constructed_lm_profile

PARTITIONS = 64


def throughput_of(profile, plan):
    breakdown = simulate_iteration(profile, plan, PAPER_CLUSTER)
    units = profile.units_per_iteration(PAPER_CLUSTER.total_gpus)
    return units / breakdown.iteration_time, breakdown


def main():
    print(f"{'length':>7} {'alpha':>6} {'parallax':>12} {'tf_ps':>12} "
          f"{'speedup':>8}")
    for length in sorted(TABLE6_ALPHA, reverse=True):
        profile = constructed_lm_profile(length)
        parallax_tp, px = throughput_of(
            profile, hybrid_plan(profile, PARTITIONS))
        tf_ps_tp, ps = throughput_of(
            profile, tf_ps_plan(profile, PARTITIONS))
        print(f"{length:>7} {TABLE6_ALPHA[length]:>6.2f} "
              f"{parallax_tp:>11,.0f} {tf_ps_tp:>11,.0f} "
              f"{parallax_tp / tf_ps_tp:>7.2f}x")

    print("\niteration breakdown at length=8 (seconds):")
    profile = constructed_lm_profile(8)
    for name, plan in (("parallax", hybrid_plan(profile, PARTITIONS)),
                       ("tf_ps", tf_ps_plan(profile, PARTITIONS))):
        b = simulate_iteration(profile, plan, PAPER_CLUSTER)
        print(f"  {name}: compute={b.compute_time:.3f} "
              f"collective={b.collective_time:.3f} ps_net={b.ps_time:.3f} "
              f"server_cpu={b.server_cpu_time:.3f} "
              f"stitch={b.stitch_time:.3f} sync={b.sync_overhead_time:.3f} "
              f"-> iter={b.iteration_time:.3f}")


if __name__ == "__main__":
    main()
