"""NMT training across the three architectures, with byte accounting.

Trains the scaled-down GNMT-style translation model (two sparse
embeddings, dense LSTM/softmax -- the balanced mix the paper highlights)
under Parallax's hybrid plan, TF-PS, and Horovod, verifying:

* all three produce the same loss trajectory (synchronous training is
  architecture-invariant),
* translation token accuracy improves,
* per-iteration network bytes differ exactly the way section 3.1 predicts.

Usage::

    python examples/nmt_training.py
"""

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.core.runner import DistributedRunner
from repro.core.transform.plan import (
    ar_graph_plan,
    hybrid_graph_plan,
    ps_graph_plan,
)
from repro.graph import gradients
from repro.nn.models import build_nmt
from repro.nn.optimizers import MomentumOptimizer

CLUSTER = ClusterSpec(num_machines=2, gpus_per_machine=2)
ITERATIONS = 60


def build():
    model = build_nmt(batch_size=8, src_vocab=60, tgt_vocab=60,
                      src_len=3, tgt_len=3, emb_dim=12, hidden=12,
                      num_partitions=2, seed=0)
    with model.graph.as_default():
        grads_and_vars = gradients(model.loss)
        MomentumOptimizer(0.3, 0.9).update(grads_and_vars)
    return model


def token_accuracy(runner, model, iteration):
    """Fraction of target tokens replica 0 predicts correctly."""
    session = runner.session
    shard = runner.shards[0]
    src, tgt = shard.batch(model.batch_size, iteration)
    feeds = runner.feeds_for(iteration)
    logits_name = f"rep0/{model.logits.name}"
    logits = session.run(logits_name, feeds)
    predicted = np.argmax(logits, axis=-1)
    return float((predicted == tgt[:, -1]).mean())


def main():
    plans = {
        "parallax": hybrid_graph_plan,
        "tf_ps": lambda g: ps_graph_plan(g),
        "horovod": ar_graph_plan,
    }
    trajectories = {}
    per_iter_bytes = {}
    final_accuracy = {}

    for arch, plan_fn in plans.items():
        model = build()
        runner = DistributedRunner(model, CLUSTER, plan_fn(model.graph),
                                   seed=42)
        losses = []
        for i in range(ITERATIONS):
            if i == ITERATIONS - 1:
                runner.transcript.clear()
            losses.append(runner.step(i).mean_loss)
        trajectories[arch] = losses
        per_iter_bytes[arch] = runner.transcript.total_network_bytes()
        final_accuracy[arch] = token_accuracy(runner, model, ITERATIONS)
        print(f"{arch:10s} loss {losses[0]:.4f} -> {losses[-1]:.4f}  "
              f"last-token accuracy {final_accuracy[arch]:.2f}  "
              f"bytes/iter {per_iter_bytes[arch]:,}")

    # Architecture invariance of synchronous training.
    base = np.array(trajectories["parallax"])
    for arch, losses in trajectories.items():
        assert np.allclose(losses, base, rtol=1e-4), arch
    print("\nall architectures produced identical loss trajectories")

    print("\nper-iteration cross-machine bytes:")
    for arch in plans:
        marker = " <- hybrid" if arch == "parallax" else ""
        print(f"  {arch:10s} {per_iter_bytes[arch]:>10,}{marker}")


if __name__ == "__main__":
    main()
