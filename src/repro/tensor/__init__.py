"""Tensor substrate: dense arrays, sparse gradients, and numeric kernels.

This package is the numerical foundation of the reproduction.  It mirrors
the split TensorFlow makes between dense ``Tensor`` values and sparse
``IndexedSlices`` gradients, which is the exact mechanism Parallax uses to
decide whether a variable is *dense* or *sparse* (paper section 5,
"Identifying the sparsity of a variable").
"""

from repro.tensor.sparse import IndexedSlices, to_dense, from_dense_rows
from repro.tensor.dense import (
    as_array,
    nbytes_of,
    zeros_like_spec,
    TensorSpec,
)
from repro.tensor import math as kernels

__all__ = [
    "IndexedSlices",
    "to_dense",
    "from_dense_rows",
    "as_array",
    "nbytes_of",
    "zeros_like_spec",
    "TensorSpec",
    "kernels",
]
