"""Numeric kernels used by the graph executor.

Each kernel is a pure function over numpy arrays.  Backward kernels are
kept next to their forward counterparts; the autodiff layer in
``repro.graph.gradients`` wires them together.  The ``gather`` backward is
the one place a *sparse* gradient (IndexedSlices) is born -- exactly as in
TensorFlow, where that type propagates to the variable and marks it sparse.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.tensor.sparse import IndexedSlices


# ----------------------------------------------------------------------
# Elementwise / linear algebra
# ----------------------------------------------------------------------
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b


def matmul_grad(a: np.ndarray, b: np.ndarray, g: np.ndarray):
    return g @ b.T, a.T @ g


def add_bias(x: np.ndarray, b: np.ndarray) -> np.ndarray:
    return x + b


def add_bias_grad(g: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return g, g.reshape(-1, g.shape[-1]).sum(axis=0)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, g: np.ndarray) -> np.ndarray:
    return g * (x > 0)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(y: np.ndarray, g: np.ndarray) -> np.ndarray:
    # In-place chain of g * (1.0 - y * y); float multiplication commutes
    # exactly, so results are bitwise identical to the naive expression.
    t = y * y
    np.subtract(1.0, t, out=t)
    t *= g
    return t


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically-stable two-branch sigmoid.  The ufunc chains reuse one
    # scratch array per branch; each branch performs exactly the ops of
    # 1/(1+exp(-x)) resp. exp(x)/(1+exp(x)), so values are bit-identical
    # to the textbook form while allocating far fewer temporaries (this
    # runs once per LSTM gate per replica per iteration).
    out = np.empty_like(x)
    pos = x >= 0
    neg = ~pos
    xp = x[pos]
    np.negative(xp, out=xp)
    np.exp(xp, out=xp)
    xp += 1.0
    np.divide(1.0, xp, out=xp)
    out[pos] = xp
    ex = np.exp(x[neg])
    denom = ex + 1.0
    np.divide(ex, denom, out=denom)
    out[neg] = denom
    return out


def sigmoid_grad(y: np.ndarray, g: np.ndarray) -> np.ndarray:
    # (g * y) * (1.0 - y), left-to-right like the naive expression.
    t = g * y
    t *= 1.0 - y
    return t


# ----------------------------------------------------------------------
# Out-parameter twins for the buffer arena
# ----------------------------------------------------------------------
# Each *_out kernel performs exactly the ufunc sequence of its allocating
# twin above, writing the result into a caller-provided buffer whose
# dtype matches the operands (so no cast is introduced anywhere) --
# results are bitwise identical by construction.  Callers (the generated
# plans) guard shape/dtype/type compatibility and fall back to the
# allocating twin on mismatch.
def sigmoid_out(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    pos = x >= 0
    neg = ~pos
    xp = x[pos]
    np.negative(xp, out=xp)
    np.exp(xp, out=xp)
    xp += 1.0
    np.divide(1.0, xp, out=xp)
    out[pos] = xp
    ex = np.exp(x[neg])
    denom = ex + 1.0
    np.divide(ex, denom, out=denom)
    out[neg] = denom
    return out


def tanh_grad_out(y: np.ndarray, g: np.ndarray,
                  out: np.ndarray) -> np.ndarray:
    np.multiply(y, y, out=out)
    np.subtract(1.0, out, out=out)
    np.multiply(out, g, out=out)
    return out


def sigmoid_grad_out(y: np.ndarray, g: np.ndarray,
                     out: np.ndarray) -> np.ndarray:
    np.multiply(g, y, out=out)
    np.multiply(out, 1.0 - y, out=out)
    return out


def relu_grad_out(x: np.ndarray, g: np.ndarray,
                  out: np.ndarray) -> np.ndarray:
    np.multiply(g, x > 0, out=out)
    return out


# ----------------------------------------------------------------------
# Embedding access (the sparse path)
# ----------------------------------------------------------------------
def gather(params: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Row lookup.  The forward op behind every embedding layer."""
    return params[np.asarray(indices, dtype=np.int64)]


def gather_grad(params_shape: Tuple[int, ...], indices: np.ndarray,
                g: np.ndarray) -> IndexedSlices:
    """Gradient of ``gather`` w.r.t. ``params``: an IndexedSlices.

    Only the looked-up rows receive gradient -- this sparse type flowing to
    a variable is what classifies the variable as *sparse* (paper sec. 5).
    """
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    vals = np.asarray(g).reshape((idx.size,) + tuple(params_shape[1:]))
    # Full constructor on purpose: the forward gather accepts negative ids
    # via numpy wraparound, so this is where a bad id must fail loudly.
    return IndexedSlices(vals, idx, tuple(params_shape))


def scatter_add(target: np.ndarray, slices: IndexedSlices) -> np.ndarray:
    """In-place sparse accumulation (the PS-server update primitive)."""
    np.add.at(target, slices.indices, slices.values)
    return target


def scatter_sub(target: np.ndarray, slices: IndexedSlices) -> np.ndarray:
    np.subtract.at(target, slices.indices, slices.values)
    return target


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    return shifted / shifted.sum(axis=-1, keepdims=True)


def softmax_xent(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy over the batch, integer labels."""
    probs = softmax(logits)
    n = logits.shape[0]
    picked = probs[np.arange(n), np.asarray(labels, dtype=np.int64)]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def softmax_xent_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    probs = softmax(logits)
    n = logits.shape[0]
    probs[np.arange(n), np.asarray(labels, dtype=np.int64)] -= 1.0
    return probs / n


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    diff = pred - target
    return float((diff * diff).mean())


def mse_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    return 2.0 * (pred - target) / pred.size


# ----------------------------------------------------------------------
# LSTM cell (used by the LM / NMT models)
# ----------------------------------------------------------------------
def lstm_cell(x: np.ndarray, h: np.ndarray, c: np.ndarray,
              w: np.ndarray, b: np.ndarray):
    """Single LSTM step.

    ``w`` has shape ``(input+hidden, 4*hidden)`` with gate order i,f,g,o.
    Returns ``(h_new, c_new, cache)`` where cache carries the activations
    the backward pass needs.
    """
    hidden = h.shape[-1]
    z = np.concatenate([x, h], axis=-1) @ w + b
    i = sigmoid(z[..., 0 * hidden:1 * hidden])
    f = sigmoid(z[..., 1 * hidden:2 * hidden])
    g = tanh(z[..., 2 * hidden:3 * hidden])
    o = sigmoid(z[..., 3 * hidden:4 * hidden])
    c_new = f * c + i * g
    tanh_c = tanh(c_new)
    h_new = o * tanh_c
    cache = (x, h, c, w, i, f, g, o, c_new, tanh_c)
    return h_new, c_new, cache


def lstm_cell_grad(dh: np.ndarray, dc: np.ndarray, cache):
    """Backward of one LSTM step.

    Returns gradients ``(dx, dh_prev, dc_prev, dw, db)``.
    """
    x, h, c, w, i, f, g, o, c_new, tanh_c = cache
    hidden = h.shape[-1]

    do = dh * tanh_c
    dc_total = dc + dh * o * (1.0 - tanh_c * tanh_c)
    di = dc_total * g
    df = dc_total * c
    dg = dc_total * i
    dc_prev = dc_total * f

    dz = np.concatenate(
        [
            di * i * (1.0 - i),
            df * f * (1.0 - f),
            dg * (1.0 - g * g),
            do * o * (1.0 - o),
        ],
        axis=-1,
    )
    xh = np.concatenate([x, h], axis=-1)
    dw = xh.T @ dz
    db = dz.sum(axis=0)
    dxh = dz @ w.T
    dx = dxh[..., : x.shape[-1]]
    dh_prev = dxh[..., x.shape[-1]:]
    return dx, dh_prev, dc_prev, dw, db


# ----------------------------------------------------------------------
# Convolution proxy
# ----------------------------------------------------------------------
# The dense image models (ResNet-50, Inception-v3) matter to the paper
# only through their *variable inventory* and FLOP cost; the distributed
# machinery never looks inside a conv kernel.  We therefore implement
# convolution as a patch-matmul over a channel-flattened input ("conv
# proxy"): it has real weights, real gradients, and the right asymptotic
# cost, while keeping the runnable models fast enough for tests.
def conv_proxy(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``x``: (batch, features_in); ``w``: (features_in, features_out)."""
    return x @ w


def conv_proxy_grad(x: np.ndarray, w: np.ndarray, g: np.ndarray):
    return matmul_grad(x, w, g)


# ----------------------------------------------------------------------
# Reductions / misc
# ----------------------------------------------------------------------
def mean_all(x: np.ndarray) -> float:
    return float(np.mean(x))


def mean_all_grad(shape: Tuple[int, ...], g: float) -> np.ndarray:
    n = int(np.prod(shape)) if shape else 1
    return np.full(shape, g / n, dtype=np.float32)


def l2_norm(values) -> float:
    """Global L2 norm over a list of arrays / IndexedSlices."""
    total = 0.0
    for v in values:
        arr = v.values if isinstance(v, IndexedSlices) else np.asarray(v)
        total += float((arr.astype(np.float64) ** 2).sum())
    return float(np.sqrt(total))
