"""Sparse gradient representation: ``IndexedSlices``.

TensorFlow represents the gradient of a variable accessed through
``tf.gather`` as an ``IndexedSlices`` -- a pair of arrays ``(values,
indices)`` where row ``values[i]`` is the gradient contribution for row
``indices[i]`` of the variable.  Parallax's sparsity detection is exactly
"did autodiff produce IndexedSlices for this variable?", so this type is
load-bearing for the whole reproduction.

Indices may repeat (a batch usually contains the same word many times);
``combine`` sums duplicate rows, which is what PS accumulators and
AllGatherv reductions must do before applying an update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.dense import as_array


@dataclass
class IndexedSlices:
    """A sparse set of rows of a larger (dense) tensor.

    Attributes:
        values: float array of shape ``(k,) + dense_shape[1:]``.
        indices: int array of shape ``(k,)``; row ids into the first
            dimension of the dense tensor.  May contain duplicates.
        dense_shape: shape of the tensor these slices belong to.
    """

    values: np.ndarray
    indices: np.ndarray
    dense_shape: Tuple[int, ...]

    def __post_init__(self):
        self.values = as_array(self.values)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.dense_shape = tuple(int(d) for d in self.dense_shape)
        if self.indices.ndim != 1:
            raise ValueError(f"indices must be rank-1, got {self.indices.shape}")
        if self.values.shape[0] != self.indices.shape[0]:
            raise ValueError(
                "values/indices leading dims differ: "
                f"{self.values.shape[0]} vs {self.indices.shape[0]}"
            )
        if self.values.shape[1:] != self.dense_shape[1:]:
            raise ValueError(
                f"values trailing shape {self.values.shape[1:]} does not match "
                f"dense_shape trailing {self.dense_shape[1:]}"
            )
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.dense_shape[0]
        ):
            raise ValueError("indices out of range for dense_shape")

    @classmethod
    def _wrap(cls, values: np.ndarray, indices: np.ndarray,
              dense_shape: Tuple[int, ...]) -> "IndexedSlices":
        """Internal fast constructor for invariant-preserving call sites.

        The algebra below (combine/concat/scale/slice_rows) and the kernel
        gradients construct slices whose arrays are already converted and
        whose indices are in range by construction; re-validating them
        costs two reductions per instantiation on the training hot path.
        External callers must use the normal constructor.
        """
        out = object.__new__(cls)
        out.values = values
        out.indices = indices
        out.dense_shape = dense_shape
        return out

    # ------------------------------------------------------------------
    # Size accounting (drives the transfer model)
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of slice rows currently stored (duplicates included)."""
        return int(self.indices.shape[0])

    @property
    def num_unique_rows(self) -> int:
        return int(np.unique(self.indices).size)

    @property
    def value_nbytes(self) -> int:
        return int(self.values.nbytes)

    @property
    def index_nbytes(self) -> int:
        return int(self.indices.nbytes)

    def alpha(self) -> float:
        """Fraction of dense rows touched: the paper's per-variable α."""
        if self.dense_shape[0] == 0:
            return 0.0
        return self.num_unique_rows / self.dense_shape[0]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def combine(self) -> "IndexedSlices":
        """Sum rows that share an index; result has unique, sorted indices.

        This is the CPU-side aggregation work the paper identifies as the
        thing partitioning parallelizes ("iterating through nonzero indices
        one by one to accumulate values with the same index", section 3.2).
        """
        if self.indices.size == 0:
            return IndexedSlices._wrap(self.values, self.indices,
                                       self.dense_shape)
        uniq, inverse = np.unique(self.indices, return_inverse=True)
        summed = np.zeros((uniq.size,) + self.values.shape[1:], dtype=self.values.dtype)
        np.add.at(summed, inverse, self.values)
        return IndexedSlices._wrap(summed, uniq, self.dense_shape)

    def scale(self, factor: float) -> "IndexedSlices":
        return IndexedSlices._wrap(self.values * factor, self.indices.copy(),
                                   self.dense_shape)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.dense_shape, dtype=self.values.dtype)
        np.add.at(dense, self.indices, self.values)
        return dense

    def slice_rows(self, lo: int, hi: int) -> "IndexedSlices":
        """Rows whose index lies in ``[lo, hi)``, re-based to the partition.

        Used when a partitioned sparse variable routes gradient rows to the
        server holding each partition.
        """
        mask = (self.indices >= lo) & (self.indices < hi)
        return IndexedSlices._wrap(
            self.values[mask],
            self.indices[mask] - lo,
            (hi - lo,) + self.dense_shape[1:],
        )

    def copy(self) -> "IndexedSlices":
        return IndexedSlices(self.values.copy(), self.indices.copy(), self.dense_shape)

    def __eq__(self, other) -> bool:  # value equality, used by tests
        if not isinstance(other, IndexedSlices):
            return NotImplemented
        return (
            self.dense_shape == other.dense_shape
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )


def concat_slices(slices: Sequence[IndexedSlices]) -> IndexedSlices:
    """Concatenate slices from several workers (the AllGatherv result)."""
    if not slices:
        raise ValueError("need at least one IndexedSlices to concatenate")
    shape = slices[0].dense_shape
    for s in slices[1:]:
        if s.dense_shape != shape:
            raise ValueError("all slices must share dense_shape")
    values = np.concatenate([s.values for s in slices], axis=0)
    indices = np.concatenate([s.indices for s in slices], axis=0)
    return IndexedSlices._wrap(values, indices, shape)


def add_slices(a: IndexedSlices, b: IndexedSlices) -> IndexedSlices:
    """Sparse sum: concatenation followed by duplicate-index combine."""
    return concat_slices([a, b]).combine()


def to_dense(value) -> np.ndarray:
    """Densify either an IndexedSlices or an array (identity for arrays)."""
    if isinstance(value, IndexedSlices):
        return value.to_dense()
    return np.asarray(value)


def from_dense_rows(
    dense: np.ndarray, indices: Iterable[int], dense_shape: Optional[Tuple[int, ...]] = None
) -> IndexedSlices:
    """Build slices by reading rows of *dense* at *indices* (gather)."""
    idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices,
                     dtype=np.int64)
    shape = tuple(dense.shape) if dense_shape is None else tuple(dense_shape)
    return IndexedSlices(dense[idx], idx, shape)
