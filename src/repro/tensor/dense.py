"""Dense tensor helpers.

All dense values in the reproduction are plain ``numpy.ndarray`` objects;
this module provides the small amount of shared plumbing around them:
conversion, shape/dtype specs, and byte accounting used by the network
transfer model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

ArrayLike = Union[np.ndarray, float, int, Iterable]


def as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Convert *value* to a numpy array with the framework default dtype.

    Integer inputs keep an integer dtype (indices must stay integral);
    everything else defaults to float32, matching the GPU-resident dtype
    used by the training systems the paper evaluates.
    """
    arr = np.asarray(value)
    if dtype is None:
        if np.issubdtype(arr.dtype, np.integer) or np.issubdtype(arr.dtype,
                                                                 np.bool_):
            dtype = arr.dtype
        else:
            dtype = DEFAULT_DTYPE
    if arr.ndim == 0:
        # ascontiguousarray would promote 0-d to 1-d; keep scalars scalar.
        return arr.astype(dtype)
    return np.ascontiguousarray(arr, dtype=dtype)


def nbytes_of(value) -> int:
    """Number of payload bytes a value occupies on the wire.

    For an ``IndexedSlices`` the paper's transfer model (section 3.1,
    footnote 3) counts only the nonzero *values*; the index payload is
    negligible and is tracked separately by the communication layer.
    """
    # Import here to avoid a cycle between dense and sparse modules.
    from repro.tensor.sparse import IndexedSlices

    if isinstance(value, IndexedSlices):
        return int(value.values.nbytes)
    arr = np.asarray(value)
    return int(arr.nbytes)


@dataclass(frozen=True)
class TensorSpec:
    """Static shape/dtype description of a tensor.

    Used by the graph IR for shape inference and by the performance plane,
    which needs element counts without materializing paper-scale arrays
    (e.g. the LM embedding with 406M elements).
    """

    shape: Tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        for dim in self.shape:
            if dim < 0:
                raise ValueError(f"TensorSpec dims must be >= 0, got {self.shape}")

    @property
    def num_elements(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.itemsize

    @property
    def rank(self) -> int:
        return len(self.shape)

    @classmethod
    def of(cls, array: np.ndarray) -> "TensorSpec":
        return cls(shape=tuple(array.shape), dtype=str(array.dtype))

    def with_leading_dim(self, dim: int) -> "TensorSpec":
        """Spec with the first dimension replaced (partitioning helper)."""
        if not self.shape:
            raise ValueError("cannot replace leading dim of a scalar spec")
        return TensorSpec(shape=(int(dim),) + self.shape[1:], dtype=self.dtype)


def zeros_like_spec(spec: TensorSpec) -> np.ndarray:
    return np.zeros(spec.shape, dtype=spec.dtype)
