"""Compile-time buffer planning for the straight-line engine.

A :class:`~repro.graph.executor.CompiledPlan` replays a frozen schedule
thousands of times with identical shapes, yet (before this pass) every
elementwise kernel allocated a fresh output array per step.  This module
computes, once per plan, which schedule slots can instead write into a
small *arena* of preallocated buffers that are recycled as values die:

1. **Alias analysis** -- slots whose values may share storage (views,
   gradient-aliasing vjp rules, unknown op types) are merged into
   storage groups with a union-find; a buffer may only be recycled when
   its whole group is dead.
2. **Liveness** -- each slot's last static consumer position; a group
   dies at the max over its members.  Groups touched by fetched slots or
   by op types this pass does not model are pinned (never recycled), and
   fetched groups are additionally excluded from the arena entirely so a
   value returned to the caller is never overwritten by the next step.
3. **Linear allocation sweep** -- walk the schedule once, handing each
   arena-eligible slot a dead buffer of the same (shape, dtype) from a
   free list or minting a new one.  Freeing is strict (``last_use <
   pos``), so an op's output buffer can never alias any of its own
   inputs.

The pass is conservative by construction: anything it cannot prove safe
simply stays on the allocating path, and every out-parameter kernel
re-guards shapes/dtypes at run time (see ``ops.py``), so planning errors
degrade to extra allocation, never to wrong values.  Values are bitwise
identical to the unplanned engine because the out-parameter kernels run
the same ufunc/BLAS routines into same-dtype outputs.

Sparse values (IndexedSlices) never enter the arena: slots reachable
from a sparse gradient source are tagged ``maybe_sparse`` and skipped,
which both avoids minting dense buffers that would go unused and keeps
the runtime guards on the fast path cheap.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

# Forward op types whose kernels produce a fresh dense array and retain
# no reference to it or to their inputs -- the arena candidates.
ARENA_FWD = frozenset(
    {"add", "mul", "tanh", "sigmoid", "relu", "scale", "add_bias", "matmul"}
)

# Forward op types whose output is (or may be) a view of input 0.
VIEW_FWD = frozenset({"identity", "reshape", "slice"})

# vjp rules that return only fresh arrays for every output index.
FRESH_VJP = frozenset(
    {"matmul", "mul", "tanh", "sigmoid", "relu", "scale", "slice",
     "softmax_xent", "mse", "mean"}
)

# vjp rules where some output index may alias (or view) the incoming
# gradient: add -> [g, g], identity -> [g], add_bias -> [g, sum],
# reshape/concat -> views of g, gather -> IndexedSlices over a view of g.
GRAD_ALIAS_VJP = frozenset(
    {"add", "identity", "reshape", "concat", "add_bias", "gather"}
)

# vjp nodes expandable to ``buf[i] = buf[grad_slot]`` (rule returns the
# gradient unchanged for every index).
EXPAND_ALIAS_VJP = frozenset({"add", "identity"})

# Op types that are known not to retain references to their inputs
# beyond the step and whose outputs need no storage modelling (fresh
# arrays, scalars, or None).  Consuming an arena value is safe for them.
KNOWN_SAFE = frozenset(
    {"placeholder", "constant", "read_var", "concat", "gather", "mean",
     "softmax_xent", "mse", "grad_add", "ones_like_scalar", "group",
     "assign", "assign_sub", "scatter_sub"}
)

# Op types whose output is (or may wrap) an IndexedSlices.
SPARSE_SOURCE = frozenset({"allgatherv", "compressed_allgatherv"})

# Known op types that can pass an IndexedSlices input through to their
# output.  Every other known kernel either densifies or only ever sees
# dense operands, so sparseness tracking stops there instead of
# poisoning everything downstream of an embedding lookup.
SPARSE_PASSTHROUGH = frozenset({"identity", "scale", "grad_add"})


@dataclass(frozen=True)
class VjpExpansion:
    """Per-node replacement for one output of a shared vjp rule.

    ``kind`` is ``"alias"`` (emit ``buf[i] = buf[args[0]]``) or
    ``"call"`` (emit ``buf[i] = fn(buf[a]..., arena_buffer)``); ``args``
    are absolute value-buffer slots.
    """

    kind: str
    args: Tuple[int, ...]
    fn: Optional[Callable] = None


@dataclass
class Chain:
    """A maximal run of adjacent fusable schedule positions."""

    start: int
    end: int
    members: Tuple[int, ...]


@dataclass
class BufferPlan:
    assignment: Dict[int, int]  # slot -> arena buffer id
    buffers: List[Tuple[Tuple[int, ...], str]]  # buffer id -> (shape, dtype)
    out_fns: Dict[int, Callable]  # slot -> guarded out-parameter kernel
    expansions: Dict[int, VjpExpansion]  # vjp slot -> expansion
    slot_last_use: Dict[int, float]  # slot -> last consumer position
    group_of: Dict[int, int]  # slot -> storage group root
    group_last_use: Dict[int, float]  # root -> death position (inf = pinned)
    arena_bytes: int = 0  # bytes actually allocated for the arena
    arena_slot_bytes: int = 0  # bytes the same slots would allocate per step

    @property
    def arena_slots(self) -> int:
        return len(self.assignment)

    def arena_reuse_rate(self, steps: int = 1) -> float:
        """Fraction of arena-slot output bytes over *steps* replays that
        were served by an already-allocated buffer instead of a fresh
        allocation.

        The arena allocates ``arena_bytes`` once at compile time and
        then serves ``arena_slot_bytes`` of output per replay, so the
        rate is ``1 - arena_bytes / (steps * arena_slot_bytes)``.  With
        ``steps=1`` this is the *within-step* recycle factor (how much
        the free lists shrink the arena below one-buffer-per-slot);
        training graphs keep activations live across the whole backward
        pass, so that factor is structurally modest.  Over a replay
        window it converges to 1: steady-state steps allocate nothing.
        """
        if not self.arena_slot_bytes or steps <= 0:
            return 0.0
        return 1.0 - self.arena_bytes / (steps * self.arena_slot_bytes)


class _UnionFind:
    __slots__ = ("parent", "no_arena", "pinned")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.no_arena = [False] * n
        self.pinned = [False] * n

    def find(self, a: int) -> int:
        parent = self.parent
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        self.parent[rb] = ra
        self.no_arena[ra] = self.no_arena[ra] or self.no_arena[rb]
        self.pinned[ra] = self.pinned[ra] or self.pinned[rb]

    def flag(self, a: int, *, no_arena: bool = False,
             pinned: bool = False) -> None:
        root = self.find(a)
        self.no_arena[root] = self.no_arena[root] or no_arena
        self.pinned[root] = self.pinned[root] or pinned


def _buffer_spec(op) -> Optional[Tuple[Tuple[int, ...], str, int]]:
    """(shape, dtype, nbytes) for an arena buffer, or None if unusable."""
    output = getattr(op, "output", None)
    spec = getattr(output, "spec", None)
    if spec is None:
        return None
    shape = tuple(spec.shape)
    if any(not isinstance(d, int) or d < 0 for d in shape):
        return None
    try:
        dt = np.dtype(spec.dtype)
    except TypeError:
        return None
    if dt.hasobject:
        return None
    nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape \
        else dt.itemsize
    if nbytes <= 0:
        return None
    return shape, str(spec.dtype), nbytes


def build_buffer_plan(plan) -> BufferPlan:
    """Compute the :class:`BufferPlan` for one compiled plan."""
    from repro.graph import ops as ops_mod
    from repro.graph.executor import DIRECT_OUT

    schedule = plan.schedule
    n = plan.num_slots
    uf = _UnionFind(n)
    last_use: Dict[int, float] = {}
    maybe_sparse = [False] * n
    # (slot, buffer spec, out_fn or None-for-vjp placeholder) candidates,
    # filtered against group flags after all joins are known.
    fwd_candidates: List[Tuple[int, Tuple, Callable]] = []
    vjp_candidates: Dict[int, Tuple[Tuple, Tuple[int, ...], Callable]] = {}
    expansions: Dict[int, VjpExpansion] = {}

    for op, _kernel, input_slots, slot, _edges in schedule:
        last_use.setdefault(slot, slot)
        for j in input_slots:
            if last_use.get(j, j) < slot:
                last_use[j] = slot
        op_type = op.op_type
        if (op_type in SPARSE_SOURCE
                or (op_type in SPARSE_PASSTHROUGH
                    and any(maybe_sparse[j] for j in input_slots))):
            maybe_sparse[slot] = True
        if op_type == "vjp":
            fwd_op = plan.graph.get_op(op.attrs["forward_op"])
            ftype = fwd_op.op_type
            nf = len(fwd_op.inputs)
            grad_slot = input_slots[nf + 1]
            if op.attrs.get("is_sparse") or ftype == "gather":
                maybe_sparse[slot] = True
            if ftype in FRESH_VJP:
                if (ftype in ops_mod.VJP_OUT and ftype in ops_mod.VJP
                        and not maybe_sparse[slot]):
                    built = ops_mod.VJP_OUT[ftype](
                        fwd_op, op.attrs["input_index"])
                    if built is not None:
                        rel_args, fn = built
                        spec = _buffer_spec(op)
                        if spec is not None:
                            args = tuple(input_slots[r] for r in rel_args)
                            vjp_candidates[slot] = (spec, args, fn)
            elif ftype in GRAD_ALIAS_VJP:
                uf.union(slot, grad_slot)
                if ftype in EXPAND_ALIAS_VJP and ftype in ops_mod.VJP:
                    expansions[slot] = VjpExpansion("alias", (grad_slot,))
            else:
                # Unmodelled rule: assume any output may alias anything.
                for j in input_slots:
                    uf.union(slot, j)
        elif op_type in VIEW_FWD:
            if input_slots:
                uf.union(slot, input_slots[0])
        elif op_type in ARENA_FWD:
            if slot not in plan._specialized and not maybe_sparse[slot]:
                builder = DIRECT_OUT.get(op_type)
                out_fn = builder(op) if builder is not None else None
                spec = _buffer_spec(op)
                if out_fn is not None and spec is not None:
                    fwd_candidates.append((slot, spec, out_fn))
        elif op_type in KNOWN_SAFE or op.attrs.get("is_update"):
            pass
        else:
            # Unknown op type (collectives, shard ops, compression...):
            # its output may alias or retain any input, and it may keep
            # references across steps -- fuse the storages, pin them,
            # and keep the arena away from all of it.
            maybe_sparse[slot] = True
            for j in input_slots:
                uf.union(slot, j)
            uf.flag(slot, no_arena=True, pinned=True)

    # Values returned to the caller must never live in recycled storage:
    # the next execute() would overwrite them in place.
    for t in plan.target_slots:
        uf.flag(t, no_arena=True, pinned=True)

    group_of = {s: uf.find(s) for s in range(n)}
    group_last_use: Dict[int, float] = {}
    for s in range(n):
        root = group_of[s]
        death = math.inf if uf.pinned[root] else last_use.get(s, s)
        if group_last_use.get(root, -1) < death:
            group_last_use[root] = death

    # ---- linear allocation sweep --------------------------------------
    assignment: Dict[int, int] = {}
    out_fns: Dict[int, Callable] = {}
    buffers: List[Tuple[Tuple[int, ...], str]] = []
    buffer_nbytes: List[int] = []
    free_lists: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
    owned: Dict[int, List[int]] = {}
    deaths: List[Tuple[float, int]] = []
    arena_slot_bytes = 0

    eligible: Dict[int, Tuple[Tuple, Optional[Tuple[int, ...]], Callable]] = {}
    for slot, spec, out_fn in fwd_candidates:
        if not uf.no_arena[group_of[slot]]:
            eligible[slot] = (spec, None, out_fn)
    for slot, (spec, args, fn) in vjp_candidates.items():
        if not uf.no_arena[group_of[slot]]:
            eligible[slot] = (spec, args, fn)

    for pos in range(n):
        while deaths and deaths[0][0] < pos:
            _, dead_root = heapq.heappop(deaths)
            for buf_id in owned.pop(dead_root, ()):  # recycle
                shape, dtype = buffers[buf_id]
                free_lists.setdefault((shape, dtype), []).append(buf_id)
        entry = eligible.get(pos)
        if entry is None:
            continue
        (shape, dtype, nbytes), args, fn = entry
        key = (shape, dtype)
        free = free_lists.get(key)
        if free:
            buf_id = free.pop()
        else:
            buf_id = len(buffers)
            buffers.append(key)
            buffer_nbytes.append(nbytes)
        assignment[pos] = buf_id
        arena_slot_bytes += nbytes
        root = group_of[pos]
        if root not in owned:
            owned[root] = []
            heapq.heappush(deaths, (group_last_use[root], root))
        owned[root].append(buf_id)
        if args is None:
            out_fns[pos] = fn
        else:
            expansions[pos] = VjpExpansion("call", args, fn)

    return BufferPlan(
        assignment=assignment,
        buffers=buffers,
        out_fns=out_fns,
        expansions=expansions,
        slot_last_use=last_use,
        group_of=group_of,
        group_last_use=group_last_use,
        arena_bytes=sum(buffer_nbytes),
        arena_slot_bytes=arena_slot_bytes,
    )


def fusion_chains(plan, bplan: BufferPlan) -> List[Chain]:
    """Maximal runs of adjacent schedule positions whose emission is a
    pure call into arena storage (elementwise forwards and expanded vjp
    nodes, no transfer edges, not fetched).  Runs of length >= 2 are
    emitted as single generated mega-kernels; interior values that never
    escape the run stay in locals and are not stored to the value
    buffer."""
    targets = set(plan.target_slots)
    fusable = []
    for op, _kernel, input_slots, slot, edges in plan.schedule:
        ok = edges is None and slot not in targets and (
            (op.op_type in ARENA_FWD and slot in bplan.assignment
             and slot not in plan._specialized)
            or slot in bplan.expansions
        )
        fusable.append(ok)

    chains: List[Chain] = []
    pos = 0
    n = len(fusable)
    while pos < n:
        if not fusable[pos]:
            pos += 1
            continue
        end = pos
        while end + 1 < n and fusable[end + 1]:
            end += 1
        if end > pos:
            chains.append(Chain(pos, end, tuple(range(pos, end + 1))))
        pos = end + 1
    return chains
