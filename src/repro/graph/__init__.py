"""Dataflow graph substrate (a miniature TensorFlow).

Parallax is, at heart, a *graph transformer*: it takes a single-GPU
dataflow graph, finds the variables and their gradients, and rewrites the
graph for distributed execution.  This package provides the graph IR that
makes that a real program transformation rather than a mock:

* :class:`~repro.graph.graph.Graph`, :class:`~repro.graph.graph.Operation`
  and :class:`~repro.graph.graph.Tensor` -- the static IR with device
  placement on every op.
* :mod:`repro.graph.ops` -- op builders plus forward/backward kernel
  registries.
* :func:`~repro.graph.gradients.gradients` -- reverse-mode autodiff that
  adds gradient ops to the graph and records the variable->gradient map
  (the paper's MetaGraphDef modification, section 5).
* :class:`~repro.graph.session.Session` -- a single-device executor with a
  per-session variable store, so replicas can hold independent state.
"""

from repro.graph.graph import Graph, Operation, Tensor, get_default_graph
from repro.graph.device import DeviceSpec
from repro.graph.variables import Variable
from repro.graph.gradients import gradients
from repro.graph.executor import CompiledPlan
from repro.graph.session import Session
from repro.graph import ops

__all__ = [
    "Graph",
    "Operation",
    "Tensor",
    "get_default_graph",
    "DeviceSpec",
    "Variable",
    "gradients",
    "CompiledPlan",
    "Session",
    "ops",
]
