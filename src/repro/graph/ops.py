"""Op builders and kernel registries.

Each op type has up to three pieces:

* a **builder** (public function below) that adds the op to the default
  graph with shape inference;
* a **forward kernel** registered in :data:`FORWARD`, called by the
  executor with the op and its input values;
* a **VJP rule** registered in :data:`VJP`, called by autodiff with the
  upstream gradient; it returns one gradient (or ``None``) per input.

Other packages (the distributed transforms, the PS runtime) register
additional op types through :func:`register_forward`, keeping the executor
open for extension without modification.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

import operator

from repro.graph.executor import (
    register_direct,
    register_direct_out,
    register_specialization,
)
from repro.graph.graph import Graph, Tensor, get_default_graph
from repro.tensor import math as k
from repro.tensor.dense import TensorSpec, as_array
from repro.tensor.sparse import IndexedSlices

FORWARD: Dict[str, Callable] = {}
VJP: Dict[str, Callable] = {}


def register_forward(op_type: str):
    def deco(fn):
        if op_type in FORWARD:
            raise ValueError(f"forward kernel for {op_type!r} already registered")
        FORWARD[op_type] = fn
        return fn

    return deco


def register_vjp(op_type: str):
    def deco(fn):
        if op_type in VJP:
            raise ValueError(f"VJP for {op_type!r} already registered")
        VJP[op_type] = fn
        return fn

    return deco


def _graph(graph: Optional[Graph]) -> Graph:
    return graph if graph is not None else get_default_graph()


# ======================================================================
# Leaf ops
# ======================================================================
def placeholder(shape, dtype="float32", name="placeholder", graph=None) -> Tensor:
    g = _graph(graph)
    op = g.add_op("placeholder", [], TensorSpec(tuple(shape), dtype), name=name)
    return op.output


@register_forward("placeholder")
def _placeholder_fwd(op, inputs, runtime):
    raise RuntimeError(
        f"placeholder {op.name!r} was not fed; pass it in feed_dict"
    )


def constant(value, name="constant", graph=None) -> Tensor:
    g = _graph(graph)
    arr = as_array(value)
    op = g.add_op(
        "constant", [], TensorSpec.of(arr), name=name, attrs={"value": arr}
    )
    return op.output


@register_forward("constant")
def _constant_fwd(op, inputs, runtime):
    return op.attrs["value"]


@register_specialization("constant")
def _constant_specialize(op):
    value = op.attrs["value"]

    def constant_kernel(op, inputs, runtime):
        return value

    return constant_kernel


@register_forward("read_var")
def _read_var_fwd(op, inputs, runtime):
    return runtime.read_variable(op.attrs["variable"])


# read_var's "gradient" is simply the upstream gradient; autodiff stops
# there and records it as the variable's gradient.
@register_vjp("read_var")
def _read_var_vjp(op, inputs, output, grad):
    return []


def identity(x: Tensor, name="identity", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op("identity", [x], x.spec, name=name).output


@register_forward("identity")
def _identity_fwd(op, inputs, runtime):
    return inputs[0]


@register_vjp("identity")
def _identity_vjp(op, inputs, output, grad):
    return [grad]


# ======================================================================
# Linear algebra / elementwise
# ======================================================================
def matmul(a: Tensor, b: Tensor, name="matmul", graph=None) -> Tensor:
    g = _graph(graph)
    if a.spec.shape[-1] != b.spec.shape[0]:
        raise ValueError(
            f"matmul shape mismatch: {a.spec.shape} @ {b.spec.shape}"
        )
    spec = TensorSpec(a.spec.shape[:-1] + (b.spec.shape[-1],), a.dtype)
    return g.add_op("matmul", [a, b], spec, name=name).output


@register_forward("matmul")
def _matmul_fwd(op, inputs, runtime):
    return k.matmul(inputs[0], inputs[1])


@register_vjp("matmul")
def _matmul_vjp(op, inputs, output, grad):
    da, db = k.matmul_grad(inputs[0], inputs[1], grad)
    return [da, db]


def add(a: Tensor, b: Tensor, name="add", graph=None) -> Tensor:
    g = _graph(graph)
    if a.spec.shape != b.spec.shape:
        raise ValueError(f"add shape mismatch: {a.spec.shape} vs {b.spec.shape}")
    return g.add_op("add", [a, b], a.spec, name=name).output


@register_forward("add")
def _add_fwd(op, inputs, runtime):
    return inputs[0] + inputs[1]


@register_vjp("add")
def _add_vjp(op, inputs, output, grad):
    return [grad, grad]


def mul(a: Tensor, b: Tensor, name="mul", graph=None) -> Tensor:
    g = _graph(graph)
    if a.spec.shape != b.spec.shape:
        raise ValueError(f"mul shape mismatch: {a.spec.shape} vs {b.spec.shape}")
    return g.add_op("mul", [a, b], a.spec, name=name).output


@register_forward("mul")
def _mul_fwd(op, inputs, runtime):
    return inputs[0] * inputs[1]


@register_vjp("mul")
def _mul_vjp(op, inputs, output, grad):
    return [grad * inputs[1], grad * inputs[0]]


def scale(x: Tensor, factor: float, name="scale", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op(
        "scale", [x], x.spec, name=name, attrs={"factor": float(factor)}
    ).output


@register_forward("scale")
def _scale_fwd(op, inputs, runtime):
    value = inputs[0]
    if isinstance(value, IndexedSlices):
        return value.scale(op.attrs["factor"])
    return value * op.attrs["factor"]


@register_vjp("scale")
def _scale_vjp(op, inputs, output, grad):
    return [grad * op.attrs["factor"]]


def add_bias(x: Tensor, b: Tensor, name="add_bias", graph=None) -> Tensor:
    g = _graph(graph)
    if b.spec.shape != (x.spec.shape[-1],):
        raise ValueError(
            f"bias shape {b.spec.shape} incompatible with input {x.spec.shape}"
        )
    return g.add_op("add_bias", [x, b], x.spec, name=name).output


@register_forward("add_bias")
def _add_bias_fwd(op, inputs, runtime):
    return k.add_bias(inputs[0], inputs[1])


@register_vjp("add_bias")
def _add_bias_vjp(op, inputs, output, grad):
    dx, db = k.add_bias_grad(grad)
    return [dx, db]


def relu(x: Tensor, name="relu", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op("relu", [x], x.spec, name=name).output


@register_forward("relu")
def _relu_fwd(op, inputs, runtime):
    return k.relu(inputs[0])


@register_vjp("relu")
def _relu_vjp(op, inputs, output, grad):
    return [k.relu_grad(inputs[0], grad)]


def tanh(x: Tensor, name="tanh", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op("tanh", [x], x.spec, name=name).output


@register_forward("tanh")
def _tanh_fwd(op, inputs, runtime):
    return k.tanh(inputs[0])


@register_vjp("tanh")
def _tanh_vjp(op, inputs, output, grad):
    return [k.tanh_grad(output, grad)]


def sigmoid(x: Tensor, name="sigmoid", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op("sigmoid", [x], x.spec, name=name).output


@register_forward("sigmoid")
def _sigmoid_fwd(op, inputs, runtime):
    return k.sigmoid(inputs[0])


@register_vjp("sigmoid")
def _sigmoid_vjp(op, inputs, output, grad):
    return [k.sigmoid_grad(output, grad)]


# ======================================================================
# Shape ops
# ======================================================================
def reshape(x: Tensor, shape, name="reshape", graph=None) -> Tensor:
    g = _graph(graph)
    shape = tuple(int(d) for d in shape)
    known = [d for d in shape if d != -1]
    if shape.count(-1) > 1:
        raise ValueError("reshape allows at most one -1 dim")
    if shape.count(-1) == 1:
        rest = int(np.prod(known)) if known else 1
        if rest == 0 or x.spec.num_elements % rest != 0:
            raise ValueError(f"cannot reshape {x.spec.shape} to {shape}")
        shape = tuple(
            x.spec.num_elements // rest if d == -1 else d for d in shape
        )
    if int(np.prod(shape)) != x.spec.num_elements:
        raise ValueError(f"cannot reshape {x.spec.shape} to {shape}")
    spec = TensorSpec(shape, x.dtype)
    return g.add_op(
        "reshape", [x], spec, name=name, attrs={"shape": shape}
    ).output


@register_forward("reshape")
def _reshape_fwd(op, inputs, runtime):
    return np.reshape(inputs[0], op.attrs["shape"])


@register_vjp("reshape")
def _reshape_vjp(op, inputs, output, grad):
    return [np.reshape(grad, np.asarray(inputs[0]).shape)]


def concat(tensors: Sequence[Tensor], axis: int, name="concat", graph=None) -> Tensor:
    g = _graph(graph)
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    base = tensors[0].spec
    axis = axis if axis >= 0 else base.rank + axis
    total = 0
    for t in tensors:
        if t.spec.rank != base.rank:
            raise ValueError("concat inputs must share rank")
        for d in range(base.rank):
            if d != axis and t.spec.shape[d] != base.shape[d]:
                raise ValueError(
                    f"concat mismatch on dim {d}: {t.spec.shape} vs {base.shape}"
                )
        total += t.spec.shape[axis]
    shape = base.shape[:axis] + (total,) + base.shape[axis + 1:]
    spec = TensorSpec(shape, base.dtype)
    return g.add_op(
        "concat", list(tensors), spec, name=name, attrs={"axis": axis}
    ).output


@register_forward("concat")
def _concat_fwd(op, inputs, runtime):
    return np.concatenate(inputs, axis=op.attrs["axis"])


@register_vjp("concat")
def _concat_vjp(op, inputs, output, grad):
    axis = op.attrs["axis"]
    sizes = [np.asarray(x).shape[axis] for x in inputs]
    splits = np.cumsum(sizes)[:-1]
    return list(np.split(grad, splits, axis=axis))


def slice_axis(x: Tensor, lo: int, hi: int, axis: int = -1,
               name="slice", graph=None) -> Tensor:
    """Contiguous slice ``[lo, hi)`` along *axis* (static bounds)."""
    g = _graph(graph)
    axis = axis if axis >= 0 else x.spec.rank + axis
    if not (0 <= lo <= hi <= x.spec.shape[axis]):
        raise ValueError(
            f"slice [{lo},{hi}) out of range for dim {x.spec.shape[axis]}"
        )
    shape = x.spec.shape[:axis] + (hi - lo,) + x.spec.shape[axis + 1:]
    spec = TensorSpec(shape, x.dtype)
    return g.add_op(
        "slice", [x], spec, name=name, attrs={"lo": lo, "hi": hi, "axis": axis}
    ).output


@register_forward("slice")
def _slice_fwd(op, inputs, runtime):
    sl = [slice(None)] * np.asarray(inputs[0]).ndim
    sl[op.attrs["axis"]] = slice(op.attrs["lo"], op.attrs["hi"])
    return np.asarray(inputs[0])[tuple(sl)]


@register_vjp("slice")
def _slice_vjp(op, inputs, output, grad):
    full = np.zeros_like(np.asarray(inputs[0]))
    sl = [slice(None)] * full.ndim
    sl[op.attrs["axis"]] = slice(op.attrs["lo"], op.attrs["hi"])
    full[tuple(sl)] = grad
    return [full]


# ======================================================================
# Sparse access
# ======================================================================
def gather(params: Tensor, indices: Tensor, name="gather", graph=None) -> Tensor:
    """Row lookup; its VJP yields an :class:`IndexedSlices`.

    When ``params`` is a variable read, the sparse gradient type flows back
    to the variable, which is how Parallax classifies it as sparse.
    """
    g = _graph(graph)
    if not params.spec.rank:
        raise ValueError("gather params must have rank >= 1")
    spec = TensorSpec(indices.spec.shape + params.spec.shape[1:], params.dtype)
    return g.add_op("gather", [params, indices], spec, name=name).output


@register_forward("gather")
def _gather_fwd(op, inputs, runtime):
    return k.gather(inputs[0], inputs[1])


@register_vjp("gather")
def _gather_vjp(op, inputs, output, grad):
    params, indices = inputs
    return [k.gather_grad(np.asarray(params).shape, indices, grad), None]


# ======================================================================
# Losses / reductions
# ======================================================================
def mean(x: Tensor, name="mean", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op("mean", [x], TensorSpec((), x.dtype), name=name).output


@register_forward("mean")
def _mean_fwd(op, inputs, runtime):
    return np.float32(k.mean_all(inputs[0]))


@register_vjp("mean")
def _mean_vjp(op, inputs, output, grad):
    return [k.mean_all_grad(np.asarray(inputs[0]).shape, float(grad))]


def softmax_xent(logits: Tensor, labels: Tensor, name="softmax_xent",
                 graph=None) -> Tensor:
    g = _graph(graph)
    if logits.spec.rank != 2:
        raise ValueError("softmax_xent expects rank-2 logits")
    return g.add_op(
        "softmax_xent", [logits, labels], TensorSpec((), logits.dtype), name=name
    ).output


@register_forward("softmax_xent")
def _softmax_xent_fwd(op, inputs, runtime):
    return np.float32(k.softmax_xent(inputs[0], inputs[1]))


@register_vjp("softmax_xent")
def _softmax_xent_vjp(op, inputs, output, grad):
    return [k.softmax_xent_grad(inputs[0], inputs[1]) * float(grad), None]


def mse_loss(pred: Tensor, target: Tensor, name="mse", graph=None) -> Tensor:
    g = _graph(graph)
    return g.add_op("mse", [pred, target], TensorSpec((), pred.dtype), name=name).output


@register_forward("mse")
def _mse_fwd(op, inputs, runtime):
    return np.float32(k.mse(inputs[0], inputs[1]))


@register_vjp("mse")
def _mse_vjp(op, inputs, output, grad):
    return [k.mse_grad(inputs[0], inputs[1]) * float(grad), None]


# ======================================================================
# Control / state ops (executed for effect; used by optimizers and the
# distributed transforms)
# ======================================================================
def group(ops_or_tensors: Sequence, name="group", graph=None) -> Tensor:
    """Run every input; produce nothing (a train_op is usually a group)."""
    g = _graph(graph)
    tensors: List[Tensor] = []
    for item in ops_or_tensors:
        tensors.append(item if isinstance(item, Tensor) else item.output)
    op = g.add_op("group", tensors, TensorSpec(()), name=name)
    return op.output


@register_forward("group")
def _group_fwd(op, inputs, runtime):
    return None


@register_forward("assign")
def _assign_fwd(op, inputs, runtime):
    runtime.write_variable(op.attrs["variable"], np.array(inputs[0]))
    return None


@register_forward("assign_sub")
def _assign_sub_fwd(op, inputs, runtime):
    name = op.attrs["variable"]
    runtime.write_variable(name, runtime.read_variable(name) - inputs[0])
    return None


@register_forward("scatter_sub")
def _scatter_sub_fwd(op, inputs, runtime):
    name = op.attrs["variable"]
    delta = inputs[0]
    if not isinstance(delta, IndexedSlices):
        raise TypeError(
            f"scatter_sub on {name!r} expects IndexedSlices, got {type(delta)}"
        )
    current = runtime.read_variable(name)
    k.scatter_sub(current, delta)
    runtime.write_variable(name, current)
    return None


# ======================================================================
# Direct kernels for generated plans
# ======================================================================
# Each builder returns a positional function computing exactly what the
# generic kernel above computes; generated execution plans call these
# without the (op, inputs, runtime) convention.  Only thin pure kernels
# belong here -- anything touching the runtime stays generic.

@register_direct("matmul")
def _matmul_direct(op):
    return k.matmul


@register_direct("add")
def _add_direct(op):
    return operator.add


@register_direct("mul")
def _mul_direct(op):
    return operator.mul


@register_direct("add_bias")
def _add_bias_direct(op):
    return k.add_bias


@register_direct("tanh")
def _tanh_direct(op):
    return k.tanh


@register_direct("sigmoid")
def _sigmoid_direct(op):
    return k.sigmoid


@register_direct("gather")
def _gather_direct(op):
    return k.gather


@register_direct("identity")
def _identity_direct(op):
    def identity_direct(x):
        return x

    return identity_direct


@register_direct("reshape")
def _reshape_direct(op):
    shape = op.attrs["shape"]

    def reshape_direct(x):
        return np.reshape(x, shape)

    return reshape_direct


@register_direct("concat")
def _concat_direct(op):
    axis = op.attrs["axis"]

    def concat_direct(*values):
        return np.concatenate(values, axis=axis)

    return concat_direct


@register_direct("slice")
def _slice_direct(op):
    axis, lo, hi = op.attrs["axis"], op.attrs["lo"], op.attrs["hi"]

    def slice_direct(x):
        sl = [slice(None)] * np.asarray(x).ndim
        sl[axis] = slice(lo, hi)
        return np.asarray(x)[tuple(sl)]

    return slice_direct


@register_direct("scale")
def _scale_direct(op):
    factor = op.attrs["factor"]

    def scale_direct(value):
        if isinstance(value, IndexedSlices):
            return value.scale(factor)
        return value * factor

    return scale_direct


@register_direct("mean")
def _mean_direct(op):
    def mean_direct(x):
        return np.float32(k.mean_all(x))

    return mean_direct


@register_direct("softmax_xent")
def _softmax_xent_direct(op):
    def softmax_xent_direct(logits, labels):
        return np.float32(k.softmax_xent(logits, labels))

    return softmax_xent_direct


# ======================================================================
# Out-parameter kernels for the buffer arena
# ======================================================================
# Each builder returns ``fn(*inputs, out)`` writing into a preallocated
# arena buffer.  Every fn guards the runtime values against the compile
# time assumptions (exact ndarray type, matching dtype/shape) and falls
# back to the allocating DIRECT expression on any mismatch, so a stale
# spec or a sparse value degrades to extra allocation -- never to a
# wrong or silently-cast result.  The ``out=`` forms invoke the same
# ufunc / BLAS routine as their allocating twins with an output of the
# same dtype, so results are bitwise identical.

def _is_dense(a, out):
    return type(a) is np.ndarray and a.dtype == out.dtype


@register_direct_out("matmul")
def _matmul_out(op):
    def matmul_out(a, b, out):
        if (_is_dense(a, out) and _is_dense(b, out)
                and a.ndim == 2 and b.ndim == 2 and out.ndim == 2
                and out.shape == (a.shape[0], b.shape[1])):
            return np.matmul(a, b, out=out)
        return a @ b

    return matmul_out


@register_direct_out("add")
def _add_out(op):
    def add_out(a, b, out):
        if (_is_dense(a, out) and _is_dense(b, out)
                and a.shape == out.shape and b.shape == out.shape):
            return np.add(a, b, out=out)
        return a + b

    return add_out


@register_direct_out("mul")
def _mul_out(op):
    def mul_out(a, b, out):
        if (_is_dense(a, out) and _is_dense(b, out)
                and a.shape == out.shape and b.shape == out.shape):
            return np.multiply(a, b, out=out)
        return a * b

    return mul_out


@register_direct_out("add_bias")
def _add_bias_out(op):
    def add_bias_out(x, b, out):
        if (_is_dense(x, out) and _is_dense(b, out)
                and x.shape == out.shape and x.ndim >= 1
                and b.shape == x.shape[-1:]):
            return np.add(x, b, out=out)
        return k.add_bias(x, b)

    return add_bias_out


@register_direct_out("tanh")
def _tanh_out(op):
    def tanh_out(x, out):
        if _is_dense(x, out) and x.shape == out.shape:
            return np.tanh(x, out=out)
        return k.tanh(x)

    return tanh_out


@register_direct_out("relu")
def _relu_out(op):
    def relu_out(x, out):
        if _is_dense(x, out) and x.shape == out.shape:
            return np.maximum(x, 0.0, out=out)
        return k.relu(x)

    return relu_out


@register_direct_out("sigmoid")
def _sigmoid_out(op):
    def sigmoid_out(x, out):
        if _is_dense(x, out) and x.shape == out.shape:
            return k.sigmoid_out(x, out)
        return k.sigmoid(x)

    return sigmoid_out


@register_direct_out("scale")
def _scale_out(op):
    factor = op.attrs["factor"]

    def scale_out(value, out):
        if _is_dense(value, out) and value.shape == out.shape:
            return np.multiply(value, factor, out=out)
        if isinstance(value, IndexedSlices):
            return value.scale(factor)
        return value * factor

    return scale_out


# Out-parameter expansions of the shared vjp rules, used by generated
# plans to turn one multi-output rule call into per-node single-output
# kernels that write into arena buffers.  Keyed by forward op type; each
# builder receives (fwd_op, input_index) and returns
# ``(relative_arg_positions, fn)`` -- positions index the vjp node's
# input list ``[*fwd_inputs, output, grad]`` -- or None when that index
# of that rule cannot be expanded.  Fallback branches replicate the
# exact expression the generic rule uses for that output index.
VJP_OUT: Dict[str, Callable] = {}


def _register_vjp_out(op_type: str):
    def deco(fn):
        VJP_OUT[op_type] = fn
        return fn

    return deco


@_register_vjp_out("tanh")
def _tanh_vjp_out(fwd_op, index):
    def fn(y, g, out):
        if (_is_dense(y, out) and _is_dense(g, out)
                and y.shape == out.shape and g.shape == out.shape):
            return k.tanh_grad_out(y, g, out)
        return k.tanh_grad(y, g)

    return (1, 2), fn  # (output, grad)


@_register_vjp_out("sigmoid")
def _sigmoid_vjp_out(fwd_op, index):
    def fn(y, g, out):
        if (_is_dense(y, out) and _is_dense(g, out)
                and y.shape == out.shape and g.shape == out.shape):
            return k.sigmoid_grad_out(y, g, out)
        return k.sigmoid_grad(y, g)

    return (1, 2), fn  # (output, grad)


@_register_vjp_out("relu")
def _relu_vjp_out(fwd_op, index):
    def fn(x, g, out):
        if (_is_dense(x, out) and _is_dense(g, out)
                and x.shape == out.shape and g.shape == out.shape):
            return k.relu_grad_out(x, g, out)
        return k.relu_grad(x, g)

    return (0, 2), fn  # (fwd input, grad)


@_register_vjp_out("mul")
def _mul_vjp_out(fwd_op, index):
    def fn(g, other, out):
        if (_is_dense(g, out) and _is_dense(other, out)
                and g.shape == out.shape and other.shape == out.shape):
            return np.multiply(g, other, out=out)
        return g * other

    # d(a*b)/da = g * b (other = input 1); d/db = g * a (other = input 0).
    return (3, 1 - index), fn


@_register_vjp_out("scale")
def _scale_vjp_out(fwd_op, index):
    factor = fwd_op.attrs["factor"]

    def fn(g, out):
        if _is_dense(g, out) and g.shape == out.shape:
            return np.multiply(g, factor, out=out)
        return g * factor

    return (2,), fn  # (grad,)
