"""The static dataflow graph IR: Graph, Operation, Tensor.

The IR is deliberately close to TensorFlow 1.x's:

* a :class:`Graph` owns a set of uniquely-named :class:`Operation` objects;
* each op has a type, input :class:`Tensor` references, attributes, and a
  device placement;
* each op produces exactly one output tensor (composite ops like LSTM are
  built from primitives, which is also what makes the distributed
  transformation realistic -- it must cope with deep graphs).

Graphs additionally carry the *gradient info* map (variable name ->
gradient tensor name) that the paper adds to MetaGraphDef so that Parallax
can locate the gradient of every variable after autodiff (section 5).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.device import DeviceSpec, canonicalize
from repro.tensor.dense import TensorSpec

_thread_local = threading.local()


def _graph_stack() -> List["Graph"]:
    if not hasattr(_thread_local, "stack"):
        _thread_local.stack = []
    return _thread_local.stack


def get_default_graph() -> "Graph":
    """The innermost graph made default via ``with graph.as_default():``.

    A process-wide fallback graph is created lazily so small scripts and
    tests can build ops without any ceremony.
    """
    stack = _graph_stack()
    if stack:
        return stack[-1]
    if not hasattr(_thread_local, "fallback"):
        _thread_local.fallback = Graph()
    return _thread_local.fallback


class Tensor:
    """A symbolic handle to the output of an operation."""

    def __init__(self, op: "Operation", spec: TensorSpec):
        self.op = op
        self.spec = spec

    @property
    def name(self) -> str:
        return self.op.name

    @property
    def graph(self) -> "Graph":
        return self.op.graph

    @property
    def shape(self):
        return self.spec.shape

    @property
    def dtype(self) -> str:
        return self.spec.dtype

    def __repr__(self) -> str:
        return f"<Tensor {self.name!r} {self.op.op_type} shape={self.spec.shape}>"


class Operation:
    """A node in the dataflow graph.

    Attributes:
        name: unique within the graph.
        op_type: kernel key, e.g. ``"matmul"``; dispatched by the executor.
        inputs: data inputs (tensors whose values feed the kernel).
        control_inputs: ops that must run first but contribute no value.
        attrs: static attributes (axis, shape, variable name, ...).
        device: optional :class:`DeviceSpec` placement.
    """

    def __init__(
        self,
        graph: "Graph",
        name: str,
        op_type: str,
        inputs: Sequence[Tensor],
        spec: TensorSpec,
        attrs: Optional[dict] = None,
        device: Optional[DeviceSpec] = None,
    ):
        self.graph = graph
        self.name = name
        self.op_type = op_type
        self.inputs: List[Tensor] = list(inputs)
        self.control_inputs: List["Operation"] = []
        self.attrs: dict = dict(attrs or {})
        self.device: Optional[DeviceSpec] = device
        self.output = Tensor(self, spec)

    def add_control_input(self, op: "Operation") -> None:
        if op.graph is not self.graph:
            raise ValueError("control input must belong to the same graph")
        if op is not self and op not in self.control_inputs:
            self.control_inputs.append(op)
            self.graph._version += 1

    def __repr__(self) -> str:
        dev = f" on {self.device}" if self.device else ""
        return f"<Operation {self.name!r} type={self.op_type}{dev}>"


class Graph:
    """A container of operations plus training metadata."""

    def __init__(self):
        self._ops: Dict[str, Operation] = {}
        self._name_counts: Dict[str, int] = {}
        self._device_stack: List[DeviceSpec] = []
        # variable name -> Variable object (populated by repro.graph.variables)
        self.variables: Dict[str, object] = {}
        # variable name -> gradient tensor name; the MetaGraphDef extension
        # from paper section 5 ("modified MetaGraphDef enables Parallax to
        # track exact mapping between model variables and their gradients").
        self.gradient_info: Dict[str, str] = {}
        # arbitrary metadata used by transforms (e.g. partitioner groups)
        self.collections: Dict[str, list] = {}
        # Structural version: bumped on every op / control-edge addition.
        # Compiled execution plans and the topo-order cache are validated
        # against it, so a mutated graph is never executed from stale state.
        self._version = 0
        # (target names) -> (version, dependency-ordered op list)
        self._topo_cache: Dict[Tuple[str, ...],
                               Tuple[int, List["Operation"]]] = {}

    # ------------------------------------------------------------------
    # Default-graph / device scoping
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def as_default(self):
        _graph_stack().append(self)
        try:
            yield self
        finally:
            _graph_stack().pop()

    @contextlib.contextmanager
    def device(self, spec):
        """Place ops created in this scope on *spec* (innermost wins)."""
        self._device_stack.append(canonicalize(spec))
        try:
            yield
        finally:
            self._device_stack.pop()

    def current_device(self) -> Optional[DeviceSpec]:
        return self._device_stack[-1] if self._device_stack else None

    # ------------------------------------------------------------------
    # Op management
    # ------------------------------------------------------------------
    def unique_name(self, base: str) -> str:
        count = self._name_counts.get(base, 0)
        self._name_counts[base] = count + 1
        return base if count == 0 else f"{base}_{count}"

    def add_op(
        self,
        op_type: str,
        inputs: Sequence[Tensor],
        spec: TensorSpec,
        name: Optional[str] = None,
        attrs: Optional[dict] = None,
        device=None,
    ) -> Operation:
        for tensor in inputs:
            if tensor.graph is not self:
                raise ValueError(
                    f"input {tensor.name!r} belongs to a different graph"
                )
        name = self.unique_name(name or op_type)
        if name in self._ops:
            raise ValueError(f"duplicate op name {name!r}")
        placement = canonicalize(device) if device is not None else self.current_device()
        op = Operation(self, name, op_type, inputs, spec, attrs, placement)
        self._ops[name] = op
        self._version += 1
        return op

    @property
    def version(self) -> int:
        """Structural version; changes whenever ops or edges are added."""
        return self._version

    def get_op(self, name: str) -> Operation:
        try:
            return self._ops[name]
        except KeyError:
            raise KeyError(f"no op named {name!r} in graph") from None

    def has_op(self, name: str) -> bool:
        return name in self._ops

    @property
    def operations(self) -> List[Operation]:
        return list(self._ops.values())

    def __len__(self) -> int:
        return len(self._ops)

    # ------------------------------------------------------------------
    # Collections (named op lists, used by the partitioner API)
    # ------------------------------------------------------------------
    def add_to_collection(self, key: str, value) -> None:
        self.collections.setdefault(key, []).append(value)

    def get_collection(self, key: str) -> list:
        return list(self.collections.get(key, []))

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def ancestors(self, ops: Iterable[Operation]) -> Set[Operation]:
        """All transitive predecessors of *ops* (data + control edges).

        Parallax uses this to identify the "main computation" subgraph:
        every ancestor of the gradient ops (paper section 4.3).
        """
        seen: Set[Operation] = set()
        stack = list(ops)
        while stack:
            op = stack.pop()
            if op in seen:
                continue
            seen.add(op)
            stack.extend(t.op for t in op.inputs)
            stack.extend(op.control_inputs)
        return seen

    def topo_sort(self, targets: Iterable[Operation]) -> List[Operation]:
        """Dependency-ordered list of every op needed to run *targets*."""
        order: List[Operation] = []
        state: Dict[Operation, int] = {}  # 1 = visiting, 2 = done

        def visit(op: Operation):
            status = state.get(op)
            if status == 2:
                return
            if status == 1:
                raise ValueError(f"cycle detected through op {op.name!r}")
            state[op] = 1
            for tensor in op.inputs:
                visit(tensor.op)
            for ctrl in op.control_inputs:
                visit(ctrl)
            state[op] = 2
            order.append(op)

        for target in targets:
            visit(target)
        return order

    def cached_topo_sort(self, targets: Sequence[Operation]) -> List[Operation]:
        """Memoized :meth:`topo_sort`, keyed by target names + version.

        Autodiff, the distributed transform, and compiled execution plans
        all need the dependency order of the same fetch sets; sorting once
        per (fetch set, graph version) keeps that off the hot path.  The
        returned list is shared -- callers must not mutate it.
        """
        key = tuple(op.name for op in targets)
        hit = self._topo_cache.get(key)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        order = self.topo_sort(targets)
        self._topo_cache[key] = (self._version, order)
        return order

    def consumers(self, op: Operation) -> List[Operation]:
        """Ops that read *op*'s output (linear scan; graphs are small)."""
        return [
            other
            for other in self._ops.values()
            if any(t.op is op for t in other.inputs)
        ]

    # ------------------------------------------------------------------
    # Serialization.  Graphs pickle as a *flat* op table (name-indexed
    # edges) rather than object-graph traversal: deep chains of Operation
    # references would otherwise exceed the pickler's recursion budget,
    # and Variables must not re-run their constructors (which add ops) on
    # load.  This is the serialization contract the multiprocess
    # execution backend relies on to ship a transformed graph to worker
    # processes; see README "Execution backends".
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        ops_state = [
            (op.name, op.op_type, [t.op.name for t in op.inputs],
             op.output.spec, op.attrs, op.device,
             [c.name for c in op.control_inputs])
            for op in self._ops.values()
        ]
        variables_state = [
            (name, var.initializer, var.trainable,
             getattr(var, "partition_info", None))
            for name, var in self.variables.items()
        ]
        collections_state = {
            key: [self._encode_collection_entry(v) for v in values]
            for key, values in self.collections.items()
        }
        return {
            "ops": ops_state,
            "variables": variables_state,
            "collections": collections_state,
            "gradient_info": dict(self.gradient_info),
            "name_counts": dict(self._name_counts),
            "version": self._version,
        }

    def _encode_collection_entry(self, value):
        from repro.graph import variables as variables_mod

        if isinstance(value, Operation):
            return ("op", value.name)
        if isinstance(value, variables_mod.Variable):
            return ("var", value.name)
        if isinstance(value, variables_mod.PartitionedVariable):
            return ("pvar", value.name, value.full_shape,
                    list(value.offsets), [p.name for p in value.partitions])
        return ("raw", value)

    def _decode_collection_entry(self, entry):
        from repro.graph import variables as variables_mod

        kind = entry[0]
        if kind == "op":
            return self._ops[entry[1]]
        if kind == "var":
            return self.variables[entry[1]]
        if kind == "pvar":
            _, name, full_shape, offsets, partition_names = entry
            return variables_mod.restore_partitioned_variable(
                self, name, full_shape, offsets, partition_names
            )
        return entry[1]

    def __setstate__(self, state: dict) -> None:
        from repro.graph import variables as variables_mod

        self._ops = {}
        self._name_counts = dict(state["name_counts"])
        self._device_stack = []
        self.variables = {}
        self.gradient_info = dict(state["gradient_info"])
        self.collections = {}
        self._version = state["version"]
        self._topo_cache = {}
        # Data inputs always precede their consumers in insertion order
        # (add_op requires existing tensors), so one forward pass rebuilds
        # every op; control edges may point forward and need a second.
        for name, op_type, input_names, spec, attrs, device, _ in state["ops"]:
            inputs = [self._ops[i].output for i in input_names]
            self._ops[name] = Operation(self, name, op_type, inputs, spec,
                                        attrs, device)
        for name, _, _, _, _, _, control_names in state["ops"]:
            if control_names:
                self._ops[name].control_inputs = [
                    self._ops[c] for c in control_names
                ]
        for name, initializer, trainable, partition_info in state["variables"]:
            variables_mod.restore_variable(self, name, initializer,
                                           trainable, partition_info)
        for key, encoded in state["collections"].items():
            self.collections[key] = [
                self._decode_collection_entry(e) for e in encoded
            ]
