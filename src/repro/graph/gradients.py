"""Reverse-mode autodiff over the static graph.

``gradients(loss, variables)`` adds *gradient ops* to the graph (rather
than computing values eagerly), because Parallax's transformation needs
gradients to exist as graph nodes it can splice aggregation between.  Two
synthetic op types implement this:

* ``vjp`` -- computes the gradient of one forward op w.r.t. one of its
  inputs, by invoking the registered VJP rule at runtime;
* ``grad_add`` -- accumulates gradients from multiple consumers.  Dense
  gradients are summed; IndexedSlices are concatenated (TF semantics --
  duplicate indices are resolved later, by whoever applies the update).

After running, ``graph.gradient_info`` maps each variable name to its
gradient tensor name -- the MetaGraphDef extension from paper section 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.executor import register_direct, register_specialization
from repro.graph.graph import Graph, Operation, Tensor
from repro.graph import ops as ops_mod
from repro.graph.ops import register_forward
from repro.graph.variables import Variable
from repro.tensor.dense import TensorSpec
from repro.tensor.sparse import IndexedSlices, concat_slices

# Per-op-type mask of which inputs receive gradients.  Ops not listed have
# every input differentiable.  Ids/labels inputs never do.
NON_DIFFERENTIABLE_INPUTS: Dict[str, Tuple[int, ...]] = {
    "gather": (1,),
    "softmax_xent": (1,),
    "mse": (1,),
    "part_gather": (-1,),  # -1 means "last input" (the ids)
}

# Op types whose VJP emits an IndexedSlices for the given input index.
SPARSE_GRAD_INPUTS: Dict[str, str] = {
    "gather": "first",       # input 0 (params) gets a sparse gradient
    "part_gather": "shards",  # every shard input gets a sparse gradient
}

# Custom symbolic-gradient builders.  The generic path creates a ``vjp``
# node wired to every forward input; ops registered here build their own
# gradient nodes instead (e.g. the distributed ``shard_lookup``, whose
# gradient must not take the full shard tensor as an input).  A builder
# receives ``(graph, forward_op, upstream_grad_tensor)`` and returns a
# list of ``(input_index, grad_tensor, is_sparse)`` triples.
CUSTOM_GRAD_BUILDERS: Dict[str, object] = {}


def register_custom_grad(op_type: str):
    def deco(fn):
        if op_type in CUSTOM_GRAD_BUILDERS:
            raise ValueError(f"custom grad for {op_type!r} already registered")
        CUSTOM_GRAD_BUILDERS[op_type] = fn
        return fn

    return deco


def _is_differentiable(op: Operation, index: int) -> bool:
    mask = NON_DIFFERENTIABLE_INPUTS.get(op.op_type)
    if mask is None:
        return True
    resolved = tuple(
        i if i >= 0 else len(op.inputs) + i for i in mask
    )
    return index not in resolved


def _grad_is_sparse(op: Operation, index: int) -> bool:
    kind = SPARSE_GRAD_INPUTS.get(op.op_type)
    if kind is None:
        return False
    if kind == "first":
        return index == 0
    if kind == "shards":
        return index < len(op.inputs) - 1
    raise AssertionError(kind)


@register_forward("vjp")
def _vjp_fwd(op, inputs, runtime):
    graph = op.graph
    fwd_op = graph.get_op(op.attrs["forward_op"])
    n = len(fwd_op.inputs)
    fwd_inputs, fwd_output, upstream = inputs[:n], inputs[n], inputs[n + 1]
    # All VJP nodes of one forward op share the full gradient computation;
    # cache it per (forward op, upstream grad node) within the run.
    cache = runtime.run_cache.setdefault("vjp", {})
    key = (op.attrs["forward_op"], op.attrs["grad_source"])
    if key not in cache:
        rule = ops_mod.VJP.get(fwd_op.op_type)
        if rule is None:
            raise NotImplementedError(
                f"no VJP registered for op type {fwd_op.op_type!r}"
            )
        cache[key] = rule(fwd_op, fwd_inputs, fwd_output, upstream)
    return cache[key][op.attrs["input_index"]]


_VJP_PENDING = object()


@register_specialization("vjp")
def _vjp_specialize(op):
    """Compiled twin of :func:`_vjp_fwd`: the forward-op resolution, attr
    reads, and VJP-rule dispatch are all static per node, so prebind them
    and keep only the per-run shared-gradient cache dynamic."""
    fwd_op = op.graph.get_op(op.attrs["forward_op"])
    n = len(fwd_op.inputs)
    key = (op.attrs["forward_op"], op.attrs["grad_source"])
    index = op.attrs["input_index"]
    rule = ops_mod.VJP.get(fwd_op.op_type)

    def vjp_kernel(op, inputs, runtime):
        cache = runtime.run_cache.setdefault("vjp", {})
        grads = cache.get(key, _VJP_PENDING)
        if grads is _VJP_PENDING:
            # Late re-dispatch covers rules registered after compilation.
            r = rule if rule is not None else ops_mod.VJP.get(fwd_op.op_type)
            if r is None:
                raise NotImplementedError(
                    f"no VJP registered for op type {fwd_op.op_type!r}"
                )
            grads = cache[key] = r(fwd_op, inputs[:n], inputs[n],
                                   inputs[n + 1])
        return grads[index]

    return vjp_kernel


@register_forward("grad_add")
def _grad_add_fwd(op, inputs, runtime):
    if any(isinstance(v, IndexedSlices) for v in inputs):
        if not all(isinstance(v, IndexedSlices) for v in inputs):
            raise TypeError(
                f"grad_add {op.name!r} mixes dense and sparse gradients"
            )
        return concat_slices(list(inputs))
    total = np.array(inputs[0])
    for value in inputs[1:]:
        total = total + value
    return total


@register_direct("grad_add")
def _grad_add_direct(op):
    """Positional twin of :func:`_grad_add_fwd` for generated plans."""
    name = op.name

    def grad_add_direct(*values):
        if any(isinstance(v, IndexedSlices) for v in values):
            if not all(isinstance(v, IndexedSlices) for v in values):
                raise TypeError(
                    f"grad_add {name!r} mixes dense and sparse gradients"
                )
            return concat_slices(list(values))
        total = np.array(values[0])
        for value in values[1:]:
            total = total + value
        return total

    return grad_add_direct


@register_forward("ones_like_scalar")
def _ones_fwd(op, inputs, runtime):
    return np.float32(1.0)


@register_direct("ones_like_scalar")
def _ones_direct(op):
    one = np.float32(1.0)

    def ones_direct():
        return one

    return ones_direct


def _accumulate(graph: Graph, grads: List[Tensor], spec: TensorSpec,
                sparse: bool, name_hint: str) -> Tensor:
    if len(grads) == 1:
        return grads[0]
    op = graph.add_op(
        "grad_add",
        grads,
        spec,
        name=f"grad_add/{name_hint}",
        attrs={"is_sparse": sparse},
    )
    return op.output


def gradients(
    loss: Tensor,
    variables: Optional[Sequence[Variable]] = None,
) -> List[Tuple[Tensor, Variable]]:
    """Differentiate *loss* w.r.t. *variables* (default: all trainable).

    Returns TF-style ``grads_and_vars`` pairs and records the mapping in
    ``graph.gradient_info``.  Gradient tensors carry an ``is_sparse`` attr
    on their producing op when they are IndexedSlices-valued.
    """
    graph = loss.graph
    if loss.spec.shape != ():
        raise ValueError(f"loss must be scalar, got shape {loss.spec.shape}")
    if variables is None:
        variables = [v for v in graph.variables.values() if v.trainable]

    # The forward order is shared with the transform and any compiled
    # plan over the same fetch (cache invalidates once we add grad ops).
    forward_order = graph.cached_topo_sort([loss.op])
    reachable = set(forward_order)

    seed = graph.add_op(
        "ones_like_scalar", [], TensorSpec(()), name=graph.unique_name("grad_seed")
    )
    # op -> list of (grad tensor, is_sparse) contributions to its output
    pending: Dict[Operation, List[Tuple[Tensor, bool]]] = {
        loss.op: [(seed.output, False)]
    }
    # op -> final accumulated output-gradient tensor
    out_grad: Dict[Operation, Tensor] = {}

    for op in reversed(forward_order):
        contributions = pending.get(op)
        if not contributions:
            continue
        sparse = any(flag for _, flag in contributions)
        acc = _accumulate(
            graph,
            [t for t, _ in contributions],
            op.output.spec,
            sparse,
            op.name,
        )
        out_grad[op] = acc
        if op.op_type in ("placeholder", "constant", "read_var",
                          "ones_like_scalar"):
            continue
        builder = CUSTOM_GRAD_BUILDERS.get(op.op_type)
        if builder is not None:
            for index, grad_tensor, input_sparse in builder(graph, op, acc):
                inp = op.inputs[index]
                if inp.op not in reachable:
                    continue
                pending.setdefault(inp.op, []).append(
                    (grad_tensor, input_sparse)
                )
            continue
        if op.op_type not in ops_mod.VJP:
            raise NotImplementedError(
                f"cannot differentiate through op type {op.op_type!r}"
            )
        for index, inp in enumerate(op.inputs):
            if not _is_differentiable(op, index):
                continue
            if inp.op not in reachable:
                continue
            input_sparse = _grad_is_sparse(op, index)
            vjp_op = graph.add_op(
                "vjp",
                list(op.inputs) + [op.output, acc],
                inp.spec,
                name=f"grad/{op.name}/in{index}",
                attrs={
                    "forward_op": op.name,
                    "input_index": index,
                    "grad_source": acc.name,
                    "is_sparse": input_sparse,
                },
            )
            pending.setdefault(inp.op, []).append(
                (vjp_op.output, input_sparse)
            )

    grads_and_vars: List[Tuple[Tensor, Variable]] = []
    for var in variables:
        grad_tensor = out_grad.get(var.read_op)
        if grad_tensor is None:
            continue  # variable does not influence the loss
        graph.gradient_info[var.name] = grad_tensor.name
        grads_and_vars.append((grad_tensor, var))
    return grads_and_vars


def grad_tensor_is_sparse(grad: Tensor) -> bool:
    """Whether a gradient tensor is IndexedSlices-valued.

    This is Parallax's sparsity test (paper section 5): the gradient type
    assigned by autodiff, *not* runtime inspection.
    """
    return bool(grad.op.attrs.get("is_sparse", False))
