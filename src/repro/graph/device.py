"""Device specifications.

Placement strings follow a simplified TensorFlow convention::

    /machine:<m>/gpu:<g>     a GPU on machine m (worker compute)
    /machine:<m>/cpu:0       the CPU of machine m (server-side ops)

Every operation in a transformed graph carries one of these; the
performance plane uses them to decide which NIC and which compute resource
each op loads.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

_DEVICE_RE = re.compile(r"^/machine:(\d+)/(gpu|cpu):(\d+)$")


@dataclass(frozen=True, order=True)
class DeviceSpec:
    """A parsed placement target."""

    machine: int
    device_type: str  # "gpu" or "cpu"
    index: int

    def __post_init__(self):
        if self.device_type not in ("gpu", "cpu"):
            raise ValueError(f"unknown device type {self.device_type!r}")
        if self.machine < 0 or self.index < 0:
            raise ValueError("machine and index must be non-negative")

    @classmethod
    def parse(cls, spec: str) -> "DeviceSpec":
        match = _DEVICE_RE.match(spec)
        if match is None:
            raise ValueError(f"malformed device spec {spec!r}")
        return cls(
            machine=int(match.group(1)),
            device_type=match.group(2),
            index=int(match.group(3)),
        )

    @classmethod
    def gpu(cls, machine: int, index: int) -> "DeviceSpec":
        return cls(machine=machine, device_type="gpu", index=index)

    @classmethod
    def cpu(cls, machine: int) -> "DeviceSpec":
        return cls(machine=machine, device_type="cpu", index=0)

    @property
    def is_gpu(self) -> bool:
        return self.device_type == "gpu"

    def __str__(self) -> str:
        return f"/machine:{self.machine}/{self.device_type}:{self.index}"


def canonicalize(device: Optional[object]) -> Optional[DeviceSpec]:
    """Accept a DeviceSpec, a spec string, or None."""
    if device is None:
        return None
    if isinstance(device, DeviceSpec):
        return device
    if isinstance(device, str):
        return DeviceSpec.parse(device)
    raise TypeError(f"cannot interpret {device!r} as a device")
