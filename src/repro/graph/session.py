"""Single-device graph executor with a private variable store.

The Session owns variable state, not the graph: the distributed layers
create one logical store per worker replica (AR) or per server (PS), all
executing the *same* transformed graph.  Execution is a memoized
topological walk, so forward activations computed for the loss are reused
by the ``vjp`` gradient ops within a run.
"""

from __future__ import annotations

import re
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.graph.graph import Graph, Operation, Tensor
from repro.graph import ops as ops_mod
from repro.tensor.dense import as_array

_REPLICA_PREFIX = re.compile(r"^rep\d+/")


def variable_rng(name: str, seed: int) -> np.random.Generator:
    """Deterministic per-variable generator, replica-prefix invariant.

    Seeding each variable from its *base* name (with any ``rep<k>/``
    replica prefix stripped) guarantees two properties the distributed
    engine depends on: every AllReduce replica of a variable starts from
    identical values, and a transformed graph starts from exactly the
    state a single-GPU run with the same seed would -- the basis of the
    bit-equivalence tests.
    """
    base = _REPLICA_PREFIX.sub("", name)
    return np.random.default_rng((seed, zlib.crc32(base.encode())))


class VariableStore:
    """Mutable mapping of variable name -> ndarray, with seeded init."""

    def __init__(self, graph: Graph, seed: int = 0,
                 names: Optional[Iterable[str]] = None):
        self.graph = graph
        self.seed = seed
        self._values: Dict[str, np.ndarray] = {}
        wanted = set(names) if names is not None else None
        for name, var in graph.variables.items():
            if wanted is not None and name not in wanted:
                continue
            self._values[name] = var.initial_value(variable_rng(name, seed))

    def read(self, name: str) -> np.ndarray:
        try:
            return self._values[name]
        except KeyError:
            raise KeyError(f"variable {name!r} has no value in this store") from None

    def write(self, name: str, value: np.ndarray) -> None:
        if name not in self._values:
            raise KeyError(f"variable {name!r} was never initialized")
        expected = self._values[name].shape
        value = np.asarray(value)
        if value.shape != expected:
            raise ValueError(
                f"assigning shape {value.shape} to variable {name!r} of shape "
                f"{expected}"
            )
        self._values[name] = value

    def names(self) -> List[str]:
        return list(self._values)

    def snapshot(self) -> Dict[str, np.ndarray]:
        return {name: value.copy() for name, value in self._values.items()}

    def load(self, snapshot: Dict[str, np.ndarray]) -> None:
        for name, value in snapshot.items():
            self.write(name, value.copy())


Fetch = Union[Tensor, Operation, str]


class Session:
    """Executes fetches against a graph, holding variable state.

    A custom ``store`` may be injected so several sessions share state, or
    so a distributed runtime routes variable reads elsewhere.
    """

    def __init__(self, graph: Graph, seed: int = 0,
                 store: Optional[VariableStore] = None):
        self.graph = graph
        self.store = store if store is not None else VariableStore(graph, seed)
        # Scratch space cleared at the start of each run; kernels (e.g. the
        # shared-VJP cache) may stash per-run data here.
        self.run_cache: Dict[str, dict] = {}

    # -- variable access used by kernels --------------------------------
    def read_variable(self, name: str) -> np.ndarray:
        return self.store.read(name)

    def write_variable(self, name: str, value: np.ndarray) -> None:
        self.store.write(name, value)

    # -- execution -------------------------------------------------------
    def _resolve(self, fetch: Fetch) -> Operation:
        if isinstance(fetch, Tensor):
            return fetch.op
        if isinstance(fetch, Operation):
            return fetch
        if isinstance(fetch, str):
            return self.graph.get_op(fetch)
        raise TypeError(f"cannot fetch {fetch!r}")

    def run(self, fetches: Union[Fetch, Sequence[Fetch]],
            feed_dict: Optional[dict] = None):
        """Evaluate *fetches*; returns one value or a list matching input.

        ``feed_dict`` maps placeholder tensors (or names) to values; any op
        output may be overridden the same way, which the tests use to probe
        intermediate behaviour.
        """
        single = not isinstance(fetches, (list, tuple))
        fetch_list = [fetches] if single else list(fetches)
        targets = [self._resolve(f) for f in fetch_list]

        feeds: Dict[str, np.ndarray] = {}
        for key, value in (feed_dict or {}).items():
            name = key.name if isinstance(key, Tensor) else str(key)
            feeds[name] = value if isinstance(value, np.ndarray) else as_array(value)

        self.run_cache = {}
        memo: Dict[str, object] = {}
        for op in self.graph.topo_sort(targets):
            if op.name in feeds:
                memo[op.name] = feeds[op.name]
                continue
            kernel = ops_mod.FORWARD.get(op.op_type)
            if kernel is None:
                raise NotImplementedError(
                    f"no kernel registered for op type {op.op_type!r} "
                    f"(op {op.name!r})"
                )
            inputs = [memo[t.name] for t in op.inputs]
            self._current_op = op
            self._before_kernel(op, inputs)
            memo[op.name] = kernel(op, inputs, self)
        self._current_op = None

        results = [memo[op.name] for op in targets]
        return results[0] if single else results

    # Subclass hooks -----------------------------------------------------
    _current_op: Optional[Operation] = None

    def _before_kernel(self, op: Operation, inputs) -> None:
        """Called before each kernel; distributed sessions record
        cross-machine data movement here."""
