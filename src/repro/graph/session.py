"""Single-device graph executor with a private variable store.

The Session owns variable state, not the graph: the distributed layers
create one logical store per worker replica (AR) or per server (PS), all
executing the *same* transformed graph.  Execution is compile-once /
execute-many: ``run`` builds a :class:`~repro.graph.executor.CompiledPlan`
per fetch set and replays it on subsequent calls.  Within a run, forward
activations computed for the loss are reused by the ``vjp`` gradient ops
(the value buffer plays the role the memo dict played in the seed
interpreter, which survives as :meth:`Session.run_interpreted`).
"""

from __future__ import annotations

import re
import zlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.executor import CompiledPlan, EdgeFn
from repro.graph.graph import Graph, Operation, Tensor
from repro.graph import ops as ops_mod
from repro.tensor.dense import as_array

_REPLICA_PREFIX = re.compile(r"^rep(\d+)/")


def split_replica_prefix(name: str) -> Tuple[Optional[int], str]:
    """``"rep3/w" -> (3, "w")``; names without a true ``rep<k>/`` replica
    prefix (including e.g. ``"report/w"``) return ``(None, name)``."""
    match = _REPLICA_PREFIX.match(name)
    if match is None:
        return None, name
    return int(match.group(1)), name[match.end():]


def variable_rng(name: str, seed: int) -> np.random.Generator:
    """Deterministic per-variable generator, replica-prefix invariant.

    Seeding each variable from its *base* name (with any ``rep<k>/``
    replica prefix stripped) guarantees two properties the distributed
    engine depends on: every AllReduce replica of a variable starts from
    identical values, and a transformed graph starts from exactly the
    state a single-GPU run with the same seed would -- the basis of the
    bit-equivalence tests.
    """
    base = _REPLICA_PREFIX.sub("", name)
    return np.random.default_rng((seed, zlib.crc32(base.encode())))


class VariableStore:
    """Mutable mapping of variable name -> ndarray, with seeded init."""

    def __init__(self, graph: Graph, seed: int = 0,
                 names: Optional[Iterable[str]] = None):
        self.graph = graph
        self.seed = seed
        self._values: Dict[str, np.ndarray] = {}
        wanted = set(names) if names is not None else None
        for name, var in graph.variables.items():
            if wanted is not None and name not in wanted:
                continue
            self._values[name] = var.initial_value(variable_rng(name, seed))

    def read(self, name: str) -> np.ndarray:
        try:
            return self._values[name]
        except KeyError:
            raise KeyError(f"variable {name!r} has no value in this store") from None

    def write(self, name: str, value: np.ndarray) -> None:
        if name not in self._values:
            raise KeyError(f"variable {name!r} was never initialized")
        expected = self._values[name].shape
        value = np.asarray(value)
        if value.shape != expected:
            raise ValueError(
                f"assigning shape {value.shape} to variable {name!r} of shape "
                f"{expected}"
            )
        self._values[name] = value

    def names(self) -> List[str]:
        return list(self._values)

    def snapshot(self) -> Dict[str, np.ndarray]:
        return {name: value.copy() for name, value in self._values.items()}

    def load(self, snapshot: Dict[str, np.ndarray]) -> None:
        for name, value in snapshot.items():
            self.write(name, value.copy())


Fetch = Union[Tensor, Operation, str]


class Session:
    """Executes fetches against a graph, holding variable state.

    A custom ``store`` may be injected so several sessions share state, or
    so a distributed runtime routes variable reads elsewhere.
    """

    def __init__(self, graph: Graph, seed: int = 0,
                 store: Optional[VariableStore] = None,
                 plan_cache_size: int = 32):
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        self.graph = graph
        self.store = store if store is not None else VariableStore(graph, seed)
        # Scratch space cleared at the start of each run; kernels (e.g. the
        # shared-VJP cache) may stash per-run data here.
        self.run_cache: Dict[str, dict] = {}
        # Compile-once/execute-many: plans keyed by the fetch-name
        # signature, each validated against the graph version on reuse.
        # The cache is a size-capped LRU: long elastic runs touch many
        # distinct fetch signatures (probes, searches, inspection reads)
        # and would otherwise grow a plan per signature forever.  Evicted
        # plans just recompile on next use; ``plan_evictions`` counts how
        # often that happened.
        self.plan_cache_size = plan_cache_size
        self.plan_evictions = 0
        self._plans: "OrderedDict[Tuple[str, ...], CompiledPlan]" = \
            OrderedDict()

    # -- variable access used by kernels --------------------------------
    def read_variable(self, name: str) -> np.ndarray:
        return self.store.read(name)

    def write_variable(self, name: str, value: np.ndarray) -> None:
        self.store.write(name, value)

    # -- execution -------------------------------------------------------
    def _resolve(self, fetch: Fetch) -> Operation:
        if isinstance(fetch, Tensor):
            return fetch.op
        if isinstance(fetch, Operation):
            return fetch
        if isinstance(fetch, str):
            return self.graph.get_op(fetch)
        raise TypeError(f"cannot fetch {fetch!r}")

    def compile(self, fetches: Union[Fetch, Sequence[Fetch]]) -> CompiledPlan:
        """Compile (or return the cached plan for) a fetch set.

        ``run`` does this lazily; runners that know their step fetches up
        front call it once so every iteration is pure replay.
        """
        fetch_list = (list(fetches) if isinstance(fetches, (list, tuple))
                      else [fetches])
        return self._plan_for([self._resolve(f) for f in fetch_list])

    def cache_plan(self, key: Tuple[str, ...], build) -> CompiledPlan:
        """Fetch-or-build a compiled plan through the session's LRU.

        *key* is any hashable signature: ``_plan_for`` uses the fetch-name
        tuple, and the serving plane appends the request batch size so
        each batch size warms its own straight-line replay state.  A hit
        is revalidated against the graph version and rebuilt through
        *build* when stale; inserts evict least-recently-used plans past
        ``plan_cache_size``.
        """
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            if plan.version == self.graph.version:
                return plan
        plan = build()
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.plan_cache_size:
            self._plans.popitem(last=False)
            self.plan_evictions += 1
        return plan

    def _plan_for(self, targets: List[Operation]) -> CompiledPlan:
        def build() -> CompiledPlan:
            edge_fn = self._compile_edge_fn()
            # A subclass with a _before_kernel override but no static edge
            # table still gets its hook called on the compiled path.
            call_hook = (edge_fn is None and
                         type(self)._before_kernel is not Session._before_kernel)
            return CompiledPlan(self.graph, targets, edge_fn=edge_fn,
                                call_hook=call_hook,
                                specialize_fn=self._specialize_kernel)

        return self.cache_plan(tuple(op.name for op in targets), build)

    def run_plan(self, plan: CompiledPlan, feed_dict: Optional[dict] = None):
        """Replay a compiled plan; returns one value per fetch.

        Transparently recompiles (through the plan cache) if the graph
        changed since *plan* was built.
        """
        if plan.version != self.graph.version:
            plan = self._plan_for(
                [self.graph.get_op(name) for name in plan.fetch_names]
            )
        self._begin_run()
        return plan.execute(self, feed_dict)

    def run(self, fetches: Union[Fetch, Sequence[Fetch]],
            feed_dict: Optional[dict] = None):
        """Evaluate *fetches*; returns one value or a list matching input.

        Compiles a :class:`CompiledPlan` for the fetch set on first use and
        replays it thereafter (recompiling if the graph changed).
        ``feed_dict`` maps placeholder tensors (or names) to values; any op
        output may be overridden the same way, which the tests use to probe
        intermediate behaviour.
        """
        single = not isinstance(fetches, (list, tuple))
        fetch_list = [fetches] if single else list(fetches)
        targets = [self._resolve(f) for f in fetch_list]
        self._begin_run()
        results = self._plan_for(targets).execute(self, feed_dict)
        return results[0] if single else results

    def run_interpreted(self, fetches: Union[Fetch, Sequence[Fetch]],
                        feed_dict: Optional[dict] = None):
        """The seed executor: a memoized topological walk with per-run
        fetch resolution and kernel dispatch.

        Kept as the reference semantics for ``run``: the engine
        bit-equivalence tests and ``repro.cli bench`` compare the compiled
        path against this one.
        """
        single = not isinstance(fetches, (list, tuple))
        fetch_list = [fetches] if single else list(fetches)
        targets = [self._resolve(f) for f in fetch_list]

        feeds: Dict[str, np.ndarray] = {}
        for key, value in (feed_dict or {}).items():
            name = key.name if isinstance(key, Tensor) else str(key)
            feeds[name] = value if isinstance(value, np.ndarray) else as_array(value)

        self._begin_run()
        self.run_cache = {}
        memo: Dict[str, object] = {}
        for op in self.graph.topo_sort(targets):
            if op.name in feeds:
                memo[op.name] = feeds[op.name]
                continue
            kernel = ops_mod.FORWARD.get(op.op_type)
            if kernel is None:
                raise NotImplementedError(
                    f"no kernel registered for op type {op.op_type!r} "
                    f"(op {op.name!r})"
                )
            inputs = [memo[t.name] for t in op.inputs]
            self._current_op = op
            self._before_kernel(op, inputs)
            memo[op.name] = kernel(op, inputs, self)
        self._current_op = None

        results = [memo[op.name] for op in targets]
        return results[0] if single else results

    # Subclass hooks -----------------------------------------------------
    _current_op: Optional[Operation] = None

    def _begin_run(self) -> None:
        """Called at the start of every run (compiled or interpreted)."""

    def _compile_edge_fn(self) -> Optional[EdgeFn]:
        """Static per-op transfer edges for compiled plans; distributed
        sessions override this so edge discovery happens at compile time
        and ``_before_kernel`` stays off the hot path."""
        return None

    def _specialize_kernel(self, op: Operation):
        """Session-specific compile-time kernel binding (or None for the
        registry default).  Variable reads bind the attr lookup here; the
        distributed session additionally prebinds store routing."""
        if op.op_type == "read_var":
            read_variable = self.read_variable
            name = op.attrs["variable"]

            def read_var_kernel(op, inputs, runtime):
                return read_variable(name)

            return read_var_kernel
        return None

    def _before_kernel(self, op: Operation, inputs) -> None:
        """Called before each kernel on the interpreted path; distributed
        sessions record cross-machine data movement here."""
