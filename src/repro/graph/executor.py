"""Compile-once / execute-many engine for the graph layer.

The interpreter in :meth:`Session.run_interpreted` re-resolves fetches,
re-sorts the graph, and re-dispatches every kernel through a string-keyed
registry on every call.  That overhead is multiplied by replicas ×
iterations × sampled partition counts in the Equation-1 search, so the hot
path instead compiles a :class:`CompiledPlan` once per (fetch set, graph
version) and replays it:

* the topological schedule is frozen at compile time;
* each kernel is bound directly into its schedule entry (no ``FORWARD``
  dict lookup per op per run);
* operand routing uses precomputed integer indices into a flat value
  buffer instead of per-op name-dict lookups;
* placeholder slots are declared up front so a runner can validate its
  feeds once instead of discovering a missing feed mid-iteration;
* cross-machine transfer edges (static graph structure) are precomputed
  by the distributed session, leaving only byte counts dynamic.

Sessions own a plan cache keyed by the fetch-name signature; plans
self-invalidate when :attr:`Graph.version` moves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph, Operation, Tensor
from repro.tensor.dense import as_array, nbytes_of

# A static transfer edge attached to one schedule entry:
# (input position, dedup key, transcript tag, src machine, dst machine).
EdgeSpec = Tuple[int, tuple, str, int, int]
EdgeFn = Callable[[Operation], Optional[List[EdgeSpec]]]

# Op types the scheduler hoists to run the moment their last dependency
# completes (comm/compute overlap: a fused bucket's collective launches as
# soon as its last contributing gradient is ready, instead of wherever the
# depth-first topological order happens to leave it).
COLLECTIVE_OPS = frozenset({"fused_allreduce", "compressed_allreduce"})


def overlap_schedule(order: Sequence[Operation]) -> List[Operation]:
    """Reorder a topological order for comm/compute overlap.

    List scheduling over the dependency DAG: non-collective ops keep
    their relative (FIFO) order, but whenever a :data:`COLLECTIVE_OPS` op
    becomes ready -- its last contributing input has been scheduled -- it
    preempts the queue and is emitted immediately.  Any valid topological
    order executes to identical values (kernels are pure between variable
    reads and the updates that transitively depend on every read), so
    only the collective launch points move.
    """
    from collections import deque

    in_schedule = {op.name for op in order}
    indegree: Dict[str, int] = {}
    consumers: Dict[str, List[Operation]] = {}
    for op in order:
        deps = {t.op.name for t in op.inputs if t.op.name in in_schedule}
        deps.update(c.name for c in op.control_inputs
                    if c.name in in_schedule)
        indegree[op.name] = len(deps)
        for dep in deps:
            consumers.setdefault(dep, []).append(op)

    ready: deque = deque()
    ready_collective: deque = deque()
    for op in order:
        if indegree[op.name] == 0:
            (ready_collective if op.op_type in COLLECTIVE_OPS
             else ready).append(op)
    scheduled: List[Operation] = []
    while ready_collective or ready:
        op = (ready_collective.popleft() if ready_collective
              else ready.popleft())
        scheduled.append(op)
        for consumer in consumers.get(op.name, ()):
            indegree[consumer.name] -= 1
            if indegree[consumer.name] == 0:
                (ready_collective if consumer.op_type in COLLECTIVE_OPS
                 else ready).append(consumer)
    return scheduled

def plan_order(graph: Graph, targets: Sequence[Operation]) -> List[Operation]:
    """The execution order a :class:`CompiledPlan` uses for *targets*.

    The memoized topological order, overlap-rescheduled when the fetch set
    contains collectives.  Exposed so the multiprocess backend partitions
    exactly the schedule the in-process engine would replay -- every
    worker derives the same global order independently.
    """
    order = graph.cached_topo_sort(targets)
    if any(op.op_type in COLLECTIVE_OPS for op in order):
        order = overlap_schedule(order)
    return order


def _rebuild_plan(graph: Graph, fetch_names: Sequence[str]) -> "CompiledPlan":
    return CompiledPlan(graph, [graph.get_op(n) for n in fetch_names])


# Compile-time kernel specializers: op_type -> builder(op) returning a
# kernel with the op's static state (attrs, dispatch lookups) prebound.
# Registered next to the generic kernels they specialize (ops.py,
# gradients.py); sessions can additionally specialize per instance via
# ``Session._specialize_kernel``.
SPECIALIZE: Dict[str, Callable[[Operation], Callable]] = {}


def register_specialization(op_type: str):
    def deco(fn):
        if op_type in SPECIALIZE:
            raise ValueError(
                f"kernel specialization for {op_type!r} already registered"
            )
        SPECIALIZE[op_type] = fn
        return fn

    return deco


# Direct-call builders for generated code: op_type -> builder(op) returning
# a positional function over the op's input *values* that computes exactly
# what the generic kernel computes.  Only thin, pure kernels qualify (no
# runtime access, no _current_op); generated plans call these without the
# (op, inputs-list, session) calling convention.
DIRECT: Dict[str, Callable[[Operation], Optional[Callable]]] = {}


def register_direct(op_type: str):
    def deco(fn):
        if op_type in DIRECT:
            raise ValueError(
                f"direct kernel for {op_type!r} already registered"
            )
        DIRECT[op_type] = fn
        return fn

    return deco


# Out-parameter builders for the buffer arena: op_type -> builder(op)
# returning a positional function ``fn(*input_values, out)`` that computes
# exactly what the DIRECT kernel computes, writing the result into ``out``
# (a preallocated arena buffer) when the runtime values match the compile
# time specs, and falling back to the allocating expression otherwise.
# The returned array is stored into the value buffer either way, so a
# fallback changes allocation behaviour only -- never values.
DIRECT_OUT: Dict[str, Callable[[Operation], Optional[Callable]]] = {}


def register_direct_out(op_type: str):
    def deco(fn):
        if op_type in DIRECT_OUT:
            raise ValueError(
                f"direct out-kernel for {op_type!r} already registered"
            )
        DIRECT_OUT[op_type] = fn
        return fn

    return deco


def _forward_registry():
    # Imported lazily (compile time only) so kernel modules may import
    # this one to register specializations without a cycle.
    from repro.graph import ops as ops_mod

    return ops_mod.FORWARD


def _missing_kernel(op_type: str):
    """Deferred dispatch for op types with no kernel at compile time: the
    registry is re-consulted at execute time (matching the interpreter, so
    a kernel registered after compilation is still found), and only a
    still-missing kernel raises."""

    def raise_missing(op, inputs, runtime):
        kernel = _forward_registry().get(op_type)
        if kernel is None:
            raise NotImplementedError(
                f"no kernel registered for op type {op.op_type!r} "
                f"(op {op.name!r})"
            )
        return kernel(op, inputs, runtime)

    return raise_missing


class CompiledPlan:
    """Frozen execution schedule for one fetch set of one graph.

    Replaying a plan is semantically identical to interpreting the graph:
    fetches evaluate in the same dependency order, ``feed_dict`` may still
    override any op's output (the op's kernel is skipped), and unfed
    placeholders raise the same error.  Only the per-run bookkeeping is
    gone.
    """

    __slots__ = ("graph", "version", "fetch_names", "num_slots", "schedule",
                 "target_slots", "slot_of_name", "placeholder_names",
                 "placeholder_slots", "has_edges", "call_hook",
                 "_specialized", "_codegen", "_exec_count",
                 "_buffer_plan", "_arena")

    # Process-wide count of plan compilations.  Purely observational: the
    # elastic runtime asserts (and reports) that a rescale really paid the
    # compile-once cost again instead of replaying a stale plan.
    compiled_total = 0

    def __init__(self, graph: Graph, targets: Sequence[Operation],
                 edge_fn: Optional[EdgeFn] = None, call_hook: bool = False,
                 specialize_fn: Optional[Callable] = None):
        CompiledPlan.compiled_total += 1
        self.graph = graph
        self.version = graph.version
        self.fetch_names: Tuple[str, ...] = tuple(op.name for op in targets)

        forward = _forward_registry()
        order = plan_order(graph, targets)
        slot_of: Dict[str, int] = {}
        schedule = []
        placeholders: List[str] = []
        specialized = set()
        has_edges = False
        for slot, op in enumerate(order):
            slot_of[op.name] = slot
            kernel = specialize_fn(op) if specialize_fn is not None else None
            if kernel is None:
                builder = SPECIALIZE.get(op.op_type)
                if builder is not None:
                    kernel = builder(op)
            if kernel is not None:
                specialized.add(slot)
            if kernel is None:
                kernel = forward.get(op.op_type)
            if kernel is None:
                kernel = _missing_kernel(op.op_type)
            input_slots = tuple(slot_of[t.op.name] for t in op.inputs)
            edges = edge_fn(op) if edge_fn is not None else None
            if edges:
                has_edges = True
            if op.op_type == "placeholder":
                placeholders.append(op.name)
            schedule.append((op, kernel, input_slots, slot, edges or None))

        self.num_slots = len(order)
        self.schedule: tuple = tuple(schedule)
        self.slot_of_name = slot_of
        self.target_slots = tuple(slot_of[name] for name in self.fetch_names)
        self.placeholder_names = tuple(placeholders)
        self.placeholder_slots = frozenset(slot_of[n] for n in placeholders)
        self.has_edges = has_edges
        self.call_hook = call_hook
        self._specialized = specialized
        self._codegen = None
        self._exec_count = 0
        self._buffer_plan = None
        self._arena: List[np.ndarray] = []

    def __reduce__(self):
        """Serialize as (graph, fetch signature); loading re-compiles.

        The schedule itself holds bound kernels (closures) that cannot
        pickle, but a plan is a pure function of ``(graph, fetches)``:
        recompiling on load yields a bit-identical executor.  Plans
        carrying *session* specializations (store routing, static edge
        tables) are owned by their session, which recompiles them when it
        is reattached -- the round trip here covers the plain-graph
        contract the multiprocess backend and the plan caches rely on.
        """
        return (_rebuild_plan, (self.graph, self.fetch_names))

    def validate_placeholders(self, available: Sequence[str]) -> None:
        """One-time feed validation: every placeholder slot the schedule
        executes must be coverable by *available* feed names."""
        known = set(available)
        missing = [name for name in self.placeholder_names
                   if name not in known]
        if missing:
            raise ValueError(
                f"compiled plan for {self.fetch_names} needs placeholders "
                f"that the runner never feeds: {missing}"
            )

    def execute(self, session, feed_dict: Optional[dict] = None) -> list:
        """Replay the schedule against *session*; returns fetch values."""
        buf: List[object] = [None] * self.num_slots
        fed = bytearray(self.num_slots)
        fed_slots = set()
        if feed_dict:
            slot_of = self.slot_of_name
            for key, value in feed_dict.items():
                name = key.name if isinstance(key, Tensor) else str(key)
                slot = slot_of.get(name)
                if slot is None:
                    continue  # feeds outside the schedule are ignored
                buf[slot] = (value if isinstance(value, np.ndarray)
                             else as_array(value))
                fed[slot] = 1
                fed_slots.add(slot)

        pair = self._codegen
        if pair is None:
            # Straight-line code is only worth generating for plans that
            # are actually replayed; a one-shot fetch uses the loop.
            self._exec_count += 1
            if self._exec_count >= 2:
                pair = self._codegen = self._generate()
        if pair is not None:
            checked, fast = pair
            if fast is not None and fed_slots == self.placeholder_slots:
                # The steady-state iteration pattern: exactly the
                # placeholders fed, so per-entry fed checks vanish.
                fast(session, buf)
            else:
                checked(session, buf, fed)
        else:
            self._execute_loop(session, buf, fed)
        return [buf[s] for s in self.target_slots]

    def _execute_loop(self, session, buf: list, fed: bytearray) -> None:
        session.run_cache = {}
        seen = session._seen_edges if self.has_edges else None
        record = session.transcript.record if self.has_edges else None
        hook = session._before_kernel if self.call_hook else None
        for op, kernel, input_slots, slot, edges in self.schedule:
            if fed[slot]:
                continue
            inputs = [buf[j] for j in input_slots]
            session._current_op = op
            if edges is not None:
                for pos, key, tag, src, dst in edges:
                    value = inputs[pos]
                    if value is None or key in seen:
                        continue
                    seen.add(key)
                    record(tag=tag, src_machine=src, dst_machine=dst,
                           nbytes=nbytes_of(value))
            elif hook is not None:
                hook(op, inputs)
            buf[slot] = kernel(op, inputs, session)
        session._current_op = None

    # -- straight-line code generation ----------------------------------
    def _generate(self):
        """Compile the schedule to straight-line Python.

        Returns ``(checked, fast)``: *checked* is semantically the loop
        above with every per-op decision already taken -- no iteration
        machinery, no tuple unpacking, no kernel indirection for inlined
        op types.  *fast* additionally assumes the steady-state feed
        pattern (exactly the placeholders fed), dropping the per-entry fed
        checks and resolving the shared-vjp cache to generated locals;
        it is ``None`` when a ``_before_kernel`` hook must run.

        ``vjp`` nodes inline the shared-gradient cache protocol (same
        ``run_cache['vjp']`` structure and keys as the generic kernel),
        constants become literals, DIRECT kernels are called positionally,
        and specialized kernels skip the ``_current_op`` bookkeeping they
        contractually ignore.

        Both variants route arena-planned forward ops through guarded
        out-parameter kernels writing into preallocated buffers (see
        ``repro.graph.bufferplan``).  The fast variant additionally
        expands shared vjp rules into per-node arena kernels and fuses
        maximal runs of adjacent elementwise calls into generated
        mega-kernels whose interior values never touch the value buffer.
        """
        bplan = self._ensure_buffer_plan()
        checked = self._emit(checked=True, bplan=bplan)
        fast = None if self.call_hook else self._emit(checked=False,
                                                      bplan=bplan)
        return checked, fast

    # -- buffer arena ----------------------------------------------------
    def _ensure_buffer_plan(self):
        """Compute (once) the liveness/alias buffer plan and allocate the
        arena.  Plans with a ``_before_kernel`` hook stay on the generic
        kernel convention and get no arena."""
        if self._buffer_plan is None and not self.call_hook:
            from repro.graph.bufferplan import build_buffer_plan

            self._buffer_plan = build_buffer_plan(self)
            self._arena = [np.empty(shape, dtype=np.dtype(dt))
                           for shape, dt in self._buffer_plan.buffers]
        return self._buffer_plan

    @property
    def arena_bytes(self) -> int:
        bp = self._ensure_buffer_plan()
        return bp.arena_bytes if bp is not None else 0

    @property
    def arena_slots(self) -> int:
        bp = self._ensure_buffer_plan()
        return bp.arena_slots if bp is not None else 0

    def arena_reuse_rate(self, steps: int = 1) -> float:
        bp = self._ensure_buffer_plan()
        return bp.arena_reuse_rate(steps) if bp is not None else 0.0

    def _emit(self, checked: bool, bplan=None):
        from repro.graph import ops as ops_mod

        ns: Dict[str, object] = {"NB": nbytes_of}
        for b, arr in enumerate(self._arena):
            ns[f"A{b}"] = arr
        signature = "(session, buf, fed)" if checked else "(session, buf)"
        lines: List[str] = [f"def _run{signature}:",
                            "    rc = {}",
                            "    session.run_cache = rc"]
        inline_vjp = not self.call_hook and any(
            op.op_type == "vjp" for op, *_ in self.schedule
        )
        if inline_vjp:
            lines.append("    vjp = {}")
            lines.append("    rc['vjp'] = vjp")
        if self.has_edges:
            lines.append("    seen = session._seen_edges")
            lines.append("    record = session.transcript.record")
        if self.call_hook:
            lines.append("    hook = session._before_kernel")

        # Mega-kernel fusion (fast variant only): adjacent arena calls
        # collapse into generated helper functions emitted ahead of _run.
        header: List[str] = []
        chain_by_start: Dict[int, tuple] = {}
        chain_members: set = set()
        if bplan is not None and not checked:
            from repro.graph.bufferplan import fusion_chains

            for ch in fusion_chains(self, bplan):
                escapes = [s for s in ch.members
                           if bplan.slot_last_use.get(s, s) > ch.end]
                if not escapes:
                    continue
                chain_by_start[ch.start] = (ch, escapes)
                chain_members.update(ch.members)

        vjp_ids: Dict[tuple, int] = {}
        edge_id = 0
        emit = lines.append
        for op, kernel, input_slots, slot, edges in self.schedule:
            i = slot
            if checked:
                emit(f"    if not fed[{i}]:")
                ind = "        "
            else:
                if op.op_type == "placeholder":
                    continue  # fast path: every placeholder is fed
                ind = "    "

            if i in chain_members:
                entry = chain_by_start.get(i)
                if entry is None:
                    continue  # interior: emitted by its chain head
                ch, escapes = entry
                params = self._emit_chain(ns, header, bplan, ch, escapes)
                targets = ", ".join(f"buf[{s}]" for s in escapes)
                call = ", ".join(f"buf[{p}]" for p in params)
                emit(f"{ind}{targets} = _F{ch.start}({call})")
                continue

            def emit_edges():
                nonlocal edge_id
                for pos, key, tag, src, dst in edges or ():
                    e = edge_id
                    edge_id += 1
                    ns[f"EK{e}"] = key
                    emit(f"{ind}v = buf[{input_slots[pos]}]")
                    emit(f"{ind}if v is not None and EK{e} not in seen:")
                    emit(f"{ind}    seen.add(EK{e})")
                    emit(f"{ind}    record(tag={tag!r}, src_machine={src},"
                         f" dst_machine={dst}, nbytes=NB(v))")

            args = "[" + ", ".join(f"buf[{j}]" for j in input_slots) + "]"
            if self.call_hook:
                ns[f"O{i}"] = op
                ns[f"K{i}"] = kernel
                emit(f"{ind}_in = {args}")
                emit(f"{ind}session._current_op = O{i}")
                emit(f"{ind}hook(O{i}, _in)")
                emit(f"{ind}buf[{i}] = K{i}(O{i}, _in, session)")
                continue
            if op.op_type == "vjp" and bplan is not None and not checked:
                # Expanded nodes bypass the shared-rule cache entirely:
                # alias nodes copy the gradient reference, call nodes run
                # a guarded single-output kernel into their arena buffer.
                exp = bplan.expansions.get(i)
                if exp is not None:
                    emit_edges()
                    if exp.kind == "alias":
                        emit(f"{ind}buf[{i}] = buf[{exp.args[0]}]")
                    else:
                        ns[f"X{i}"] = exp.fn
                        a = ", ".join(f"buf[{s}]" for s in exp.args)
                        emit(f"{ind}buf[{i}] = "
                             f"X{i}({a}, A{bplan.assignment[i]})")
                    continue
            if op.op_type == "vjp" and inline_vjp:
                fwd_op = self.graph.get_op(op.attrs["forward_op"])
                rule = ops_mod.VJP.get(fwd_op.op_type)
                if rule is not None:
                    emit_edges()
                    key = (op.attrs["forward_op"], op.attrs["grad_source"])
                    index = op.attrs["input_index"]
                    j = vjp_ids.get(key)
                    first = j is None
                    if first:
                        j = vjp_ids[key] = len(vjp_ids)
                        ns[f"VK{j}"] = key
                        ns[f"VR{j}"] = rule
                        ns[f"VF{j}"] = fwd_op
                    n = len(fwd_op.inputs)
                    fwd_args = ("[" + ", ".join(f"buf[{s}]"
                                                for s in input_slots[:n]) + "]")
                    rule_call = (f"VR{j}(VF{j}, {fwd_args}, "
                                 f"buf[{input_slots[n]}], "
                                 f"buf[{input_slots[n + 1]}])")
                    if not checked:
                        # Feed-free: the first node of each key computes,
                        # later nodes read the generated local directly.
                        if first:
                            emit(f"{ind}g{j} = vjp[VK{j}] = {rule_call}")
                        emit(f"{ind}buf[{i}] = g{j}[{index}]")
                    else:
                        emit(f"{ind}g = vjp.get(VK{j})")
                        emit(f"{ind}if g is None:")
                        emit(f"{ind}    g = vjp[VK{j}] = {rule_call}")
                        emit(f"{ind}buf[{i}] = g[{index}]")
                    continue
            if op.op_type == "constant" and i in self._specialized:
                # Inline the specialized kernel's prebound value: the
                # registry kernel returns attrs["value"] verbatim, but a
                # session-level specialization may prebind a different
                # constant (e.g. the serving engine resizes batch-shaped
                # constants per request batch size).
                ns[f"C{i}"] = kernel(op, (), None)
                emit(f"{ind}buf[{i}] = C{i}")
                continue
            if bplan is not None and i in bplan.out_fns:
                emit_edges()
                ns[f"W{i}"] = bplan.out_fns[i]
                call_args = ", ".join(f"buf[{j}]" for j in input_slots)
                emit(f"{ind}buf[{i}] = "
                     f"W{i}({call_args}, A{bplan.assignment[i]})")
                continue
            if i not in self._specialized:
                direct_builder = DIRECT.get(op.op_type)
                direct = (direct_builder(op) if direct_builder is not None
                          else None)
                if direct is not None:
                    emit_edges()
                    ns[f"D{i}"] = direct
                    call_args = ", ".join(f"buf[{j}]" for j in input_slots)
                    emit(f"{ind}buf[{i}] = D{i}({call_args})")
                    continue
            emit_edges()
            ns[f"O{i}"] = op
            ns[f"K{i}"] = kernel
            if i in self._specialized:
                # Contract: specialized kernels never read _current_op --
                # their op context is prebound -- so skip the bookkeeping.
                emit(f"{ind}buf[{i}] = K{i}(O{i}, {args}, session)")
            else:
                emit(f"{ind}session._current_op = O{i}")
                emit(f"{ind}buf[{i}] = K{i}(O{i}, {args}, session)")
        lines.append("    session._current_op = None")

        variant = "checked" if checked else "fast"
        code = compile("\n".join(header + lines),
                       f"<plan/{variant} {self.fetch_names[:2]}...>", "exec")
        exec(code, ns)
        return ns["_run"]

    def _emit_chain(self, ns: Dict[str, object], header: List[str],
                    bplan, chain, escapes: List[int]) -> List[int]:
        """Emit one fused mega-kernel ``_F<start>`` into *header*.

        Interior values live in locals ``t<slot>``; only *escapes* (slots
        consumed outside the chain) are returned to the caller for
        storing into the value buffer.  Returns the ordered external
        input slots forming the call signature.
        """
        produced = set(chain.members)
        params: List[int] = []
        param_ix: Dict[int, str] = {}

        def ref(j: int) -> str:
            if j in produced:
                return f"t{j}"
            name = param_ix.get(j)
            if name is None:
                name = param_ix[j] = f"x{len(params)}"
                params.append(j)
            return name

        body: List[str] = []
        for s in chain.members:
            op, _kernel, input_slots, _slot, _edges = self.schedule[s]
            exp = bplan.expansions.get(s)
            if exp is not None and exp.kind == "alias":
                body.append(f"    t{s} = {ref(exp.args[0])}")
            elif exp is not None:
                ns[f"X{s}"] = exp.fn
                args = ", ".join(ref(a) for a in exp.args)
                body.append(f"    t{s} = X{s}({args}, A{bplan.assignment[s]})")
            else:
                ns[f"W{s}"] = bplan.out_fns[s]
                args = ", ".join(ref(j) for j in input_slots)
                body.append(f"    t{s} = W{s}({args}, A{bplan.assignment[s]})")
        sig = ", ".join(param_ix[p] for p in params)
        header.append(f"def _F{chain.start}({sig}):")
        header.extend(body)
        header.append("    return " + ", ".join(f"t{s}" for s in escapes))
        header.append("")
        return params
