"""Variables and partitioned variables.

A :class:`Variable` is graph metadata plus a ``read_var`` op; its *state*
lives in whatever session executes the graph, so different replicas (or
parameter servers) can hold independent copies -- the property the
distributed transformation relies on.

A :class:`PartitionedVariable` models TF's variable partitioning: ``P``
row-range shards, each an independent Variable, with a fused
``part_gather`` op that routes lookups to shards and produces one
IndexedSlices gradient *per shard* (so each partition gets its own
aggregation and update op, paper section 4.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.graph import Graph, Tensor, get_default_graph
from repro.graph.ops import register_forward
from repro.tensor.dense import TensorSpec, as_array
from repro.tensor.sparse import IndexedSlices

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def zeros_initializer(shape, rng) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


# Initializers are small callable objects rather than closures so that a
# graph -- and with it every Variable's init recipe -- survives a pickle
# round trip: the multiprocess execution backend ships the transformed
# graph to worker processes, which re-run the same seeded initialization.
class _NormalInitializer:
    __slots__ = ("stddev",)

    def __init__(self, stddev: float):
        self.stddev = float(stddev)

    def __call__(self, shape, rng) -> np.ndarray:
        return (rng.standard_normal(shape) * self.stddev).astype(np.float32)


class _GlorotInitializer:
    __slots__ = ()

    def __call__(self, shape, rng) -> np.ndarray:
        fan_in = shape[0] if shape else 1
        fan_out = shape[-1] if shape else 1
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape).astype(np.float32)


class _FrozenInitializer:
    """Wraps a concrete ndarray initial value (ignores the rng)."""

    __slots__ = ("value",)

    def __init__(self, value: np.ndarray):
        self.value = value

    def __call__(self, shape, rng) -> np.ndarray:
        return self.value.copy()


def normal_initializer(stddev: float = 0.05) -> Initializer:
    return _NormalInitializer(stddev)


def glorot_initializer() -> Initializer:
    return _GlorotInitializer()


class Variable:
    """A named, trainable (by default) tensor with graph-level identity."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        initializer: Union[Initializer, np.ndarray, None] = None,
        trainable: bool = True,
        dtype: str = "float32",
        graph: Optional[Graph] = None,
        device=None,
    ):
        g = graph if graph is not None else get_default_graph()
        self.graph = g
        self.spec = TensorSpec(tuple(shape), dtype)
        if isinstance(initializer, np.ndarray):
            frozen = as_array(initializer)
            if frozen.shape != self.spec.shape:
                raise ValueError(
                    f"initializer shape {frozen.shape} != variable shape "
                    f"{self.spec.shape}"
                )
            self.initializer: Initializer = _FrozenInitializer(frozen)
        else:
            self.initializer = initializer or glorot_initializer()
        self.trainable = trainable
        read_op = g.add_op(
            "read_var",
            [],
            self.spec,
            name=name,
            attrs={},
            device=device,
        )
        # The variable's canonical name is its (uniquified) read op name.
        self.name = read_op.name
        read_op.attrs["variable"] = self.name
        self._read_op = read_op
        g.variables[self.name] = self

    @property
    def tensor(self) -> Tensor:
        """The symbolic value of this variable (output of its read op)."""
        return self._read_op.output

    @property
    def read_op(self):
        return self._read_op

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.spec.shape

    @property
    def num_elements(self) -> int:
        return self.spec.num_elements

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    def initial_value(self, rng: np.random.Generator) -> np.ndarray:
        value = self.initializer(self.spec.shape, rng)
        return as_array(value)

    def __repr__(self) -> str:
        return f"<Variable {self.name!r} shape={self.spec.shape}>"


def get_variable(name, shape, initializer=None, trainable=True,
                 graph=None, device=None) -> Variable:
    """TF-style convenience constructor (used throughout the model zoo)."""
    return Variable(
        name, shape, initializer=initializer, trainable=trainable,
        graph=graph, device=device,
    )


class PartitionedVariable:
    """A large variable split into ``P`` contiguous row-range shards."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        num_partitions: int,
        initializer: Union[Initializer, np.ndarray, None] = None,
        graph: Optional[Graph] = None,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        shape = tuple(int(d) for d in shape)
        if not shape:
            raise ValueError("cannot partition a scalar variable")
        if num_partitions > shape[0]:
            raise ValueError(
                f"cannot split {shape[0]} rows into {num_partitions} partitions"
            )
        g = graph if graph is not None else get_default_graph()
        self.graph = g
        self.name = name
        self.full_shape = shape
        self.num_partitions = int(num_partitions)
        self.offsets = partition_offsets(shape[0], num_partitions)

        if isinstance(initializer, np.ndarray):
            full = as_array(initializer)
            if full.shape != shape:
                raise ValueError("initializer shape mismatch")
        else:
            full = None
        base_init = initializer if full is None else None

        self.partitions: List[Variable] = []
        for p in range(self.num_partitions):
            lo, hi = self.offsets[p], self.offsets[p + 1]
            if full is not None:
                init: Union[Initializer, np.ndarray, None] = full[lo:hi].copy()
            else:
                init = base_init
            shard = Variable(
                f"{name}/part_{p}",
                (hi - lo,) + shape[1:],
                initializer=init,
                graph=g,
            )
            shard.partition_info = {  # type: ignore[attr-defined]
                "parent": name,
                "index": p,
                "row_offset": lo,
                "full_shape": shape,
            }
            self.partitions.append(shard)
        g.add_to_collection("partitioned_variables", self)

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.full_shape:
            n *= d
        return n

    def lookup(self, ids: Tensor, name: str = "embedding_lookup") -> Tensor:
        """Partition-aware gather over the shards (fused routing op)."""
        return partitioned_gather(self, ids, name=name)

    def __repr__(self) -> str:
        return (
            f"<PartitionedVariable {self.name!r} shape={self.full_shape} "
            f"P={self.num_partitions}>"
        )


def partition_offsets(rows: int, num_partitions: int) -> List[int]:
    """Row boundaries for an even split (first shards get the remainder)."""
    base, extra = divmod(rows, num_partitions)
    offsets = [0]
    for p in range(num_partitions):
        offsets.append(offsets[-1] + base + (1 if p < extra else 0))
    return offsets


def partitioned_gather(pvar: PartitionedVariable, ids: Tensor,
                       name: str = "part_gather") -> Tensor:
    """Build the fused routed-lookup op.

    Inputs are ``[shard_0, ..., shard_{P-1}, ids]``; the kernel routes each
    id to the shard owning that row, and the VJP emits one IndexedSlices
    per shard (re-based to shard-local rows).  The final result is stitched
    back into lookup order -- the "stitching" overhead the paper's cost
    model charges as θ2·P.
    """
    g = pvar.graph
    spec = TensorSpec(
        ids.spec.shape + pvar.full_shape[1:], pvar.partitions[0].spec.dtype
    )
    inputs = [v.tensor for v in pvar.partitions] + [ids]
    op = g.add_op(
        "part_gather",
        inputs,
        spec,
        name=name,
        attrs={
            "offsets": list(pvar.offsets),
            "num_partitions": pvar.num_partitions,
            "parent": pvar.name,
        },
    )
    return op.output


@register_forward("part_gather")
def _part_gather_fwd(op, inputs, runtime):
    *shards, ids = inputs
    offsets = np.asarray(op.attrs["offsets"])
    flat = np.asarray(ids, dtype=np.int64).reshape(-1)
    # np.searchsorted on the partition boundaries finds the owning shard.
    owner = np.searchsorted(offsets, flat, side="right") - 1
    rows = np.empty((flat.size,) + shards[0].shape[1:], dtype=shards[0].dtype)
    for p, shard in enumerate(shards):
        mask = owner == p
        if mask.any():
            rows[mask] = shard[flat[mask] - offsets[p]]
    return rows.reshape(tuple(np.asarray(ids).shape) + shards[0].shape[1:])


def _part_gather_vjp(op, inputs, output, grad):
    *shards, ids = inputs
    offsets = np.asarray(op.attrs["offsets"])
    flat = np.asarray(ids, dtype=np.int64).reshape(-1)
    owner = np.searchsorted(offsets, flat, side="right") - 1
    flat_grad = np.asarray(grad).reshape((flat.size,) + np.asarray(shards[0]).shape[1:])
    grads = []
    for p, shard in enumerate(shards):
        mask = owner == p
        grads.append(
            IndexedSlices(
                flat_grad[mask],
                flat[mask] - offsets[p],
                tuple(np.asarray(shard).shape),
            )
        )
    grads.append(None)  # no gradient for the ids input
    return grads


# ----------------------------------------------------------------------
# Pickle-restore hooks.  Graph.__setstate__ rebuilds ops first, then calls
# these to re-attach Variable / PartitionedVariable metadata *without*
# running the constructors (which would create duplicate read_var ops).
# ----------------------------------------------------------------------
def restore_variable(graph: Graph, name: str, initializer, trainable: bool,
                     partition_info: Optional[dict]) -> Variable:
    var = Variable.__new__(Variable)
    read_op = graph.get_op(name)
    var.graph = graph
    var.spec = read_op.output.spec
    var.initializer = initializer
    var.trainable = trainable
    var.name = name
    var._read_op = read_op
    if partition_info is not None:
        var.partition_info = dict(partition_info)  # type: ignore[attr-defined]
    graph.variables[name] = var
    return var


def restore_partitioned_variable(graph: Graph, name: str, full_shape,
                                 offsets, partition_names,
                                 ) -> PartitionedVariable:
    pvar = PartitionedVariable.__new__(PartitionedVariable)
    pvar.graph = graph
    pvar.name = name
    pvar.full_shape = tuple(int(d) for d in full_shape)
    pvar.num_partitions = len(partition_names)
    pvar.offsets = list(offsets)
    pvar.partitions = [graph.variables[n] for n in partition_names]
    return pvar


# VJP registration lives here (not ops.py) to keep the partitioning logic
# in one module; register directly into the table.
from repro.graph import ops as _ops  # noqa: E402  (cycle-free at import time)

_ops.VJP["part_gather"] = _part_gather_vjp
