"""repro: a full reproduction of Parallax (EuroSys 2019).

Sparsity-aware data-parallel training of deep neural networks: a hybrid
Parameter-Server / AllReduce architecture, automatic sparse-variable
partitioning, and transparent single-GPU-to-distributed graph
transformation -- plus every substrate the paper depends on (dataflow
graph framework with sparse autodiff, collectives, PS runtime, cluster /
network simulator, model zoo, and the TF-PS / Horovod baselines).

Quick start (the paper's Figure 3 shape)::

    import repro as parallax

    def builder():
        model = build_my_model()          # single-GPU graph, uses
        return model                      # parallax.partitioner() inside

    runner = parallax.get_runner(builder, {"machines": 2,
                                           "gpus_per_machine": 2})
    for i in range(num_iters):
        result = runner.step(i)
"""

from repro.cluster.faults import FaultPlan, NicDegradation, WorkerFailure
from repro.core.api import ParallaxConfig, get_runner, make_server, shard
from repro.core.elastic import ElasticRunner
from repro.core.partition_context import partitioner
from repro.core.runner import DistributedRunner
from repro.cluster.spec import ClusterSpec
from repro.serve import InferenceServer

__version__ = "1.0.0"

__all__ = [
    "ParallaxConfig",
    "get_runner",
    "make_server",
    "shard",
    "partitioner",
    "DistributedRunner",
    "ElasticRunner",
    "InferenceServer",
    "FaultPlan",
    "WorkerFailure",
    "NicDegradation",
    "ClusterSpec",
    "__version__",
]
