"""repro: a full reproduction of Parallax (EuroSys 2019).

Sparsity-aware data-parallel training of deep neural networks: a hybrid
Parameter-Server / AllReduce architecture, automatic sparse-variable
partitioning, and transparent single-GPU-to-distributed graph
transformation -- plus every substrate the paper depends on (dataflow
graph framework with sparse autodiff, collectives, PS runtime, cluster /
network simulator, model zoo, and the TF-PS / Horovod baselines).

Quick start (the paper's Figure 3 shape)::

    import repro as parallax

    def builder():
        model = build_my_model()          # single-GPU graph, uses
        return model                      # parallax.partitioner() inside

    runner = parallax.auto_parallelize(builder, {"machines": 2,
                                                 "gpus_per_machine": 2})
    runner.fit(num_iters)                 # or runner.step(i) per step

Knobs group by plane -- :class:`CommConfig` (fusion, compression,
backend, transport), :class:`ElasticConfig` (checkpointing, faults,
NIC-degradation emulation), :class:`ServeConfig` (request batching),
and :class:`AutopilotConfig` (online adaptive replanning) -- inside one
:class:`ParallaxConfig`.
"""

from repro.autopilot import AutopilotController
from repro.cluster.faults import FaultPlan, NicDegradation, WorkerFailure
from repro.cluster.spec import ClusterSpec
from repro.core.api import (
    Runner,
    auto_parallelize,
    get_runner,
    make_server,
    shard,
)
from repro.core.config import (
    AutopilotConfig,
    CommConfig,
    ElasticConfig,
    ParallaxConfig,
    ServeConfig,
)
from repro.core.elastic import ElasticRunner
from repro.core.partition_context import partitioner
from repro.core.runner import DistributedRunner
from repro.serve import InferenceServer

__version__ = "1.1.0"

__all__ = [
    "ParallaxConfig",
    "CommConfig",
    "ElasticConfig",
    "ServeConfig",
    "AutopilotConfig",
    "auto_parallelize",
    "Runner",
    "get_runner",
    "make_server",
    "shard",
    "partitioner",
    "DistributedRunner",
    "ElasticRunner",
    "AutopilotController",
    "InferenceServer",
    "FaultPlan",
    "WorkerFailure",
    "NicDegradation",
    "ClusterSpec",
    "__version__",
]
