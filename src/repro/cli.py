"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro.cli table1            # PS vs AR throughput
    python -m repro.cli table2            # partition sweep
    python -m repro.cli table4            # architecture ablation
    python -m repro.cli table6            # sparsity-degree sweep
    python -m repro.cli fig8              # scaling curves
    python -m repro.cli fig9              # normalized throughput
    python -m repro.cli all               # everything
    python -m repro.cli table2 --machines 4 --gpus 4   # custom cluster
    python -m repro.cli bench             # engine steps/sec benchmark
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from typing import Callable, Dict

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.simulator import throughput
from repro.cluster.spec import ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import (
    PAPER_PROFILES,
    TABLE6_ALPHA,
    constructed_lm_profile,
)

PARTITIONS = {"lm": 128, "nmt": 64}


def _plan(kind: str, profile, partitions: int):
    return {
        "tf_ps": lambda: tf_ps_plan(profile, partitions),
        "horovod": lambda: horovod_plan(profile),
        "opt_ps": lambda: opt_ps_plan(profile, partitions),
        "parallax": lambda: hybrid_plan(profile, partitions),
    }[kind]()


def _fmt(value: float) -> str:
    return f"{value / 1000:,.1f}k" if value >= 10_000 else f"{value:,.0f}"


def table1(cluster: ClusterSpec) -> None:
    print(f"\nTable 1 — PS vs AR throughput "
          f"({cluster.total_gpus} simulated GPUs)")
    print(f"{'model':<14}{'dense':>9}{'sparse':>9}{'alpha':>7}"
          f"{'PS':>10}{'AR':>10}")
    for name, profile in PAPER_PROFILES().items():
        p = PARTITIONS.get(name, 1)
        ps = throughput(profile, _plan("tf_ps", profile, p), cluster)
        ar = throughput(profile, _plan("horovod", profile, p), cluster)
        print(f"{name:<14}{profile.dense_elements / 1e6:>8.1f}M"
              f"{profile.sparse_elements / 1e6:>8.1f}M"
              f"{profile.alpha_model:>7.2f}{_fmt(ps):>10}{_fmt(ar):>10}")


def table2(cluster: ClusterSpec) -> None:
    partitions = (8, 16, 32, 64, 128, 256)
    print("\nTable 2 — TF-PS throughput vs partition count")
    print(f"{'model':<8}" + "".join(f"P={p:<9}" for p in partitions))
    for name in ("lm", "nmt"):
        profile = PAPER_PROFILES()[name]
        row = [
            _fmt(throughput(profile, _plan("tf_ps", profile, p), cluster))
            for p in partitions
        ]
        print(f"{name:<8}" + "".join(f"{v:<11}" for v in row))


def table4(cluster: ClusterSpec) -> None:
    archs = ("horovod", "tf_ps", "opt_ps", "parallax")
    labels = ("AR", "NaivePS", "OptPS", "HYB")
    print("\nTable 4 — architecture ablation")
    print(f"{'model':<8}" + "".join(f"{label:<12}" for label in labels))
    for name in ("lm", "nmt"):
        profile = PAPER_PROFILES()[name]
        p = PARTITIONS[name]
        row = [
            _fmt(throughput(profile, _plan(a, profile, p), cluster))
            for a in archs
        ]
        print(f"{name:<8}" + "".join(f"{v:<12}" for v in row))


def table6(cluster: ClusterSpec) -> None:
    print("\nTable 6 — sparsity-degree sweep (constructed LM)")
    print(f"{'length':>7}{'alpha':>7}{'parallax':>12}{'tf_ps':>12}"
          f"{'speedup':>9}")
    for length in sorted(TABLE6_ALPHA, reverse=True):
        profile = constructed_lm_profile(length)
        px = throughput(profile, _plan("parallax", profile, 64), cluster)
        ps = throughput(profile, _plan("tf_ps", profile, 64), cluster)
        print(f"{length:>7}{TABLE6_ALPHA[length]:>7.2f}{_fmt(px):>12}"
              f"{_fmt(ps):>12}{px / ps:>8.2f}x")


def fig8(cluster: ClusterSpec) -> None:
    print(f"\nFigure 8 — throughput vs machines (1/2/4/8, "
          f"{cluster.gpus_per_machine} GPUs each)")
    for name, profile in PAPER_PROFILES().items():
        p = PARTITIONS.get(name, 1)
        for arch in ("tf_ps", "horovod", "parallax"):
            values = [
                _fmt(throughput(
                    profile, _plan(arch, profile, p),
                    ClusterSpec(n, cluster.gpus_per_machine)))
                for n in (1, 2, 4, 8)
            ]
            print(f"{name:<14}{arch:<10}" + " / ".join(values))


def fig9(cluster: ClusterSpec) -> None:
    print("\nFigure 9 — Parallax normalized throughput (vs 1 GPU)")
    profiles = PAPER_PROFILES()
    print(f"{'GPUs':<6}" + "".join(f"{n:<14}" for n in profiles))
    for machines in (1, 2, 4, 8):
        row = [machines * cluster.gpus_per_machine]
        for name, profile in profiles.items():
            p = PARTITIONS.get(name, 1)
            base = throughput(profile, _plan("parallax", profile, p),
                              ClusterSpec(1, 1))
            t = throughput(profile, _plan("parallax", profile, p),
                           ClusterSpec(machines, cluster.gpus_per_machine))
            row.append(f"{t / base:.1f}x")
        print(f"{row[0]:<6}" + "".join(f"{v:<14}" for v in row[1:]))


def _quickstart_model():
    """The quickstart hybrid LM graph (partitioned sparse embedding on
    PS, dense LSTM/softmax on AllReduce), gradients and updates built."""
    from repro.graph.gradients import gradients
    from repro.nn.models import build_lm
    from repro.nn.optimizers import GradientDescentOptimizer

    model = build_lm(batch_size=8, vocab_size=200, seq_len=4,
                     emb_dim=16, hidden=24, num_partitions=4, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.5).update(gvs)
    return model


def _quickstart_runner(cluster: ClusterSpec, seed: int,
                       engine: str = "compiled", fusion: bool = False,
                       fusion_buffer_mb: float = 4.0):
    """The quickstart workload as a ready DistributedRunner."""
    from repro.core.runner import DistributedRunner
    from repro.core.transform.plan import hybrid_graph_plan

    model = _quickstart_model()
    plan = hybrid_graph_plan(model.graph, fusion=fusion,
                             fusion_buffer_mb=fusion_buffer_mb)
    return DistributedRunner(model, cluster, plan, seed=seed, engine=engine)


def _quickstart_elastic(cluster: ClusterSpec, seed: int,
                        checkpoint_every: int, fault_plan=None):
    """The quickstart workload as an ElasticRunner."""
    from repro.core.elastic import ElasticRunner
    from repro.core.transform.plan import hybrid_graph_plan

    model = _quickstart_model()
    plan = hybrid_graph_plan(model.graph)
    return ElasticRunner(model, cluster, plan,
                         checkpoint_every=checkpoint_every,
                         fault_plan=fault_plan, seed=seed)


def _validate_bench_args(iters: int, warmup: int) -> None:
    """Fail fast, before any runner (graph transform) is built."""
    if iters < 1:
        raise SystemExit("bench: --iters must be >= 1")
    if warmup < 0:
        raise SystemExit("bench: --warmup must be >= 0")


def _write_report(output: str, report: dict) -> None:
    """Write a bench report, folding any previous run into its history.

    Each ``BENCH_*.json`` keeps the latest run's fields at top level
    (stable for CI assertions and readers) plus a ``history`` list of
    earlier runs, oldest first -- the per-family performance trajectory
    ``bench --all`` accumulates across invocations.
    """
    history = []
    try:
        with open(output) as f:
            previous = json.load(f)
        if isinstance(previous, dict):
            history = previous.pop("history", [])
            history.append(previous)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        pass
    with open(output, "w") as f:
        json.dump({**report, "history": history}, f, indent=2)


def _interleaved_measure(runners: Dict[str, object], iters: int,
                         warmup: int):
    """Time every runner in alternating blocks; returns (times, losses).

    Measures in small interleaved blocks (rotating which runner leads):
    each round times all runners back to back, so host noise hits them
    alike.  Callers take each runner's best (minimum) block -- noise only
    ever adds time, so the minimum is its closest approach to true cost.
    """
    names = list(runners)
    losses: Dict[str, list] = {name: [] for name in names}
    done: Dict[str, int] = {name: 0 for name in names}

    def run_block(name: str, count: int) -> float:
        runner = runners[name]
        start = time.perf_counter()
        for _ in range(count):
            result = runner.step(done[name])
            losses[name].append(result.replica_losses)
            done[name] += 1
        return (time.perf_counter() - start) / count

    for name in names:
        if warmup:
            run_block(name, warmup)
    block = max(1, min(5, iters // 8))
    times: Dict[str, list] = {name: [] for name in names}
    round_no = 0
    while done[names[0]] < warmup + iters:
        count = min(block, warmup + iters - done[names[0]])
        order = names[round_no % len(names):] + names[:round_no % len(names)]
        for name in order:
            times[name].append(run_block(name, count))
        round_no += 1
    return times, losses


def bench(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
          seed: int = 0, output: str = "BENCH_engine.json") -> int:
    """Compiled engine vs the seed interpreter on the quickstart workload.

    Trains the quickstart hybrid LM with both executors, checks the
    per-iteration losses are bit-identical, and reports steps/sec.  The
    JSON written to *output* records the repo's perf trajectory.
    """
    _validate_bench_args(iters, warmup)
    engines = ("interpreted", "compiled")
    runners = {engine: _quickstart_runner(cluster, seed, engine=engine)
               for engine in engines}
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {engine: 1.0 / min(times[engine]) for engine in engines}
    speedup = min(times["interpreted"]) / min(times["compiled"])
    median_ratio = statistics.median(
        t_i / t_c for t_i, t_c
        in zip(times["interpreted"], times["compiled"])
    )

    identical = losses["interpreted"] == losses["compiled"]
    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "interpreted_steps_per_sec": steps_per_sec["interpreted"],
        "compiled_steps_per_sec": steps_per_sec["compiled"],
        "speedup": speedup,
        "median_block_speedup": median_ratio,
        "losses_bit_identical": identical,
    }
    _write_report(output, report)

    print(f"\nEngine bench — quickstart hybrid LM "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations)")
    print(f"{'engine':<14}{'steps/sec':>12}")
    for engine in ("interpreted", "compiled"):
        print(f"{engine:<14}{steps_per_sec[engine]:>12.1f}")
    print(f"speedup: {speedup:.2f}x   losses bit-identical: {identical}")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: compiled and interpreted losses diverged")
        return 1
    return 0


def bench_fusion(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
                 seed: int = 0, output: str = "BENCH_fusion.json") -> int:
    """Fused (bucketed) vs unfused dense AllReduce on the quickstart
    workload, plus the simulator's fusion-buffer ablation.

    The functional comparison checks losses stay bit-identical while the
    Transcript carries fewer, larger AllReduce records; the ablation
    prices ResNet-50 (pure-dense AllReduce) under a sweep of fusion
    buffer caps, exposing the per-collective launch-latency term.
    """
    _validate_bench_args(iters, warmup)
    runners = {
        "unfused": _quickstart_runner(cluster, seed, fusion=False),
        "fused": _quickstart_runner(cluster, seed, fusion=True),
    }
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {name: 1.0 / min(times[name]) for name in runners}
    speedup = min(times["unfused"]) / min(times["fused"])
    identical = losses["unfused"] == losses["fused"]

    # One extra iteration per runner with a clean transcript: the fused
    # engine must move the same bytes in fewer, larger messages.
    records = {}
    for name, runner in runners.items():
        runner.transcript.clear()
        runner.step(warmup + iters)
        # Count every collective message, intra-machine included, so the
        # fused-vs-unfused comparison stays meaningful on one machine.
        transfers = runner.transcript.filter("allreduce",
                                             network_only=False)
        records[name] = {
            "messages": len(transfers),
            "bytes": int(sum(t.nbytes for t in transfers)),
        }

    # Performance-plane ablation: iteration time vs fusion buffer cap.
    # Overlap is disabled for the sweep so the per-collective launch term
    # is visible in iteration_time (with the default ar_overlap, ResNet's
    # compute hides the whole collective phase at this scale).
    from repro.baselines import horovod_plan
    from repro.cluster.costmodel import DEFAULT_COST_MODEL
    from repro.cluster.simulator import simulate_iteration

    from repro.nn.profiles import resnet50_profile

    profile = resnet50_profile()
    base_plan = horovod_plan(profile)
    sweep_cost = DEFAULT_COST_MODEL.with_overrides(ar_overlap=0.0)
    ablation = []
    for buffer_mb in (0.0, 1.0, 4.0, 16.0, 64.0):
        breakdown = simulate_iteration(
            profile, base_plan.with_fusion(buffer_mb), cluster, sweep_cost)
        ablation.append({
            "fusion_buffer_mb": buffer_mb,
            "num_buckets": breakdown.num_ar_buckets,
            "allreduce_raw_time": breakdown.allreduce_raw_time,
            "allreduce_time": breakdown.allreduce_time,
            "iteration_time": breakdown.iteration_time,
        })

    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "unfused_steps_per_sec": steps_per_sec["unfused"],
        "fused_steps_per_sec": steps_per_sec["fused"],
        "speedup": speedup,
        "losses_bit_identical": identical,
        "allreduce_records": records,
        "simulated_ablation": {
            "model": profile.name,
            "plan": base_plan.name,
            "cost_overrides": {"ar_overlap": 0.0},
            "sweep": ablation,
        },
    }
    _write_report(output, report)

    print(f"\nFusion bench — quickstart hybrid LM "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations)")
    print(f"{'engine':<14}{'steps/sec':>12}{'AR msgs/iter':>14}")
    for name in ("unfused", "fused"):
        print(f"{name:<14}{steps_per_sec[name]:>12.1f}"
              f"{records[name]['messages']:>14}")
    print(f"speedup: {speedup:.2f}x   losses bit-identical: {identical}")
    print(f"\nSimulated {profile.name} AllReduce vs fusion buffer "
          f"({cluster.num_machines}x{cluster.gpus_per_machine}):")
    print(f"{'buffer MB':>10}{'buckets':>9}{'AR time':>10}{'iter time':>11}")
    for row in ablation:
        print(f"{row['fusion_buffer_mb']:>10}{row['num_buckets']:>9}"
              f"{row['allreduce_time'] * 1e3:>9.2f}m"
              f"{row['iteration_time'] * 1e3:>10.2f}m")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: fused and unfused losses diverged")
        return 1
    if records["fused"]["bytes"] != records["unfused"]["bytes"]:
        print("ERROR: fused and unfused AllReduce byte totals diverged")
        return 1
    return 0


def bench_elastic(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
                  seed: int = 0,
                  output: str = "BENCH_elastic.json") -> int:
    """Goodput under a failure schedule vs a fault-free elastic run.

    Trains the quickstart workload twice with the elastic runtime (same
    checkpoint cadence): once fault-free and once under a deterministic
    FaultPlan (a worker kill mid-run plus a NIC-degradation window).
    Recovery restores the last checkpoint and replays, so the faulted
    run's per-iteration losses must stay bit-identical to the fault-free
    run -- the differential check -- while its goodput (distinct
    iterations per second) drops by the replay + recovery overhead.  A
    planned shrink rescale is timed as well, and the performance plane
    prices the same schedule through ``simulate_goodput``.

    ``warmup`` iterations train (and absorb plan-compile cost) before
    the timed window; the fault schedule is anchored inside the window.
    """
    _validate_bench_args(iters, warmup)
    from repro.cluster.faults import FaultPlan, NicDegradation, WorkerFailure
    from repro.cluster.simulator import simulate_goodput, simulate_rescale
    from repro.core.hybrid import hybrid_plan
    from repro.nn.profiles import lm_profile

    checkpoint_every = max(2, iters // 8)
    kill_at = warmup + iters // 2
    degrade_at = warmup + max(1, iters // 4)
    fault_plan = FaultPlan(
        failures=(WorkerFailure(kill_at, worker=1),),
        degradations=(NicDegradation(degrade_at, machine=0, factor=0.25,
                                     duration=3),),
    )

    def timed_run(runner):
        for i in range(warmup):
            runner.step(i)
        start = time.perf_counter()
        results = runner.run_elastic(iters, start_iteration=warmup)
        return results, time.perf_counter() - start

    clean = _quickstart_elastic(cluster, seed, checkpoint_every)
    clean_results, clean_time = timed_run(clean)

    faulted = _quickstart_elastic(cluster, seed, checkpoint_every,
                                  fault_plan=fault_plan)
    faulted_results, faulted_time = timed_run(faulted)

    identical = ([r.replica_losses for r in clean_results]
                 == [r.replica_losses for r in faulted_results])
    goodput_clean = iters / clean_time
    goodput_faulted = iters / faulted_time
    recoveries = faulted.recovery_log

    # Planned rescale downtime: shrink the fault-free runner by one
    # machine (when it has one to give) and time the migration.
    rescale_report = None
    if cluster.num_machines > 1:
        start = time.perf_counter()
        clean.rescale(cluster.without_machine(cluster.num_machines - 1))
        rescale_wall = time.perf_counter() - start
        note = clean.transcript.events("elastic/rescale")[-1]
        rescale_report = {
            "old_replicas": note.get("old_replicas"),
            "new_replicas": note.get("new_replicas"),
            "plans_compiled": note.get("plans_compiled"),
            "wall_time": rescale_wall,
        }

    # Performance-plane pricing of the same scenario shape on the paper's
    # LM inventory.
    profile = lm_profile()
    sim_plan = hybrid_plan(profile, 64)
    sim_total, sim_every = 200, 10
    sim_faults = FaultPlan(
        failures=(WorkerFailure(sim_total // 2, worker=1),),
        degradations=(NicDegradation(sim_total // 4, machine=0,
                                     factor=0.25, duration=10),),
    )
    sim = simulate_goodput(profile, sim_plan, cluster, sim_total,
                           checkpoint_every=sim_every, faults=sim_faults)
    sim_rescale = simulate_rescale(sim_plan, cluster,
                                   cluster.scaled(max(1,
                                                      cluster.num_machines
                                                      - 1)))

    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "checkpoint_every": checkpoint_every,
        "fault_plan": {
            "kill": {"iteration": kill_at, "worker": 1},
            "nic_degradation": {"iteration": degrade_at, "machine": 0,
                                "factor": 0.25, "duration": 3},
        },
        "goodput_iters_per_sec": {"fault_free": goodput_clean,
                                  "faulted": goodput_faulted},
        "goodput_fraction": goodput_faulted / goodput_clean,
        "losses_bit_identical": identical,
        "recoveries": recoveries,
        "rescale": rescale_report,
        "simulated": {
            "model": profile.name,
            "plan": sim_plan.name,
            "iterations": sim_total,
            "checkpoint_every": sim_every,
            "goodput_units_per_sec": sim.units_per_second,
            "fault_free_units_per_sec": sim.fault_free_units_per_second,
            "goodput_fraction": sim.goodput_fraction,
            "downtime_sec": sim.downtime,
            "replayed_iterations": sim.replayed_iterations,
            "num_degraded_iterations": sim.num_degraded_iterations,
            "rescale_downtime_sec": sim_rescale.downtime,
        },
    }
    _write_report(output, report)

    print(f"\nElastic bench — quickstart hybrid LM "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations, "
          f"checkpoint every {checkpoint_every})")
    print(f"{'run':<14}{'goodput it/s':>14}{'recoveries':>12}")
    print(f"{'fault-free':<14}{goodput_clean:>14.1f}{0:>12}")
    print(f"{'faulted':<14}{goodput_faulted:>14.1f}{len(recoveries):>12}")
    print(f"goodput fraction: {goodput_faulted / goodput_clean:.2f}   "
          f"losses bit-identical: {identical}")
    if rescale_report is not None:
        print(f"rescale {rescale_report['old_replicas']}->"
              f"{rescale_report['new_replicas']} replicas: "
              f"{rescale_report['wall_time'] * 1e3:.1f}ms, "
              f"{rescale_report['plans_compiled']} plans recompiled")
    print(f"simulated {profile.name} goodput fraction under faults: "
          f"{sim.goodput_fraction:.3f} "
          f"(downtime {sim.downtime:.1f}s over {sim_total} iters)")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: faulted and fault-free losses diverged")
        return 1
    return 0


def _bench_matrix_models():
    """The four evaluation archs at test scale, ready for a runner."""
    from repro.graph.gradients import gradients
    from repro.nn.models import (
        build_inception,
        build_lm,
        build_nmt,
        build_resnet,
    )
    from repro.nn.optimizers import GradientDescentOptimizer

    def _finish(model):
        with model.graph.as_default():
            gvs = gradients(model.loss)
            GradientDescentOptimizer(0.1).update(gvs)
        return model

    return {
        "lm": lambda: _finish(build_lm(
            batch_size=4, vocab_size=40, seq_len=3, emb_dim=8, hidden=10,
            num_partitions=3, seed=0)),
        "nmt": lambda: _finish(build_nmt(
            batch_size=4, src_vocab=30, tgt_vocab=30, src_len=2, tgt_len=2,
            emb_dim=6, hidden=6, num_partitions=2, seed=1)),
        "resnet": lambda: _finish(build_resnet(
            batch_size=4, num_features=8, num_classes=3, width=8,
            num_blocks=1, seed=0)),
        "inception": lambda: _finish(build_inception(
            batch_size=4, num_features=8, num_classes=3, width=8,
            num_modules=1, seed=0)),
    }


def _bench_plan_builders():
    from repro.core.transform.plan import (
        ar_graph_plan,
        hybrid_graph_plan,
        ps_graph_plan,
    )

    return {
        "hybrid": lambda g: hybrid_graph_plan(g, fusion=True),
        "ps": lambda g: ps_graph_plan(g),
        "ar": lambda g: ar_graph_plan(g),
    }


def _parallel_timing_runner(cluster: ClusterSpec, seed: int, backend: str):
    """The timed workload: an LM big enough that per-replica compute
    dominates the multiprocess backend's messaging overhead."""
    from repro.core.runner import DistributedRunner
    from repro.core.transform.plan import hybrid_graph_plan
    from repro.graph.gradients import gradients
    from repro.nn.models import build_lm
    from repro.nn.optimizers import GradientDescentOptimizer

    model = build_lm(batch_size=32, vocab_size=1500, seq_len=10, emb_dim=96,
                     hidden=192, num_partitions=4, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.5).update(gvs)
    plan = hybrid_graph_plan(model.graph, fusion=True)
    return DistributedRunner(model, cluster, plan, seed=seed,
                             backend=backend)


def bench_parallel(cluster: ClusterSpec, iters: int = 20, warmup: int = 3,
                   seed: int = 0,
                   output: str = "BENCH_parallel.json") -> int:
    """Multiprocess backend vs the in-process engine.

    Two parts.  The *bit-identity matrix* trains every evaluation arch
    (ResNet/Inception/NMT/LM) under every plan family (hybrid, PS, AR)
    for a few iterations on both backends and asserts the per-step
    losses are identical bit for bit -- the differential guarantee that
    makes the backends interchangeable.  The *timing* part trains a
    compute-heavy LM with both backends and reports wall-clock
    steps/sec; on a machine with >= 4 cores the multiprocess backend
    must reach at least 1.5x the in-process throughput (on smaller
    hosts -- CI runners -- the speedup is reported informationally,
    since there is no hardware parallelism to win).
    """
    import os

    from repro.core.runner import DistributedRunner

    _validate_bench_args(iters, warmup)
    cpu_count = os.cpu_count() or 1

    matrix = []
    matrix_identical = True
    matrix_iters = 3
    for model_key, model_builder in _bench_matrix_models().items():
        for plan_key, plan_builder in _bench_plan_builders().items():
            losses = {}
            for backend in ("inproc", "multiproc"):
                model = model_builder()
                runner = DistributedRunner(
                    model, cluster, plan_builder(model.graph), seed=seed,
                    backend=backend)
                losses[backend] = [runner.step(i).replica_losses
                                   for i in range(matrix_iters)]
                runner.close()
            identical = losses["inproc"] == losses["multiproc"]
            matrix_identical = matrix_identical and identical
            matrix.append({"model": model_key, "plan": plan_key,
                           "losses_bit_identical": identical})

    runners = {
        backend: _parallel_timing_runner(cluster, seed, backend)
        for backend in ("inproc", "multiproc")
    }
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {name: 1.0 / min(times[name]) for name in runners}
    speedup = min(times["inproc"]) / min(times["multiproc"])
    timing_identical = losses["inproc"] == losses["multiproc"]
    transport_stats = runners["multiproc"].backend.transport.stats
    runners["multiproc"].close()
    speedup_required = cpu_count >= 4
    speedup_ok = (not speedup_required) or speedup >= 1.5

    report = {
        "workload": "parallel_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "cpu_count": cpu_count,
        "inproc_steps_per_sec": steps_per_sec["inproc"],
        "multiproc_steps_per_sec": steps_per_sec["multiproc"],
        "speedup": speedup,
        "speedup_enforced": speedup_required,
        "losses_bit_identical": timing_identical and matrix_identical,
        "timing_losses_bit_identical": timing_identical,
        "matrix": matrix,
        "controller_transport": transport_stats,
    }
    _write_report(output, report)

    print(f"\nParallel bench — {cluster.total_gpus} replicas, "
          f"{iters} iterations, {cpu_count} cores")
    print(f"{'backend':<14}{'steps/sec':>12}")
    for name in ("inproc", "multiproc"):
        print(f"{name:<14}{steps_per_sec[name]:>12.1f}")
    print(f"speedup: {speedup:.2f}x "
          f"({'enforced' if speedup_required else 'informational: < 4 cores'})"
          f"   losses bit-identical: {timing_identical and matrix_identical}")
    bad = [row for row in matrix if not row["losses_bit_identical"]]
    print(f"bit-identity matrix: {len(matrix) - len(bad)}/{len(matrix)} "
          "arch x plan combinations identical")
    print(f"wrote {output}")
    if not (timing_identical and matrix_identical):
        print("ERROR: multiproc and inproc losses diverged")
        return 1
    if not speedup_ok:
        print("ERROR: multiproc speedup below 1.5x on a >= 4-core machine")
        return 1
    return 0


def bench_all(cluster: ClusterSpec, iters: int, warmup: int,
              seed: int) -> int:
    """Run every bench family, merging into the per-family reports.

    One command produces/extends ``BENCH_engine.json``,
    ``BENCH_fusion.json``, ``BENCH_elastic.json`` and
    ``BENCH_parallel.json`` (each keeps its history of earlier runs) --
    the aggregation step the bench trajectory was missing.
    """
    families = (
        ("engine", lambda: bench(cluster, iters=iters, warmup=warmup,
                                 seed=seed)),
        ("fusion", lambda: bench_fusion(cluster, iters=iters, warmup=warmup,
                                        seed=seed)),
        ("elastic", lambda: bench_elastic(cluster, iters=max(8, iters),
                                          warmup=warmup, seed=seed)),
        ("parallel", lambda: bench_parallel(cluster, iters=iters,
                                            warmup=warmup, seed=seed)),
    )
    failures = []
    for name, run in families:
        if run() != 0:
            failures.append(name)
    print(f"\nbench --all: {len(families) - len(failures)}/{len(families)} "
          f"families passed"
          + (f" (failed: {', '.join(failures)})" if failures else ""))
    return 1 if failures else 0


COMMANDS: Dict[str, Callable[[ClusterSpec], None]] = {
    "table1": table1, "table2": table2, "table4": table4, "table6": table6,
    "fig8": fig8, "fig9": fig9,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate Parallax (EuroSys '19) experiments.",
    )
    parser.add_argument("experiment",
                        choices=sorted(COMMANDS) + ["all", "bench"],
                        help="which table/figure to regenerate, or 'bench' "
                             "for the execution-engine benchmark")
    # Analytic tables default to the paper's cluster; the functional bench
    # defaults to a small one (it really executes every replica).
    parser.add_argument("--machines", type=int, default=None)
    parser.add_argument("--gpus", type=int, default=None)
    parser.add_argument("--iters", type=int, default=60,
                        help="bench: measured iterations per engine")
    parser.add_argument("--warmup", type=int, default=5,
                        help="bench: discarded warmup iterations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fusion", action="store_true",
                        help="bench: compare fused (bucketed) vs unfused "
                             "dense AllReduce instead of the engines")
    parser.add_argument("--elastic", action="store_true",
                        help="bench: goodput under a deterministic failure "
                             "schedule (worker kill + NIC degradation) vs "
                             "a fault-free elastic run")
    parser.add_argument("--parallel", action="store_true",
                        help="bench: multiprocess worker backend vs the "
                             "in-process engine (wall-clock steps/sec plus "
                             "a bit-identity matrix over every arch/plan)")
    parser.add_argument("--all", action="store_true", dest="all_families",
                        help="bench: run every bench family (engine, "
                             "fusion, elastic, parallel), merging results "
                             "into the per-family BENCH_*.json files")
    parser.add_argument("--bench-output", default=None,
                        help="bench report path (default BENCH_engine.json, "
                             "BENCH_fusion.json with --fusion, "
                             "BENCH_elastic.json with --elastic, or "
                             "BENCH_parallel.json with --parallel; ignored "
                             "by --all, which writes every family's file)")
    args = parser.parse_args(argv)
    default_machines, default_gpus = ((2, 2) if args.experiment == "bench"
                                      else (8, 6))
    cluster = ClusterSpec(
        default_machines if args.machines is None else args.machines,
        default_gpus if args.gpus is None else args.gpus,
    )
    if args.experiment == "bench":
        chosen = [name for name, flag in (
            ("--fusion", args.fusion), ("--elastic", args.elastic),
            ("--parallel", args.parallel), ("--all", args.all_families),
        ) if flag]
        if len(chosen) > 1:
            raise SystemExit(f"bench: choose one of {' / '.join(chosen)}")
        if args.all_families:
            return bench_all(cluster, iters=args.iters, warmup=args.warmup,
                             seed=args.seed)
        if args.parallel:
            return bench_parallel(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_parallel.json")
        if args.elastic:
            return bench_elastic(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_elastic.json")
        if args.fusion:
            return bench_fusion(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_fusion.json")
        return bench(cluster, iters=args.iters, warmup=args.warmup,
                     seed=args.seed,
                     output=args.bench_output or "BENCH_engine.json")
    if args.experiment == "all":
        for fn in COMMANDS.values():
            fn(cluster)
    else:
        COMMANDS[args.experiment](cluster)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
