"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro.cli table1            # PS vs AR throughput
    python -m repro.cli table2            # partition sweep
    python -m repro.cli table4            # architecture ablation
    python -m repro.cli table6            # sparsity-degree sweep
    python -m repro.cli fig8              # scaling curves
    python -m repro.cli fig9              # normalized throughput
    python -m repro.cli all               # everything
    python -m repro.cli table2 --machines 4 --gpus 4   # custom cluster
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.simulator import throughput
from repro.cluster.spec import ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import (
    PAPER_PROFILES,
    TABLE6_ALPHA,
    constructed_lm_profile,
)

PARTITIONS = {"lm": 128, "nmt": 64}


def _plan(kind: str, profile, partitions: int):
    return {
        "tf_ps": lambda: tf_ps_plan(profile, partitions),
        "horovod": lambda: horovod_plan(profile),
        "opt_ps": lambda: opt_ps_plan(profile, partitions),
        "parallax": lambda: hybrid_plan(profile, partitions),
    }[kind]()


def _fmt(value: float) -> str:
    return f"{value / 1000:,.1f}k" if value >= 10_000 else f"{value:,.0f}"


def table1(cluster: ClusterSpec) -> None:
    print(f"\nTable 1 — PS vs AR throughput "
          f"({cluster.total_gpus} simulated GPUs)")
    print(f"{'model':<14}{'dense':>9}{'sparse':>9}{'alpha':>7}"
          f"{'PS':>10}{'AR':>10}")
    for name, profile in PAPER_PROFILES().items():
        p = PARTITIONS.get(name, 1)
        ps = throughput(profile, _plan("tf_ps", profile, p), cluster)
        ar = throughput(profile, _plan("horovod", profile, p), cluster)
        print(f"{name:<14}{profile.dense_elements / 1e6:>8.1f}M"
              f"{profile.sparse_elements / 1e6:>8.1f}M"
              f"{profile.alpha_model:>7.2f}{_fmt(ps):>10}{_fmt(ar):>10}")


def table2(cluster: ClusterSpec) -> None:
    partitions = (8, 16, 32, 64, 128, 256)
    print(f"\nTable 2 — TF-PS throughput vs partition count")
    print(f"{'model':<8}" + "".join(f"P={p:<9}" for p in partitions))
    for name in ("lm", "nmt"):
        profile = PAPER_PROFILES()[name]
        row = [
            _fmt(throughput(profile, _plan("tf_ps", profile, p), cluster))
            for p in partitions
        ]
        print(f"{name:<8}" + "".join(f"{v:<11}" for v in row))


def table4(cluster: ClusterSpec) -> None:
    archs = ("horovod", "tf_ps", "opt_ps", "parallax")
    labels = ("AR", "NaivePS", "OptPS", "HYB")
    print(f"\nTable 4 — architecture ablation")
    print(f"{'model':<8}" + "".join(f"{l:<12}" for l in labels))
    for name in ("lm", "nmt"):
        profile = PAPER_PROFILES()[name]
        p = PARTITIONS[name]
        row = [
            _fmt(throughput(profile, _plan(a, profile, p), cluster))
            for a in archs
        ]
        print(f"{name:<8}" + "".join(f"{v:<12}" for v in row))


def table6(cluster: ClusterSpec) -> None:
    print(f"\nTable 6 — sparsity-degree sweep (constructed LM)")
    print(f"{'length':>7}{'alpha':>7}{'parallax':>12}{'tf_ps':>12}"
          f"{'speedup':>9}")
    for length in sorted(TABLE6_ALPHA, reverse=True):
        profile = constructed_lm_profile(length)
        px = throughput(profile, _plan("parallax", profile, 64), cluster)
        ps = throughput(profile, _plan("tf_ps", profile, 64), cluster)
        print(f"{length:>7}{TABLE6_ALPHA[length]:>7.2f}{_fmt(px):>12}"
              f"{_fmt(ps):>12}{px / ps:>8.2f}x")


def fig8(cluster: ClusterSpec) -> None:
    print(f"\nFigure 8 — throughput vs machines (1/2/4/8, "
          f"{cluster.gpus_per_machine} GPUs each)")
    for name, profile in PAPER_PROFILES().items():
        p = PARTITIONS.get(name, 1)
        for arch in ("tf_ps", "horovod", "parallax"):
            values = [
                _fmt(throughput(
                    profile, _plan(arch, profile, p),
                    ClusterSpec(n, cluster.gpus_per_machine)))
                for n in (1, 2, 4, 8)
            ]
            print(f"{name:<14}{arch:<10}" + " / ".join(values))


def fig9(cluster: ClusterSpec) -> None:
    print(f"\nFigure 9 — Parallax normalized throughput (vs 1 GPU)")
    profiles = PAPER_PROFILES()
    print(f"{'GPUs':<6}" + "".join(f"{n:<14}" for n in profiles))
    for machines in (1, 2, 4, 8):
        row = [machines * cluster.gpus_per_machine]
        for name, profile in profiles.items():
            p = PARTITIONS.get(name, 1)
            base = throughput(profile, _plan("parallax", profile, p),
                              ClusterSpec(1, 1))
            t = throughput(profile, _plan("parallax", profile, p),
                           ClusterSpec(machines, cluster.gpus_per_machine))
            row.append(f"{t / base:.1f}x")
        print(f"{row[0]:<6}" + "".join(f"{v:<14}" for v in row[1:]))


COMMANDS: Dict[str, Callable[[ClusterSpec], None]] = {
    "table1": table1, "table2": table2, "table4": table4, "table6": table6,
    "fig8": fig8, "fig9": fig9,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate Parallax (EuroSys '19) experiments.",
    )
    parser.add_argument("experiment",
                        choices=sorted(COMMANDS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--gpus", type=int, default=6)
    args = parser.parse_args(argv)
    cluster = ClusterSpec(args.machines, args.gpus)
    if args.experiment == "all":
        for fn in COMMANDS.values():
            fn(cluster)
    else:
        COMMANDS[args.experiment](cluster)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
