"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro.cli table1            # PS vs AR throughput
    python -m repro.cli table2            # partition sweep
    python -m repro.cli table4            # architecture ablation
    python -m repro.cli table6            # sparsity-degree sweep
    python -m repro.cli fig8              # scaling curves
    python -m repro.cli fig9              # normalized throughput
    python -m repro.cli all               # everything
    python -m repro.cli table2 --machines 4 --gpus 4   # custom cluster
    python -m repro.cli bench             # engine steps/sec benchmark
    python -m repro.cli bench --serve     # serving-plane QPS/latency bench
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from typing import Callable, Dict

from repro.baselines import horovod_plan, opt_ps_plan, tf_ps_plan
from repro.cluster.simulator import throughput
from repro.cluster.spec import ClusterSpec
from repro.core.hybrid import hybrid_plan
from repro.nn.profiles import (
    PAPER_PROFILES,
    TABLE6_ALPHA,
    constructed_lm_profile,
)

PARTITIONS = {"lm": 128, "nmt": 64}


def _plan(kind: str, profile, partitions: int):
    return {
        "tf_ps": lambda: tf_ps_plan(profile, partitions),
        "horovod": lambda: horovod_plan(profile),
        "opt_ps": lambda: opt_ps_plan(profile, partitions),
        "parallax": lambda: hybrid_plan(profile, partitions),
    }[kind]()


def _fmt(value: float) -> str:
    return f"{value / 1000:,.1f}k" if value >= 10_000 else f"{value:,.0f}"


def table1(cluster: ClusterSpec) -> None:
    print(f"\nTable 1 — PS vs AR throughput "
          f"({cluster.total_gpus} simulated GPUs)")
    print(f"{'model':<14}{'dense':>9}{'sparse':>9}{'alpha':>7}"
          f"{'PS':>10}{'AR':>10}")
    for name, profile in PAPER_PROFILES().items():
        p = PARTITIONS.get(name, 1)
        ps = throughput(profile, _plan("tf_ps", profile, p), cluster)
        ar = throughput(profile, _plan("horovod", profile, p), cluster)
        print(f"{name:<14}{profile.dense_elements / 1e6:>8.1f}M"
              f"{profile.sparse_elements / 1e6:>8.1f}M"
              f"{profile.alpha_model:>7.2f}{_fmt(ps):>10}{_fmt(ar):>10}")


def table2(cluster: ClusterSpec) -> None:
    partitions = (8, 16, 32, 64, 128, 256)
    print("\nTable 2 — TF-PS throughput vs partition count")
    print(f"{'model':<8}" + "".join(f"P={p:<9}" for p in partitions))
    for name in ("lm", "nmt"):
        profile = PAPER_PROFILES()[name]
        row = [
            _fmt(throughput(profile, _plan("tf_ps", profile, p), cluster))
            for p in partitions
        ]
        print(f"{name:<8}" + "".join(f"{v:<11}" for v in row))


def table4(cluster: ClusterSpec) -> None:
    archs = ("horovod", "tf_ps", "opt_ps", "parallax")
    labels = ("AR", "NaivePS", "OptPS", "HYB")
    print("\nTable 4 — architecture ablation")
    print(f"{'model':<8}" + "".join(f"{label:<12}" for label in labels))
    for name in ("lm", "nmt"):
        profile = PAPER_PROFILES()[name]
        p = PARTITIONS[name]
        row = [
            _fmt(throughput(profile, _plan(a, profile, p), cluster))
            for a in archs
        ]
        print(f"{name:<8}" + "".join(f"{v:<12}" for v in row))


def table6(cluster: ClusterSpec) -> None:
    print("\nTable 6 — sparsity-degree sweep (constructed LM)")
    print(f"{'length':>7}{'alpha':>7}{'parallax':>12}{'tf_ps':>12}"
          f"{'speedup':>9}")
    for length in sorted(TABLE6_ALPHA, reverse=True):
        profile = constructed_lm_profile(length)
        px = throughput(profile, _plan("parallax", profile, 64), cluster)
        ps = throughput(profile, _plan("tf_ps", profile, 64), cluster)
        print(f"{length:>7}{TABLE6_ALPHA[length]:>7.2f}{_fmt(px):>12}"
              f"{_fmt(ps):>12}{px / ps:>8.2f}x")


def fig8(cluster: ClusterSpec) -> None:
    print(f"\nFigure 8 — throughput vs machines (1/2/4/8, "
          f"{cluster.gpus_per_machine} GPUs each)")
    for name, profile in PAPER_PROFILES().items():
        p = PARTITIONS.get(name, 1)
        for arch in ("tf_ps", "horovod", "parallax"):
            values = [
                _fmt(throughput(
                    profile, _plan(arch, profile, p),
                    ClusterSpec(n, cluster.gpus_per_machine)))
                for n in (1, 2, 4, 8)
            ]
            print(f"{name:<14}{arch:<10}" + " / ".join(values))


def fig9(cluster: ClusterSpec) -> None:
    print("\nFigure 9 — Parallax normalized throughput (vs 1 GPU)")
    profiles = PAPER_PROFILES()
    print(f"{'GPUs':<6}" + "".join(f"{n:<14}" for n in profiles))
    for machines in (1, 2, 4, 8):
        row = [machines * cluster.gpus_per_machine]
        for name, profile in profiles.items():
            p = PARTITIONS.get(name, 1)
            base = throughput(profile, _plan("parallax", profile, p),
                              ClusterSpec(1, 1))
            t = throughput(profile, _plan("parallax", profile, p),
                           ClusterSpec(machines, cluster.gpus_per_machine))
            row.append(f"{t / base:.1f}x")
        print(f"{row[0]:<6}" + "".join(f"{v:<14}" for v in row[1:]))


def _quickstart_model():
    """The quickstart hybrid LM graph (partitioned sparse embedding on
    PS, dense LSTM/softmax on AllReduce), gradients and updates built."""
    from repro.graph.gradients import gradients
    from repro.nn.models import build_lm
    from repro.nn.optimizers import GradientDescentOptimizer

    model = build_lm(batch_size=8, vocab_size=200, seq_len=4,
                     emb_dim=16, hidden=24, num_partitions=4, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.5).update(gvs)
    return model


def _quickstart_runner(cluster: ClusterSpec, seed: int,
                       engine: str = "compiled", fusion: bool = False,
                       fusion_buffer_mb: float = 4.0):
    """The quickstart workload as a ready DistributedRunner."""
    from repro.core.runner import DistributedRunner
    from repro.core.transform.plan import hybrid_graph_plan

    model = _quickstart_model()
    plan = hybrid_graph_plan(model.graph, fusion=fusion,
                             fusion_buffer_mb=fusion_buffer_mb)
    return DistributedRunner(model, cluster, plan, seed=seed, engine=engine)


def _quickstart_elastic(cluster: ClusterSpec, seed: int,
                        checkpoint_every: int, fault_plan=None):
    """The quickstart workload as an ElasticRunner."""
    from repro.core.elastic import ElasticRunner
    from repro.core.transform.plan import hybrid_graph_plan

    model = _quickstart_model()
    plan = hybrid_graph_plan(model.graph)
    return ElasticRunner(model, cluster, plan,
                         checkpoint_every=checkpoint_every,
                         fault_plan=fault_plan, seed=seed)


def _validate_bench_args(iters: int, warmup: int) -> None:
    """Fail fast, before any runner (graph transform) is built."""
    if iters < 1:
        raise SystemExit("bench: --iters must be >= 1")
    if warmup < 0:
        raise SystemExit("bench: --warmup must be >= 0")


def _git_sha() -> "str | None":
    """The repo HEAD this bench run measured (None outside a checkout)."""
    import subprocess

    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _host_fingerprint() -> str:
    """Coarse identity of the measuring host.

    Steps/sec numbers are only comparable between runs of the same kind
    of machine; ``bench --check`` uses this to keep a hosted CI runner
    from being judged against a developer workstation's history (and
    vice versa).
    """
    import os
    import platform

    return f"{platform.system()}-{platform.machine()}-{os.cpu_count()}c"


def _write_report(output: str, report: dict) -> None:
    """Write a bench report, folding any previous run into its history.

    Each ``BENCH_*.json`` keeps the latest run's fields at top level
    (stable for CI assertions and readers) plus a ``history`` list of
    earlier runs, oldest first -- the per-family performance trajectory
    ``bench --all`` accumulates across invocations.

    History entries deduplicate by git SHA (the family is the file
    itself): re-running a bench at the same commit -- a retried CI job,
    a local loop -- *replaces* that commit's data point instead of
    appending a duplicate, so the trajectory stays one point per commit.
    Runs outside a git checkout (no SHA) always append.
    """
    report = {**report, "git_sha": _git_sha(), "host": _host_fingerprint()}
    history = []
    try:
        with open(output) as f:
            previous = json.load(f)
        if isinstance(previous, dict):
            history = previous.pop("history", [])
            history.append(previous)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        pass
    sha = report["git_sha"]
    if sha is not None:
        history = [h for h in history
                   if not (isinstance(h, dict) and h.get("git_sha") == sha)]
    with open(output, "w") as f:
        json.dump({**report, "history": history}, f, indent=2)


def _interleaved_measure(runners: Dict[str, object], iters: int,
                         warmup: int):
    """Time every runner in alternating blocks; returns (times, losses).

    Measures in small interleaved blocks (rotating which runner leads):
    each round times all runners back to back, so host noise hits them
    alike.  Callers take each runner's best (minimum) block -- noise only
    ever adds time, so the minimum is its closest approach to true cost.
    """
    names = list(runners)
    losses: Dict[str, list] = {name: [] for name in names}
    done: Dict[str, int] = {name: 0 for name in names}

    def run_block(name: str, count: int) -> float:
        runner = runners[name]
        start = time.perf_counter()
        for _ in range(count):
            result = runner.step(done[name])
            losses[name].append(result.replica_losses)
            done[name] += 1
        return (time.perf_counter() - start) / count

    for name in names:
        if warmup:
            run_block(name, warmup)
    block = max(1, min(5, iters // 8))
    times: Dict[str, list] = {name: [] for name in names}
    round_no = 0
    while done[names[0]] < warmup + iters:
        count = min(block, warmup + iters - done[names[0]])
        order = names[round_no % len(names):] + names[:round_no % len(names)]
        for name in order:
            times[name].append(run_block(name, count))
        round_no += 1
    return times, losses


def bench(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
          seed: int = 0, output: str = "BENCH_engine.json") -> int:
    """Compiled engine vs the seed interpreter on the quickstart workload.

    Trains the quickstart hybrid LM with both executors, checks the
    per-iteration losses are bit-identical, and reports steps/sec.  The
    JSON written to *output* records the repo's perf trajectory.
    """
    _validate_bench_args(iters, warmup)
    engines = ("interpreted", "compiled")
    runners = {engine: _quickstart_runner(cluster, seed, engine=engine)
               for engine in engines}
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {engine: 1.0 / min(times[engine]) for engine in engines}
    speedup = min(times["interpreted"]) / min(times["compiled"])
    median_ratio = statistics.median(
        t_i / t_c for t_i, t_c
        in zip(times["interpreted"], times["compiled"])
    )

    identical = losses["interpreted"] == losses["compiled"]

    # Buffer-arena telemetry from the compiled runner's step plans: how
    # many intermediate slots write into preallocated storage, what that
    # storage cost once at compile time, and what fraction of the run's
    # output bytes it served (steady-state steps allocate nothing, so
    # the rate converges to 1 over the measured window).
    from repro.graph.bufferplan import fusion_chains

    measured_steps = warmup + iters
    arena_bytes = arena_slot_bytes = arena_slots = 0
    fused_chains = fused_ops = 0
    for plan in runners["compiled"].step_plans:
        bplan = plan._ensure_buffer_plan()
        if bplan is None:
            continue
        arena_bytes += bplan.arena_bytes
        arena_slot_bytes += bplan.arena_slot_bytes
        arena_slots += bplan.arena_slots
        chains = fusion_chains(plan, bplan)
        fused_chains += len(chains)
        fused_ops += sum(c.end - c.start + 1 for c in chains)
    arena_reuse_rate = (
        1.0 - arena_bytes / (measured_steps * arena_slot_bytes)
        if arena_slot_bytes else 0.0
    )

    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "interpreted_steps_per_sec": steps_per_sec["interpreted"],
        "compiled_steps_per_sec": steps_per_sec["compiled"],
        "speedup": speedup,
        "median_block_speedup": median_ratio,
        "losses_bit_identical": identical,
        "arena_bytes": arena_bytes,
        "arena_slot_bytes_per_step": arena_slot_bytes,
        "arena_slots": arena_slots,
        "arena_reuse_rate": arena_reuse_rate,
        "fused_chains": fused_chains,
        "fused_ops": fused_ops,
    }
    _write_report(output, report)

    print(f"\nEngine bench — quickstart hybrid LM "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations)")
    print(f"{'engine':<14}{'steps/sec':>12}")
    for engine in ("interpreted", "compiled"):
        print(f"{engine:<14}{steps_per_sec[engine]:>12.1f}")
    print(f"speedup: {speedup:.2f}x   losses bit-identical: {identical}")
    print(f"arena: {arena_slots} slots, {arena_bytes} bytes preallocated, "
          f"reuse rate {arena_reuse_rate:.3f} over {measured_steps} steps; "
          f"{fused_ops} ops fused into {fused_chains} mega-kernels")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: compiled and interpreted losses diverged")
        return 1
    return 0


def bench_fusion(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
                 seed: int = 0, output: str = "BENCH_fusion.json") -> int:
    """Fused (bucketed) vs unfused dense AllReduce on the quickstart
    workload, plus the simulator's fusion-buffer ablation.

    The functional comparison checks losses stay bit-identical while the
    Transcript carries fewer, larger AllReduce records; the ablation
    prices ResNet-50 (pure-dense AllReduce) under a sweep of fusion
    buffer caps, exposing the per-collective launch-latency term.
    """
    _validate_bench_args(iters, warmup)
    runners = {
        "unfused": _quickstart_runner(cluster, seed, fusion=False),
        "fused": _quickstart_runner(cluster, seed, fusion=True),
    }
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {name: 1.0 / min(times[name]) for name in runners}
    speedup = min(times["unfused"]) / min(times["fused"])
    identical = losses["unfused"] == losses["fused"]

    # One extra iteration per runner with a clean transcript: the fused
    # engine must move the same bytes in fewer, larger messages.
    records = {}
    for name, runner in runners.items():
        runner.transcript.clear()
        runner.step(warmup + iters)
        # Count every collective message, intra-machine included, so the
        # fused-vs-unfused comparison stays meaningful on one machine.
        transfers = runner.transcript.filter("allreduce",
                                             network_only=False)
        records[name] = {
            "messages": len(transfers),
            "bytes": int(sum(t.nbytes for t in transfers)),
        }

    # Performance-plane ablation: iteration time vs fusion buffer cap.
    # Overlap is disabled for the sweep so the per-collective launch term
    # is visible in iteration_time (with the default ar_overlap, ResNet's
    # compute hides the whole collective phase at this scale).
    from repro.baselines import horovod_plan
    from repro.cluster.costmodel import DEFAULT_COST_MODEL
    from repro.cluster.simulator import simulate_iteration

    from repro.nn.profiles import resnet50_profile

    profile = resnet50_profile()
    base_plan = horovod_plan(profile)
    sweep_cost = DEFAULT_COST_MODEL.with_overrides(ar_overlap=0.0)
    ablation = []
    for buffer_mb in (0.0, 1.0, 4.0, 16.0, 64.0):
        breakdown = simulate_iteration(
            profile, base_plan.with_fusion(buffer_mb), cluster, sweep_cost)
        ablation.append({
            "fusion_buffer_mb": buffer_mb,
            "num_buckets": breakdown.num_ar_buckets,
            "allreduce_raw_time": breakdown.allreduce_raw_time,
            "allreduce_time": breakdown.allreduce_time,
            "iteration_time": breakdown.iteration_time,
        })

    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "unfused_steps_per_sec": steps_per_sec["unfused"],
        "fused_steps_per_sec": steps_per_sec["fused"],
        "speedup": speedup,
        "losses_bit_identical": identical,
        "allreduce_records": records,
        "simulated_ablation": {
            "model": profile.name,
            "plan": base_plan.name,
            "cost_overrides": {"ar_overlap": 0.0},
            "sweep": ablation,
        },
    }
    _write_report(output, report)

    print(f"\nFusion bench — quickstart hybrid LM "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations)")
    print(f"{'engine':<14}{'steps/sec':>12}{'AR msgs/iter':>14}")
    for name in ("unfused", "fused"):
        print(f"{name:<14}{steps_per_sec[name]:>12.1f}"
              f"{records[name]['messages']:>14}")
    print(f"speedup: {speedup:.2f}x   losses bit-identical: {identical}")
    print(f"\nSimulated {profile.name} AllReduce vs fusion buffer "
          f"({cluster.num_machines}x{cluster.gpus_per_machine}):")
    print(f"{'buffer MB':>10}{'buckets':>9}{'AR time':>10}{'iter time':>11}")
    for row in ablation:
        print(f"{row['fusion_buffer_mb']:>10}{row['num_buckets']:>9}"
              f"{row['allreduce_time'] * 1e3:>9.2f}m"
              f"{row['iteration_time'] * 1e3:>10.2f}m")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: fused and unfused losses diverged")
        return 1
    if records["fused"]["bytes"] != records["unfused"]["bytes"]:
        print("ERROR: fused and unfused AllReduce byte totals diverged")
        return 1
    return 0


def bench_elastic(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
                  seed: int = 0,
                  output: str = "BENCH_elastic.json") -> int:
    """Goodput under a failure schedule vs a fault-free elastic run.

    Trains the quickstart workload twice with the elastic runtime (same
    checkpoint cadence): once fault-free and once under a deterministic
    FaultPlan (a worker kill mid-run plus a NIC-degradation window).
    Recovery restores the last checkpoint and replays, so the faulted
    run's per-iteration losses must stay bit-identical to the fault-free
    run -- the differential check -- while its goodput (distinct
    iterations per second) drops by the replay + recovery overhead.  A
    planned shrink rescale is timed as well, and the performance plane
    prices the same schedule through ``simulate_goodput``.

    ``warmup`` iterations train (and absorb plan-compile cost) before
    the timed window; the fault schedule is anchored inside the window.
    """
    _validate_bench_args(iters, warmup)
    from repro.cluster.faults import FaultPlan, NicDegradation, WorkerFailure
    from repro.cluster.simulator import simulate_goodput, simulate_rescale
    from repro.core.hybrid import hybrid_plan
    from repro.nn.profiles import lm_profile

    checkpoint_every = max(2, iters // 8)
    kill_at = warmup + iters // 2
    degrade_at = warmup + max(1, iters // 4)
    fault_plan = FaultPlan(
        failures=(WorkerFailure(kill_at, worker=1),),
        degradations=(NicDegradation(degrade_at, machine=0, factor=0.25,
                                     duration=3),),
    )

    def timed_run(runner):
        for i in range(warmup):
            runner.step(i)
        start = time.perf_counter()
        results = runner.run_elastic(iters, start_iteration=warmup)
        return results, time.perf_counter() - start

    clean = _quickstart_elastic(cluster, seed, checkpoint_every)
    clean_results, clean_time = timed_run(clean)

    faulted = _quickstart_elastic(cluster, seed, checkpoint_every,
                                  fault_plan=fault_plan)
    faulted_results, faulted_time = timed_run(faulted)

    identical = ([r.replica_losses for r in clean_results]
                 == [r.replica_losses for r in faulted_results])
    goodput_clean = iters / clean_time
    goodput_faulted = iters / faulted_time
    recoveries = faulted.recovery_log

    # Planned rescale downtime: shrink the fault-free runner by one
    # machine (when it has one to give) and time the migration.
    rescale_report = None
    if cluster.num_machines > 1:
        start = time.perf_counter()
        clean.rescale(cluster.without_machine(cluster.num_machines - 1))
        rescale_wall = time.perf_counter() - start
        note = clean.transcript.events("elastic/rescale")[-1]
        rescale_report = {
            "old_replicas": note.get("old_replicas"),
            "new_replicas": note.get("new_replicas"),
            "plans_compiled": note.get("plans_compiled"),
            "wall_time": rescale_wall,
        }

    # Performance-plane pricing of the same scenario shape on the paper's
    # LM inventory.
    profile = lm_profile()
    sim_plan = hybrid_plan(profile, 64)
    sim_total, sim_every = 200, 10
    sim_faults = FaultPlan(
        failures=(WorkerFailure(sim_total // 2, worker=1),),
        degradations=(NicDegradation(sim_total // 4, machine=0,
                                     factor=0.25, duration=10),),
    )
    sim = simulate_goodput(profile, sim_plan, cluster, sim_total,
                           checkpoint_every=sim_every, faults=sim_faults)
    sim_rescale = simulate_rescale(sim_plan, cluster,
                                   cluster.scaled(max(1,
                                                      cluster.num_machines
                                                      - 1)))

    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "checkpoint_every": checkpoint_every,
        "fault_plan": {
            "kill": {"iteration": kill_at, "worker": 1},
            "nic_degradation": {"iteration": degrade_at, "machine": 0,
                                "factor": 0.25, "duration": 3},
        },
        "goodput_iters_per_sec": {"fault_free": goodput_clean,
                                  "faulted": goodput_faulted},
        "goodput_fraction": goodput_faulted / goodput_clean,
        "losses_bit_identical": identical,
        "recoveries": recoveries,
        "rescale": rescale_report,
        "simulated": {
            "model": profile.name,
            "plan": sim_plan.name,
            "iterations": sim_total,
            "checkpoint_every": sim_every,
            "goodput_units_per_sec": sim.units_per_second,
            "fault_free_units_per_sec": sim.fault_free_units_per_second,
            "goodput_fraction": sim.goodput_fraction,
            "downtime_sec": sim.downtime,
            "replayed_iterations": sim.replayed_iterations,
            "num_degraded_iterations": sim.num_degraded_iterations,
            "rescale_downtime_sec": sim_rescale.downtime,
        },
    }
    _write_report(output, report)

    print(f"\nElastic bench — quickstart hybrid LM "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations, "
          f"checkpoint every {checkpoint_every})")
    print(f"{'run':<14}{'goodput it/s':>14}{'recoveries':>12}")
    print(f"{'fault-free':<14}{goodput_clean:>14.1f}{0:>12}")
    print(f"{'faulted':<14}{goodput_faulted:>14.1f}{len(recoveries):>12}")
    print(f"goodput fraction: {goodput_faulted / goodput_clean:.2f}   "
          f"losses bit-identical: {identical}")
    if rescale_report is not None:
        print(f"rescale {rescale_report['old_replicas']}->"
              f"{rescale_report['new_replicas']} replicas: "
              f"{rescale_report['wall_time'] * 1e3:.1f}ms, "
              f"{rescale_report['plans_compiled']} plans recompiled")
    print(f"simulated {profile.name} goodput fraction under faults: "
          f"{sim.goodput_fraction:.3f} "
          f"(downtime {sim.downtime:.1f}s over {sim_total} iters)")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: faulted and fault-free losses diverged")
        return 1
    return 0


def _bench_matrix_models():
    """The four evaluation archs at test scale, ready for a runner."""
    from repro.graph.gradients import gradients
    from repro.nn.models import (
        build_inception,
        build_lm,
        build_nmt,
        build_resnet,
    )
    from repro.nn.optimizers import GradientDescentOptimizer

    def _finish(model):
        with model.graph.as_default():
            gvs = gradients(model.loss)
            GradientDescentOptimizer(0.1).update(gvs)
        return model

    return {
        "lm": lambda: _finish(build_lm(
            batch_size=4, vocab_size=40, seq_len=3, emb_dim=8, hidden=10,
            num_partitions=3, seed=0)),
        "nmt": lambda: _finish(build_nmt(
            batch_size=4, src_vocab=30, tgt_vocab=30, src_len=2, tgt_len=2,
            emb_dim=6, hidden=6, num_partitions=2, seed=1)),
        "resnet": lambda: _finish(build_resnet(
            batch_size=4, num_features=8, num_classes=3, width=8,
            num_blocks=1, seed=0)),
        "inception": lambda: _finish(build_inception(
            batch_size=4, num_features=8, num_classes=3, width=8,
            num_modules=1, seed=0)),
    }


def _bench_plan_builders():
    from repro.core.transform.plan import (
        ar_graph_plan,
        hybrid_graph_plan,
        ps_graph_plan,
    )

    return {
        "hybrid": lambda g: hybrid_graph_plan(g, fusion=True),
        "ps": lambda g: ps_graph_plan(g),
        "ar": lambda g: ar_graph_plan(g),
    }


def _parallel_timing_runner(cluster: ClusterSpec, seed: int, backend: str):
    """The timed workload: an LM big enough that per-replica compute
    dominates the multiprocess backend's messaging overhead."""
    from repro.core.runner import DistributedRunner
    from repro.core.transform.plan import hybrid_graph_plan
    from repro.graph.gradients import gradients
    from repro.nn.models import build_lm
    from repro.nn.optimizers import GradientDescentOptimizer

    model = build_lm(batch_size=32, vocab_size=1500, seq_len=10, emb_dim=96,
                     hidden=192, num_partitions=4, seed=0)
    with model.graph.as_default():
        gvs = gradients(model.loss)
        GradientDescentOptimizer(0.5).update(gvs)
    plan = hybrid_graph_plan(model.graph, fusion=True)
    return DistributedRunner(model, cluster, plan, seed=seed,
                             backend=backend)


def bench_parallel(cluster: ClusterSpec, iters: int = 20, warmup: int = 3,
                   seed: int = 0, transport: str = "shm",
                   output: str = "BENCH_parallel.json") -> int:
    """Multiprocess backend vs the in-process engine.

    Two parts.  The *bit-identity matrix* trains every evaluation arch
    (ResNet/Inception/NMT/LM) under every plan family (hybrid, PS, AR)
    for a few iterations on both backends and asserts the per-step
    losses are identical bit for bit -- the differential guarantee that
    makes the backends interchangeable.  The *timing* part trains a
    compute-heavy LM with both backends and reports wall-clock
    steps/sec; on a machine with >= 4 cores the multiprocess backend
    must reach at least 1.5x the in-process throughput (on smaller
    hosts -- CI runners -- the speedup is reported informationally,
    since there is no hardware parallelism to win).

    *transport* picks the multiprocess message plane (``shm``,
    ``queue``, or ``tcp`` on loopback -- the CI ``tcp-loopback`` job
    runs the full matrix over sockets).  The speedup and
    prediction gates are enforced for the shm transport only; other
    planes report their numbers informationally, since their constants
    are not what the headline goodput model calibrates.
    """
    import os

    from repro.core.backend import MultiprocBackend
    from repro.core.runner import DistributedRunner

    _validate_bench_args(iters, warmup)
    cpu_count = os.cpu_count() or 1

    matrix = []
    matrix_identical = True
    matrix_iters = 3
    for model_key, model_builder in _bench_matrix_models().items():
        for plan_key, plan_builder in _bench_plan_builders().items():
            losses = {}
            for backend in ("inproc", "multiproc"):
                model = model_builder()
                runner = DistributedRunner(
                    model, cluster, plan_builder(model.graph), seed=seed,
                    backend=(backend if backend == "inproc"
                             else MultiprocBackend(transport=transport)))
                losses[backend] = [runner.step(i).replica_losses
                                   for i in range(matrix_iters)]
                runner.close()
            identical = losses["inproc"] == losses["multiproc"]
            matrix_identical = matrix_identical and identical
            matrix.append({"model": model_key, "plan": plan_key,
                           "losses_bit_identical": identical})

    runners = {
        "inproc": _parallel_timing_runner(cluster, seed, "inproc"),
        "multiproc": _parallel_timing_runner(
            cluster, seed, MultiprocBackend(transport=transport)),
    }
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {name: 1.0 / min(times[name]) for name in runners}
    speedup = min(times["inproc"]) / min(times["multiproc"])
    timing_identical = losses["inproc"] == losses["multiproc"]
    mp_backend = runners["multiproc"].backend
    transport_stats = mp_backend.transport.stats
    transport_kind = mp_backend.transport_kind
    num_workers = mp_backend.transport.num_workers
    serialization = dict(mp_backend.serialization_totals)
    runners["multiproc"].close()
    speedup_required = cpu_count >= 4 and transport == "shm"
    speedup_ok = (not speedup_required) or speedup >= 1.5

    # Calibrate the cost model's host-transport constants from the run's
    # own telemetry and check the simulated multiprocess goodput against
    # the measurement.  The prediction only means something when the
    # replicas actually ran in parallel, so the 20% tracking band is
    # asserted on >= 4-core hosts only (same gate as the speedup).
    from repro.cluster.costmodel import (
        fit_transport_constants,
        predict_multiproc_goodput,
    )

    measured_steps = max(1, warmup + iters)
    fitted = fit_transport_constants([serialization])
    bulk_wire = max(0.0, (serialization.get("wire_bytes", 0)
                          - serialization.get("pickle_bytes", 0)))
    predicted = predict_multiproc_goodput(
        steps_per_sec["inproc"], num_workers, cpu_count,
        serialization.get("pickle_bytes", 0) / measured_steps,
        serialization.get("shm_bytes", 0) / measured_steps,
        bulk_wire / measured_steps,
        fitted,
    )
    measured = steps_per_sec["multiproc"]
    prediction_error = (abs(predicted - measured) / measured
                        if measured > 0 else None)
    prediction_enforced = speedup_required
    prediction_ok = (not prediction_enforced
                     or (prediction_error is not None
                         and prediction_error <= 0.20))

    report = {
        "workload": "parallel_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "cpu_count": cpu_count,
        "inproc_steps_per_sec": steps_per_sec["inproc"],
        "multiproc_steps_per_sec": steps_per_sec["multiproc"],
        "speedup": speedup,
        "speedup_enforced": speedup_required,
        "losses_bit_identical": timing_identical and matrix_identical,
        "timing_losses_bit_identical": timing_identical,
        "matrix": matrix,
        "controller_transport": transport_stats,
        "transport_kind": transport_kind,
        "serialization": serialization,
        "fitted_c_serialize": fitted.c_serialize,
        "fitted_shm_bw": fitted.shm_bw,
        "fitted_tcp_bw": fitted.tcp_bw,
        "predicted_multiproc_steps_per_sec": predicted,
        "prediction_error": prediction_error,
        "prediction_enforced": prediction_enforced,
    }
    _write_report(output, report)

    print(f"\nParallel bench — {cluster.total_gpus} replicas, "
          f"{iters} iterations, {cpu_count} cores")
    print(f"{'backend':<14}{'steps/sec':>12}")
    for name in ("inproc", "multiproc"):
        print(f"{name:<14}{steps_per_sec[name]:>12.1f}")
    print(f"speedup: {speedup:.2f}x "
          f"({'enforced' if speedup_required else 'informational: < 4 cores'})"
          f"   losses bit-identical: {timing_identical and matrix_identical}")
    bad = [row for row in matrix if not row["losses_bit_identical"]]
    print(f"bit-identity matrix: {len(matrix) - len(bad)}/{len(matrix)} "
          "arch x plan combinations identical")
    print(f"transport: {transport_kind} — "
          f"shm {serialization.get('shm_bytes', 0):,.0f} B / "
          f"wire {serialization.get('wire_bytes', 0):,.0f} B / "
          f"pickle {serialization.get('pickle_bytes', 0):,.0f} B, "
          f"{serialization.get('fallbacks', 0):.0f} ring fallbacks")
    if prediction_error is not None:
        print(f"cost model: predicted {predicted:.1f} steps/sec "
              f"vs measured {measured:.1f} "
              f"({prediction_error * 100:.0f}% off, "
              f"{'enforced' if prediction_enforced else 'informational'})")
    print(f"wrote {output}")
    if not (timing_identical and matrix_identical):
        print("ERROR: multiproc and inproc losses diverged")
        return 1
    if not speedup_ok:
        print("ERROR: multiproc speedup below 1.5x on a >= 4-core machine")
        return 1
    if not prediction_ok:
        print("ERROR: calibrated cost model tracks measured multiproc "
              "goodput worse than 20% on a >= 4-core machine")
        return 1
    return 0


def bench_network(iters: int = 50, payload_mb: float = 4.0,
                  transfers: int = 8,
                  output: str = "BENCH_network.json") -> int:
    """Link microbench: measure the TcpTransport's loopback constants.

    Two measurements through one real socket pair (controller endpoint
    <-> worker-0 endpoint of a :class:`~repro.comm.tcp.TcpTransport`):

    * **latency** -- *iters* small ping/pong round trips; the one-way
      frame latency is half the mean round trip.
    * **bandwidth** -- *transfers* payloads of *payload_mb* MB pushed
      one way and received; bytes moved over elapsed wall clock,
      including the freeze copy, so it prices exactly what a training
      step pays per byte.

    The measurements feed :func:`~repro.cluster.costmodel.
    fit_network_constants`, turning the cost model's assumed ``tcp_bw``
    / ``tcp_latency`` into measured ones -- the calibration loop the
    ROADMAP asks for.  Run on a real NIC (not loopback) the same
    numbers calibrate a cross-host deployment.
    """
    import numpy as np

    from repro.cluster.costmodel import fit_network_constants
    from repro.comm.tcp import TcpTransport
    from repro.comm.transport import CONTROLLER

    if iters < 1 or transfers < 1 or payload_mb <= 0:
        raise SystemExit("bench --network: iters/transfers/payload must "
                         "be positive")
    transport = TcpTransport(1)
    try:
        # Warm both endpoints (connection setup, thread spin-up).
        for _ in range(3):
            transport.send(CONTROLLER, 0, ("ping",), 0)
            transport.recv(0, CONTROLLER, ("ping",), timeout=30.0)
            transport.send(0, CONTROLLER, ("pong",), 0)
            transport.recv(CONTROLLER, 0, ("pong",), timeout=30.0)

        start = time.perf_counter()
        for i in range(iters):
            transport.send(CONTROLLER, 0, ("ping",), i)
            transport.recv(0, CONTROLLER, ("ping",), timeout=30.0)
            transport.send(0, CONTROLLER, ("pong",), i)
            transport.recv(CONTROLLER, 0, ("pong",), timeout=30.0)
        latency = (time.perf_counter() - start) / iters / 2.0

        payload = np.zeros(int(payload_mb * (1 << 20) // 8),
                           dtype=np.float64)
        nbytes = int(payload.nbytes)
        start = time.perf_counter()
        for i in range(transfers):
            transport.send(CONTROLLER, 0, ("bulk", i), payload)
            got = transport.recv(0, CONTROLLER, ("bulk", i), timeout=60.0)
        elapsed = time.perf_counter() - start
        bandwidth = transfers * nbytes / elapsed
        assert got.nbytes == nbytes
        counters = dict(transport.counters)
    finally:
        transport.close()

    measurement = {
        "measured_latency_s": latency,
        "measured_bandwidth_bytes_per_s": bandwidth,
    }
    fitted = fit_network_constants(measurement)
    report = {
        "workload": "network_loopback",
        "roundtrips": iters,
        "transfers": transfers,
        "payload_bytes": nbytes,
        **measurement,
        "fitted_tcp_latency": fitted.tcp_latency,
        "fitted_tcp_bw": fitted.tcp_bw,
        "wire_bytes": counters.get("wire_bytes", 0),
        "wire_msgs": counters.get("wire_msgs", 0),
    }
    _write_report(output, report)

    print(f"\nNetwork bench — {iters} round trips, "
          f"{transfers} x {payload_mb:.0f} MB transfers")
    print(f"latency:   {latency * 1e6:,.1f} us one-way")
    print(f"bandwidth: {bandwidth / 1e9:.2f} GB/s "
          f"({bandwidth * 8 / 1e9:.1f} Gb/s)")
    from repro.cluster.costmodel import DEFAULT_COST_MODEL

    print(f"cost model: tcp_latency {fitted.tcp_latency * 1e6:,.1f} us, "
          f"tcp_bw {fitted.tcp_bw / 1e9:.2f} GB/s (assumed defaults: "
          f"{DEFAULT_COST_MODEL.tcp_latency * 1e6:,.1f} us, "
          f"{DEFAULT_COST_MODEL.tcp_bw / 1e9:.2f} GB/s)")
    print(f"wrote {output}")
    return 0


def cli_launch(args, cluster: ClusterSpec) -> int:
    """``repro.cli launch``: one process of a rendezvous-bootstrapped
    TCP fleet.

    ``--rank R`` (R >= 0) runs worker rank R: bind a listener, join the
    ``--rendezvous tcp://host:port`` bootstrap, then serve the standard
    command loop until the controller's shutdown.  ``--rank -1`` runs
    the controller: start the rendezvous server at that address, wait
    for ``--world-size`` workers to join and barrier, then train the
    quickstart workload on the remote fleet for ``--iters`` steps.
    ``--check-identity`` additionally trains the same workload in
    process and asserts the per-step losses match bit for bit.
    """
    if args.rendezvous is None or args.rank is None \
            or args.world_size is None:
        raise SystemExit("launch: --rendezvous, --rank and --world-size "
                         "are required")
    if args.world_size < 1:
        raise SystemExit("launch: --world-size must be >= 1")
    if args.rank >= args.world_size:
        raise SystemExit("launch: --rank must be < --world-size")

    if args.rank >= 0:
        from repro.core.backend import run_remote_worker

        run_remote_worker(args.rendezvous, args.rank, args.world_size,
                          listen_host=args.listen_host,
                          join_timeout=args.join_timeout)
        return 0

    # Controller role.  The cluster shape must hand every replica to
    # one launched worker.
    if cluster.total_gpus != args.world_size:
        raise SystemExit(
            f"launch: cluster has {cluster.total_gpus} replicas but "
            f"--world-size is {args.world_size}; pass matching "
            f"--machines/--gpus")
    from repro.core.backend import RemoteWorkerBackend
    from repro.core.runner import DistributedRunner
    from repro.core.transform.plan import hybrid_graph_plan

    iters = args.iters
    reference = None
    if args.check_identity:
        runner = _quickstart_runner(cluster, args.seed)
        reference = [runner.step(i).replica_losses for i in range(iters)]
        runner.close()

    model = _quickstart_model()
    plan = hybrid_graph_plan(model.graph)
    backend = RemoteWorkerBackend(args.rendezvous,
                                  start_timeout=args.join_timeout,
                                  listen_host=args.listen_host)
    runner = DistributedRunner(model, cluster, plan, seed=args.seed,
                               backend=backend)
    try:
        remote_losses = [runner.step(i).replica_losses
                         for i in range(iters)]
        counters = dict(backend.serialization_totals)
    finally:
        runner.close()

    identical = (reference == remote_losses
                 if reference is not None else None)
    report = {
        "workload": "launch_quickstart",
        "world_size": args.world_size,
        "iterations": iters,
        "final_mean_loss": (sum(remote_losses[-1])
                            / len(remote_losses[-1])),
        "losses_bit_identical": identical,
        "wire_bytes": counters.get("wire_bytes", 0),
        "wire_msgs": counters.get("wire_msgs", 0),
    }
    print(json.dumps(report, indent=2))
    if identical is False:
        print("ERROR: remote fleet losses diverged from inproc")
        return 1
    return 0


def _compression_runner(cluster: ClusterSpec, seed: int,
                        compression=None, ratio: float = 0.1):
    """The quickstart LM under the pure-collective (AR) plan family --
    sparse embedding shards on AllGatherv, dense LSTM/softmax on fused
    AllReduce -- so both compressed collective paths are exercised."""
    from repro.core.runner import DistributedRunner
    from repro.core.transform.plan import ar_graph_plan

    model = _quickstart_model()
    plan = ar_graph_plan(model.graph, fusion=True, compression=compression,
                         compression_ratio=ratio)
    return DistributedRunner(model, cluster, plan, seed=seed)


def _trajectory_checks(base: list, compressed: list):
    """(monotone_improving, max_rise, final_gap) of a loss trajectory.

    ``monotone_improving`` tolerates the sub-1e-3 wiggles stochastic
    minibatches produce even without compression; the net trajectory
    must improve and no single step may rise materially.
    """
    rises = [b - a for a, b in zip(compressed, compressed[1:])]
    max_rise = max(rises) if rises else 0.0
    scale = max(abs(compressed[0]), 1e-12)
    monotone = (compressed[-1] < compressed[0]
                and max_rise <= 2e-3 * scale)
    final_gap = abs(compressed[-1] - base[-1]) / max(abs(base[-1]), 1e-12)
    return monotone, max_rise, final_gap


def bench_compression(cluster: ClusterSpec, iters: int = 40,
                      warmup: int = 5, seed: int = 0, ratio: float = 0.1,
                      output: str = "BENCH_compression.json") -> int:
    """Gradient compression (top-k + fp16) vs exact collectives.

    Trains the quickstart LM under the AR plan family uncompressed, with
    top-k (error feedback) at *ratio*, and with fp16 quantization, then
    checks the compression contract end to end: top-k must cut bytes on
    the wire by at least 2x while the loss trajectory stays
    monotone-improving (error feedback re-injects dropped mass) and
    lands within tolerance of the exact run; fp16 losses must track the
    exact run tightly, and an fp16 compress/decompress round trip of an
    fp16-representable matrix must be bit-exact.  The performance plane
    prices the same codecs on the paper's LM inventory and demonstrates
    the bandwidth-budget plan picker.
    """
    import numpy as np

    from repro.comm.compression import decompress, make_compressor

    _validate_bench_args(iters, warmup)
    runners = {
        "uncompressed": _compression_runner(cluster, seed),
        "topk": _compression_runner(cluster, seed, "topk", ratio),
        "fp16": _compression_runner(cluster, seed, "fp16"),
    }
    times, losses = _interleaved_measure(runners, iters, warmup)
    steps_per_sec = {name: 1.0 / min(times[name]) for name in runners}
    mean_losses = {
        name: [float(np.mean(step)) for step in losses[name]]
        for name in runners
    }

    # Bytes on the wire: one extra iteration per runner with a clean
    # transcript; every recorded transfer counts (collectives plus any
    # cross-machine edges), intra-machine included so the comparison is
    # meaningful on single-machine clusters too.
    nbytes = {}
    for name, runner in runners.items():
        runner.transcript.clear()
        runner.step(warmup + iters)
        nbytes[name] = int(sum(
            t.nbytes for t in runner.transcript.filter(None,
                                                       network_only=False)))
    reductions = {name: nbytes["uncompressed"] / nbytes[name]
                  for name in ("topk", "fp16")}

    topk_monotone, topk_max_rise, topk_gap = _trajectory_checks(
        mean_losses["uncompressed"], mean_losses["topk"])
    topk_within_tolerance = topk_gap <= 0.05
    fp16_dev = max(
        abs(a - b) / max(abs(a), 1e-12)
        for a, b in zip(mean_losses["uncompressed"], mean_losses["fp16"])
    )
    fp16_within_tolerance = fp16_dev <= 1e-3

    # The quantization contract: decompressing an fp16-representable
    # payload reproduces it bit for bit.
    rng = np.random.default_rng(seed)
    representable = rng.standard_normal((64, 33)).astype(
        np.float16).astype(np.float32)
    roundtrip = decompress(make_compressor("fp16").encode_flat(representable))
    fp16_bit_exact = bool(np.array_equal(roundtrip, representable))

    # Performance plane: the paper's LM inventory under the same codecs,
    # plus the bandwidth-budget plan picker the partition search can use.
    from repro.baselines import horovod_plan
    from repro.cluster.simulator import (
        pick_plan_under_budget,
        plan_wire_bytes,
        simulate_iteration,
    )
    from repro.nn.profiles import lm_profile

    profile = lm_profile()
    base_plan = horovod_plan(profile).with_fusion(4.0)
    candidates = {
        "uncompressed": base_plan,
        "topk": base_plan.with_compression("topk", ratio),
        "fp16": base_plan.with_compression("fp16"),
    }
    simulated = {}
    for name, plan in candidates.items():
        b = simulate_iteration(profile, plan, cluster)
        simulated[name] = {
            "raw_bytes": b.collective_raw_bytes,
            "wire_bytes": b.collective_wire_bytes,
            "compress_time": b.compress_time,
            "iteration_time": b.iteration_time,
        }
    budget = 0.5 * plan_wire_bytes(
        simulate_iteration(profile, base_plan, cluster))
    picked = pick_plan_under_budget(profile, candidates.values(), cluster,
                                    budget)

    report = {
        "workload": "quickstart_hybrid_lm_ar_plan",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "compression_ratio": ratio,
        "uncompressed_steps_per_sec": steps_per_sec["uncompressed"],
        "topk_steps_per_sec": steps_per_sec["topk"],
        "fp16_steps_per_sec": steps_per_sec["fp16"],
        "bytes_per_iteration": nbytes,
        "topk_bytes_reduction": reductions["topk"],
        "fp16_bytes_reduction": reductions["fp16"],
        "topk_monotone_improving": topk_monotone,
        "topk_max_consecutive_rise": topk_max_rise,
        "topk_final_loss_gap": topk_gap,
        "topk_within_tolerance": topk_within_tolerance,
        "fp16_max_rel_loss_dev": fp16_dev,
        "fp16_within_tolerance": fp16_within_tolerance,
        "fp16_roundtrip_bit_exact": fp16_bit_exact,
        "simulated": {
            "model": profile.name,
            "plan": base_plan.name,
            "codecs": simulated,
            "budget_bytes": budget,
            "picked_under_budget": (picked.compression or "uncompressed"
                                    if picked is not None else None),
        },
    }
    _write_report(output, report)

    print(f"\nCompression bench — quickstart LM, AR plan "
          f"({cluster.total_gpus} simulated GPUs, {iters} iterations, "
          f"top-k ratio {ratio})")
    print(f"{'codec':<14}{'steps/sec':>12}{'bytes/iter':>12}{'reduction':>11}")
    for name in ("uncompressed", "topk", "fp16"):
        red = ("" if name == "uncompressed"
               else f"{reductions[name]:>10.2f}x")
        print(f"{name:<14}{steps_per_sec[name]:>12.1f}"
              f"{nbytes[name]:>12}{red:>11}")
    print(f"top-k: monotone-improving={topk_monotone} "
          f"final-loss gap {topk_gap:.2e}")
    print(f"fp16: max rel loss dev {fp16_dev:.2e}   "
          f"round trip bit-exact: {fp16_bit_exact}")
    print(f"simulated {profile.name}: picked "
          f"{report['simulated']['picked_under_budget']!r} under a "
          f"{budget / 1e6:.1f} MB/iter budget")
    print(f"wrote {output}")

    failures = []
    if reductions["topk"] < 2.0:
        failures.append(
            f"top-k bytes reduction {reductions['topk']:.2f}x < 2x")
    if not (topk_monotone and topk_within_tolerance):
        failures.append("top-k loss trajectory violates the convergence "
                        "contract")
    if not fp16_within_tolerance:
        failures.append(f"fp16 losses deviate {fp16_dev:.2e} > 1e-3")
    if not fp16_bit_exact:
        failures.append("fp16 round trip is not bit-exact on "
                        "representable values")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


def bench_serve(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
                seed: int = 0, output: str = "BENCH_serve.json") -> int:
    """The serving plane: batched QPS, request latency, hot reload.

    Trains the quickstart LM briefly under an ElasticRunner, snapshots
    it into an :class:`~repro.serve.InferenceServer`, and measures the
    batch-size/throughput curve by replaying the compiled forward plan
    at batch sizes 1/2/4/8 (``batched_speedup`` is QPS at batch 8 over
    batch 1 -- the payoff of coalescing requests into one replay).
    Request latency (p50/p99) is measured through the real front end:
    single-example submissions coalesced by the batcher under its
    ``max_delay_ms`` window.  Two exactness contracts ride along:
    batched rows must be bit-identical to per-example execution, and a
    hot reload from a further-trained runner must leave the server
    bit-identical to a cold server restored from the same state.  The
    performance plane prices the same batch sweep on the paper's LM
    inventory via :func:`~repro.cluster.simulator.simulate_serving`.

    On hosts with >= 4 cores the speedup contract is enforced: batched
    QPS at batch 8 must be at least 1.5x unbatched.  Smaller hosts
    record ``batched_speedup_ok: null`` and skip the gate.
    """
    import functools
    import os

    import numpy as np

    from repro.cluster.simulator import simulate_serving
    from repro.nn.profiles import lm_profile
    from repro.serve import InferenceServer

    _validate_bench_args(iters, warmup)
    model = _quickstart_model()
    runner = _quickstart_elastic(cluster, seed, checkpoint_every=4)
    for i in range(4):
        runner.step(i)
    server = InferenceServer.from_runner(model, runner, max_batch=8,
                                         max_delay_ms=2.0)

    # Throughput curve: the stacked-batch bypass path, one compiled plan
    # per batch size through the session LRU.  Best-of-N timing, like
    # every other family.
    batch_sizes = (1, 2, 4, 8)
    qps_by_batch = {}
    for size in batch_sizes:
        columns = model.dataset.batch(size, 0)
        for _ in range(max(2, warmup)):
            server.run_batch(columns)
        best = float("inf")
        for _ in range(iters):
            start = time.perf_counter()
            server.run_batch(columns)
            best = min(best, time.perf_counter() - start)
        qps_by_batch[size] = size / best
    batched_speedup = qps_by_batch[8] / qps_by_batch[1]
    cores = os.cpu_count() or 1
    batched_speedup_ok = batched_speedup >= 1.5 if cores >= 4 else None

    # Latency through the real front end: single-example submissions,
    # coalesced by the batcher.  Completion times come from done
    # callbacks, so waiting on one future cannot inflate another's
    # measurement.
    latencies = []

    def _record(future, t0):
        latencies.append(time.monotonic() - t0)

    futures = []
    for round_index in range(max(8, iters)):
        for offset in range(8):
            example = model.dataset.example(
                (round_index * 8 + offset) % len(model.dataset))
            t0 = time.monotonic()
            future = server.submit(example)
            future.add_done_callback(functools.partial(_record, t0=t0))
            futures.append(future)
    for future in futures:
        future.result(timeout=60)
    p50_ms = float(np.percentile(latencies, 50) * 1e3)
    p99_ms = float(np.percentile(latencies, 99) * 1e3)

    # Exactness: a batch of 8 must serve the same bits as 8 singles.
    columns8 = model.dataset.batch(8, 0)
    batched_rows = np.array(server.run_batch(columns8))
    single_rows = np.stack([
        np.array(server.run_batch(tuple(col[i:i + 1] for col in columns8)))[0]
        for i in range(8)
    ])
    batched_bit_identical = bool(np.array_equal(batched_rows, single_rows))

    # Hot reload: train further, publish the live state into the running
    # server, and compare against a cold server restored from the same
    # runner -- bit-for-bit.
    for i in range(4, 8):
        runner.step(i)
    start = time.perf_counter()
    runner.publish_to(server)
    reload_ms = (time.perf_counter() - start) * 1e3
    cold = InferenceServer.from_runner(model, runner)
    hot_rows = np.array(server.run_batch(columns8))
    cold_rows = np.array(cold.run_batch(columns8))
    hot_reload_bit_identical = bool(np.array_equal(hot_rows, cold_rows))
    stale = bool(np.array_equal(hot_rows, batched_rows))
    cold.close()

    batch_log = list(server.batcher.batch_log)
    served = server.requests_served
    server.close()

    simulated = {}
    profile = lm_profile()
    for size in (1, 2, 4, 8, 16, 32):
        b = simulate_serving(profile, cluster, size)
        simulated[size] = {
            "p50_latency_ms": b.p50_latency * 1e3,
            "p99_latency_ms": b.p99_latency * 1e3,
            "qps": b.qps,
        }

    report = {
        "workload": "quickstart_hybrid_lm_serving",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "qps_by_batch": {str(k): v for k, v in qps_by_batch.items()},
        "unbatched_steps_per_sec": qps_by_batch[1],
        "batched_steps_per_sec": qps_by_batch[8] / 8,
        "batched_speedup": batched_speedup,
        "batched_speedup_ok": batched_speedup_ok,
        "p50_latency_ms": p50_ms,
        "p99_latency_ms": p99_ms,
        "requests_served": served,
        "mean_coalesced_batch": (float(np.mean([s for s, _ in batch_log]))
                                 if batch_log else 0.0),
        "batched_bit_identical": batched_bit_identical,
        "hot_reload_bit_identical": hot_reload_bit_identical,
        "hot_reload_changed_output": not stale,
        "hot_reload_ms": reload_ms,
        "simulated": {"model": profile.name, "by_batch": simulated},
    }
    _write_report(output, report)

    print(f"\nServing bench — quickstart LM, compiled forward plan "
          f"({iters} iterations)")
    print(f"{'batch':>6}{'QPS':>12}")
    for size in batch_sizes:
        print(f"{size:>6}{qps_by_batch[size]:>12.1f}")
    print(f"batched speedup (8 vs 1): {batched_speedup:.2f}x   "
          f"p50 {p50_ms:.2f}ms   p99 {p99_ms:.2f}ms")
    print(f"batched bit-identical: {batched_bit_identical}   "
          f"hot reload bit-identical: {hot_reload_bit_identical} "
          f"({reload_ms:.2f}ms)")
    print(f"wrote {output}")

    failures = []
    if batched_speedup_ok is False:
        failures.append(
            f"batched QPS speedup {batched_speedup:.2f}x < 1.5x at batch 8 "
            f"on a {cores}-core host")
    if not batched_bit_identical:
        failures.append("batched rows differ from per-example execution")
    if not hot_reload_bit_identical:
        failures.append("hot reload differs from a cold restore")
    if stale:
        failures.append("hot reload left the old weight generation live")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


def bench_autopilot(cluster: ClusterSpec, iters: int = 40, warmup: int = 5,
                    seed: int = 0,
                    output: str = "BENCH_autopilot.json") -> int:
    """Adaptive replanning vs a static plan under NIC degradation.

    Trains the quickstart workload twice on an elastic runner whose
    functional plane *pays* for a scripted NIC degradation
    (``emulate_nic_bw`` calibrated from a probe run so a degraded step
    costs a known multiple of a clean one): once with the static
    incumbent plan, once with the autopilot controller attached.  The
    controller must measure the degradation through its telemetry
    windows, refit its models, and live-migrate to a cheaper
    configuration (compressed collectives or a shrink that drops the
    degraded machine) -- beating the static run's goodput despite
    paying the migration downtime inside the timed region.

    Contract keys gated by ``bench --check``: ``autopilot_beats_static``
    (goodput strictly above the static incumbent) and
    ``autopilot_no_flapping`` (no A->B->A flip inside the controller's
    cooldown).  The full decision log lands in the report.
    """
    _validate_bench_args(iters, warmup)
    from repro.cluster.faults import FaultPlan, NicDegradation
    from repro.core.api import auto_parallelize
    from repro.core.config import (
        AutopilotConfig,
        ElasticConfig,
        ParallaxConfig,
    )

    # The decision loop needs room: a clean calibration window, a
    # tainted window to trigger on, and a post-migration stretch for the
    # payback to land in.
    iters = max(16, iters)
    warmup = max(2, warmup)
    window_steps = max(2, min(4, warmup))
    checkpoint_every = max(2, iters // 8)
    factor = 0.25
    degraded_machine = max(0, cluster.num_machines - 1)
    fault_plan = FaultPlan(degradations=(
        NicDegradation(warmup, machine=degraded_machine, factor=factor,
                       duration=iters),
    ))

    def build(autopilot: bool, faults=None, nic_bw=None):
        cfg = ParallaxConfig(
            search_partitions=False, alpha_measure_batches=0, seed=seed,
            elastic=ElasticConfig(enabled=True,
                                  checkpoint_every=checkpoint_every,
                                  fault_plan=faults,
                                  emulate_nic_bw=nic_bw),
            autopilot=AutopilotConfig(enabled=autopilot,
                                      window_steps=window_steps),
        )
        return auto_parallelize(_quickstart_model, cluster, cfg)

    # Probe: clean step time and wire bytes of the incumbent plan, to
    # size the emulated degradation so one degraded step costs a fixed
    # multiple of a clean one on this host.
    probe = build(autopilot=False)
    probe_iters = max(4, window_steps)
    for i in range(warmup):
        probe.step(i)
    cursor = probe.transcript.cursor()
    start = time.perf_counter()
    for i in range(warmup, warmup + probe_iters):
        probe.step(i)
    clean_step_time = (time.perf_counter() - start) / probe_iters
    transfers, _ = probe.transcript.since(cursor)
    bytes_per_step = sum(t.nbytes for t in transfers
                         if t.is_network) / probe_iters
    # Extra wire time per degraded step: bytes * (1/factor - 1) / bw.
    target_extra = max(0.12, 15.0 * clean_step_time)
    emulate_nic_bw = (bytes_per_step * (1.0 / factor - 1.0)
                      / target_extra) or 1.0

    def timed(runner):
        for i in range(warmup):
            runner.step(i)
        start = time.perf_counter()
        results = runner.fit(iters, start_iteration=warmup)
        return results, time.perf_counter() - start

    static_runner = build(autopilot=False, faults=fault_plan,
                          nic_bw=emulate_nic_bw)
    static_results, static_time = timed(static_runner)

    adaptive = build(autopilot=True, faults=fault_plan,
                     nic_bw=emulate_nic_bw)
    adaptive_results, adaptive_time = timed(adaptive)
    controller = adaptive.autopilot()

    static_goodput = iters / static_time
    autopilot_goodput = iters / adaptive_time
    migrations = controller.migrations
    beats_static = autopilot_goodput > static_goodput
    no_flapping = controller.no_flapping

    report = {
        "workload": "quickstart_hybrid_lm",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "iterations": iters,
        "warmup": warmup,
        "window_steps": window_steps,
        "checkpoint_every": checkpoint_every,
        "degradation": {"iteration": warmup, "machine": degraded_machine,
                        "factor": factor, "duration": iters},
        "clean_step_time": clean_step_time,
        "bytes_per_step": bytes_per_step,
        "emulate_nic_bw": emulate_nic_bw,
        "target_extra_delay": target_extra,
        "static_steps_per_sec": static_goodput,
        "autopilot_steps_per_sec": autopilot_goodput,
        "speedup": (autopilot_goodput / static_goodput
                    if static_goodput else 0.0),
        "num_migrations": len(migrations),
        "final_plan": controller.incumbent.label,
        "autopilot_beats_static": beats_static,
        "autopilot_no_flapping": no_flapping,
        "decisions": controller.decision_summary(),
        "completed_iterations": {"static": len(static_results),
                                 "autopilot": len(adaptive_results)},
    }
    _write_report(output, report)

    print(f"\nAutopilot bench — quickstart LM under a x{1 / factor:.0f} "
          f"NIC degradation on machine {degraded_machine} "
          f"({iters} iterations, windows of {window_steps})")
    print(f"static incumbent: {static_goodput:.1f} steps/s   "
          f"autopilot: {autopilot_goodput:.1f} steps/s   "
          f"({report['speedup']:.2f}x)")
    print(f"migrations: {len(migrations)}   final plan: "
          f"{controller.incumbent.label}   no flapping: {no_flapping}")
    for decision in controller.decision_log:
        print(f"  window {decision.window:>3} iter {decision.iteration:>4} "
              f"{decision.action:<8} {decision.candidate or '-':<28} "
              f"{decision.reason}")
    print(f"wrote {output}")

    failures = []
    if not beats_static:
        failures.append(
            f"autopilot goodput {autopilot_goodput:.1f} steps/s does not "
            f"beat the static incumbent {static_goodput:.1f}")
    if not no_flapping:
        failures.append("controller flapped: A->B->A inside the cooldown")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


# Report keys whose False value marks a broken exactness/conservation
# contract (not a performance number): any of these failing means the
# bench itself detected wrong arithmetic, and ``bench --check`` treats
# that as a hard violation.
_CHECK_CONTRACT_KEYS = (
    "losses_bit_identical",
    "timing_losses_bit_identical",
    "topk_monotone_improving",
    "topk_within_tolerance",
    "fp16_within_tolerance",
    "fp16_roundtrip_bit_exact",
    "verify_all_plans_clean",
    "verify_within_compile_budget",
    "batched_bit_identical",
    "hot_reload_bit_identical",
    "batched_speedup_ok",
    "autopilot_beats_static",
    "autopilot_no_flapping",
)

# Allowed steps/sec drop vs the history reference before --check fails.
_CHECK_MAX_REGRESSION = 0.25


def bench_check(pattern: str = "BENCH_*.json") -> int:
    """The bench-regression gate: current run vs its recorded history.

    For every ``BENCH_*.json`` present, the current (top-level) run is
    held to two contracts.  *Correctness*: every bit-identity /
    bytes-conservation / convergence flag the family records must hold.
    *Performance*: each ``*_steps_per_sec`` number must stay within
    ``_CHECK_MAX_REGRESSION`` of the median of the last five history
    entries that carry the same key (median, so one noisy CI data point
    cannot ratchet the reference).  Only history measured on the same
    kind of host (:func:`_host_fingerprint`) counts as a reference --
    absolute steps/sec from a developer workstation say nothing about a
    hosted CI runner.  Families with no comparable history pass the
    performance check vacuously -- the first run on a host class *is*
    its reference.
    """
    import glob

    paths = sorted(glob.glob(pattern))
    if not paths:
        print(f"bench --check: no reports match {pattern!r}; run "
              "'bench --all' first")
        return 1
    violations = []
    for path in paths:
        try:
            with open(path) as f:
                data = json.load(f)
        except (json.JSONDecodeError, OSError) as exc:
            violations.append(f"{path}: unreadable ({exc})")
            continue
        host = data.get("host", _host_fingerprint())
        history = [h for h in data.get("history", [])
                   if isinstance(h, dict) and h.get("host") == host]
        for key in _CHECK_CONTRACT_KEYS:
            if data.get(key) is False:
                violations.append(f"{path}: {key} is False")
        records = data.get("allreduce_records")
        if isinstance(records, dict) and len(records) == 2:
            totals = {name: rec.get("bytes")
                      for name, rec in records.items()}
            if len(set(totals.values())) != 1:
                violations.append(
                    f"{path}: AllReduce bytes not conserved across "
                    f"engines ({totals})")
        checked = 0
        for key, value in data.items():
            if not key.endswith("steps_per_sec"):
                continue
            if not isinstance(value, (int, float)):
                continue
            refs = [h[key] for h in history[-5:]
                    if isinstance(h.get(key), (int, float))]
            if not refs:
                continue
            reference = statistics.median(refs)
            checked += 1
            if value < (1.0 - _CHECK_MAX_REGRESSION) * reference:
                violations.append(
                    f"{path}: {key} {value:.1f} is "
                    f"{1 - value / reference:.0%} below the history "
                    f"median {reference:.1f}")
        print(f"bench --check: {path} — {len(history)} history entries, "
              f"{checked} throughput keys compared")
    if violations:
        for violation in violations:
            print(f"ERROR: {violation}")
        print(f"bench --check: {len(violations)} violation(s)")
        return 1
    print(f"bench --check: {len(paths)} report(s) clean")
    return 0


def cli_verify(cluster: ClusterSpec, seed: int = 0,
               output: str = "BENCH_verify.json") -> int:
    """Statically verify every arch x plan x backend combo's schedule.

    Runs the plan verifier (:mod:`repro.analysis`) over the full bench
    matrix -- four evaluation archs, three plan families -- for both
    execution backends: the in-process engine gets the single-schedule
    analyses (congruence, alias, accounting), the multiprocess backend
    additionally gets the deadlock/matching analysis over its
    partitioned per-rank schedules.  Prints one report per combo and
    fails (exit 1) on any finding.

    Timings land in ``BENCH_verify.json`` so ``bench --check`` gates the
    verifier itself: ``verify_steps_per_sec`` (plans verified per
    second) rides the generic 25% throughput gate, and
    ``verify_within_compile_budget`` asserts verification stays under
    10% of compile time (transform + plan compilation + code
    generation) summed over the matrix.
    """
    from repro.analysis import verify_plan
    from repro.analysis.verifier import default_fetch_ops
    from repro.core.transform.transform import transform_graph
    from repro.graph.executor import CompiledPlan

    # Which analyses bear on each backend: the single-schedule analyses
    # apply to both; the deadlock/matching analysis checks the
    # multiprocess backend's partitioned per-rank schedules.  The plan
    # is verified once and the per-backend rows read the relevant slice.
    backend_analyses = {
        "inproc": ("congruence", "alias", "accounting"),
        "multiproc": ("deadlock", "congruence", "alias", "accounting"),
    }
    combos = []
    findings_total = 0
    verify_seconds = 0.0
    compile_seconds = 0.0
    for model_key, model_builder in _bench_matrix_models().items():
        for plan_key, plan_builder in _bench_plan_builders().items():
            model = model_builder()
            start = time.perf_counter()
            transformed = transform_graph(
                model.graph, model.loss, cluster,
                plan_builder(model.graph), verify=False)
            fetch_ops = default_fetch_ops(transformed)
            plan = CompiledPlan(transformed.graph, fetch_ops)
            plan._generate()
            compile_s = time.perf_counter() - start
            compile_seconds += compile_s
            start = time.perf_counter()
            report = verify_plan(transformed, fetch_ops, plan=plan)
            elapsed = time.perf_counter() - start
            verify_seconds += elapsed
            findings_total += len(report.findings)
            for backend, analyses in backend_analyses.items():
                findings = [f for f in report.findings
                            if f.analysis in analyses]
                status = ("ok" if not findings
                          else f"{len(findings)} finding(s)")
                backend_ms = sum(report.timings.get(a, 0.0)
                                 for a in analyses) * 1e3
                print(f"verify {model_key}/{plan_key}/{backend}: {status} "
                      f"({backend_ms:.1f}ms verify, "
                      f"{compile_s * 1e3:.1f}ms compile)")
                for finding in findings:
                    print(finding.render())
                combos.append({
                    "model": model_key, "plan": plan_key,
                    "backend": backend,
                    "findings": len(findings),
                    "analysis_ms": {name: report.timings[name] * 1e3
                                    for name in analyses
                                    if name in report.timings},
                    "stats": {
                        name: {k: v for k, v in report.stats[name].items()
                               if isinstance(v, (int, float, str))}
                        for name in analyses if name in report.stats
                    },
                })

    fraction = verify_seconds / compile_seconds if compile_seconds else 0.0
    result = {
        "benchmark": "verify",
        "cluster": {"machines": cluster.num_machines,
                    "gpus_per_machine": cluster.gpus_per_machine},
        "combos": combos,
        "plans_verified": len(combos),
        "findings_total": findings_total,
        "verify_all_plans_clean": findings_total == 0,
        "verify_seconds_total": verify_seconds,
        "compile_seconds_total": compile_seconds,
        "verify_compile_fraction": fraction,
        "verify_within_compile_budget": fraction < 0.10,
        "verify_steps_per_sec": (len(combos) / verify_seconds
                                 if verify_seconds else 0.0),
    }
    _write_report(output, result)
    print(f"\nverify: {len(combos)} combos, {findings_total} finding(s), "
          f"verification at {fraction:.1%} of compile time "
          f"(report: {output})")
    return 1 if findings_total else 0


def bench_all(cluster: ClusterSpec, iters: int, warmup: int,
              seed: int) -> int:
    """Run every bench family, merging into the per-family reports.

    One command produces/extends ``BENCH_engine.json``,
    ``BENCH_fusion.json``, ``BENCH_elastic.json``,
    ``BENCH_parallel.json``, ``BENCH_compression.json``,
    ``BENCH_verify.json``, ``BENCH_serve.json`` and
    ``BENCH_autopilot.json`` (each keeps its history of earlier runs)
    -- the aggregation step the bench trajectory was missing.
    """
    families = (
        ("engine", lambda: bench(cluster, iters=iters, warmup=warmup,
                                 seed=seed)),
        ("fusion", lambda: bench_fusion(cluster, iters=iters, warmup=warmup,
                                        seed=seed)),
        ("elastic", lambda: bench_elastic(cluster, iters=max(8, iters),
                                          warmup=warmup, seed=seed)),
        ("parallel", lambda: bench_parallel(cluster, iters=iters,
                                            warmup=warmup, seed=seed)),
        ("compression", lambda: bench_compression(cluster, iters=iters,
                                                  warmup=warmup,
                                                  seed=seed)),
        ("verify", lambda: cli_verify(cluster, seed=seed)),
        ("serve", lambda: bench_serve(cluster, iters=iters, warmup=warmup,
                                      seed=seed)),
        ("autopilot", lambda: bench_autopilot(cluster, iters=iters,
                                              warmup=warmup, seed=seed)),
    )
    failures = []
    for name, run in families:
        if run() != 0:
            failures.append(name)
    print(f"\nbench --all: {len(families) - len(failures)}/{len(families)} "
          f"families passed"
          + (f" (failed: {', '.join(failures)})" if failures else ""))
    return 1 if failures else 0


COMMANDS: Dict[str, Callable[[ClusterSpec], None]] = {
    "table1": table1, "table2": table2, "table4": table4, "table6": table6,
    "fig8": fig8, "fig9": fig9,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate Parallax (EuroSys '19) experiments.",
    )
    parser.add_argument("experiment",
                        choices=sorted(COMMANDS) + ["all", "bench",
                                                    "launch", "verify"],
                        help="which table/figure to regenerate, 'bench' "
                             "for the execution-engine benchmark, "
                             "'launch' for one process of a rendezvous-"
                             "bootstrapped TCP fleet, or 'verify' to "
                             "statically verify every arch x plan x "
                             "backend schedule")
    # Analytic tables default to the paper's cluster; the functional bench
    # defaults to a small one (it really executes every replica).
    parser.add_argument("--machines", type=int, default=None)
    parser.add_argument("--gpus", type=int, default=None)
    parser.add_argument("--iters", type=int, default=60,
                        help="bench: measured iterations per engine")
    parser.add_argument("--warmup", type=int, default=5,
                        help="bench: discarded warmup iterations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fusion", action="store_true",
                        help="bench: compare fused (bucketed) vs unfused "
                             "dense AllReduce instead of the engines")
    parser.add_argument("--elastic", action="store_true",
                        help="bench: goodput under a deterministic failure "
                             "schedule (worker kill + NIC degradation) vs "
                             "a fault-free elastic run")
    parser.add_argument("--parallel", action="store_true",
                        help="bench: multiprocess worker backend vs the "
                             "in-process engine (wall-clock steps/sec plus "
                             "a bit-identity matrix over every arch/plan)")
    parser.add_argument("--compression", action="store_true",
                        help="bench: gradient compression (top-k with "
                             "error feedback, fp16) vs exact collectives "
                             "-- bytes-on-wire reduction, steps/sec, and "
                             "the convergence contract")
    parser.add_argument("--ratio", type=float, default=0.1,
                        help="bench --compression: top-k keep fraction")
    parser.add_argument("--autopilot", action="store_true",
                        help="bench: online adaptive replanning -- "
                             "autopilot-controlled goodput vs the static "
                             "incumbent plan under a scripted, functionally "
                             "emulated NIC degradation, plus the decision "
                             "log and the no-flapping contract")
    parser.add_argument("--serve", action="store_true",
                        help="bench: serving plane -- batched QPS vs "
                             "batch size through the compiled forward "
                             "plan, p50/p99 request latency through the "
                             "batcher, and the hot-reload/batched "
                             "bit-identity contracts")
    parser.add_argument("--network", action="store_true",
                        help="bench: TCP link microbench -- measure "
                             "loopback latency/bandwidth through one "
                             "TcpTransport socket pair and calibrate "
                             "the cost model's tcp_bw / tcp_latency")
    parser.add_argument("--transport", default="shm",
                        choices=("shm", "queue", "tcp"),
                        help="bench --parallel: multiprocess transport "
                             "kind (tcp runs the fleet over loopback "
                             "sockets)")
    parser.add_argument("--rendezvous", default=None, metavar="URL",
                        help="launch: tcp://host:port bootstrap address "
                             "(the controller binds it; workers join it)")
    parser.add_argument("--rank", type=int, default=None,
                        help="launch: worker rank in [0, world-size), "
                             "or -1 for the controller")
    parser.add_argument("--world-size", type=int, default=None,
                        help="launch: total number of worker replicas")
    parser.add_argument("--listen-host", default="127.0.0.1",
                        help="launch: address this process' transport "
                             "listener binds")
    parser.add_argument("--join-timeout", type=float, default=60.0,
                        help="launch: seconds to wait for the rendezvous "
                             "to assemble")
    parser.add_argument("--check-identity", action="store_true",
                        help="launch controller: also train in process "
                             "and assert the remote fleet's losses are "
                             "bit-identical")
    parser.add_argument("--all", action="store_true", dest="all_families",
                        help="bench: run every bench family (engine, "
                             "fusion, elastic, parallel, compression, "
                             "verify, serve, autopilot), merging results "
                             "into the per-family BENCH_*.json files")
    parser.add_argument("--check", action="store_true",
                        help="bench: regression gate -- compare every "
                             "BENCH_*.json's current run against its "
                             "history; fail on a >25%% steps/sec "
                             "regression or any bit-identity/"
                             "bytes-conservation violation")
    parser.add_argument("--bench-output", default=None,
                        help="bench report path (default BENCH_engine.json, "
                             "BENCH_fusion.json with --fusion, "
                             "BENCH_elastic.json with --elastic, "
                             "BENCH_parallel.json with --parallel, "
                             "BENCH_compression.json with --compression, "
                             "BENCH_serve.json with --serve, or "
                             "BENCH_autopilot.json with --autopilot; ignored "
                             "by --all, which writes every family's "
                             "file)")
    args = parser.parse_args(argv)
    default_machines, default_gpus = (
        (2, 2) if args.experiment in ("bench", "verify") else (8, 6))
    cluster = ClusterSpec(
        default_machines if args.machines is None else args.machines,
        default_gpus if args.gpus is None else args.gpus,
    )
    if args.experiment == "verify":
        return cli_verify(cluster, seed=args.seed,
                          output=args.bench_output or "BENCH_verify.json")
    if args.experiment == "launch":
        # Default the cluster to one machine per worker when the shape
        # was not given explicitly.
        if args.machines is None and args.gpus is None \
                and args.world_size is not None:
            cluster = ClusterSpec(args.world_size, 1)
        return cli_launch(args, cluster)
    if args.experiment == "bench":
        chosen = [name for name, flag in (
            ("--fusion", args.fusion), ("--elastic", args.elastic),
            ("--parallel", args.parallel), ("--all", args.all_families),
            ("--compression", args.compression), ("--check", args.check),
            ("--network", args.network), ("--serve", args.serve),
            ("--autopilot", args.autopilot),
        ) if flag]
        if len(chosen) > 1:
            raise SystemExit(f"bench: choose one of {' / '.join(chosen)}")
        if args.check:
            return bench_check()
        if args.all_families:
            return bench_all(cluster, iters=args.iters, warmup=args.warmup,
                             seed=args.seed)
        if args.autopilot:
            return bench_autopilot(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_autopilot.json")
        if args.serve:
            return bench_serve(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_serve.json")
        if args.network:
            return bench_network(
                iters=max(10, args.iters),
                output=args.bench_output or "BENCH_network.json")
        if args.compression:
            return bench_compression(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed, ratio=args.ratio,
                output=args.bench_output or "BENCH_compression.json")
        if args.parallel:
            return bench_parallel(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed, transport=args.transport,
                output=args.bench_output or "BENCH_parallel.json")
        if args.elastic:
            return bench_elastic(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_elastic.json")
        if args.fusion:
            return bench_fusion(
                cluster, iters=args.iters, warmup=args.warmup,
                seed=args.seed,
                output=args.bench_output or "BENCH_fusion.json")
        return bench(cluster, iters=args.iters, warmup=args.warmup,
                     seed=args.seed,
                     output=args.bench_output or "BENCH_engine.json")
    if args.experiment == "all":
        for fn in COMMANDS.values():
            fn(cluster)
    else:
        COMMANDS[args.experiment](cluster)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
