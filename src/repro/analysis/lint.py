"""Repo-invariant lint: AST checks for rules no unit test can pin down.

Four rules, each guarding an implicit contract between distant layers:

1. **mutating kernels vs the buffer arena** -- a forward kernel
   registered with ``@register_forward`` that mutates one of its input
   arrays (in-place ufunc ``.at`` calls, subscript stores, ``out=``
   aliasing an input) must NOT be listed arena-safe in
   ``repro.graph.bufferplan``'s guard tables: the arena recycles input
   storage based on those tables, and an unregistered mutator silently
   corrupts whatever value shares the buffer.
2. **collective registries stay congruent** -- the runner's
   ``_SELF_ACCOUNTING`` set, the backend's ``_COLLECTIVES`` set and the
   executor's overlap-hoist set must agree, and every collective op
   type constructed anywhere in the source must be in them; a missing
   entry double-counts transcript bytes or breaks worker muting.
3. **seeded randomness only** -- ``np.random`` access outside the
   seeded-generator API (``default_rng``/``Generator``/``SeedSequence``)
   reaches process-global state and breaks the bit-identical-loss
   contracts the suite asserts.
4. **no lambdas in graph-attached objects** -- ``add_op(...)``
   arguments (attrs included) must stay picklable for the multiprocess
   backend's graph shipping; lambdas are not.
5. **the public API stays documented and closed** -- every name in
   ``repro.__all__`` must resolve to a documented (non-module) object,
   and every public non-module attribute of ``repro`` must be listed in
   ``__all__``; an undocumented or unlisted symbol is an API the next
   refactor breaks without noticing.

Run as ``python -m repro.analysis.lint [paths...]`` (defaults to the
repo's ``src`` and ``tests``); exits 1 on any finding.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.report import Finding

ANALYSIS = "lint"

#: np.random attributes that go through explicitly seeded generators.
_ALLOWED_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence",
                             "BitGenerator"})

#: op-type literals that look like collectives (see rule 2).
_COLLECTIVE_NAME = re.compile(r"(^|_)(allreduce|allgatherv)$")


def _arena_safe_types() -> frozenset:
    """Op types the buffer planner treats as safe for arena recycling --
    loaded from the live guard tables so the lint tracks them."""
    from repro.graph import bufferplan as bp

    return frozenset(bp.ARENA_FWD | bp.VIEW_FWD | bp.KNOWN_SAFE
                     | bp.SPARSE_PASSTHROUGH)


def _registered_collectives() -> frozenset:
    from repro.core.runner import _SELF_ACCOUNTING

    return frozenset(_SELF_ACCOUNTING)


# ---- rule 1: mutating kernels ------------------------------------------
def _forward_op_type(node: ast.FunctionDef) -> Optional[str]:
    """The literal op type of an ``@register_forward("x")`` decorator."""
    for deco in node.decorator_list:
        if (isinstance(deco, ast.Call)
                and isinstance(deco.func, ast.Name)
                and deco.func.id == "register_forward"
                and deco.args
                and isinstance(deco.args[0], ast.Constant)
                and isinstance(deco.args[0].value, str)):
            return deco.args[0].value
    return None


def _base_name(node: ast.AST) -> Optional[str]:
    """The root Name of a (possibly nested) subscript/attribute chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _kernel_mutations(fn: ast.FunctionDef, inputs_param: str) -> List[str]:
    """Descriptions of every statement mutating an input-aliased array."""
    aliases: Set[str] = {inputs_param}

    def is_input_expr(node: ast.AST) -> bool:
        return _base_name(node) in aliases

    # First pass: names bound (directly or by unpacking) to input values.
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and is_input_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            aliases.add(elt.id)

    mutations: List[str] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and \
                        is_input_expr(target):
                    mutations.append(
                        f"line {node.lineno}: subscript store into "
                        f"input alias {_base_name(target)!r}")
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript) and \
                    is_input_expr(node.target):
                mutations.append(
                    f"line {node.lineno}: augmented store into input "
                    f"alias {_base_name(node.target)!r}")
        elif isinstance(node, ast.Call):
            func = node.func
            # np.<ufunc>.at(target, ...) mutates its first argument.
            if (isinstance(func, ast.Attribute) and func.attr == "at"
                    and node.args and is_input_expr(node.args[0])):
                mutations.append(
                    f"line {node.lineno}: in-place ufunc .at() on input "
                    f"alias {_base_name(node.args[0])!r}")
            for kw in node.keywords:
                if kw.arg == "out" and is_input_expr(kw.value):
                    mutations.append(
                        f"line {node.lineno}: out= targets input alias "
                        f"{_base_name(kw.value)!r}")
    return mutations


def _check_kernels(tree: ast.AST, path: str,
                   arena_safe: frozenset) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        op_type = _forward_op_type(node)
        if op_type is None or not node.args.args:
            continue
        params = [a.arg for a in node.args.args]
        inputs_param = params[1] if len(params) > 1 else params[0]
        mutations = _kernel_mutations(node, inputs_param)
        if mutations and op_type in arena_safe:
            findings.append(Finding(
                ANALYSIS,
                f"{path}:{node.lineno}: forward kernel for {op_type!r} "
                "mutates its inputs but the op type is listed arena-safe "
                "in repro.graph.bufferplan's guard tables -- the arena "
                "would recycle storage this kernel scribbles on",
                trace=tuple(mutations),
            ))
    return findings


# ---- rule 2: collective registry congruence ----------------------------
def _check_registries() -> List[Finding]:
    from repro.core.backend import _COLLECTIVES
    from repro.core.runner import _SELF_ACCOUNTING
    from repro.graph.executor import COLLECTIVE_OPS

    findings = []
    if _SELF_ACCOUNTING != _COLLECTIVES:
        findings.append(Finding(
            ANALYSIS,
            "runner._SELF_ACCOUNTING and backend._COLLECTIVES disagree: "
            f"{sorted(_SELF_ACCOUNTING ^ _COLLECTIVES)} -- transcript "
            "muting and edge accounting price different op sets",
        ))
    extra = COLLECTIVE_OPS - _SELF_ACCOUNTING
    if extra:
        findings.append(Finding(
            ANALYSIS,
            "executor.COLLECTIVE_OPS hoists op types the accounting "
            f"registries do not know: {sorted(extra)}",
        ))
    return findings


def _check_collective_literals(tree: ast.AST, path: str,
                               registered: frozenset) -> List[Finding]:
    """Every op-type literal that *names* a collective must be known to
    the accounting registries (catches a new collective added to the
    transform but not to runner/backend sets)."""
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_op"):
            continue
        first = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "op_type":
                first = kw.value
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            continue
        op_type = first.value
        if _COLLECTIVE_NAME.search(op_type) and op_type not in registered:
            findings.append(Finding(
                ANALYSIS,
                f"{path}:{node.lineno}: add_op creates collective op "
                f"type {op_type!r} which is not registered in "
                "runner._SELF_ACCOUNTING / backend._COLLECTIVES",
            ))
    return findings


# ---- rule 3: seeded randomness only ------------------------------------
def _check_np_random(tree: ast.AST, path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        # matches <anything>.random.<attr> where the root is np/numpy
        inner = node.value
        if not (isinstance(inner, ast.Attribute) and inner.attr == "random"
                and isinstance(inner.value, ast.Name)
                and inner.value.id in ("np", "numpy")):
            continue
        if node.attr not in _ALLOWED_RANDOM:
            findings.append(Finding(
                ANALYSIS,
                f"{path}:{node.lineno}: np.random.{node.attr} uses "
                "process-global random state; use a seeded "
                "np.random.default_rng(...) generator instead",
            ))
    return findings


# ---- rule 4: no lambdas attached to graphs -----------------------------
def _check_graph_lambdas(tree: ast.AST, path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_op"):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    findings.append(Finding(
                        ANALYSIS,
                        f"{path}:{sub.lineno}: lambda passed into "
                        "add_op(...); graph-attached objects must be "
                        "picklable for the multiprocess backend",
                    ))
    return findings


# ---- rule 5: public API audit ------------------------------------------
def _check_public_api() -> List[Finding]:
    """Every ``repro.__all__`` symbol resolves, is documented, and no
    public attribute escapes the list."""
    import types

    import repro

    findings = []
    exported = getattr(repro, "__all__", [])
    for name in exported:
        if name == "__version__":
            continue
        obj = getattr(repro, name, None)
        if obj is None:
            findings.append(Finding(
                ANALYSIS,
                f"repro.__all__ lists {name!r} but the package has no "
                "such attribute",
            ))
            continue
        if isinstance(obj, types.ModuleType):
            findings.append(Finding(
                ANALYSIS,
                f"repro.__all__ lists the module {name!r}; export the "
                "symbols, not the module",
            ))
            continue
        if not (getattr(obj, "__doc__", None) or "").strip():
            findings.append(Finding(
                ANALYSIS,
                f"public symbol repro.{name} has no docstring; every "
                "exported name must document itself",
            ))
    listed = set(exported)
    for name in vars(repro):
        if name.startswith("_") or name in listed:
            continue
        if isinstance(getattr(repro, name), types.ModuleType):
            continue  # submodules imported as a side effect
        findings.append(Finding(
            ANALYSIS,
            f"repro.{name} is public (no underscore) but missing from "
            "repro.__all__; list it or rename it",
        ))
    return findings


# ---- driver ------------------------------------------------------------
def lint_paths(paths) -> List[Finding]:
    arena_safe = _arena_safe_types()
    registered = _registered_collectives()
    findings = _check_registries()
    findings.extend(_check_public_api())
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            rel = str(file)
            try:
                tree = ast.parse(file.read_text(), filename=rel)
            except SyntaxError as exc:
                findings.append(Finding(
                    ANALYSIS, f"{rel}: syntax error: {exc}"))
                continue
            findings.extend(_check_kernels(tree, rel, arena_safe))
            findings.extend(
                _check_collective_literals(tree, rel, registered))
            findings.extend(_check_np_random(tree, rel))
            findings.extend(_check_graph_lambdas(tree, rel))
    return findings


def _default_paths() -> List[Path]:
    repo = Path(__file__).resolve().parents[3]
    return [p for p in (repo / "src", repo / "tests") if p.exists()]


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    paths = [Path(p) for p in argv] or _default_paths()
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.render())
    print(f"lint: {len(findings)} finding(s) over "
          f"{', '.join(str(p) for p in paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
