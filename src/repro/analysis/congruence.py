"""Collective-congruence checking: every replica, same collective story.

MPI programs hang or corrupt reductions when ranks disagree on the
collective sequence; the transformed graph can suffer the same class of
bug if the transform (or a later graph edit) skews one replica's fusion
bucket layout, compression codec, or collective ordering.  This analysis
extracts each replica's collective sequence from the global schedule and
verifies, position by position, that all replicas issue the same op type
over the same group with the same payload shape/dtype, the same bucket
``segments``/``bounds`` layout, the same averaging flag, the same
machine list, and -- for compressed collectives -- the same codec and
ratio on every producing ``grad_compress`` op.

Group-level structure is checked too: every ``(op_type, group)`` must
have exactly one member per replica, and all members must consume the
identical payload list (each replica's collective op reads *all*
replicas' contributions -- that is how the run-cache executes the ring
once per group).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import Finding
from repro.graph.executor import plan_order

ANALYSIS = "congruence"

#: Every collective op type the transform can emit.
COLLECTIVE_TYPES = frozenset({
    "allreduce", "fused_allreduce", "allgatherv",
    "compressed_allreduce", "compressed_allgatherv",
})


def _signature(op) -> Dict[str, object]:
    """The statically comparable fingerprint of one collective op."""
    attrs = op.attrs
    sig: Dict[str, object] = {
        "op_type": op.op_type,
        "group": attrs.get("group"),
        "shape": tuple(op.output.spec.shape),
        "dtype": str(op.output.spec.dtype),
        "average": attrs.get("average"),
        "is_sparse": attrs.get("is_sparse"),
        "machines": tuple(int(m) for m in attrs.get("machines", ())),
        "num_payloads": len(op.inputs),
    }
    if "segments" in attrs:
        sig["segments"] = tuple((name, int(size))
                                for name, size in attrs["segments"])
    if "bounds" in attrs:
        sig["bounds"] = tuple(int(b) for b in attrs["bounds"])
    # Compressed collectives: the wire format is decided by the producing
    # grad_compress ops; a codec/ratio skew on one replica desynchronizes
    # payload sizes (and, for top-k, the kept coordinate sets).
    codecs = set()
    for tensor in op.inputs:
        producer = tensor.op
        if producer.op_type == "grad_compress":
            codecs.add((producer.attrs.get("codec"),
                        producer.attrs.get("ratio"),
                        "residual" in producer.attrs))
    if codecs:
        sig["codecs"] = tuple(sorted(codecs))
    return sig


def analyze_congruence(transformed, fetch_ops, order=None,
                       ) -> Tuple[List[Finding], Dict[str, object]]:
    findings: List[Finding] = []
    if order is None:
        order = plan_order(transformed.graph, fetch_ops)
    num_replicas = transformed.num_replicas

    sequences: Dict[int, List] = {}
    groups: Dict[Tuple[str, str], List] = {}
    for op in order:
        if op.op_type not in COLLECTIVE_TYPES:
            continue
        replica = op.attrs.get("replica")
        if replica is None:
            findings.append(Finding(
                ANALYSIS,
                f"collective {op.name!r} carries no replica attribute",
            ))
            continue
        sequences.setdefault(replica, []).append(op)
        groups.setdefault((op.op_type, op.attrs.get("group")),
                          []).append(op)

    if not sequences:
        return findings, {"collectives": 0, "groups": 0}

    # ---- sequence congruence across replicas --------------------------
    base_replica = min(sequences)
    base = sequences[base_replica]
    for replica in sorted(sequences):
        if replica == base_replica:
            continue
        seq = sequences[replica]
        if len(seq) != len(base):
            findings.append(Finding(
                ANALYSIS,
                f"replica {replica} issues {len(seq)} collectives but "
                f"replica {base_replica} issues {len(base)}",
                trace=(f"replica {base_replica}: "
                       f"{[op.name for op in base]}",
                       f"replica {replica}: {[op.name for op in seq]}"),
            ))
            continue
        for pos, (ref, other) in enumerate(zip(base, seq)):
            ref_sig = _signature(ref)
            other_sig = _signature(other)
            if ref_sig == other_sig:
                continue
            diverging = sorted(
                key for key in set(ref_sig) | set(other_sig)
                if ref_sig.get(key) != other_sig.get(key)
            )
            findings.append(Finding(
                ANALYSIS,
                f"replica {replica} diverges from replica "
                f"{base_replica} at collective position {pos} "
                f"({other.name!r} vs {ref.name!r}): mismatched "
                f"{', '.join(diverging)}",
                trace=tuple(
                    f"{key}: replica {base_replica}={ref_sig.get(key)!r} "
                    f"vs replica {replica}={other_sig.get(key)!r}"
                    for key in diverging
                ),
            ))

    # ---- group structure ----------------------------------------------
    for (op_type, group), members in groups.items():
        replicas = sorted(op.attrs.get("replica") for op in members)
        if replicas != list(range(num_replicas)):
            findings.append(Finding(
                ANALYSIS,
                f"collective group {op_type}/{group} has members for "
                f"replicas {replicas}, expected one per replica "
                f"0..{num_replicas - 1}",
                trace=tuple(op.name for op in members),
            ))
        # Within a group every producing grad_compress op must agree on
        # the wire format: payloads of different codec/ratio cannot be
        # summed (and, replicas sharing the payload inputs, this skew is
        # invisible to the cross-replica comparison above).
        codecs = {
            (t.op.attrs.get("codec"), t.op.attrs.get("ratio"))
            for op in members for t in op.inputs
            if t.op.op_type == "grad_compress"
        }
        if len(codecs) > 1:
            findings.append(Finding(
                ANALYSIS,
                f"collective group {op_type}/{group} mixes payload "
                f"codecs: {sorted(codecs)} -- every replica's "
                "grad_compress must ship the same wire format",
            ))
        payload_lists = {tuple(t.op.name for t in op.inputs)
                         for op in members}
        if len(payload_lists) > 1:
            findings.append(Finding(
                ANALYSIS,
                f"collective group {op_type}/{group} members disagree on "
                "the payload list -- all replicas must contribute the "
                "same ordered inputs for the shared ring to be "
                "well-defined",
                trace=tuple(f"{op.name}: "
                            f"{[t.op.name for t in op.inputs]}"
                            for op in members),
            ))

    stats = {
        "collectives": sum(len(seq) for seq in sequences.values()),
        "groups": len(groups),
        "per_replica": len(base),
    }
    return findings, stats
