"""Alias-soundness audit: an independent oracle for the buffer arena.

``repro.graph.bufferplan`` *plans* arena reuse with a union-find over
alias groups and a linear allocation sweep.  This module *audits* the
resulting plan with a deliberately different algorithm -- abstract
interpretation over storage tokens plus interval-overlap checking -- so
a bug in the planner's bookkeeping cannot hide inside a shared helper.
Nothing here imports the planner's alias tables or liveness maps; the
kernel-semantics facts (which op types return views, which vjp rules
alias the incoming gradient) are re-declared from ``repro.graph.ops``
ground truth.

The audit proves three properties over the frozen schedule:

1. **No overwrite of live storage.**  Every arena buffer write at
   schedule position ``p`` requires that all storage tokens previously
   written into that buffer are dead strictly before ``p``.  Because an
   op's inputs are live at its own position, this subsumes "an output
   never aliases any of its own inputs".
2. **Fetched values never live in the arena.**  A target slot's storage
   tokens must not reach any arena-assigned slot -- a recycled buffer
   would be overwritten by the next ``execute()``.
3. **Escaped storage never lives in the arena.**  Tokens consumed by
   op types whose kernels may retain references across steps
   (collectives, compression, shard ops) are immortal to the audit, so
   any arena assignment touching them is rejected.

It additionally re-derives per-slot liveness from scratch and diffs it
against the planner's ``slot_last_use`` -- the two implementations must
agree exactly on every plan.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from repro.analysis.report import Finding

ANALYSIS = "alias"

# ---- kernel-semantics tables (independent re-declaration) -------------
# Derived from the kernels in repro/graph/ops.py and the vjp rules they
# register -- NOT imported from bufferplan, which is the implementation
# under audit.

#: Forward op types whose kernel may return a view of its first input.
_VIEW_OF_INPUT0 = frozenset({"identity", "reshape", "slice"})

#: Forward op types whose kernel always returns a fresh dense array and
#: retains no reference to it (ufunc/BLAS outputs).
_FRESH_FWD = frozenset({
    "add", "mul", "tanh", "sigmoid", "relu", "scale", "add_bias",
    "matmul",
})

#: Forward op types that neither alias their inputs nor retain them
#: beyond the step (fresh arrays, scalars, IndexedSlices wrappers whose
#: buffers are fresh, or None outputs).
_NON_RETAINING_FWD = frozenset({
    "placeholder", "constant", "read_var", "concat", "gather", "mean",
    "softmax_xent", "mse", "grad_add", "ones_like_scalar", "group",
    "assign", "assign_sub", "scatter_sub",
})

#: vjp rules returning a fresh array for every output index.
_FRESH_VJP = frozenset({
    "matmul", "mul", "tanh", "sigmoid", "relu", "scale", "slice",
    "softmax_xent", "mse", "mean",
})

#: vjp rules where some output index may alias (or view) the incoming
#: gradient.
_GRAD_ALIAS_VJP = frozenset({
    "add", "identity", "reshape", "concat", "add_bias", "gather",
})


def audit_buffer_plan(plan, bplan=None,
                      ) -> Tuple[List[Finding], Dict[str, object]]:
    """Audit one compiled plan's arena assignment for alias soundness.

    *bplan* defaults to the plan's own buffer plan; tests pass a
    deliberately corrupted copy to prove the audit rejects it.
    """
    if bplan is None:
        bplan = plan._ensure_buffer_plan()
    schedule = plan.schedule
    n = plan.num_slots
    findings: List[Finding] = []

    def op_at(pos: int):
        return schedule[pos][0]

    # ---- independent liveness -----------------------------------------
    last_use: Dict[int, float] = {}
    for entry in schedule:
        input_slots, slot = entry[2], entry[3]
        if last_use.get(slot, -1) < slot:
            last_use[slot] = slot
        for j in input_slots:
            if last_use.get(j, -1) < slot:
                last_use[j] = slot

    if dict(bplan.slot_last_use) != last_use:
        diff = sorted(
            s for s in set(last_use) | set(bplan.slot_last_use)
            if last_use.get(s) != bplan.slot_last_use.get(s)
        )
        findings.append(Finding(
            ANALYSIS,
            "planner liveness disagrees with the audit's independent "
            f"re-derivation at {len(diff)} slot(s)",
            trace=tuple(
                f"slot {s} ({op_at(s).name!r}): planner="
                f"{bplan.slot_last_use.get(s)} audit={last_use.get(s)}"
                for s in diff[:8]
            ),
        ))

    # ---- storage-token propagation ------------------------------------
    tokens: List[Set[int]] = [set() for _ in range(n)]
    escaped: Set[int] = set()
    for entry in schedule:
        op, input_slots, slot = entry[0], entry[2], entry[3]
        op_type = op.op_type
        own = {slot}
        if op_type == "vjp":
            fwd_op = plan.graph.get_op(op.attrs["forward_op"])
            ftype = fwd_op.op_type
            if ftype in _FRESH_VJP:
                tokens[slot] = own
            elif ftype in _GRAD_ALIAS_VJP:
                grad_slot = input_slots[len(fwd_op.inputs) + 1]
                tokens[slot] = own | tokens[grad_slot]
            else:
                merged = set(own)
                for j in input_slots:
                    merged |= tokens[j]
                tokens[slot] = merged
        elif op_type in _VIEW_OF_INPUT0:
            tokens[slot] = own | (set(tokens[input_slots[0]])
                                  if input_slots else set())
        elif (op_type in _FRESH_FWD or op_type in _NON_RETAINING_FWD
              or op.attrs.get("is_update")):
            tokens[slot] = own
        else:
            # Unmodelled kernel (collectives, compression, shard ops):
            # its output may alias any input and the kernel may retain
            # references across steps.
            merged = set(own)
            for j in input_slots:
                merged |= tokens[j]
            tokens[slot] = merged
            escaped |= merged

    # A token dies when the last slot carrying it dies; target tokens
    # and escaped tokens are immortal.
    targets = set(plan.target_slots)
    token_death: Dict[int, float] = {}
    token_blocker: Dict[int, int] = {}
    for s in range(n):
        death = math.inf if s in targets else last_use.get(s, s)
        for tok in tokens[s]:
            if token_death.get(tok, -1.0) < death:
                token_death[tok] = death
                token_blocker[tok] = s
    for tok in escaped:
        token_death[tok] = math.inf

    # ---- arena checks --------------------------------------------------
    by_buffer: Dict[int, List[int]] = {}
    for slot, buf in bplan.assignment.items():
        by_buffer.setdefault(buf, []).append(slot)

    overlap_errors = 0
    for buf, slots in by_buffer.items():
        slots.sort()
        for i, writer in enumerate(slots):
            for prev in slots[:i]:
                live = [tok for tok in tokens[prev]
                        if token_death.get(tok, -1.0) >= writer]
                if not live:
                    continue
                overlap_errors += 1
                tok = live[0]
                blocker = token_blocker.get(tok, prev)
                death = token_death[tok]
                until = "forever (pinned/fetched/escaped)" \
                    if death == math.inf else f"until position {int(death)}"
                findings.append(Finding(
                    ANALYSIS,
                    f"arena buffer {buf} is rewritten at schedule "
                    f"position {writer} ({op_at(writer).name!r}) while "
                    f"the value written at position {prev} "
                    f"({op_at(prev).name!r}) is still live {until}",
                    trace=(
                        f"buffer {buf} assignees in order: {slots}",
                        f"storage token {tok} (origin "
                        f"{op_at(tok).name!r}) is carried by slot "
                        f"{blocker} ({op_at(blocker).name!r}), last used "
                        f"at {until}",
                        f"overwrite happens at position {writer} "
                        f"({op_at(writer).name!r})",
                    ),
                ))

    arena_target_errors = 0
    for slot in sorted(bplan.assignment):
        hot = [tok for tok in tokens[slot]
               if token_death.get(tok, -1.0) == math.inf]
        if not hot:
            continue
        arena_target_errors += 1
        tok = hot[0]
        why = ("escaped into an unmodelled kernel" if tok in escaped
               else f"reaches fetched slot "
                    f"{token_blocker.get(tok, tok)} "
                    f"({op_at(token_blocker.get(tok, tok)).name!r})")
        findings.append(Finding(
            ANALYSIS,
            f"arena slot {slot} ({op_at(slot).name!r}) holds storage "
            f"that must outlive the step: token {tok} {why}; recycled "
            "arena storage would be overwritten by the next execute()",
            trace=(f"slot {slot} tokens: {sorted(tokens[slot])}",),
        ))

    stats = {
        "slots": n,
        "arena_slots": len(bplan.assignment),
        "buffers": len(bplan.buffers),
        "escaped_tokens": len(escaped),
        "overlap_errors": overlap_errors,
        "pinned_errors": arena_target_errors,
    }
    return findings, stats
