"""Accounting conservation: static wire-byte bookkeeping per plan.

Two independent derivations of a plan's collective payload must agree:

* **graph-walk** -- every collective group in the transformed graph,
  with its element count taken from the collective op's static output
  spec (and, for fused buckets, the sum of its ``segments``);
* **plan-walk** -- the :class:`GraphSyncPlan`'s variable inventory: the
  summed element counts of every variable synchronized by a collective
  method.

A fusion or compression rewrite that drops, duplicates or misroutes a
gradient breaks the equality and is reported with the offending groups.
On top of conservation, the analysis prices each group's transcript
traffic *exactly* -- replaying the ring/exchange index arithmetic of
``repro.comm`` without moving data -- so tests can assert the measured
Transcript equals the static prediction byte for byte, and the
worker-view wire total (raw bytes x codec wire fraction, the quantity
``repro.cluster.simulator.plan_wire_bytes`` prices) falls out of the
same walk.  Groups whose payloads depend on runtime values (sparse
AllGatherv, top-k over sparse rows) are classified ``dynamic`` and
excluded from exact byte claims.

Registry completeness rides along: every collective op type found in the
graph must be known to this table, to the runner's self-accounting set
and to the backend's collective set -- a new collective that misses one
of those silently double-counts bytes or breaks worker muting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import Finding
from repro.graph.executor import plan_order

ANALYSIS = "accounting"

_DENSE_RING = frozenset({"allreduce", "fused_allreduce"})
_KNOWN = frozenset({
    "allreduce", "fused_allreduce", "allgatherv",
    "compressed_allreduce", "compressed_allgatherv",
})

#: int32 coordinates, as shipped by the top-k codec.
_INDEX_ITEMSIZE = 4
#: the ring reduces in fp32 regardless of input dtype.
_RING_ITEMSIZE = 4


def _chunk_sizes(numel: int, n: int, bounds=None) -> List[int]:
    """Chunk extents of a ring over *numel* elements (one per worker)."""
    if bounds is not None:
        bounds = [int(b) for b in bounds]
        return [hi - lo for lo, hi in zip(bounds, bounds[1:])]
    base, extra = divmod(numel, n)
    return [base + (1 if c < extra else 0) for c in range(n)]


def _ring_bytes(numel: int, machines: List[int], itemsize: int,
                bounds=None) -> Tuple[int, int]:
    """(total, cross-machine) transcript bytes of one dense ring.

    Replays the index arithmetic of ``comm.allreduce.ring_allreduce``:
    reduce-scatter sends chunk ``(i - s) % n`` from worker ``i`` to its
    successor at step ``s``; allgather sends chunk ``(i + 1 - s) % n``.
    """
    n = len(machines)
    if n <= 1:
        return 0, 0
    sizes = _chunk_sizes(numel, n, bounds)
    total = network = 0
    for phase_shift in (0, 1):
        for step in range(n - 1):
            for i in range(n):
                chunk = (i + phase_shift - step) % n
                nbytes = sizes[chunk] * itemsize
                total += nbytes
                if machines[i] != machines[(i + 1) % n]:
                    network += nbytes
    return total, network


def _exchange_bytes(payload_nbytes: int, machines: List[int],
                    ) -> Tuple[int, int]:
    """(total, cross-machine) bytes of one all-to-all payload exchange,
    replaying ``comm.compression.exchange_payloads`` (every payload the
    same static size)."""
    n = len(machines)
    if n <= 1:
        return 0, 0
    total = network = 0
    for _step in range(n - 1):
        for i in range(n):
            total += payload_nbytes
            if machines[i] != machines[(i + 1) % n]:
                network += payload_nbytes
    return total, network


def _numel(shape) -> int:
    count = 1
    for dim in shape:
        count *= int(dim)
    return count


def _codec_of(op):
    """(codec, ratio) from the producing grad_compress ops, or None."""
    for tensor in op.inputs:
        if tensor.op.op_type == "grad_compress":
            return (tensor.op.attrs.get("codec"),
                    float(tensor.op.attrs.get("ratio", 1.0)))
    return None


def analyze_accounting(transformed, fetch_ops, order=None,
                       ) -> Tuple[List[Finding], Dict[str, object]]:
    from repro.comm.compression import parse_spec, wire_fraction

    findings: List[Finding] = []
    graph = transformed.graph
    if order is None:
        order = plan_order(graph, fetch_ops)

    # ---- registry completeness ----------------------------------------
    from repro.core.backend import _COLLECTIVES as backend_set
    from repro.core.runner import _SELF_ACCOUNTING as runner_set

    groups: Dict[Tuple[str, str], object] = {}
    for op in order:
        if op.op_type not in _KNOWN:
            continue
        groups.setdefault((op.op_type, op.attrs.get("group")), op)
    seen_types = {op_type for op_type, _ in groups}
    for op_type in sorted(seen_types - runner_set):
        findings.append(Finding(
            ANALYSIS,
            f"collective op type {op_type!r} is missing from the "
            "runner's _SELF_ACCOUNTING set -- its transfers would be "
            "double-counted by static edge accounting",
        ))
    for op_type in sorted(seen_types - backend_set):
        findings.append(Finding(
            ANALYSIS,
            f"collective op type {op_type!r} is missing from the "
            "backend's _COLLECTIVES set -- non-canonical replicas would "
            "record duplicate transcript entries under multiproc",
        ))

    # ---- per-group static pricing -------------------------------------
    per_group: List[Dict[str, object]] = []
    collected_elements = 0
    raw_bytes = 0.0
    wire_bytes = 0.0
    static_total = 0
    static_network = 0
    dynamic_groups = 0
    for (op_type, group), op in sorted(groups.items()):
        machines = [int(m) for m in op.attrs.get("machines", ())]
        n = len(machines)
        numel = _numel(op.output.spec.shape)
        segments = op.attrs.get("segments")
        if segments is not None:
            seg_total = sum(int(size) for _name, size in segments)
            if seg_total != numel:
                findings.append(Finding(
                    ANALYSIS,
                    f"bucket layout of {op_type}/{group} does not "
                    f"conserve elements: segments sum to {seg_total} "
                    f"but the collective payload holds {numel}",
                    trace=(f"segments: {list(segments)}",),
                ))
        entry: Dict[str, object] = {
            "op_type": op_type,
            "group": group,
            "tag": f"allreduce/{group}" if op_type in _DENSE_RING
                   else f"{op_type}/{group}",
            "workers": n,
            "numel": numel,
        }
        codec = _codec_of(op)
        if op_type in _DENSE_RING:
            collected_elements += numel
            raw_bytes += numel * _RING_ITEMSIZE
            wire_bytes += numel * _RING_ITEMSIZE
            total, network = _ring_bytes(
                numel, machines, _RING_ITEMSIZE,
                bounds=op.attrs.get("bounds"))
            entry.update(static=True, total_bytes=total,
                         network_bytes=network)
            static_total += total
            static_network += network
        elif op_type == "compressed_allreduce":
            collected_elements += numel
            spec, ratio = codec if codec is not None else (None, 1.0)
            group_raw = numel * _RING_ITEMSIZE
            raw_bytes += group_raw
            wire_bytes += (group_raw * wire_fraction(spec, ratio)
                           if spec is not None else group_raw)
            codecs = parse_spec(spec) if spec is not None else set()
            if "topk" in codecs:
                # Flat top-k payloads have a static keep count; every
                # replica ships k values plus k int32 coordinates,
                # all-to-all (a sum of top-k sets is not top-k).
                k = max(1, int(round(ratio * numel)))
                value_itemsize = 2 if "fp16" in codecs else 4
                payload = k * (value_itemsize + _INDEX_ITEMSIZE)
                total, network = _exchange_bytes(payload, machines)
                entry.update(static=True, total_bytes=total,
                             network_bytes=network, keep_count=k)
                static_total += total
                static_network += network
            else:
                # Quantized-only payloads stay dense and ride the ring
                # at the codec's wire itemsize.
                itemsize = 2 if "fp16" in codecs else _RING_ITEMSIZE
                total, network = _ring_bytes(numel, machines, itemsize)
                entry.update(static=True, total_bytes=total,
                             network_bytes=network)
                static_total += total
                static_network += network
        else:
            # AllGatherv payloads (and top-k over sparse rows) depend on
            # the rows the batch touched -- no static byte claim.
            entry.update(static=False)
            dynamic_groups += 1
        if codec is not None:
            entry["codec"] = codec[0]
            entry["ratio"] = codec[1]
        per_group.append(entry)

    # ---- conservation against the plan's variable inventory -----------
    # A fetch set that schedules no collectives and no update ops is a
    # forward-only (serving/inference) plan: it never executes the
    # synchronization subgraph the plan inventory describes, so there is
    # nothing to conserve.  Every training fetch set reaches its update
    # ops, so gating on their presence keeps the conservation checks
    # live exactly where the inventory applies -- without it, a grad-free
    # plan over a collective plan would be reported as "losing" every
    # dense element the plan assigns a collective method to.
    has_updates = any(op.attrs.get("is_update") for op in order)
    forward_only = not groups and not has_updates
    plan = transformed.plan
    expected_elements = 0
    gatherv_vars = 0
    if not forward_only:
        for var_name, method in plan.methods.items():
            if method.name == "PS":
                continue
            replica_names = transformed.replica_variables.get(var_name)
            if not replica_names:
                findings.append(Finding(
                    ANALYSIS,
                    f"plan assigns a collective method to {var_name!r} but "
                    "the transform produced no replica variables for it",
                ))
                continue
            variable = graph.variables[replica_names[0]]
            is_gatherv = any(
                op_type in ("allgatherv", "compressed_allgatherv")
                and group == var_name
                for op_type, group in groups
            )
            if is_gatherv:
                gatherv_vars += 1
            else:
                expected_elements += int(variable.num_elements)
        if expected_elements != collected_elements:
            findings.append(Finding(
                ANALYSIS,
                "collective element conservation violated: the plan "
                f"synchronizes {expected_elements} dense elements but the "
                f"graph's collective groups carry {collected_elements}",
                trace=tuple(
                    f"{e['op_type']}/{e['group']}: {e['numel']} elements"
                    for e in per_group
                ),
            ))
        gatherv_groups = sum(
            1 for op_type, _group in groups
            if op_type in ("allgatherv", "compressed_allgatherv")
        )
        if gatherv_groups != gatherv_vars:
            findings.append(Finding(
                ANALYSIS,
                f"AllGatherv group count {gatherv_groups} does not match "
                f"the plan's sparse collective variable count {gatherv_vars}",
            ))

    stats = {
        "groups": len(groups),
        "forward_only": forward_only,
        "dynamic_groups": dynamic_groups,
        "per_group": per_group,
        "collective_raw_bytes": raw_bytes,
        "collective_wire_bytes": wire_bytes,
        "static_transcript_bytes": static_total,
        "static_network_bytes": static_network,
    }
    return findings, stats
