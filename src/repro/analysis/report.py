"""Findings and reports produced by the static plan verifier."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One verified defect in a compiled plan.

    ``analysis`` names the checker that produced it (``deadlock``,
    ``congruence``, ``alias``, ``accounting`` or a lint rule),
    ``message`` is the one-line diagnostic, and ``trace`` is the
    counterexample: an ordered tuple of human-readable steps naming the
    ranks, schedule positions and op names involved, concrete enough to
    replay the failure by hand.
    """

    analysis: str
    message: str
    trace: Tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"[{self.analysis}] {self.message}"]
        lines.extend(f"    {step}" for step in self.trace)
        return "\n".join(lines)


@dataclass
class AnalysisReport:
    """The result of running every analysis over one plan.

    ``timings`` maps analysis name to seconds spent; ``stats`` carries
    informational counters (entries modelled, collective groups, bytes
    predicted) that tests and ``repro.cli verify`` surface.
    """

    findings: List[Finding] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def findings_for(self, analysis: str) -> List[Finding]:
        return [f for f in self.findings if f.analysis == analysis]

    def render(self) -> str:
        if self.ok:
            header = "plan verified: no findings"
        else:
            header = f"plan verification FAILED: {len(self.findings)} finding(s)"
        parts = [header]
        parts.extend(f.render() for f in self.findings)
        timing = ", ".join(f"{name} {secs * 1e3:.2f}ms"
                           for name, secs in sorted(self.timings.items()))
        if timing:
            parts.append(f"timings: {timing}")
        return "\n".join(parts)


class PlanVerificationError(RuntimeError):
    """Raised by ``transform_graph(..., verify=True)`` on any finding."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        super().__init__(report.render())
