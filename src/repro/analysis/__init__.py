"""Static plan verification: compile-time proofs over transformed graphs.

The engine's correctness story used to rest on "by construction"
arguments: the partitioned multiprocess schedule cannot deadlock, the
buffer arena never lets an output overlap a live input, the compression
plane conserves bytes.  This package turns each claim into a checked
theorem that runs before any worker is launched:

* :mod:`~repro.analysis.deadlock` -- cross-rank send/recv matching and
  wait-for cycle detection over the per-worker schedule partitions;
* :mod:`~repro.analysis.congruence` -- MPI-style verification that every
  replica issues the same collective sequence with matching layouts;
* :mod:`~repro.analysis.alias` -- an independent re-derivation of
  liveness and storage aliasing that audits the buffer arena's plan;
* :mod:`~repro.analysis.accounting` -- static wire-byte bookkeeping that
  must agree with the plan-level inventory and predicts the Transcript's
  measured bytes;
* :mod:`~repro.analysis.lint` -- a repo-specific AST lint for invariants
  generic linters cannot express (``python -m repro.analysis.lint``).

Entry point: :func:`~repro.analysis.verifier.verify_plan`, wired into
``transform_graph(..., verify=True)`` and the ``repro.cli verify``
subcommand.
"""

from repro.analysis.report import (  # noqa: F401
    AnalysisReport,
    Finding,
    PlanVerificationError,
)
from repro.analysis.verifier import (  # noqa: F401
    forward_fetch_ops,
    verify_plan,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "PlanVerificationError",
    "forward_fetch_ops",
    "verify_plan",
]
