"""Deadlock and message-matching analysis over partitioned schedules.

The multiprocess backend partitions the global step schedule by device
ownership (:func:`~repro.core.backend.build_worker_entries`); every rank
executes its slice sequentially, blocking on ``recv`` entries.  The
original claim was that this is deadlock-free *by construction* because
all ranks derive the same global order.  This module checks the theorem
instead of assuming it, over the concrete per-rank entry lists:

* every ``send`` has exactly one matching ``recv`` at its destination
  (and vice versa) -- unmatched or double receives block a rank forever;
* per directed channel, receive order equals send order -- a divergence
  means two ranks compiled *different* global schedules;
* every ``exec`` entry's inputs are produced earlier at that rank (by an
  earlier exec or recv) -- a violation is an immediate runtime KeyError;
* the cross-rank wait-for graph (program-order edges within each rank,
  send->recv edges across ranks) is acyclic -- a cycle is a deadlock,
  reported as a concrete counterexample trace naming every rank and
  schedule position on it.

The checker is deliberately decoupled from how the entries were built so
tests can hand it corrupted partitions, and so a future TCP transport
can gate its schedules through the same analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import Finding

ANALYSIS = "deadlock"


def _entry_repr(entry: tuple) -> str:
    if entry[0] == "recv":
        return f"recv {entry[1]!r} from rank {entry[2]}"
    op, sends = entry[1], entry[2]
    suffix = f" -> send to {list(sends)}" if sends else ""
    return f"exec {op.name!r}{suffix}"


def check_entries(entries_by_rank: Dict[int, Sequence[tuple]],
                  ) -> Tuple[List[Finding], Dict[str, object]]:
    """Run every matching/ordering/cycle check over per-rank entries.

    *entries_by_rank* maps a worker rank to its schedule slice in the
    shapes :func:`~repro.core.backend.build_worker_entries` emits:
    ``("exec", op, send_to)`` or ``("recv", name, src)``.
    """
    findings: List[Finding] = []
    ranks = sorted(entries_by_rank)

    # ---- per-rank indexes ---------------------------------------------
    # (src_rank, op_name) -> (index, send_to) for every exec entry.
    exec_at: Dict[Tuple[int, str], Tuple[int, Tuple[int, ...]]] = {}
    # (dst_rank, op_name, src_rank) -> [indices] of recv entries.
    recv_at: Dict[Tuple[int, str, int], List[int]] = {}
    for rank in ranks:
        for idx, entry in enumerate(entries_by_rank[rank]):
            if entry[0] == "recv":
                _, name, src = entry
                recv_at.setdefault((rank, name, src), []).append(idx)
            else:
                _, op, _sends = entry
                exec_at[(rank, op.name)] = (idx, tuple(entry[2]))

    # ---- double receives ----------------------------------------------
    for (rank, name, src), indices in recv_at.items():
        if len(indices) > 1:
            findings.append(Finding(
                ANALYSIS,
                f"rank {rank} receives {name!r} from rank {src} "
                f"{len(indices)} times; the value is sent once, so every "
                "receive after the first blocks forever",
                trace=tuple(
                    f"rank {rank} pos {i}: "
                    + _entry_repr(entries_by_rank[rank][i])
                    for i in indices
                ),
            ))

    # ---- send/recv matching -------------------------------------------
    messages = 0
    for (rank, name), (idx, sends) in exec_at.items():
        for dst in sends:
            messages += 1
            if dst == rank:
                findings.append(Finding(
                    ANALYSIS,
                    f"rank {rank} sends {name!r} to itself",
                    trace=(f"rank {rank} pos {idx}: "
                           + _entry_repr(entries_by_rank[rank][idx]),),
                ))
                continue
            if (dst, name, rank) not in recv_at:
                findings.append(Finding(
                    ANALYSIS,
                    f"unmatched send: rank {rank} sends {name!r} to rank "
                    f"{dst}, but rank {dst} has no matching recv -- the "
                    "value is dropped and any consumer of it at rank "
                    f"{dst} fails",
                    trace=(f"rank {rank} pos {idx}: "
                           + _entry_repr(entries_by_rank[rank][idx]),
                           f"rank {dst}: no ('recv', {name!r}, {rank}) "
                           "entry"),
                ))
    for (rank, name, src), indices in recv_at.items():
        sender = exec_at.get((src, name))
        if sender is None or rank not in sender[1]:
            where = (f"rank {src} pos {sender[0]}: "
                     + _entry_repr(entries_by_rank[src][sender[0]])
                     if sender is not None
                     else f"rank {src}: no exec entry for {name!r}")
            findings.append(Finding(
                ANALYSIS,
                f"unmatched recv: rank {rank} blocks on {name!r} from "
                f"rank {src}, but rank {src} never sends it -- rank "
                f"{rank} hangs at schedule position {indices[0]}",
                trace=(f"rank {rank} pos {indices[0]}: "
                       + _entry_repr(entries_by_rank[rank][indices[0]]),
                       where),
            ))

    # ---- per-channel order congruence ---------------------------------
    # Both sides of a channel derive their order from the same global
    # schedule; a divergence means the ranks compiled different plans.
    # (The transport's keyed mailboxes would still deliver the values,
    # which is exactly why only a static check can catch this.)
    send_order: Dict[Tuple[int, int], List[str]] = {}
    recv_order: Dict[Tuple[int, int], List[str]] = {}
    for rank in ranks:
        for entry in entries_by_rank[rank]:
            if entry[0] == "recv":
                _, name, src = entry
                if (src, name) in exec_at and rank in exec_at[(src, name)][1]:
                    recv_order.setdefault((src, rank), []).append(name)
            else:
                _, op, sends = entry
                for dst in sends:
                    if (dst, op.name, rank) in recv_at:
                        send_order.setdefault((rank, dst),
                                              []).append(op.name)
    for channel, sent in send_order.items():
        received = recv_order.get(channel, [])
        if sent != received and sorted(sent) == sorted(received):
            src, dst = channel
            pos = next(i for i, (a, b) in enumerate(zip(sent, received))
                       if a != b)
            findings.append(Finding(
                ANALYSIS,
                f"reordered channel rank {src} -> rank {dst}: message "
                f"{pos} is sent as {sent[pos]!r} but received as "
                f"{received[pos]!r} -- the ranks disagree on the global "
                "schedule order",
                trace=(f"rank {src} send order: {sent}",
                       f"rank {dst} recv order: {received}"),
            ))

    # ---- value availability at each exec ------------------------------
    for rank in ranks:
        produced = set()
        for idx, entry in enumerate(entries_by_rank[rank]):
            if entry[0] == "recv":
                produced.add(entry[1])
                continue
            _, op, _sends = entry
            for tensor in op.inputs:
                dep = tensor.op.name
                if dep not in produced:
                    findings.append(Finding(
                        ANALYSIS,
                        f"rank {rank} executes {op.name!r} at position "
                        f"{idx} before its input {dep!r} is available "
                        "(no earlier exec or recv at this rank produces "
                        "it)",
                        trace=(f"rank {rank} pos {idx}: "
                               + _entry_repr(entry),
                               f"missing producer: {dep!r}"),
                    ))
            produced.add(op.name)

    # ---- wait-for cycle detection -------------------------------------
    # Nodes are (rank, index), flattened to dense ints so the Kahn pass
    # runs over plain lists.  Edges: each entry waits for the previous
    # entry at its rank (sequential execution) and each matched recv
    # waits for the sending exec.  A cycle is a deadlock.
    base: Dict[int, int] = {}
    total = 0
    for rank in ranks:
        base[rank] = total
        total += len(entries_by_rank[rank])
    unflatten = [(rank, idx) for rank in ranks
                 for idx in range(len(entries_by_rank[rank]))]
    succ: List[List[int]] = [[] for _ in range(total)]
    indegree = [0] * total
    for rank in ranks:
        lo = base[rank]
        for idx in range(1, len(entries_by_rank[rank])):
            succ[lo + idx - 1].append(lo + idx)
            indegree[lo + idx] = 1
    for (rank, name, src), indices in recv_at.items():
        sender = exec_at.get((src, name))
        if sender is None or rank not in sender[1]:
            continue  # already reported as unmatched
        for idx in indices:
            succ[base[src] + sender[0]].append(base[rank] + idx)
            indegree[base[rank] + idx] += 1

    queue = [node for node in range(total) if not indegree[node]]
    settled = 0
    while queue:
        node = queue.pop()
        settled += 1
        for nxt in succ[node]:
            indegree[nxt] -= 1
            if not indegree[nxt]:
                queue.append(nxt)
    if settled != total:
        stuck = {unflatten[node] for node in range(total)
                 if indegree[node] > 0}
        preds: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for node in range(total):
            for nxt in succ[node]:
                preds.setdefault(unflatten[nxt],
                                 []).append(unflatten[node])
        cycle = _extract_cycle(preds, stuck)
        findings.append(Finding(
            ANALYSIS,
            f"deadlock: {len(stuck)} schedule entries across "
            f"{len({r for r, _ in stuck})} rank(s) wait on each other in "
            "a cycle",
            trace=tuple(
                f"rank {rank} pos {idx}: "
                + _entry_repr(entries_by_rank[rank][idx])
                + "  waits for ->"
                for rank, idx in cycle
            ),
        ))

    stats = {
        "ranks": len(ranks),
        "entries": sum(len(entries_by_rank[r]) for r in ranks),
        "messages": messages,
    }
    return findings, stats


def _extract_cycle(preds, stuck):
    """One concrete cycle inside the unresolved wait-for subgraph.

    Walks *predecessor* edges: every unresolved node kept a positive
    in-degree, so it has at least one unresolved predecessor and the
    walk must eventually revisit a node -- closing a cycle -- whereas a
    forward walk could dead-end in nodes merely downstream of one.
    An edge X -> Y means Y waits for X, so the predecessor walk already
    visits nodes in wait-for order.
    """
    path: List[Tuple[int, int]] = []
    on_path: Dict[Tuple[int, int], int] = {}
    node = min(stuck)
    while node not in on_path:
        on_path[node] = len(path)
        path.append(node)
        node = next(p for p in preds.get(node, ()) if p in stuck)
    cycle = path[on_path[node]:]
    return tuple(cycle) + (cycle[0],)


def analyze_deadlock(transformed, fetch_ops, order=None,
                     ) -> Tuple[List[Finding], Dict[str, object]]:
    """Build every rank's schedule slice and run :func:`check_entries`.

    Asynchronous plans have no partitioned schedule (the multiprocess
    backend rejects them), so they pass vacuously.
    """
    from repro.core.backend import build_all_worker_entries

    if transformed.replica_train_ops is not None:
        return [], {"ranks": 0, "entries": 0, "messages": 0,
                    "skipped": "asynchronous plan"}
    return check_entries(
        build_all_worker_entries(transformed, fetch_ops, order=order))
