"""Compose the four static analyses into one plan verification pass.

:func:`verify_plan` is the single entry point: it takes a
:class:`~repro.core.transform.transform.TransformedGraph`, derives the
fetch set the runner would use (replica losses plus the train op),
compiles a throwaway :class:`~repro.graph.executor.CompiledPlan` for the
alias audit (topological orders are memoized on the graph, so this is
cheap), and runs deadlock, congruence, alias and accounting checks --
each individually timed so the verifier's own cost can be budgeted
against compile time in the benchmark history.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.analysis.accounting import analyze_accounting
from repro.analysis.alias import audit_buffer_plan
from repro.analysis.congruence import analyze_congruence
from repro.analysis.deadlock import analyze_deadlock
from repro.analysis.report import AnalysisReport, Finding


def default_fetch_ops(transformed) -> List:
    """The step fetch set the runner executes: every replica loss plus
    the (sync) train op or each replica's (async) train op."""
    fetches = [t.op for t in transformed.replica_losses]
    if transformed.replica_train_ops is not None:
        fetches.extend(t.op for t in transformed.replica_train_ops)
    else:
        fetches.append(transformed.train_op.op)
    return fetches


def forward_fetch_ops(transformed) -> List:
    """A forward-only fetch set: every replica's loss with no train op --
    the shape of a serving/inference plan over a transformed graph.  The
    schedule it induces carries no collectives and no update ops, and
    every analysis must stay sound on it."""
    return [t.op for t in transformed.replica_losses]


def verify_plan(transformed, fetch_ops=None, plan=None,
                analyses: Optional[List[str]] = None) -> AnalysisReport:
    """Statically verify one transformed graph's compiled schedule.

    Returns an :class:`AnalysisReport`; ``report.ok`` is True when no
    analysis produced a finding.  *analyses* restricts the pass to a
    subset of ``{"deadlock", "congruence", "alias", "accounting"}``.
    *plan* reuses an already-compiled :class:`CompiledPlan` for the same
    fetch set (callers that just compiled one avoid paying for the
    schedule twice); its schedule also provides the shared global order
    every analysis walks.
    """
    from repro.graph.executor import CompiledPlan

    if fetch_ops is None:
        fetch_ops = default_fetch_ops(transformed)
    if plan is None:
        plan = CompiledPlan(transformed.graph, fetch_ops)
    elif (plan.graph is not transformed.graph
          or plan.fetch_names != tuple(op.name for op in fetch_ops)):
        raise ValueError(
            "verify_plan: the supplied CompiledPlan was compiled for a "
            "different graph or fetch set than the one under verification"
        )
    order = [entry[0] for entry in plan.schedule]
    report = AnalysisReport()
    selected = (set(analyses) if analyses is not None
                else {"deadlock", "congruence", "alias", "accounting"})

    def run(name, thunk):
        start = time.perf_counter()
        try:
            findings, stats = thunk()
        except Exception as exc:  # an analysis crash is itself a finding
            findings = [Finding(
                name,
                f"analysis crashed: {type(exc).__name__}: {exc}",
            )]
            stats = {}
        report.timings[name] = time.perf_counter() - start
        report.findings.extend(findings)
        report.stats[name] = stats

    if "deadlock" in selected:
        run("deadlock",
            lambda: analyze_deadlock(transformed, fetch_ops, order=order))
    if "congruence" in selected:
        run("congruence",
            lambda: analyze_congruence(transformed, fetch_ops, order=order))
    if "alias" in selected:
        run("alias", lambda: audit_buffer_plan(plan))
    if "accounting" in selected:
        run("accounting",
            lambda: analyze_accounting(transformed, fetch_ops, order=order))
    return report
