"""Layer builders over the graph IR.

Layers are plain functions that create variables and wire ops; there is no
layer object state beyond the variables registered in the graph, which
keeps the single-GPU graph fully introspectable -- the property Parallax's
transformation depends on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph import ops
from repro.graph.graph import Tensor
from repro.graph.variables import (
    PartitionedVariable,
    Variable,
    get_variable,
    glorot_initializer,
    normal_initializer,
    zeros_initializer,
)


def dense(x: Tensor, units: int, name: str, activation: Optional[str] = None,
          use_bias: bool = True) -> Tensor:
    """Fully connected layer ``activation(x @ W + b)``."""
    in_dim = x.spec.shape[-1]
    w = get_variable(f"{name}/kernel", (in_dim, units),
                     initializer=glorot_initializer())
    out = ops.matmul(x, w.tensor, name=f"{name}/matmul")
    if use_bias:
        b = get_variable(f"{name}/bias", (units,),
                         initializer=zeros_initializer)
        out = ops.add_bias(out, b.tensor, name=f"{name}/bias_add")
    return _activate(out, activation, name)


def conv_block(x: Tensor, features_out: int, name: str,
               activation: Optional[str] = "relu") -> Tensor:
    """Convolution proxy: a dense projection standing in for a conv layer.

    See ``repro.tensor.math.conv_proxy`` for why this is a faithful
    substitution at the level the paper's experiments observe.
    """
    in_dim = x.spec.shape[-1]
    w = get_variable(f"{name}/conv_kernel", (in_dim, features_out),
                     initializer=glorot_initializer())
    out = ops.matmul(x, w.tensor, name=f"{name}/conv")
    return _activate(out, activation, name)


def residual_block(x: Tensor, features: int, name: str) -> Tensor:
    """Two conv proxies plus a skip connection (the ResNet building block)."""
    h = conv_block(x, features, f"{name}/conv1", activation="relu")
    h = conv_block(h, x.spec.shape[-1], f"{name}/conv2", activation=None)
    out = ops.add(x, h, name=f"{name}/skip_add")
    return ops.relu(out, name=f"{name}/out_relu")


def embedding(ids: Tensor, vocab_size: int, dim: int, name: str,
              num_partitions: Optional[int] = None,
              ) -> Tuple[Tensor, Union[Variable, PartitionedVariable]]:
    """Embedding lookup; partitioned when ``num_partitions > 1``.

    Returns ``(embedded, variable)``.  The lookup goes through ``gather``
    (unpartitioned) or ``part_gather`` (partitioned), so the embedding's
    gradient is IndexedSlices-typed -- this is what makes a model "sparse"
    in the paper's sense.

    When ``num_partitions`` is None and the call happens inside a
    ``parallax.partitioner()`` scope, the scope's active partition count
    applies (the value Parallax's search is currently sampling).
    """
    if num_partitions is None:
        from repro.core.partition_context import active_partitions

        num_partitions = active_partitions() or 1
    num_partitions = min(num_partitions, vocab_size)
    init = normal_initializer(stddev=0.05)
    if num_partitions > 1:
        pvar = PartitionedVariable(name, (vocab_size, dim), num_partitions,
                                   initializer=init)
        return pvar.lookup(ids, name=f"{name}/lookup"), pvar
    var = get_variable(name, (vocab_size, dim), initializer=init)
    return ops.gather(var.tensor, ids, name=f"{name}/lookup"), var


def lstm(x_steps: Sequence[Tensor], hidden: int, name: str,
         ) -> List[Tensor]:
    """Unrolled LSTM over a list of per-timestep inputs.

    Built from primitive ops (concat/matmul/slice/sigmoid/tanh/mul/add) so
    autodiff and the distributed transformation see an ordinary deep graph,
    as they would with TF's unrolled ``tf.nn.dynamic_rnn``.
    Returns the hidden state at every step.
    """
    if not x_steps:
        raise ValueError("lstm needs at least one timestep")
    batch = x_steps[0].spec.shape[0]
    in_dim = x_steps[0].spec.shape[-1]
    w = get_variable(f"{name}/kernel", (in_dim + hidden, 4 * hidden),
                     initializer=glorot_initializer())
    b = get_variable(f"{name}/bias", (4 * hidden,),
                     initializer=zeros_initializer)
    h = ops.constant(np.zeros((batch, hidden), dtype="float32"),
                     name=f"{name}/h0")
    c = ops.constant(np.zeros((batch, hidden), dtype="float32"),
                     name=f"{name}/c0")
    outputs: List[Tensor] = []
    for t, x in enumerate(x_steps):
        prefix = f"{name}/step{t}"
        z = ops.add_bias(
            ops.matmul(ops.concat([x, h], axis=-1, name=f"{prefix}/xh"),
                       w.tensor, name=f"{prefix}/matmul"),
            b.tensor, name=f"{prefix}/bias",
        )
        i = ops.sigmoid(ops.slice_axis(z, 0, hidden, name=f"{prefix}/zi"),
                        name=f"{prefix}/i")
        f = ops.sigmoid(
            ops.slice_axis(z, hidden, 2 * hidden, name=f"{prefix}/zf"),
            name=f"{prefix}/f",
        )
        gate = ops.tanh(
            ops.slice_axis(z, 2 * hidden, 3 * hidden, name=f"{prefix}/zg"),
            name=f"{prefix}/g",
        )
        o = ops.sigmoid(
            ops.slice_axis(z, 3 * hidden, 4 * hidden, name=f"{prefix}/zo"),
            name=f"{prefix}/o",
        )
        c = ops.add(ops.mul(f, c, name=f"{prefix}/fc"),
                    ops.mul(i, gate, name=f"{prefix}/ig"),
                    name=f"{prefix}/c")
        h = ops.mul(o, ops.tanh(c, name=f"{prefix}/tanh_c"),
                    name=f"{prefix}/h")
        outputs.append(h)
    return outputs


def _activate(x: Tensor, activation: Optional[str], name: str) -> Tensor:
    if activation is None:
        return x
    if activation == "relu":
        return ops.relu(x, name=f"{name}/relu")
    if activation == "tanh":
        return ops.tanh(x, name=f"{name}/tanh")
    if activation == "sigmoid":
        return ops.sigmoid(x, name=f"{name}/sigmoid")
    raise ValueError(f"unknown activation {activation!r}")
