"""Paper-scale model profiles: the variable inventories of Table 1.

The performance plane never materializes paper-scale arrays (the LM
embedding alone is 406M elements); it works from these profiles, which
record for every variable its element count, whether its gradient is
sparse, and its per-worker alpha (fraction of rows touched per iteration).

Inventories are reconstructed from the paper and the models it cites:

* **ResNet-50** -- the real He et al. bottleneck structure (conv + fc,
  batch-norm folded), scaled so total elements match the paper's 23.8M;
  the fc layer is kept at exactly 2,049,000 elements because the paper
  calls it out ("the largest variable ... has 2.05 million elements").
* **Inception-v3** -- stem + inception towers + fc, scaled to 25.6M.
* **LM** -- Jozefowicz et al. big LSTM: a (512+512)x8192 CIFG-style kernel
  plus a 2048x512 projection (9.4M dense), and input embedding + softmax
  weights + softmax bias over the 793,471-word One-Billion-Word vocabulary
  (813.3M sparse).
* **NMT** -- GNMT-style encoder/decoder stack (94.1M dense) with encoder
  and decoder embeddings over a 36,572-token vocabulary (74.9M sparse).

Per-variable alpha values are set so the element-weighted model alpha
(with dense variables contributing alpha = 1) reproduces the paper's
alpha_model column: 1, 1, 0.02, 0.65.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

FLOAT_BYTES = 4


@dataclass(frozen=True)
class VariableProfile:
    """Size/sparsity descriptor of one model variable."""

    name: str
    num_elements: int
    is_sparse: bool = False
    alpha: float = 1.0  # per-worker fraction of rows touched per iteration
    rows: Optional[int] = None  # leading dim; needed to bound partitioning

    def __post_init__(self):
        if self.num_elements <= 0:
            raise ValueError(f"{self.name}: num_elements must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"{self.name}: alpha must be in (0, 1]")
        if self.is_sparse and self.rows is None:
            raise ValueError(f"{self.name}: sparse variables must define rows")

    @property
    def nbytes(self) -> int:
        return self.num_elements * FLOAT_BYTES

    @property
    def grad_nbytes(self) -> int:
        """Bytes of gradient one worker produces for this variable."""
        if self.is_sparse:
            return int(round(self.alpha * self.num_elements)) * FLOAT_BYTES
        return self.nbytes


@dataclass(frozen=True)
class ModelProfile:
    """A model as the performance plane sees it."""

    name: str
    variables: List[VariableProfile]
    batch_per_gpu: int
    units_per_sample: int  # 1 for images; tokens per sentence for NLP
    unit: str  # "images" or "words"
    gpu_time_per_iter: float  # fwd+bwd seconds on one GPU (calibrated)

    @property
    def dense_variables(self) -> List[VariableProfile]:
        return [v for v in self.variables if not v.is_sparse]

    @property
    def sparse_variables(self) -> List[VariableProfile]:
        return [v for v in self.variables if v.is_sparse]

    @property
    def dense_elements(self) -> int:
        return sum(v.num_elements for v in self.dense_variables)

    @property
    def sparse_elements(self) -> int:
        return sum(v.num_elements for v in self.sparse_variables)

    @property
    def total_elements(self) -> int:
        return self.dense_elements + self.sparse_elements

    @property
    def alpha_model(self) -> float:
        """Element-weighted alpha (dense variables count as alpha = 1).

        This is the paper's alpha_model (Table 1): "a weighted sum of
        alpha values of variables in the model, where the weight of each
        variable is proportional to its number of elements."
        """
        total = self.total_elements
        weighted = sum(v.alpha * v.num_elements for v in self.variables)
        return weighted / total

    @property
    def is_sparse_model(self) -> bool:
        return bool(self.sparse_variables)

    def units_per_iteration(self, num_gpus: int) -> int:
        return self.batch_per_gpu * self.units_per_sample * num_gpus

    def get_variable(self, name: str) -> VariableProfile:
        for v in self.variables:
            if v.name == name:
                return v
        raise KeyError(f"no variable named {name!r} in profile {self.name}")


# ----------------------------------------------------------------------
# ResNet-50
# ----------------------------------------------------------------------
def _resnet50_raw_inventory() -> List[VariableProfile]:
    """The genuine bottleneck-structure conv inventory (no batch norm)."""
    out: List[VariableProfile] = [VariableProfile("conv1", 7 * 7 * 3 * 64)]
    stage_defs = [  # (num_blocks, in_ch, mid_ch, out_ch)
        (3, 64, 64, 256),
        (4, 256, 128, 512),
        (6, 512, 256, 1024),
        (3, 1024, 512, 2048),
    ]
    for s, (blocks, in_ch, mid, out_ch) in enumerate(stage_defs):
        for b in range(blocks):
            block_in = in_ch if b == 0 else out_ch
            prefix = f"stage{s + 1}/block{b + 1}"
            out.append(VariableProfile(f"{prefix}/conv_a", block_in * mid))
            out.append(VariableProfile(f"{prefix}/conv_b", 3 * 3 * mid * mid))
            out.append(VariableProfile(f"{prefix}/conv_c", mid * out_ch))
            if b == 0:
                out.append(
                    VariableProfile(f"{prefix}/downsample", block_in * out_ch)
                )
    return out


def _scale_inventory(variables: List[VariableProfile], target_total: int,
                     keep: Dict[str, int]) -> List[VariableProfile]:
    """Scale element counts so they sum to *target_total*.

    Entries named in *keep* are pinned to an exact size (the paper calls
    out the fc layer sizes explicitly); everything else scales uniformly.
    """
    pinned = sum(keep.values())
    flexible = sum(v.num_elements for v in variables if v.name not in keep)
    factor = (target_total - pinned) / flexible
    scaled = []
    for v in variables:
        if v.name in keep:
            scaled.append(VariableProfile(v.name, keep[v.name], v.is_sparse,
                                          v.alpha, v.rows))
        else:
            scaled.append(
                VariableProfile(v.name, max(1, round(v.num_elements * factor)),
                                v.is_sparse, v.alpha, v.rows)
            )
    return scaled


def resnet50_profile() -> ModelProfile:
    """Table 1 row 1: dense 23.8M elements, batch 64/GPU."""
    inventory = _resnet50_raw_inventory()
    inventory.append(VariableProfile("fc", 2048 * 1000 + 1000))
    inventory = _scale_inventory(
        inventory, 23_800_000, keep={"fc": 2_049_000}
    )
    return ModelProfile(
        name="resnet50",
        variables=inventory,
        batch_per_gpu=64,
        units_per_sample=1,
        unit="images",
        gpu_time_per_iter=0.335,  # ~191 images/s on one GPU (paper Fig. 9)
    )


# ----------------------------------------------------------------------
# Inception-v3
# ----------------------------------------------------------------------
def _inception_raw_inventory() -> List[VariableProfile]:
    out: List[VariableProfile] = [
        VariableProfile("stem/conv1", 3 * 3 * 3 * 32),
        VariableProfile("stem/conv2", 3 * 3 * 32 * 32),
        VariableProfile("stem/conv3", 3 * 3 * 32 * 64),
        VariableProfile("stem/conv4", 1 * 1 * 64 * 80),
        VariableProfile("stem/conv5", 3 * 3 * 80 * 192),
    ]
    # Inception towers: (count, in_ch, branch channel descriptions)
    module_defs = [
        ("mixed_a", 3, 288, [64, 96, 48, 64]),
        ("mixed_b", 5, 768, [192, 160, 128, 192]),
        ("mixed_c", 2, 2048, [320, 384, 448, 192]),
    ]
    for label, count, in_ch, branches in module_defs:
        for m in range(count):
            for b, ch in enumerate(branches):
                out.append(
                    VariableProfile(f"{label}{m + 1}/branch{b}/conv1x1",
                                    in_ch * ch)
                )
                out.append(
                    VariableProfile(f"{label}{m + 1}/branch{b}/conv3x3",
                                    3 * 3 * ch * ch)
                )
    return out


def inception_v3_profile() -> ModelProfile:
    """Table 1 row 2: dense 25.6M elements, batch 64/GPU."""
    inventory = _inception_raw_inventory()
    inventory.append(VariableProfile("fc", 2048 * 1000 + 1000))
    inventory = _scale_inventory(
        inventory, 25_600_000, keep={"fc": 2_049_000}
    )
    return ModelProfile(
        name="inception_v3",
        variables=inventory,
        batch_per_gpu=64,
        units_per_sample=1,
        unit="images",
        gpu_time_per_iter=0.473,  # ~135 images/s on one GPU (paper Fig. 9)
    )


# ----------------------------------------------------------------------
# LM (Jozefowicz et al. big LSTM on One-Billion-Word)
# ----------------------------------------------------------------------
LM_VOCAB = 793_471
LM_EMB_DIM = 512
LM_SEQ_LEN = 20

# Sparse per-variable alpha chosen so the element-weighted model alpha
# (dense contributing 1.0) lands on the paper's 0.02 -- see module test.
LM_SPARSE_ALPHA = 0.0087


def lm_profile() -> ModelProfile:
    """Table 1 row 3: dense 9.4M, sparse 813.3M, alpha_model 0.02."""
    dense = [
        VariableProfile("lstm/kernel", (LM_EMB_DIM + LM_EMB_DIM) * 4 * 2048),
        VariableProfile("lstm/projection", 2048 * LM_EMB_DIM),
        VariableProfile("lstm/bias", 4 * 2048),
    ]
    sparse = [
        VariableProfile("embedding", LM_VOCAB * LM_EMB_DIM, is_sparse=True,
                        alpha=LM_SPARSE_ALPHA, rows=LM_VOCAB),
        VariableProfile("softmax/weights", LM_VOCAB * LM_EMB_DIM,
                        is_sparse=True, alpha=LM_SPARSE_ALPHA, rows=LM_VOCAB),
        VariableProfile("softmax/bias", LM_VOCAB, is_sparse=True,
                        alpha=LM_SPARSE_ALPHA, rows=LM_VOCAB),
    ]
    return ModelProfile(
        name="lm",
        variables=dense + sparse,
        batch_per_gpu=128,
        units_per_sample=LM_SEQ_LEN,
        unit="words",
        gpu_time_per_iter=0.088,  # ~29k words/s on one GPU (paper Fig. 9)
    )


# ----------------------------------------------------------------------
# NMT (GNMT-style, WMT En-De)
# ----------------------------------------------------------------------
# Sparse total is 74.9M elements = 3 vocabulary-shaped variables (encoder
# embedding, decoder embedding, sampled-softmax weights) of V x 1024 each
# -> V = 24,381 sub-word units.
NMT_VOCAB = 24_381
NMT_DIM = 1024
NMT_SEQ_LEN = 25

# Per-variable alphas: a 128-sentence x 25-token batch touches ~6% of the
# 24,381-entry vocabulary after Zipf repetition; sampled softmax draws a
# somewhat larger candidate set (~9% of rows).  These values are the ones
# consistent with the paper's *measured throughput scaling* (Figure 8(d):
# Horovod NMT iteration time grows linearly in worker count with slope
# ~41 ms/worker, which pins total sparse alpha*elements at ~5.2M).  The
# paper's Table 1 reports alpha_model = 0.65 for NMT; under our
# element-weighted definition these alphas give ~0.59 -- the paper's
# weighting cannot be reproduced exactly (see EXPERIMENTS.md).
NMT_EMB_ALPHA = 0.06
NMT_SOFTMAX_ALPHA = 0.09


def nmt_profile() -> ModelProfile:
    """Table 1 row 4: dense 94.1M, sparse 74.9M, alpha_model 0.65."""
    dense: List[VariableProfile] = []
    # Bidirectional first encoder layer + uni encoder layers.
    dense.append(VariableProfile("encoder/bi_fw/kernel",
                                 (NMT_DIM + NMT_DIM) * 4 * NMT_DIM))
    dense.append(VariableProfile("encoder/bi_bw/kernel",
                                 (NMT_DIM + NMT_DIM) * 4 * NMT_DIM))
    for layer in range(2, 6):
        in_dim = 2 * NMT_DIM if layer == 2 else NMT_DIM
        dense.append(
            VariableProfile(f"encoder/layer{layer}/kernel",
                            (in_dim + NMT_DIM) * 4 * NMT_DIM)
        )
    # Decoder layers (first takes attention context concatenated).
    for layer in range(1, 6):
        in_dim = 2 * NMT_DIM if layer == 1 else NMT_DIM
        dense.append(
            VariableProfile(f"decoder/layer{layer}/kernel",
                            (in_dim + NMT_DIM) * 4 * NMT_DIM)
        )
    dense.append(VariableProfile("attention/kernel", 2 * NMT_DIM * NMT_DIM))
    dense = _scale_inventory(dense, 94_100_000, keep={})
    sparse = [
        VariableProfile("encoder/embedding", NMT_VOCAB * NMT_DIM,
                        is_sparse=True, alpha=NMT_EMB_ALPHA,
                        rows=NMT_VOCAB),
        VariableProfile("decoder/embedding", NMT_VOCAB * NMT_DIM,
                        is_sparse=True, alpha=NMT_EMB_ALPHA,
                        rows=NMT_VOCAB),
        VariableProfile("softmax/weights", NMT_VOCAB * NMT_DIM,
                        is_sparse=True, alpha=NMT_SOFTMAX_ALPHA,
                        rows=NMT_VOCAB),
    ]
    return ModelProfile(
        name="nmt",
        variables=dense + sparse,
        batch_per_gpu=128,
        units_per_sample=NMT_SEQ_LEN,
        unit="words",
        gpu_time_per_iter=0.289,  # ~11k words/s on one GPU (paper Fig. 9)
    )


# ----------------------------------------------------------------------
# Constructed LM for the sparsity-degree sweep (Table 6)
# ----------------------------------------------------------------------
# The paper controls the sparsity degree through the number of words per
# data instance ("length"), with a reduced vocabulary.  These are the
# exact (length, alpha) pairs of Table 6.  Note the alpha column here is
# the *sparse-variable* alpha, not the element-weighted alpha_model of
# Table 1: with the constructed LM's 9.4M of dense LSTM weights, an
# element-weighted alpha could never reach Table 6's 0.04 floor.  The
# column is physically consistent as per-worker sparse alpha over a
# 3,200-word vocabulary: a 128-instance batch of length 1 touches at most
# 128/3200 = 0.04 of the rows -- exactly the length-1 entry -- and a
# length-120 batch (15,360 draws) covers the whole vocabulary (alpha 1.0).
TABLE6_ALPHA = {
    120: 1.0, 60: 0.52, 30: 0.28, 15: 0.16, 8: 0.1, 4: 0.07, 1: 0.04,
}

CONSTRUCTED_LM_VOCAB = 3_200
CONSTRUCTED_LM_DIM = 512


def constructed_lm_profile(length: int) -> ModelProfile:
    """LM variant with sparsity controlled by instance length (sec. 6.6)."""
    if length not in TABLE6_ALPHA:
        raise ValueError(
            f"length must be one of {sorted(TABLE6_ALPHA)}, got {length}"
        )
    alpha_var = TABLE6_ALPHA[length]
    dense = [
        VariableProfile("lstm/kernel", (512 + 512) * 4 * 2048),
        VariableProfile("lstm/projection", 2048 * 512),
        VariableProfile("lstm/bias", 4 * 2048),
    ]
    sparse = [
        VariableProfile("embedding",
                        CONSTRUCTED_LM_VOCAB * CONSTRUCTED_LM_DIM,
                        is_sparse=True, alpha=alpha_var,
                        rows=CONSTRUCTED_LM_VOCAB),
        VariableProfile("softmax/weights",
                        CONSTRUCTED_LM_VOCAB * CONSTRUCTED_LM_DIM,
                        is_sparse=True, alpha=alpha_var,
                        rows=CONSTRUCTED_LM_VOCAB),
    ]
    # Compute time grows with instance length (more unrolled steps).
    base_step_time = 0.0035
    return ModelProfile(
        name=f"constructed_lm_len{length}",
        variables=dense + sparse,
        batch_per_gpu=128,
        units_per_sample=length,
        unit="words",
        gpu_time_per_iter=0.02 + base_step_time * length,
    )


def PAPER_PROFILES() -> Dict[str, ModelProfile]:
    """The four Table 1 models keyed by name."""
    return {
        "resnet50": resnet50_profile(),
        "inception_v3": inception_v3_profile(),
        "lm": lm_profile(),
        "nmt": nmt_profile(),
    }
