"""Runnable model zoo: the four evaluation models at test scale.

Each builder returns a :class:`BuiltModel` bundling the single-GPU graph,
its placeholders, the loss, and a feed function -- exactly the artifact a
Parallax user hands to ``parallax.get_runner`` (paper Figure 3).
"""

from repro.nn.models.common import BuiltModel
from repro.nn.models.lm import build_lm
from repro.nn.models.nmt import build_nmt
from repro.nn.models.resnet import build_resnet
from repro.nn.models.inception import build_inception

__all__ = [
    "BuiltModel",
    "build_lm",
    "build_nmt",
    "build_resnet",
    "build_inception",
]
