"""Runnable LM: an LSTM language model with a sparse word embedding.

A scaled-down Jozefowicz et al. big-LSTM: embedding lookup (sparse; the
variable the paper's techniques exist for), a single unrolled LSTM,
a projection, and a full softmax over the vocabulary.  At test scale the
softmax weights are dense; the embedding gradient is IndexedSlices, which
is what classifies the model as sparse.
"""

from __future__ import annotations

from typing import Optional

from repro.graph import ops
from repro.graph.graph import Graph
from repro.nn import layers
from repro.nn.datasets import SyntheticTextDataset
from repro.nn.models.common import BuiltModel, mean_of, split_steps


def build_lm(
    batch_size: int = 8,
    vocab_size: int = 120,
    seq_len: int = 4,
    emb_dim: int = 16,
    hidden: int = 24,
    num_partitions: int = 1,
    dataset: Optional[SyntheticTextDataset] = None,
    seed: int = 0,
) -> BuiltModel:
    """Build the LM graph; returns the single-GPU artifact."""
    if dataset is None:
        dataset = SyntheticTextDataset(
            size=512, vocab_size=vocab_size, seq_len=seq_len, seed=seed
        )
    graph = Graph()
    with graph.as_default():
        tokens = ops.placeholder((batch_size, seq_len), dtype="int64",
                                 name="tokens")
        targets = ops.placeholder((batch_size, seq_len), dtype="int64",
                                  name="targets")
        embedded, _ = layers.embedding(
            tokens, vocab_size, emb_dim, name="embedding",
            num_partitions=num_partitions,
        )
        x_steps = split_steps(embedded, seq_len, "emb_steps")
        h_steps = layers.lstm(x_steps, hidden, name="lstm")

        step_losses = []
        last_logits = None
        # Projection and softmax weights are shared across timesteps, so
        # create them once and reuse the variable tensors per step.
        proj_w = layers.get_variable(
            "projection/kernel", (hidden, emb_dim),
            initializer=layers.glorot_initializer(),
        )
        softmax_w = layers.get_variable(
            "softmax/kernel", (emb_dim, vocab_size),
            initializer=layers.glorot_initializer(),
        )
        for t, h in enumerate(h_steps):
            projected = ops.matmul(h, proj_w.tensor, name=f"proj/t{t}")
            logits = ops.matmul(projected, softmax_w.tensor,
                                name=f"logits/t{t}")
            step_targets = ops.reshape(
                ops.slice_axis(targets, t, t + 1, axis=1,
                               name=f"targets/t{t}"),
                (batch_size,), name=f"targets/t{t}/squeeze",
            )
            step_losses.append(
                ops.softmax_xent(logits, step_targets, name=f"xent/t{t}")
            )
            last_logits = logits
        loss = mean_of(step_losses, name="loss")

    return BuiltModel(
        graph=graph,
        loss=loss,
        placeholders={"tokens": tokens, "targets": targets},
        dataset=dataset,
        batch_size=batch_size,
        logits=last_logits,
        label_key="targets",
        name="lm",
    )
