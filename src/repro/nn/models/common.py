"""Shared plumbing for the runnable model zoo."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import ops
from repro.graph.graph import Graph, Tensor
from repro.nn.datasets import Dataset


@dataclass
class BuiltModel:
    """A single-GPU model graph plus everything needed to feed it.

    Attributes:
        graph: the single-GPU computation graph.
        loss: scalar loss tensor.
        placeholders: name -> placeholder tensor (fed from dataset batches).
        dataset: the dataset this model trains on.
        batch_size: per-replica batch size.
        logits: optional prediction tensor for accuracy-style metrics.
        label_key: which placeholder holds the labels ``logits`` predicts.
    """

    graph: Graph
    loss: Tensor
    placeholders: Dict[str, Tensor]
    dataset: Dataset
    batch_size: int
    logits: Optional[Tensor] = None
    label_key: Optional[str] = None
    name: str = "model"

    def feed(self, batch: Tuple[np.ndarray, ...]) -> Dict[Tensor, np.ndarray]:
        """Map a dataset batch (positional arrays) onto the placeholders."""
        keys = list(self.placeholders)
        if len(batch) != len(keys):
            raise ValueError(
                f"batch has {len(batch)} arrays but model {self.name!r} "
                f"expects {len(keys)} placeholders ({keys})"
            )
        return {self.placeholders[k]: arr for k, arr in zip(keys, batch)}


def mean_of(tensors: Sequence[Tensor], name: str) -> Tensor:
    """Average a list of scalar tensors (per-timestep losses)."""
    if not tensors:
        raise ValueError("mean_of needs at least one tensor")
    total = tensors[0]
    for i, t in enumerate(tensors[1:]):
        total = ops.add(total, t, name=f"{name}/sum{i}")
    return ops.scale(total, 1.0 / len(tensors), name=f"{name}/mean")


def split_steps(x: Tensor, seq_len: int, name: str) -> List[Tensor]:
    """Split a (batch, seq, dim) tensor into per-timestep (batch, dim)."""
    steps = []
    batch = x.spec.shape[0]
    dim = x.spec.shape[2]
    for t in range(seq_len):
        s = ops.slice_axis(x, t, t + 1, axis=1, name=f"{name}/t{t}")
        steps.append(ops.reshape(s, (batch, dim), name=f"{name}/t{t}/squeeze"))
    return steps
