"""Runnable Inception: multi-branch towers over feature-vector images.

A scaled-down Szegedy et al. Inception-v3 built from conv proxies: a stem
followed by "mixed" modules whose parallel branches are concatenated --
exercising the ``concat`` op family in the distributed transformation.
Entirely dense, like ResNet.
"""

from __future__ import annotations

from typing import Optional

from repro.graph import ops
from repro.graph.graph import Graph
from repro.nn import layers
from repro.nn.datasets import SyntheticImageDataset
from repro.nn.models.common import BuiltModel


def _mixed_module(x, branch_width: int, name: str):
    """Two parallel conv branches concatenated on the feature axis."""
    b0 = layers.conv_block(x, branch_width, name=f"{name}/branch0")
    b1 = layers.conv_block(x, branch_width, name=f"{name}/branch1_a")
    b1 = layers.conv_block(b1, branch_width, name=f"{name}/branch1_b")
    return ops.concat([b0, b1], axis=-1, name=f"{name}/concat")


def build_inception(
    batch_size: int = 8,
    num_features: int = 32,
    num_classes: int = 10,
    width: int = 16,
    num_modules: int = 2,
    dataset: Optional[SyntheticImageDataset] = None,
    seed: int = 0,
) -> BuiltModel:
    """Build the Inception graph; returns the single-GPU artifact."""
    if dataset is None:
        dataset = SyntheticImageDataset(
            size=512, num_features=num_features, num_classes=num_classes,
            seed=seed,
        )
    graph = Graph()
    with graph.as_default():
        images = ops.placeholder((batch_size, num_features), name="images")
        labels = ops.placeholder((batch_size,), dtype="int64", name="labels")

        h = layers.conv_block(images, 2 * width, name="stem")
        for m in range(num_modules):
            h = _mixed_module(h, width, name=f"mixed{m + 1}")
        logits = layers.dense(h, num_classes, name="fc")
        loss = ops.softmax_xent(logits, labels, name="loss")

    return BuiltModel(
        graph=graph,
        loss=loss,
        placeholders={"images": images, "labels": labels},
        dataset=dataset,
        batch_size=batch_size,
        logits=logits,
        label_key="labels",
        name="inception",
    )
