"""Runnable ResNet: a residual network over feature-vector images.

A scaled-down He et al. ResNet built from conv proxies and residual
blocks.  Entirely dense -- the control model for the sparsity experiments;
under Parallax it must route every variable through AllReduce.
"""

from __future__ import annotations

from typing import Optional

from repro.graph import ops
from repro.graph.graph import Graph
from repro.nn import layers
from repro.nn.datasets import SyntheticImageDataset
from repro.nn.models.common import BuiltModel


def build_resnet(
    batch_size: int = 8,
    num_features: int = 32,
    num_classes: int = 10,
    width: int = 32,
    num_blocks: int = 3,
    dataset: Optional[SyntheticImageDataset] = None,
    seed: int = 0,
) -> BuiltModel:
    """Build the ResNet graph; returns the single-GPU artifact."""
    if dataset is None:
        dataset = SyntheticImageDataset(
            size=512, num_features=num_features, num_classes=num_classes,
            seed=seed,
        )
    graph = Graph()
    with graph.as_default():
        images = ops.placeholder((batch_size, num_features), name="images")
        labels = ops.placeholder((batch_size,), dtype="int64", name="labels")

        h = layers.conv_block(images, width, name="stem")
        for b in range(num_blocks):
            h = layers.residual_block(h, width, name=f"block{b + 1}")
        logits = layers.dense(h, num_classes, name="fc")
        loss = ops.softmax_xent(logits, labels, name="loss")

    return BuiltModel(
        graph=graph,
        loss=loss,
        placeholders={"images": images, "labels": labels},
        dataset=dataset,
        batch_size=batch_size,
        logits=logits,
        label_key="labels",
        name="resnet",
    )
