"""Runnable NMT: encoder/decoder LSTMs with two sparse embeddings.

A scaled-down GNMT: source embedding -> encoder LSTM; the encoder's final
hidden state conditions a decoder LSTM over target embeddings; a shared
softmax produces per-step translation logits.  Both embeddings produce
IndexedSlices gradients; the LSTM kernels and softmax are dense -- the
balanced dense/sparse mix the paper highlights for NMT (44% sparse).
"""

from __future__ import annotations

from typing import Optional

from repro.graph import ops
from repro.graph.graph import Graph
from repro.nn import layers
from repro.nn.datasets import TranslationDataset
from repro.nn.models.common import BuiltModel, mean_of, split_steps


def build_nmt(
    batch_size: int = 8,
    src_vocab: int = 100,
    tgt_vocab: int = 100,
    src_len: int = 4,
    tgt_len: int = 4,
    emb_dim: int = 16,
    hidden: int = 16,
    num_partitions: int = 1,
    dataset: Optional[TranslationDataset] = None,
    seed: int = 0,
) -> BuiltModel:
    """Build the NMT graph; returns the single-GPU artifact."""
    if emb_dim != hidden:
        raise ValueError(
            "this NMT variant conditions the decoder by adding the encoder "
            "state to target embeddings; emb_dim must equal hidden"
        )
    if dataset is None:
        dataset = TranslationDataset(
            size=512, src_vocab=src_vocab, tgt_vocab=tgt_vocab,
            src_len=src_len, tgt_len=tgt_len, seed=seed,
        )
    graph = Graph()
    with graph.as_default():
        src = ops.placeholder((batch_size, src_len), dtype="int64", name="src")
        tgt = ops.placeholder((batch_size, tgt_len), dtype="int64", name="tgt")

        src_emb, _ = layers.embedding(
            src, src_vocab, emb_dim, name="encoder/embedding",
            num_partitions=num_partitions,
        )
        enc_steps = layers.lstm(
            split_steps(src_emb, src_len, "enc_in"), hidden, name="encoder/lstm"
        )
        context = enc_steps[-1]  # final encoder state conditions decoding

        tgt_emb, _ = layers.embedding(
            tgt, tgt_vocab, emb_dim, name="decoder/embedding",
            num_partitions=num_partitions,
        )
        dec_inputs = [
            ops.add(step, context, name=f"dec_in/t{t}")
            for t, step in enumerate(split_steps(tgt_emb, tgt_len, "dec_in_raw"))
        ]
        dec_steps = layers.lstm(dec_inputs, hidden, name="decoder/lstm")

        softmax_w = layers.get_variable(
            "softmax/kernel", (hidden, tgt_vocab),
            initializer=layers.glorot_initializer(),
        )
        step_losses = []
        last_logits = None
        for t, h in enumerate(dec_steps):
            logits = ops.matmul(h, softmax_w.tensor, name=f"logits/t{t}")
            step_targets = ops.reshape(
                ops.slice_axis(tgt, t, t + 1, axis=1, name=f"labels/t{t}"),
                (batch_size,), name=f"labels/t{t}/squeeze",
            )
            step_losses.append(
                ops.softmax_xent(logits, step_targets, name=f"xent/t{t}")
            )
            last_logits = logits
        loss = mean_of(step_losses, name="loss")

    return BuiltModel(
        graph=graph,
        loss=loss,
        placeholders={"src": src, "tgt": tgt},
        dataset=dataset,
        batch_size=batch_size,
        logits=last_logits,
        label_key="tgt",
        name="nmt",
    )
