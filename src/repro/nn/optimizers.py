"""Optimizers that build update ops into the graph.

The contract with the distributed transformation (paper section 4.3,
"Parallax assigns update operations in the same server with their
variables"): update ops are *rebuildable*.  ``Optimizer.update`` builds
single-GPU update ops; the transforms discard those and call
``build_update(var, grad_tensor, device=...)`` again to place fresh update
ops wherever the architecture dictates (on servers for PS variables, on
every worker replica for AR variables).

Sparse gradients (IndexedSlices) get sparse update rules: plain row
subtraction for SGD and row-wise ("lazy") slot updates for Momentum/Adam,
matching TensorFlow's sparse-apply semantics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph import ops as ops_mod
from repro.graph.gradients import grad_tensor_is_sparse
from repro.graph.graph import Graph, Operation, Tensor
from repro.graph.ops import register_forward
from repro.graph.variables import Variable, zeros_initializer
from repro.tensor.dense import TensorSpec
from repro.tensor.sparse import IndexedSlices


class Optimizer:
    """Base class; subclasses define per-variable update op construction.

    ``clip_norm`` (set by subclass constructors) enables per-variable
    gradient-norm clipping: each variable's gradient is rescaled to at
    most that L2 norm before the update rule applies.  The attribute
    rides on the update op, so the distributed transformation preserves
    clipping when it rebuilds updates on servers/replicas.
    """

    clip_norm: Optional[float] = None

    def update(self, grads_and_vars: Sequence[Tuple[Tensor, Variable]],
               name: str = "train_op") -> Tensor:
        """Build update ops for every pair and group them into a train op."""
        if not grads_and_vars:
            raise ValueError("no gradients to apply")
        graph = grads_and_vars[0][0].graph
        updates = [
            self.build_update(var, grad) for grad, var in grads_and_vars
        ]
        graph.collections.setdefault("optimizer", []).append(self)
        train_op = ops_mod.group(updates, name=name, graph=graph)
        graph.add_to_collection("train_ops", train_op.op)
        return train_op

    def build_update(self, var: Variable, grad: Tensor,
                     device=None) -> Operation:
        graph = grad.graph
        sparse = grad_tensor_is_sparse(grad)
        op = self._build(graph, var, grad, sparse, device)
        op.attrs["variable"] = var.name
        op.attrs["is_update"] = True
        op.attrs["sparse_grad"] = sparse
        if self.clip_norm is not None:
            op.attrs["clip_norm"] = float(self.clip_norm)
        return op

    def _build(self, graph: Graph, var: Variable, grad: Tensor,
               sparse: bool, device) -> Operation:
        raise NotImplementedError

    def _slot(self, graph: Graph, var: Variable, slot: str) -> Variable:
        """Create (or reuse) a non-trainable slot variable like momentum."""
        name = f"{var.name}/{slot}"
        if name in graph.variables:
            return graph.variables[name]  # type: ignore[return-value]
        return Variable(name, var.shape, initializer=zeros_initializer,
                        trainable=False, graph=graph)


class GradientDescentOptimizer(Optimizer):
    """Plain SGD: ``var -= lr * grad`` (sparse: only the touched rows)."""

    def __init__(self, learning_rate: float,
                 clip_norm: Optional[float] = None):
        self.learning_rate = float(learning_rate)
        self.clip_norm = clip_norm

    def _build(self, graph, var, grad, sparse, device):
        op_type = "sgd_update_sparse" if sparse else "sgd_update"
        return graph.add_op(
            op_type, [grad], TensorSpec(()),
            name=f"update/{var.name}",
            attrs={"lr": self.learning_rate},
            device=device,
        )


class MomentumOptimizer(Optimizer):
    """SGD with momentum; sparse applies row-wise to the velocity slot."""

    def __init__(self, learning_rate: float, momentum: float = 0.9,
                 clip_norm: Optional[float] = None):
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.clip_norm = clip_norm

    def _build(self, graph, var, grad, sparse, device):
        slot = self._slot(graph, var, "velocity")
        op_type = "momentum_update_sparse" if sparse else "momentum_update"
        return graph.add_op(
            op_type, [grad], TensorSpec(()),
            name=f"update/{var.name}",
            attrs={"lr": self.learning_rate, "momentum": self.momentum,
                   "slot": slot.name},
            device=device,
        )


class AdamOptimizer(Optimizer):
    """Adam; the sparse variant is TF's lazy Adam (row-wise slot updates)."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 clip_norm: Optional[float] = None):
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.clip_norm = clip_norm

    def _build(self, graph, var, grad, sparse, device):
        m = self._slot(graph, var, "adam_m")
        v = self._slot(graph, var, "adam_v")
        step_name = f"{var.name}/adam_step"
        if step_name not in graph.variables:
            Variable(step_name, (1,), initializer=zeros_initializer,
                     trainable=False, graph=graph)
        op_type = "adam_update_sparse" if sparse else "adam_update"
        return graph.add_op(
            op_type, [grad], TensorSpec(()),
            name=f"update/{var.name}",
            attrs={"lr": self.learning_rate, "beta1": self.beta1,
                   "beta2": self.beta2, "eps": self.epsilon,
                   "m": m.name, "v": v.name, "step": step_name},
            device=device,
        )


# ======================================================================
# Update kernels.  Each reads/writes variables through the runtime, which
# resolves the correct store from the op's device placement.
# ======================================================================
def _maybe_clip(op, value):
    """Rescale the gradient to at most attrs["clip_norm"] L2 norm."""
    clip = op.attrs.get("clip_norm")
    if clip is None:
        return value
    if isinstance(value, IndexedSlices):
        norm = float(np.sqrt((value.values.astype(np.float64) ** 2).sum()))
        if norm > clip:
            return value.scale(clip / norm)
        return value
    arr = np.asarray(value)
    norm = float(np.sqrt((arr.astype(np.float64) ** 2).sum()))
    if norm > clip:
        return arr * (clip / norm)
    return arr


def _as_combined_slices(op, value) -> IndexedSlices:
    value = _maybe_clip(op, value)
    if not isinstance(value, IndexedSlices):
        raise TypeError(f"sparse update expects IndexedSlices, got {type(value)}")
    return value.combine()


def specialize_update(op, read, write):
    """Compile-time form of the SGD update kernels for executor plans.

    ``read``/``write`` are the routed store accessors for *op*'s device,
    so the per-call runtime routing and attr lookups disappear.  Returns
    None for op types or configurations (e.g. clipping) that have no
    specialized form; those stay on the generic kernels.
    """
    if op.attrs.get("clip_norm") is not None:
        return None
    name = op.attrs.get("variable")
    lr = op.attrs.get("lr")
    if op.op_type == "sgd_update":

        def sgd_update_kernel(op, inputs, runtime):
            write(name, read(name) - lr * inputs[0])

        return sgd_update_kernel
    if op.op_type == "sgd_update_sparse":

        def sgd_update_sparse_kernel(op, inputs, runtime):
            value = inputs[0]
            if not isinstance(value, IndexedSlices):
                raise TypeError(
                    f"sparse update expects IndexedSlices, got {type(value)}"
                )
            delta = value.combine()
            current = read(name)
            np.subtract.at(current, delta.indices, lr * delta.values)
            write(name, current)

        return sgd_update_sparse_kernel
    return None


@register_forward("sgd_update")
def _sgd_update(op, inputs, runtime):
    name = op.attrs["variable"]
    grad = _maybe_clip(op, inputs[0])
    current = runtime.read_variable(name)
    runtime.write_variable(name, current - op.attrs["lr"] * grad)
    return None


@register_forward("sgd_update_sparse")
def _sgd_update_sparse(op, inputs, runtime):
    name = op.attrs["variable"]
    delta = _as_combined_slices(op, inputs[0])
    current = runtime.read_variable(name)
    np.subtract.at(current, delta.indices, op.attrs["lr"] * delta.values)
    runtime.write_variable(name, current)
    return None


@register_forward("momentum_update")
def _momentum_update(op, inputs, runtime):
    name, slot = op.attrs["variable"], op.attrs["slot"]
    vel = runtime.read_variable(slot)
    vel = op.attrs["momentum"] * vel + _maybe_clip(op, inputs[0])
    runtime.write_variable(slot, vel)
    current = runtime.read_variable(name)
    runtime.write_variable(name, current - op.attrs["lr"] * vel)
    return None


@register_forward("momentum_update_sparse")
def _momentum_update_sparse(op, inputs, runtime):
    name, slot = op.attrs["variable"], op.attrs["slot"]
    delta = _as_combined_slices(op, inputs[0])
    vel = runtime.read_variable(slot)
    rows = delta.indices
    vel[rows] = op.attrs["momentum"] * vel[rows] + delta.values
    runtime.write_variable(slot, vel)
    current = runtime.read_variable(name)
    current[rows] = current[rows] - op.attrs["lr"] * vel[rows]
    runtime.write_variable(name, current)
    return None


@register_forward("adam_update")
def _adam_update(op, inputs, runtime):
    name = op.attrs["variable"]
    grad = np.asarray(_maybe_clip(op, inputs[0]))
    lr, b1, b2, eps = (op.attrs[k] for k in ("lr", "beta1", "beta2", "eps"))
    step = runtime.read_variable(op.attrs["step"]) + 1.0
    runtime.write_variable(op.attrs["step"], step)
    t = float(step[0])
    m = runtime.read_variable(op.attrs["m"])
    v = runtime.read_variable(op.attrs["v"])
    m = b1 * m + (1 - b1) * grad
    v = b2 * v + (1 - b2) * grad * grad
    runtime.write_variable(op.attrs["m"], m)
    runtime.write_variable(op.attrs["v"], v)
    m_hat = m / (1 - b1 ** t)
    v_hat = v / (1 - b2 ** t)
    current = runtime.read_variable(name)
    runtime.write_variable(name, current - lr * m_hat / (np.sqrt(v_hat) + eps))
    return None


@register_forward("adam_update_sparse")
def _adam_update_sparse(op, inputs, runtime):
    name = op.attrs["variable"]
    delta = _as_combined_slices(op, inputs[0])
    lr, b1, b2, eps = (op.attrs[k] for k in ("lr", "beta1", "beta2", "eps"))
    step = runtime.read_variable(op.attrs["step"]) + 1.0
    runtime.write_variable(op.attrs["step"], step)
    t = float(step[0])
    rows = delta.indices
    m = runtime.read_variable(op.attrs["m"])
    v = runtime.read_variable(op.attrs["v"])
    m[rows] = b1 * m[rows] + (1 - b1) * delta.values
    v[rows] = b2 * v[rows] + (1 - b2) * delta.values * delta.values
    runtime.write_variable(op.attrs["m"], m)
    runtime.write_variable(op.attrs["v"], v)
    m_hat = m[rows] / (1 - b1 ** t)
    v_hat = v[rows] / (1 - b2 ** t)
    current = runtime.read_variable(name)
    current[rows] = current[rows] - lr * m_hat / (np.sqrt(v_hat) + eps)
    runtime.write_variable(name, current)
    return None
