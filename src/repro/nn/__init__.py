"""Neural-network substrate: layers, optimizers, datasets, and the model zoo.

Every model the paper evaluates exists here twice:

* a **runnable** configuration -- small enough to train in tests, built on
  the graph IR, used for convergence and correctness experiments;
* a paper-scale :class:`~repro.nn.profiles.ModelProfile` -- the exact
  variable inventory (element counts, sparsity, per-variable alpha) from
  paper Table 1, consumed by the performance simulator.
"""

from repro.nn import layers
from repro.nn import datasets
from repro.nn.optimizers import (
    GradientDescentOptimizer,
    MomentumOptimizer,
    AdamOptimizer,
)
from repro.nn.profiles import (
    ModelProfile,
    VariableProfile,
    resnet50_profile,
    inception_v3_profile,
    lm_profile,
    nmt_profile,
    constructed_lm_profile,
    PAPER_PROFILES,
)

__all__ = [
    "layers",
    "datasets",
    "GradientDescentOptimizer",
    "MomentumOptimizer",
    "AdamOptimizer",
    "ModelProfile",
    "VariableProfile",
    "resnet50_profile",
    "inception_v3_profile",
    "lm_profile",
    "nmt_profile",
    "constructed_lm_profile",
    "PAPER_PROFILES",
]
