"""Synthetic datasets standing in for ImageNet / One-Billion-Word / WMT.

The distributed-training behaviour the paper measures depends on the data
only through (a) batch shape and (b) the fraction of embedding rows a
batch touches (alpha).  Token datasets therefore sample from a Zipf
distribution over the vocabulary -- like natural language, a small head of
the vocabulary dominates, and alpha is controlled by sequence length and
vocabulary size exactly as in the paper's section 6.6 sweep.

Datasets are deterministic given a seed, indexable, and support
``shard(num_shards, index)`` -- the backing primitive of ``parallax.shard``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class Dataset:
    """A finite, indexable dataset of example tuples."""

    def __len__(self) -> int:
        raise NotImplementedError

    def example(self, index: int) -> Tuple[np.ndarray, ...]:
        raise NotImplementedError

    def shard(self, num_shards: int, index: int) -> "ShardedDataset":
        """A disjoint 1/num_shards view (round-robin by example id)."""
        if not 0 <= index < num_shards:
            raise ValueError(f"shard index {index} out of range [0,{num_shards})")
        return ShardedDataset(self, num_shards, index)

    def take(self, ids: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Rows *ids* as stacked columns.  Subclasses backed by arrays
        override this with a vectorized gather; values are identical."""
        columns = list(zip(*(self.example(int(i)) for i in ids)))
        return tuple(np.stack(col) for col in columns)

    def batch(self, batch_size: int, batch_index: int) -> Tuple[np.ndarray, ...]:
        """Batch *batch_index*, cycling through the dataset as needed."""
        if len(self) == 0:
            raise ValueError("cannot batch an empty dataset")
        ids = (batch_index * batch_size
               + np.arange(batch_size, dtype=np.int64)) % len(self)
        return self.take(ids)

    def batches(self, batch_size: int,
                num_batches: Optional[int] = None) -> Iterator[Tuple[np.ndarray, ...]]:
        index = 0
        while num_batches is None or index < num_batches:
            yield self.batch(batch_size, index)
            index += 1


class ShardedDataset(Dataset):
    """Every ``num_shards``-th example of a parent dataset."""

    def __init__(self, parent: Dataset, num_shards: int, index: int):
        self.parent = parent
        self.num_shards = num_shards
        self.index = index

    def __len__(self) -> int:
        total = len(self.parent)
        base, extra = divmod(total, self.num_shards)
        return base + (1 if self.index < extra else 0)

    def example(self, index: int) -> Tuple[np.ndarray, ...]:
        if index >= len(self):
            raise IndexError(index)
        return self.parent.example(index * self.num_shards + self.index)

    def take(self, ids: np.ndarray) -> Tuple[np.ndarray, ...]:
        if ids.size and int(ids.max()) >= len(self):
            raise IndexError(int(ids.max()))
        return self.parent.take(ids * self.num_shards + self.index)


class SyntheticImageDataset(Dataset):
    """Feature-vector images with class labels (ImageNet stand-in).

    A linearly separable-ish signal is planted so small models measurably
    learn, which the convergence experiments need.
    """

    def __init__(self, size: int = 1024, num_features: int = 64,
                 num_classes: int = 10, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.num_features = num_features
        self.num_classes = num_classes
        self._labels = rng.integers(0, num_classes, size=size)
        centers = rng.standard_normal((num_classes, num_features)) * 2.0
        noise = rng.standard_normal((size, num_features))
        self._images = (centers[self._labels] + noise).astype(np.float32)

    def __len__(self) -> int:
        return self._images.shape[0]

    def example(self, index: int):
        return self._images[index], np.int64(self._labels[index])

    def take(self, ids: np.ndarray):
        ids = np.asarray(ids, dtype=np.int64)
        return (self._images[ids].copy(),
                self._labels[ids].astype(np.int64, copy=True))


def zipf_token_sampler(vocab_size: int, s: float,
                       rng: np.random.Generator):
    """Sampler of token ids with Zipf(s) marginal over ``vocab_size``."""
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks ** (-s)
    probs /= probs.sum()
    cdf = np.cumsum(probs)

    def sample(n: int) -> np.ndarray:
        u = rng.random(n)
        return np.searchsorted(cdf, u).astype(np.int64)

    return sample


class SyntheticTextDataset(Dataset):
    """Token sequences for language modeling (One-Billion-Word stand-in).

    Each example is ``(tokens, next_tokens)``; next-token targets follow a
    planted bigram structure so perplexity actually decreases in training.
    """

    def __init__(self, size: int = 1024, vocab_size: int = 100,
                 seq_len: int = 8, seed: int = 0, zipf_s: float = 1.1):
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        sample = zipf_token_sampler(vocab_size, zipf_s, rng)
        # Planted structure: next token is a fixed permutation of the
        # current one with high probability, else a fresh Zipf draw.
        # Columns must be rewritten sequentially so the chain uses the
        # *final* value of each position.
        permutation = rng.permutation(vocab_size)
        tokens = sample(size * (seq_len + 1)).reshape(size, seq_len + 1)
        follow = rng.random((size, seq_len)) < 0.8
        for t in range(1, seq_len + 1):
            tokens[:, t] = np.where(follow[:, t - 1],
                                    permutation[tokens[:, t - 1]],
                                    tokens[:, t])
        self._tokens = tokens

    def __len__(self) -> int:
        return self._tokens.shape[0]

    def example(self, index: int):
        row = self._tokens[index]
        return row[:-1].copy(), row[1:].copy()

    def take(self, ids: np.ndarray):
        rows = self._tokens[np.asarray(ids, dtype=np.int64)]
        return rows[:, :-1].copy(), rows[:, 1:].copy()

    def measured_alpha(self, batch_size: int, num_batches: int = 8) -> float:
        """Empirical fraction of vocab rows a batch touches (the paper's α).

        Averaged over the first ``num_batches`` batches.
        """
        fractions = []
        for b in range(num_batches):
            tokens, _ = self.batch(batch_size, b)
            fractions.append(np.unique(tokens).size / self.vocab_size)
        return float(np.mean(fractions))


class TranslationDataset(Dataset):
    """Source/target sentence pairs (WMT English-German stand-in)."""

    def __init__(self, size: int = 1024, src_vocab: int = 120,
                 tgt_vocab: int = 120, src_len: int = 8, tgt_len: int = 8,
                 seed: int = 0, zipf_s: float = 1.1):
        rng = np.random.default_rng(seed)
        self.src_vocab = src_vocab
        self.tgt_vocab = tgt_vocab
        self.src_len = src_len
        self.tgt_len = tgt_len
        src_sample = zipf_token_sampler(src_vocab, zipf_s, rng)
        self._src = src_sample(size * src_len).reshape(size, src_len)
        # Planted word-for-word "translation": a fixed vocabulary mapping
        # applied to the source prefix, padded with Zipf noise.
        mapping = rng.permutation(max(src_vocab, tgt_vocab))[:src_vocab] % tgt_vocab
        tgt_sample = zipf_token_sampler(tgt_vocab, zipf_s, rng)
        tgt = tgt_sample(size * tgt_len).reshape(size, tgt_len)
        copy_len = min(src_len, tgt_len)
        tgt[:, :copy_len] = mapping[self._src[:, :copy_len]]
        self._tgt = tgt

    def __len__(self) -> int:
        return self._src.shape[0]

    def example(self, index: int):
        return self._src[index].copy(), self._tgt[index].copy()

    def take(self, ids: np.ndarray):
        ids = np.asarray(ids, dtype=np.int64)
        return self._src[ids].copy(), self._tgt[ids].copy()
