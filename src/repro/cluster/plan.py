"""Synchronization plans: which method synchronizes which variable.

A :class:`SyncPlan` is the shared contract between the strategy layer
(baselines and Parallax's hybrid assignment) and the two execution planes:
the functional engine transforms the graph according to it, and the
performance simulator prices it.  It captures the paper's design space:

* per-variable method -- AllReduce, AllGatherv, or PS;
* per-variable partition count for PS-managed sparse variables;
* the OptPS optimizations: local (per-machine) gradient aggregation and
  smart placement of aggregation/update ops on the variable's server.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.nn.profiles import VariableProfile


class SyncMethod(enum.Enum):
    """How one variable's gradients are synchronized across workers."""

    ALLREDUCE = "allreduce"    # dense collective (NCCL-style ring)
    ALLGATHERV = "allgatherv"  # sparse collective (MPI-style ring)
    PS = "ps"                  # parameter server push/pull


def fusion_buckets(sizes_bytes: List[float],
                   cap_bytes: float) -> List[List[int]]:
    """Greedy size-capped grouping, preserving order.

    Consecutive entries share a bucket until adding the next one would
    exceed *cap_bytes*; an entry larger than the cap gets its own bucket.
    Returns index lists into the input order.  Both planes bucket through
    this one function so the simulator's bucket counts match the graph
    transform's by construction.
    """
    buckets: List[List[int]] = []
    current: List[int] = []
    current_bytes = 0.0
    for i, nbytes in enumerate(sizes_bytes):
        if current and current_bytes + nbytes > cap_bytes:
            buckets.append(current)
            current, current_bytes = [], 0.0
        current.append(i)
        current_bytes += nbytes
    if current:
        buckets.append(current)
    return buckets


@dataclass(frozen=True)
class VariableAssignment:
    """One variable's synchronization decision."""

    variable: VariableProfile
    method: SyncMethod
    num_partitions: int = 1

    def __post_init__(self):
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.num_partitions > 1 and self.method is not SyncMethod.PS:
            raise ValueError(
                f"{self.variable.name}: partitioning only applies to PS "
                f"variables (got {self.method})"
            )
        if (self.variable.rows is not None
                and self.num_partitions > self.variable.rows):
            raise ValueError(
                f"{self.variable.name}: cannot split {self.variable.rows} "
                f"rows into {self.num_partitions} partitions"
            )

    @property
    def shard_nbytes(self) -> float:
        return self.variable.nbytes / self.num_partitions


@dataclass(frozen=True)
class SyncPlan:
    """A complete synchronization strategy for one model."""

    name: str
    assignments: List[VariableAssignment]
    local_aggregation: bool = False
    smart_placement: bool = False
    average_gradients: bool = True
    # Dense AllReduce fusion-bucket cap for the performance plane:
    #   None -> legacy aggregate pricing (one ring over all dense bytes,
    #           no per-collective launch cost, no AR/compute overlap);
    #   0.0  -> unfused: one bucket (one collective) per variable;
    #   >0   -> greedy size-capped buckets in assignment order.
    fusion_buffer_mb: Optional[float] = None
    # Gradient compression on the collective paths, mirroring the
    # functional plane's GraphSyncPlan: None, "topk", "fp16", or
    # "topk+fp16"; ``compression_ratio`` is top-k's keep fraction.  The
    # simulator prices collective traffic at the compressed wire size
    # (repro.comm.compression.wire_fraction -- the same arithmetic the
    # graph transform sizes fusion buckets with) plus compression
    # compute, and reports raw vs wire bytes side by side.
    compression: Optional[str] = None
    compression_ratio: float = 0.1

    def __post_init__(self):
        if self.fusion_buffer_mb is not None and self.fusion_buffer_mb < 0:
            raise ValueError("fusion_buffer_mb must be >= 0 (or None)")
        if self.compression is not None:
            from repro.comm.compression import parse_spec

            parse_spec(self.compression)  # raises on unknown specs
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")

    def by_method(self, method: SyncMethod) -> List[VariableAssignment]:
        return [a for a in self.assignments if a.method is method]

    @property
    def allreduce_bytes(self) -> int:
        return sum(a.variable.nbytes
                   for a in self.by_method(SyncMethod.ALLREDUCE))

    @property
    def ps_assignments(self) -> List[VariableAssignment]:
        return self.by_method(SyncMethod.PS)

    @property
    def gatherv_assignments(self) -> List[VariableAssignment]:
        return self.by_method(SyncMethod.ALLGATHERV)

    def with_fusion(self, fusion_buffer_mb: Optional[float]) -> "SyncPlan":
        """Same plan under a different fusion-bucket cap (ablations)."""
        return replace(self, fusion_buffer_mb=fusion_buffer_mb)

    def with_compression(self, compression: Optional[str],
                         compression_ratio: float = 0.1) -> "SyncPlan":
        """Same plan under a different compression codec (ablations)."""
        return replace(self, compression=compression,
                       compression_ratio=compression_ratio)

    @property
    def compressed_fraction(self) -> float:
        """Wire bytes per raw collective byte under this plan's codec."""
        if self.compression is None:
            return 1.0
        from repro.comm.compression import wire_fraction

        return wire_fraction(self.compression, self.compression_ratio)

    def allreduce_buckets(self) -> List[float]:
        """Per-bucket *on-wire* payload bytes for bucketed AR pricing.

        ``fusion_buffer_mb`` of 0 (or None) yields one bucket per
        AllReduce variable; a positive cap groups consecutive variables
        greedily, in assignment order, exactly as the functional plane's
        graph transform buckets gradients -- including sizing by
        compressed bytes when the plan compresses, so a given cap holds
        proportionally more gradient per collective.
        """
        fraction = self.compressed_fraction
        sizes = [float(a.variable.nbytes) * fraction
                 for a in self.by_method(SyncMethod.ALLREDUCE)]
        cap = self.fusion_buffer_mb
        if not cap:
            return sizes
        return [sum(sizes[i] for i in bucket)
                for bucket in fusion_buckets(sizes, cap * 1024 * 1024)]

    def with_partitions(self, num_partitions: int) -> "SyncPlan":
        """Same plan with every PS *sparse* variable re-partitioned.

        Mirrors the paper's ``partitioner`` scope: one partition count is
        searched for all variables in the partitioner context.
        """
        updated = []
        for a in self.assignments:
            if a.method is SyncMethod.PS and a.variable.is_sparse:
                bounded = num_partitions
                if a.variable.rows is not None:
                    bounded = min(bounded, a.variable.rows)
                updated.append(replace(a, num_partitions=bounded))
            else:
                updated.append(a)
        return replace(self, assignments=updated)

    def max_partitions(self) -> int:
        return max((a.num_partitions for a in self.assignments), default=1)

    def describe(self) -> str:
        lines = [f"SyncPlan {self.name!r} (local_agg={self.local_aggregation}, "
                 f"smart_placement={self.smart_placement})"]
        for a in self.assignments:
            extra = (f" P={a.num_partitions}"
                     if a.num_partitions > 1 else "")
            lines.append(
                f"  {a.variable.name}: {a.method.value}{extra} "
                f"({a.variable.num_elements:,} elems"
                f"{', sparse' if a.variable.is_sparse else ''})"
            )
        return "\n".join(lines)
