"""Synchronization plans: which method synchronizes which variable.

A :class:`SyncPlan` is the shared contract between the strategy layer
(baselines and Parallax's hybrid assignment) and the two execution planes:
the functional engine transforms the graph according to it, and the
performance simulator prices it.  It captures the paper's design space:

* per-variable method -- AllReduce, AllGatherv, or PS;
* per-variable partition count for PS-managed sparse variables;
* the OptPS optimizations: local (per-machine) gradient aggregation and
  smart placement of aggregation/update ops on the variable's server.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.nn.profiles import ModelProfile, VariableProfile


class SyncMethod(enum.Enum):
    """How one variable's gradients are synchronized across workers."""

    ALLREDUCE = "allreduce"    # dense collective (NCCL-style ring)
    ALLGATHERV = "allgatherv"  # sparse collective (MPI-style ring)
    PS = "ps"                  # parameter server push/pull


@dataclass(frozen=True)
class VariableAssignment:
    """One variable's synchronization decision."""

    variable: VariableProfile
    method: SyncMethod
    num_partitions: int = 1

    def __post_init__(self):
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.num_partitions > 1 and self.method is not SyncMethod.PS:
            raise ValueError(
                f"{self.variable.name}: partitioning only applies to PS "
                f"variables (got {self.method})"
            )
        if (self.variable.rows is not None
                and self.num_partitions > self.variable.rows):
            raise ValueError(
                f"{self.variable.name}: cannot split {self.variable.rows} "
                f"rows into {self.num_partitions} partitions"
            )

    @property
    def shard_nbytes(self) -> float:
        return self.variable.nbytes / self.num_partitions


@dataclass(frozen=True)
class SyncPlan:
    """A complete synchronization strategy for one model."""

    name: str
    assignments: List[VariableAssignment]
    local_aggregation: bool = False
    smart_placement: bool = False
    average_gradients: bool = True

    def by_method(self, method: SyncMethod) -> List[VariableAssignment]:
        return [a for a in self.assignments if a.method is method]

    @property
    def allreduce_bytes(self) -> int:
        return sum(a.variable.nbytes
                   for a in self.by_method(SyncMethod.ALLREDUCE))

    @property
    def ps_assignments(self) -> List[VariableAssignment]:
        return self.by_method(SyncMethod.PS)

    @property
    def gatherv_assignments(self) -> List[VariableAssignment]:
        return self.by_method(SyncMethod.ALLGATHERV)

    def with_partitions(self, num_partitions: int) -> "SyncPlan":
        """Same plan with every PS *sparse* variable re-partitioned.

        Mirrors the paper's ``partitioner`` scope: one partition count is
        searched for all variables in the partitioner context.
        """
        updated = []
        for a in self.assignments:
            if a.method is SyncMethod.PS and a.variable.is_sparse:
                bounded = num_partitions
                if a.variable.rows is not None:
                    bounded = min(bounded, a.variable.rows)
                updated.append(replace(a, num_partitions=bounded))
            else:
                updated.append(a)
        return replace(self, assignments=updated)

    def max_partitions(self) -> int:
        return max((a.num_partitions for a in self.assignments), default=1)

    def describe(self) -> str:
        lines = [f"SyncPlan {self.name!r} (local_agg={self.local_aggregation}, "
                 f"smart_placement={self.smart_placement})"]
        for a in self.assignments:
            extra = (f" P={a.num_partitions}"
                     if a.num_partitions > 1 else "")
            lines.append(
                f"  {a.variable.name}: {a.method.value}{extra} "
                f"({a.variable.num_elements:,} elems"
                f"{', sparse' if a.variable.is_sparse else ''})"
            )
        return "\n".join(lines)
